"""Programming the HMC's PIM ISA directly (event-level cube model).

    python examples/pim_isa_playground.py

Uses :class:`repro.hmc.cube.HmcCube` — the packet/bank-level device model —
to issue individual PIM instructions and observe the three behaviours the
paper's Sec. II builds on:

1. functional read-modify-write semantics (values actually change);
2. Table I link economics (a PIM op moves 3 FLITs vs 12 for a host RMW);
3. atomicity via bank locking (a racing read waits out the RMW);
plus the thermal-warning ERRSTAT bit that drives CoolPIM.
"""

import struct

from repro.hmc.config import HMC_2_0
from repro.hmc.cube import HmcCube
from repro.hmc.isa import PimInstruction, PimOpcode, decode_operand, encode_operand
from repro.hmc.packet import PacketType, Request

#: One pass of the vault/bank interleaving — the stride that stays on one
#: (vault, bank) pair.
SAME_BANK_STRIDE = 32 * HMC_2_0.num_vaults * HMC_2_0.banks_per_vault


def demo_semantics(cube: HmcCube) -> None:
    print("1) Read-modify-write semantics")
    addr = 0x1000
    cube.mem_write(addr, encode_operand(40, PimOpcode.ADD_IMM, 4))

    add = PimInstruction(PimOpcode.ADD_IMM, address=addr, immediate=2)
    cube.submit(Request(PacketType.PIM, address=addr, pim=add), now=0.0)
    value = decode_operand(cube.mem_read(addr, 4), PimOpcode.ADD_IMM, 4)
    print(f"   PIM_Add(40, +2)            -> memory now holds {value}")

    cas = PimInstruction(PimOpcode.CAS_GREATER, address=addr, immediate=100)
    rsp = cube.submit(Request(PacketType.PIM_RET, address=addr, pim=cas), 10.0)
    old = struct.unpack("<i", rsp.data)[0]
    print(f"   CAS-greater(100)           -> success={rsp.atomic_flag}, "
          f"returned old value {old}")

    cas_lose = PimInstruction(PimOpcode.CAS_GREATER, address=addr, immediate=5)
    rsp = cube.submit(Request(PacketType.PIM_RET, address=addr, pim=cas_lose), 20.0)
    print(f"   CAS-greater(5)             -> success={rsp.atomic_flag} "
          "(memory already larger)\n")


def demo_link_economics() -> None:
    print("2) Table I link economics (FLITs moved for 64 atomics)")
    pim_cube, host_cube = HmcCube(HMC_2_0), HmcCube(HMC_2_0)
    for i in range(64):
        addr = i * 32
        inst = PimInstruction(PimOpcode.ADD_IMM, address=addr, immediate=1)
        pim_cube.submit(Request(PacketType.PIM, address=addr, pim=inst), 0.0)
        host_cube.submit(Request(PacketType.READ64, address=addr), 0.0)
        host_cube.submit(Request(PacketType.WRITE64, address=addr), 0.0,
                         payload=b"\0" * 64)
    pim = pim_cube.links.total_flits()
    host = host_cube.links.total_flits()
    print(f"   PIM offload : {pim:5d} FLITs")
    print(f"   host RMW    : {host:5d} FLITs  ({host / pim:.0f}x more)\n")


def demo_atomicity(cube: HmcCube) -> None:
    print("3) Atomicity: the bank is locked for the whole RMW")
    inst = PimInstruction(PimOpcode.ADD_IMM, address=0, immediate=1)
    rmw = cube.submit(Request(PacketType.PIM, address=0, pim=inst), now=0.0)
    racer = cube.submit(
        Request(PacketType.READ64, address=SAME_BANK_STRIDE), now=0.0
    )
    print(f"   PIM RMW completes at  {rmw.complete_time_ns:6.2f} ns")
    print(f"   racing read completes {racer.complete_time_ns:6.2f} ns "
          "(same bank: waited out the lock)\n")


def demo_thermal_warning(cube: HmcCube) -> None:
    print("4) Thermal warning via ERRSTAT (the CoolPIM feedback input)")
    cube.set_thermal_warning(True)
    rsp = cube.submit(Request(PacketType.READ64, address=0), now=1000.0)
    print(f"   response ERRSTAT = {rsp.errstat:#04x} "
          f"(thermal_warning={rsp.thermal_warning})")
    cube.set_thermal_warning(False)


if __name__ == "__main__":
    cube = HmcCube(HMC_2_0)
    demo_semantics(cube)
    demo_link_economics()
    demo_atomicity(cube)
    demo_thermal_warning(cube)
