"""Quickstart: run one graph workload under CoolPIM and its baselines.

    python examples/quickstart.py

Builds the full system (GPU + HMC 2.0 + thermal model), runs PageRank on
a small LDBC-like graph under four offloading policies, and prints the
speedups, peak temperatures, and PIM offloading rates.
"""

from repro.core import CoolPimSystem
from repro.graph import get_dataset
from repro.workloads import get_workload


def main() -> None:
    graph = get_dataset("ldbc")
    print(f"graph: {graph}")

    system = CoolPimSystem()          # commodity-server cooling by default
    workload = get_workload("pagerank")
    workload.iterations = 40          # long enough for thermal effects,
                                      # short enough for a quickstart

    results = system.run_all_policies(workload, graph)
    baseline = results["non-offloading"]

    print(f"\n{'policy':18s} {'time (ms)':>10s} {'speedup':>8s} "
          f"{'peak T (C)':>11s} {'PIM op/ns':>10s}")
    for name, res in results.items():
        print(
            f"{name:18s} {res.runtime_s * 1e3:10.3f} "
            f"{res.speedup_over(baseline):8.2f} "
            f"{res.peak_dram_temp_c:11.1f} {res.avg_pim_rate_ops_ns:10.2f}"
        )

    cool = results["coolpim-hw"]
    print(
        f"\nCoolPIM (HW) offloaded {cool.offload_fraction:.0%} of "
        f"{cool.total_atomics:,} atomics while keeping the stack at "
        f"{cool.peak_dram_temp_c:.1f} C."
    )


if __name__ == "__main__":
    main()
