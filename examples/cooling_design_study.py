"""Cooling design study for a PIM-enabled HMC (Sec. III of the paper).

    python examples/cooling_design_study.py

Answers three thermal-design questions with the calibrated model:

1. How hot does the stack run across bandwidths under each Table II sink?
2. What sink resistance does a given PIM offloading rate require to stay
   within DRAM's normal range (≤ 85 °C)?
3. What does that cooling *cost* — fan power vs the cube's own power
   (the trade-off that makes "just cool it harder" a losing strategy and
   motivates source throttling).
"""

from scipy.optimize import brentq

from repro.thermal.cooling import (
    COOLING_SOLUTIONS,
    CoolingSolution,
    fan_power_w,
)
from repro.thermal.model import HmcThermalModel
from repro.thermal.power import PowerModel, TrafficPoint
from repro.hmc.config import HMC_2_0


def bandwidth_sweep() -> None:
    print("Peak DRAM temperature (C) vs bandwidth:")
    bws = [0, 80, 160, 240, 320]
    print(f"{'sink':12s}" + "".join(f"{bw:>8d}" for bw in bws))
    for name, cooling in COOLING_SOLUTIONS.items():
        model = HmcThermalModel(cooling=cooling)
        temps = [model.steady_peak_dram_c(TrafficPoint.streaming(bw))
                 for bw in bws]
        marks = ["!" if t > 105 else " " for t in temps]
        print(f"{name:12s}" + "".join(
            f"{t:7.1f}{m}" for t, m in zip(temps, marks)))
    print("  (! = beyond the 105 C operating ceiling)\n")


def required_sink(rate: float) -> float | None:
    def peak(r_sink: float) -> float:
        m = HmcThermalModel(cooling=CoolingSolution("custom", r_sink, 1.0))
        return m.steady_peak_dram_c(TrafficPoint.pim_saturated(rate))

    if peak(0.02) > 85.0:
        return None
    if peak(6.0) < 85.0:
        return 6.0
    return brentq(lambda r: peak(r) - 85.0, 0.02, 6.0, xtol=1e-3)


def pim_requirements() -> None:
    print("Sink requirement to keep PIM offloading under 85 C:")
    power_model = PowerModel(HMC_2_0)
    for rate in (0.0, 1.3, 2.0, 3.0, 4.0, 6.5):
        r = required_sink(rate)
        cube_w = power_model.package_total_w(TrafficPoint.pim_saturated(rate))
        if r is None:
            print(f"  {rate:3.1f} op/ns: no heat sink suffices "
                  f"(cube draws {cube_w:.1f} W)")
            continue
        fan = fan_power_w(max(r, 0.12), wheel_diameter_relative=2.0)
        print(f"  {rate:3.1f} op/ns: <= {r:5.3f} C/W "
              f"(fan ~{fan:5.1f} W vs cube {cube_w:4.1f} W)")
    print()


def takeaway() -> None:
    print(
        "Takeaway: every extra op/ns of PIM offloading tightens the sink\n"
        "budget, and fan power grows with the cube of airflow - beyond\n"
        "~1.3 op/ns the cooling costs a large fraction of the energy the\n"
        "offloading was meant to save. CoolPIM instead throttles the\n"
        "offloading intensity at the source (see quickstart.py)."
    )


if __name__ == "__main__":
    bandwidth_sweep()
    pim_requirements()
    takeaway()
