"""Writing a custom throttling policy.

    python examples/custom_throttling_policy.py

The policy interface (:class:`repro.core.policies.OffloadPolicy`) is the
extension point for new source-throttling mechanisms: implement
``pim_fraction`` and ``on_thermal_warning`` and the co-simulation does the
rest. This example builds a proportional controller that modulates the
offloading fraction continuously with the sensed temperature error — a
what-if beyond the paper's step-wise SW/HW mechanisms — and races it
against CoolPIM (HW) and naïve offloading on a thermally-intense workload.
"""

from repro.core import CoolPimSystem
from repro.core.policies import OffloadPolicy
from repro.graph import get_dataset
from repro.workloads.dc import DegreeCentrality


class ProportionalThrottle(OffloadPolicy):
    """P-controller: fraction decreases linearly with the overshoot.

    fraction = 1 - gain x max(0, T_sensed - T_target), clamped to
    [floor, 1]. Unlike CoolPIM's down-only token/warp counters, this
    policy recovers when the cube cools — at the cost of needing a tuned
    gain (the kind of knob the paper's mechanisms avoid).
    """

    name = "proportional"

    def __init__(self, target_c: float = 84.0, gain: float = 0.12,
                 floor: float = 0.05) -> None:
        super().__init__()
        self.target_c = target_c
        self.gain = gain
        self.floor = floor
        self._fraction = 1.0

    def begin(self, launch, now_s: float = 0.0) -> None:
        self._fraction = 1.0
        self.record_fraction(now_s, 1.0)

    def pim_fraction(self, now_s: float) -> float:
        return self._fraction

    def on_thermal_warning(self, now_s: float, temp_c=None) -> None:
        if temp_c is None:
            return
        error = max(0.0, temp_c - self.target_c)
        new = max(self.floor, min(1.0, 1.0 - self.gain * error))
        if new != self._fraction:
            self._fraction = new
            self.record_fraction(now_s, new)


def main() -> None:
    graph = get_dataset("ldbc")
    system = CoolPimSystem()

    workload = DegreeCentrality()
    workload.repeats = 48

    contenders = {
        "non-offloading": "non-offloading",
        "naive-offloading": "naive-offloading",
        "coolpim-hw": "coolpim-hw",
        "proportional": ProportionalThrottle(),
    }

    results = {}
    for label, policy in contenders.items():
        results[label] = system.run(workload, graph, policy)

    base = results["non-offloading"]
    print(f"{'policy':18s} {'speedup':>8s} {'peak T (C)':>11s} "
          f"{'offload %':>10s} {'PIM op/ns':>10s}")
    for label, res in results.items():
        print(
            f"{label:18s} {res.speedup_over(base):8.2f} "
            f"{res.peak_dram_temp_c:11.1f} {res.offload_fraction:10.0%} "
            f"{res.avg_pim_rate_ops_ns:10.2f}"
        )

    print(
        "\nThe P-controller tracks the 85 C boundary more tightly than the\n"
        "step-wise mechanisms, but its gain needed hand-tuning - exactly\n"
        "the engineering trade-off the paper's token/warp counters avoid."
    )


if __name__ == "__main__":
    main()
