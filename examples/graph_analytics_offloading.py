"""Graph-analytics offloading study (the paper's Sec. V evaluation).

    python examples/graph_analytics_offloading.py [--quick] [workloads...]

Runs a set of GraphBIG benchmarks on the LDBC-like graph under all five
configurations and prints a Fig. 10/12/13-style comparison at the
calibrated scale of EXPERIMENTS.md (a few seconds per benchmark;
``--quick`` runs a cold smoke-scale instead).
"""

import argparse
import sys
import time

from repro.core import CoolPimSystem
from repro.experiments.common import RunScale, scaled_workload
from repro.graph import get_dataset
from repro.workloads import list_workloads

POLICIES = ["non-offloading", "naive-offloading", "coolpim-sw",
            "coolpim-hw", "ideal-thermal"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workloads", nargs="*",
                        default=["dc", "bfs-dwc", "pagerank", "kcore"],
                        help="benchmark names (default: a representative mix)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke-test scale (small graph; too short for "
                             "thermal effects)")
    args = parser.parse_args(argv)

    unknown = [w for w in args.workloads if w not in list_workloads()]
    if unknown:
        print(f"unknown workloads {unknown}; available: {list_workloads()}")
        return 2

    scale = RunScale.quick() if args.quick else RunScale.full()
    graph = get_dataset(scale.dataset)
    system = CoolPimSystem()
    print(f"graph: {graph}  (scale: {'quick' if args.quick else 'full'})")

    header = f"{'benchmark':10s}" + "".join(f"{p:>18s}" for p in POLICIES)
    print("\nSpeedup over non-offloading:")
    print(header)
    temp_rows = []
    for name in args.workloads:
        start = time.time()
        workload = scaled_workload(name, scale)
        results = system.run_all_policies(workload, graph)
        base = results["non-offloading"]
        sus = [results[p].speedup_over(base) for p in POLICIES]
        print(f"{name:10s}" + "".join(f"{su:18.2f}" for su in sus)
              + f"   [{time.time() - start:.1f} s]")
        temp_rows.append(
            (name, [results[p].peak_dram_temp_c for p in POLICIES])
        )

    print("\nPeak DRAM temperature (C):")
    print(header)
    for name, temps in temp_rows:
        print(f"{name:10s}" + "".join(f"{t:18.1f}" for t in temps))

    print(
        "\nReading the table: naive offloading wins on paper-bandwidth but "
        "overheats the cube\n(>85 C triggers DRAM derating); CoolPIM "
        "throttles offloading at the source and\nkeeps the gains."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
