#!/usr/bin/env python
"""CI smoke for the live telemetry plane.

Boots a real ``repro serve`` subprocess, submits one tiny simulation,
follows its event stream and asserts at least one in-flight ``telemetry``
event arrives *before* the terminal event (with strictly increasing
seqs), fetches the run's telemetry series, scrapes ``GET /metrics`` and
validates the Prometheus exposition parses and covers the expected
series, checks ``/readyz``, then shuts down gracefully.

Usage: PYTHONPATH=src python scripts/telemetry_smoke.py [cache_dir]
"""

import os
import re
import signal
import subprocess
import sys
import tempfile

RUN_BODY = {
    "workload": "kcore",
    "dataset": "ldbc-tiny",
    "policy": "coolpim-hw",
    "workload_scale": 0.25,
    "engine": "stepped",
}

REQUIRED_SERIES = (
    "repro_api_requests_total",
    "repro_api_runs_total",
    "repro_api_run_seconds",
    "repro_api_queue_depth",
    "repro_api_running",
    "repro_api_sse_subscribers",
    "repro_jobs_total",
    "repro_sim_runs_total",
    "repro_sim_control_steps_total",
)


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="repro-telemetry-smoke-"
    )
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--cache-dir", cache_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env, text=True,
    )
    try:
        banner = proc.stdout.readline()
        print(banner.strip())
        match = re.search(r"http://([\d.]+):(\d+)", banner)
        if not match:
            fail(f"no listen address in banner: {banner!r}")
        host, port = match.group(1), int(match.group(2))

        sys.path.insert(0, "src")
        from repro.api.client import ApiClient
        from repro.telemetry import ExpositionError, parse_exposition

        client = ApiClient(host, port, tenant="ci")

        # --- readiness -------------------------------------------------
        ready, body = client.readyz()
        if not ready:
            fail(f"readyz not ready at boot: {body}")
        print(f"readyz ok: {body['reason']}")

        # --- live telemetry before terminal ----------------------------
        run = client.submit_run(**RUN_BODY)
        if run["cached"]:
            fail("first submission must execute, not hit the cache")
        events = list(client.stream_events(run["run_id"]))
        names = [e["event"] for e in events]
        seqs = [e["seq"] for e in events]
        print(f"streamed {len(events)} events: {names}")
        if seqs != sorted(seqs) or len(set(seqs)) != len(seqs):
            fail(f"event seqs not strictly increasing: {seqs}")
        if names[-1] != "completed":
            fail(f"stream did not end terminal: {names}")
        telemetry = [e for e in events if e["event"] == "telemetry"]
        if not telemetry:
            fail("no in-flight telemetry event arrived before terminal")
        sample = telemetry[0]
        for key in ("t_s", "progress", "dram_c", "pim_fraction", "engine"):
            if key not in sample:
                fail(f"telemetry sample missing {key!r}: {sample}")
        print(
            f"telemetry ok: {len(telemetry)} sample(s), first at "
            f"t={sample['t_s']:.2e}s dram={sample['dram_c']:.1f}C "
            f"frac={sample['pim_fraction']:.2f}"
        )

        # --- per-run series endpoint -----------------------------------
        series = client.run_telemetry(run["run_id"])
        if series["count"] < 1 or len(series["samples"]) != series["count"]:
            fail(f"telemetry series endpoint inconsistent: {series}")
        print(f"telemetry series endpoint ok ({series['count']} samples)")

        # --- Prometheus scrape -----------------------------------------
        text = client.metrics()
        try:
            parsed = parse_exposition(text)
        except ExpositionError as exc:
            fail(f"/metrics exposition does not parse: {exc}")
        families = set(parsed["types"])
        missing = [s for s in REQUIRED_SERIES if s not in families]
        if missing:
            fail(f"/metrics missing series: {missing} (saw {sorted(families)})")
        print(f"/metrics ok: {len(families)} families, "
              f"{len(parsed['samples'])} samples")
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            rc = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("server did not shut down within 30s")
        print(proc.stdout.read().strip())

    if rc != 0:
        fail(f"server exited {rc}")
    print("TELEMETRY SMOKE PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
