#!/usr/bin/env python
"""CI smoke for the HTTP service: boot, submit, stream, dedupe, drain.

Boots a real ``repro serve`` subprocess on a free port, submits one tiny
simulation over HTTP, follows its JSONL event stream, re-submits the
identical body and asserts the second submission is served from the
cache without re-executing, checks the leaderboard and admin endpoints,
then shuts the server down gracefully and verifies the journal recorded
the whole story.

Usage: PYTHONPATH=src python scripts/api_smoke.py [cache_dir]
"""

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

RUN_BODY = {
    "workload": "kcore",
    "dataset": "ldbc-tiny",
    "policy": "coolpim-hw",
    "workload_scale": 0.25,
}
BASELINE_BODY = dict(RUN_BODY, policy="non-offloading")


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="repro-api-smoke-"
    )
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--cache-dir", cache_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env, text=True,
    )
    try:
        banner = proc.stdout.readline()
        print(banner.strip())
        match = re.search(r"http://([\d.]+):(\d+)", banner)
        if not match:
            fail(f"no listen address in banner: {banner!r}")
        host, port = match.group(1), int(match.group(2))

        sys.path.insert(0, "src")
        from repro.api.client import ApiClient

        client = ApiClient(host, port, tenant="ci")
        health = client.healthz()
        if health["status"] != "ok":
            fail(f"healthz: {health}")
        print(f"healthz ok ({health['workers']} workers)")

        # --- live run + ordered event stream --------------------------
        first = client.submit_run(**RUN_BODY)
        print(f"submitted run {first['run_id']} (cached={first['cached']})")
        if first["cached"]:
            fail("first submission must execute, not hit the cache")
        events = list(client.stream_events(first["run_id"]))
        names = [e["event"] for e in events]
        seqs = [e["seq"] for e in events]
        print(f"streamed {len(events)} events: {names}")
        if seqs != sorted(seqs) or names[-1] != "completed":
            fail(f"event stream out of order or non-terminal: {names}")

        # --- resubmission: must be a cache hit, not a re-run ----------
        status, second = client.request("POST", "/runs", RUN_BODY)
        print(f"resubmitted → HTTP {status} (cached={second['cached']})")
        if status != 200 or not second["cached"]:
            fail("identical resubmission was not served from cache")

        # --- baseline run so the leaderboard has a comparison ---------
        base = client.submit_run(**BASELINE_BODY)
        client.wait_for_run(base["run_id"], timeout_s=120.0)
        board = client.leaderboard(workload="kcore")
        policies = {e["policy"]: e for e in board["policies"]}
        print(
            "leaderboard:",
            [(e["rank"], e["policy"], e["geomean_speedup"])
             for e in board["policies"]],
        )
        if "coolpim-hw" not in policies or "non-offloading" not in policies:
            fail(f"leaderboard missing policies: {sorted(policies)}")
        if policies["non-offloading"]["geomean_speedup"] != 1.0:
            fail("baseline speedup must be exactly 1.0")

        cache = client.admin_cache()
        print(f"cache entries: {cache['entries']}")
        if cache["entries"] != 2:
            fail(f"expected 2 cached results, saw {cache['entries']}")
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            rc = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("server did not shut down within 30s")
        print(proc.stdout.read().strip())

    if rc != 0:
        fail(f"server exited {rc}")

    journal = os.path.join(cache_dir, "journal.jsonl")
    events = set()
    with open(journal, encoding="utf-8") as fh:
        for line in fh:
            try:
                events.add(json.loads(line)["event"])
            except (json.JSONDecodeError, KeyError):
                continue
    for required in ("api_start", "api_submitted", "api_completed",
                     "api_cache_hit", "api_stop"):
        if required not in events:
            fail(f"journal missing {required!r} (saw {sorted(events)})")
    print("journal audit ok:", ", ".join(sorted(events)))
    print("API SMOKE PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
