#!/usr/bin/env python
"""CI smoke for fault injection: CLI scenario runs complete and perturb.

Runs two short injected simulations through the real CLI:

1. ``degraded-cooling`` on a weak sink with naive offloading — the
   degradation must actually bite (nonzero thermal warnings) and the
   injected stream must replay deterministically (two identical
   invocations, byte-identical JSON) and engine-independently (the
   ``stepped`` oracle produces the same result as the ``macro`` fast
   path across the injection boundaries).
2. ``sensor-dropout`` under CoolPIM-HW — the run must complete with the
   control loop still exercised (nonzero warnings between dropout
   windows).

Usage: PYTHONPATH=src python scripts/scenario_smoke.py
"""

import json
import subprocess
import sys

BASE = [
    sys.executable, "-m", "repro", "run", "kcore",
    "--dataset", "ldbc-tiny", "--cooling", "low-end", "--json",
]

DEGRADED = ["--policy", "naive-offloading", "--scenario", "degraded-cooling"]
DROPOUT = ["--policy", "coolpim-hw", "--scenario", "sensor-dropout"]


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_cli(extra):
    proc = subprocess.run(
        BASE + extra, capture_output=True, text=True, timeout=300
    )
    if proc.returncode != 0:
        fail(f"CLI exited {proc.returncode} for {extra}:\n{proc.stderr}")
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        fail(f"non-JSON CLI output for {extra}: {proc.stdout[:200]!r}")


def main():
    # --- degraded cooling: completes, warns, replays, engine-agrees ---
    first = run_cli(DEGRADED)
    print(
        f"degraded-cooling: runtime {first['runtime_s'] * 1e3:.3f} ms, "
        f"{first['thermal_warnings']} warnings, "
        f"peak {first['peak_dram_temp_c']:.1f} C"
    )
    if first["thermal_warnings"] <= 0:
        fail("degraded-cooling run produced no thermal warnings")
    replay = run_cli(DEGRADED)
    if replay != first:
        fail("same (scenario, seed) did not replay to an identical result")
    print("replay determinism ok")
    stepped = run_cli(DEGRADED + ["--engine", "stepped"])
    if stepped != first:
        diff = sorted(k for k in first if stepped.get(k) != first[k])
        fail(f"stepped engine diverged from macro under injection: {diff}")
    print("macro/stepped agreement ok")

    # --- sensor dropout: completes with the loop still exercised ------
    dropout = run_cli(DROPOUT)
    print(
        f"sensor-dropout: runtime {dropout['runtime_s'] * 1e3:.3f} ms, "
        f"{dropout['thermal_warnings']} warnings, "
        f"{dropout['shutdowns']} shutdowns"
    )
    if dropout["thermal_warnings"] <= 0:
        fail("sensor-dropout run produced no thermal warnings")

    print("SCENARIO SMOKE PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
