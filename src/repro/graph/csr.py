"""Compressed sparse row (CSR) graph container.

Workloads operate on CSR arrays directly (vectorized NumPy), matching how
GraphBIG kernels walk adjacency lists on the GPU. The container is
immutable after construction; algorithms allocate their own property arrays.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class CSRGraph:
    """Directed graph in CSR form with optional edge weights.

    Parameters
    ----------
    indptr:
        ``int64[n+1]`` row pointers.
    indices:
        ``int64[m]`` column indices (destination vertices).
    weights:
        Optional ``float64[m]`` edge weights (for SSSP).
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D")
        if indptr.size == 0:
            raise ValueError("indptr must have at least one entry")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError(
                f"indptr must start at 0 and end at len(indices)={indices.size}, "
                f"got [{indptr[0]}, {indptr[-1]}]"
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("edge endpoints out of range")
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=np.float64)
            if weights.shape != indices.shape:
                raise ValueError(
                    f"weights shape {weights.shape} != indices shape {indices.shape}"
                )
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.indptr.setflags(write=False)
        self.indices.setflags(write=False)
        if self.weights is not None:
            self.weights.setflags(write=False)

    # -- basic properties ---------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        return self.indices.size

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    def out_degree(self, v: Optional[int] = None) -> np.ndarray | int:
        """Out-degree of vertex ``v``, or the full degree array."""
        if v is None:
            return np.diff(self.indptr)
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Destination vertices of ``v``'s out-edges (a view)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        """Weights of ``v``'s out-edges; requires a weighted graph."""
        if self.weights is None:
            raise ValueError("graph is unweighted")
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        src: np.ndarray,
        dst: np.ndarray,
        weights: Optional[np.ndarray] = None,
        dedup: bool = True,
    ) -> "CSRGraph":
        """Build from parallel edge arrays, sorting (and optionally
        deduplicating) by (src, dst)."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have identical shape")
        if src.size and (
            src.min() < 0 or src.max() >= num_vertices
            or dst.min() < 0 or dst.max() >= num_vertices
        ):
            raise ValueError("edge endpoints out of range")
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        w = None if weights is None else np.asarray(weights, dtype=np.float64)[order]
        if dedup and src.size:
            keep = np.ones(src.size, dtype=bool)
            keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
            src, dst = src[keep], dst[keep]
            if w is not None:
                w = w[keep]
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, dst, w)

    def reversed(self) -> "CSRGraph":
        """Graph with all edges reversed (CSC of the original)."""
        n = self.num_vertices
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        return CSRGraph.from_edges(n, self.indices, src, self.weights, dedup=False)

    def to_undirected(self) -> "CSRGraph":
        """Symmetrized copy (each edge present in both directions)."""
        n = self.num_vertices
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        s = np.concatenate([src, self.indices])
        d = np.concatenate([self.indices, src])
        w = None
        if self.weights is not None:
            w = np.concatenate([self.weights, self.weights])
        return CSRGraph.from_edges(n, s, d, w, dedup=True)

    # -- vectorized frontier expansion ---------------------------------------

    def expand(
        self, vertices: np.ndarray, with_weights: bool = False
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Gather all out-edges of ``vertices`` in one vectorized pass.

        Returns ``(sources, targets, weights)`` — parallel arrays with one
        entry per edge; ``sources[i]`` repeats the owning vertex. This is
        the building block of every frontier-based kernel.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            empty = np.empty(0, dtype=np.int64)
            w = np.empty(0, dtype=np.float64) if with_weights else None
            return empty, empty, w
        starts = self.indptr[vertices]
        counts = self.indptr[vertices + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            w = np.empty(0, dtype=np.float64) if with_weights else None
            return np.repeat(vertices, counts), empty, w
        # Edge positions: for each vertex, a contiguous run starting at
        # indptr[v]; build with a cumulative-offset ramp.
        run_ends = np.cumsum(counts)
        ramp = np.arange(total, dtype=np.int64) - np.repeat(run_ends - counts, counts)
        positions = np.repeat(starts, counts) + ramp
        sources = np.repeat(vertices, counts)
        targets = self.indices[positions]
        weights = None
        if with_weights:
            if self.weights is None:
                raise ValueError("graph is unweighted")
            weights = self.weights[positions]
        return sources, targets, weights

    # -- analysis helpers ---------------------------------------------------

    def degree_stats(self) -> Tuple[float, int]:
        """(mean out-degree, max out-degree)."""
        deg = np.diff(self.indptr)
        if deg.size == 0:
            return 0.0, 0
        return float(deg.mean()), int(deg.max())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        w = "weighted" if self.is_weighted else "unweighted"
        return f"CSRGraph(n={self.num_vertices}, m={self.num_edges}, {w})"
