"""Named dataset registry used by the experiment harness.

``"ldbc"`` is the default evaluation graph (stand-in for the LDBC
social-network dataset, see DESIGN.md §2). Smaller instances exist for
tests and quick examples. Datasets are constructed lazily and cached.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    erdos_renyi_graph,
    grid_graph,
    ldbc_like_graph,
    road_like_graph,
)

_REGISTRY: Dict[str, Callable[[], CSRGraph]] = {
    # Full evaluation graph: ~16k vertices, power-law, weighted, undirected.
    "ldbc": lambda: ldbc_like_graph(scale=14, edge_factor=16, seed=7),
    # Faster variant for CI-grade experiment runs.
    "ldbc-small": lambda: ldbc_like_graph(scale=11, edge_factor=12, seed=7),
    # Tiny graphs for unit tests.
    "ldbc-tiny": lambda: ldbc_like_graph(scale=8, edge_factor=8, seed=7),
    "uniform-tiny": lambda: erdos_renyi_graph(256, 8.0, seed=3, weighted=True),
    "grid-8x8": lambda: grid_graph(8, 8, weighted=True, seed=1),
    # Road-network stand-in for the dataset-sensitivity extension:
    # near-constant degree, long diameter, tiny frontiers.
    "road": lambda: road_like_graph(180, 180, extra_edge_fraction=0.0005, seed=5),
    "road-small": lambda: road_like_graph(48, 48, extra_edge_fraction=0.002,
                                          seed=5),
}

_CACHE: Dict[str, CSRGraph] = {}


def list_datasets() -> list[str]:
    """Names accepted by :func:`get_dataset`."""
    return sorted(_REGISTRY)


def get_dataset(name: str) -> CSRGraph:
    """Return (and cache) the named dataset.

    Raises :class:`KeyError` with the available names on a miss.
    """
    if name not in _REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; available: {list_datasets()}")
    if name not in _CACHE:
        _CACHE[name] = _REGISTRY[name]()
    return _CACHE[name]


def clear_cache() -> None:
    """Drop cached instances (tests use this to bound memory)."""
    _CACHE.clear()
