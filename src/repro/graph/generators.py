"""Synthetic graph generators.

The headline generator is :func:`ldbc_like_graph`, a stand-in for the LDBC
social-network interactive dataset used in the paper's evaluation. It
produces a directed graph with power-law out-degree (RMAT recursion), a
dense core, and uniform edge weights in [1, 64) — the properties the
GraphBIG kernels are sensitive to (frontier growth, atomic contention on
hub vertices, relaxation counts).

All generators take an explicit seed; results are deterministic for a given
(seed, parameters) pair.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph


def _rmat_edges(
    scale: int,
    num_edges: int,
    rng: np.random.Generator,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized RMAT edge sampling (Graph500-style parameters)."""
    d = 1.0 - (a + b + c)
    if d <= 0:
        raise ValueError(f"RMAT probabilities sum to >= 1: a={a} b={b} c={c}")
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    ab = a + b
    a_norm = a / ab
    c_norm = c / (c + d)
    for level in range(scale):
        bit = np.int64(1) << np.int64(scale - 1 - level)
        # Noise keeps the degree distribution from being perfectly self-similar
        r_src = rng.random(num_edges)
        r_dst = rng.random(num_edges)
        go_down = r_src > ab
        src += bit * go_down
        thresh = np.where(go_down, c_norm, a_norm)
        dst += bit * (r_dst > thresh)
    return src, dst


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    seed: int = 0,
    weighted: bool = False,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> CSRGraph:
    """RMAT power-law graph with ``2**scale`` vertices.

    Parameters mirror Graph500: ``edge_factor`` edges per vertex before
    deduplication; self-loops are removed.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = n * edge_factor
    src, dst = _rmat_edges(scale, m, rng, a, b, c)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    w = rng.uniform(1.0, 64.0, size=src.size) if weighted else None
    return CSRGraph.from_edges(n, src, dst, w, dedup=True)


def ldbc_like_graph(
    scale: int = 14,
    edge_factor: int = 16,
    seed: int = 7,
    weighted: bool = True,
) -> CSRGraph:
    """LDBC-social-network stand-in.

    LDBC's person–knows–person graph is a skewed small-world network; an
    RMAT graph with Graph500 parameters plus a symmetrizing pass reproduces
    its degree skew and low diameter. Weights model interaction frequency
    and feed the SSSP kernels.
    """
    g = rmat_graph(scale, edge_factor, seed=seed, weighted=weighted)
    return g.to_undirected()


def erdos_renyi_graph(
    num_vertices: int,
    avg_degree: float,
    seed: int = 0,
    weighted: bool = False,
) -> CSRGraph:
    """Uniform random directed graph (G(n, m) variant)."""
    if num_vertices < 1:
        raise ValueError(f"need at least one vertex, got {num_vertices}")
    if avg_degree < 0:
        raise ValueError(f"negative average degree: {avg_degree}")
    rng = np.random.default_rng(seed)
    m = int(round(num_vertices * avg_degree))
    src = rng.integers(0, num_vertices, size=m, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=m, dtype=np.int64)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    w = rng.uniform(1.0, 64.0, size=src.size) if weighted else None
    return CSRGraph.from_edges(num_vertices, src, dst, w, dedup=True)


def grid_graph(rows: int, cols: int, weighted: bool = False, seed: int = 0) -> CSRGraph:
    """2-D 4-neighbour grid (deterministic; handy for exactness tests)."""
    if rows < 1 or cols < 1:
        raise ValueError(f"grid must be at least 1x1, got {rows}x{cols}")
    n = rows * cols
    srcs = []
    dsts = []
    idx = np.arange(n, dtype=np.int64).reshape(rows, cols)
    # right edges
    srcs.append(idx[:, :-1].ravel())
    dsts.append(idx[:, 1:].ravel())
    # left
    srcs.append(idx[:, 1:].ravel())
    dsts.append(idx[:, :-1].ravel())
    # down
    srcs.append(idx[:-1, :].ravel())
    dsts.append(idx[1:, :].ravel())
    # up
    srcs.append(idx[1:, :].ravel())
    dsts.append(idx[:-1, :].ravel())
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    w = None
    if weighted:
        rng = np.random.default_rng(seed)
        w = rng.uniform(1.0, 8.0, size=src.size)
    return CSRGraph.from_edges(n, src, dst, w, dedup=True)


def road_like_graph(
    rows: int,
    cols: int,
    extra_edge_fraction: float = 0.05,
    seed: int = 0,
    weighted: bool = True,
) -> CSRGraph:
    """Road-network stand-in: a grid with a sprinkle of shortcut edges.

    Road networks are the structural opposite of social graphs — near-
    constant degree, huge diameter, tiny frontiers — which stresses the
    evaluation differently (low memory-level parallelism, long level-
    synchronous runs). Used by the dataset-sensitivity extension.
    """
    if not 0.0 <= extra_edge_fraction <= 1.0:
        raise ValueError(
            f"extra_edge_fraction must be in [0,1]: {extra_edge_fraction}"
        )
    base = grid_graph(rows, cols, weighted=weighted, seed=seed)
    n = base.num_vertices
    extra = int(base.num_edges * extra_edge_fraction / 2)
    if extra == 0:
        return base
    rng = np.random.default_rng(seed + 1)
    src_g = np.repeat(np.arange(n, dtype=np.int64), np.diff(base.indptr))
    a = rng.integers(0, n, size=extra, dtype=np.int64)
    b = rng.integers(0, n, size=extra, dtype=np.int64)
    keep = a != b
    a, b = a[keep], b[keep]
    src = np.concatenate([src_g, a, b])
    dst = np.concatenate([base.indices, b, a])
    w = None
    if weighted:
        # Shortcuts are long (highway ramps): heavier weights.
        w_extra = rng.uniform(8.0, 32.0, size=a.size)
        w = np.concatenate([base.weights, w_extra, w_extra])
    return CSRGraph.from_edges(n, src, dst, w, dedup=True)


def star_graph(num_leaves: int, weighted: bool = False) -> CSRGraph:
    """Hub vertex 0 connected to/from ``num_leaves`` leaves.

    Worst case for atomic contention — every edge update hits the hub.
    """
    if num_leaves < 0:
        raise ValueError(f"negative leaf count: {num_leaves}")
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    src = np.concatenate([np.zeros(num_leaves, dtype=np.int64), leaves])
    dst = np.concatenate([leaves, np.zeros(num_leaves, dtype=np.int64)])
    w = np.ones(src.size, dtype=np.float64) if weighted else None
    return CSRGraph.from_edges(num_leaves + 1, src, dst, w, dedup=False)
