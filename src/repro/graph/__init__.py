"""Graph substrate: CSR graphs, synthetic generators, and named datasets.

The paper evaluates GraphBIG workloads on the LDBC social-network dataset.
LDBC data is not redistributable here, so :mod:`repro.graph.generators`
builds synthetic graphs with the properties the evaluation depends on
(power-law degree skew, small diameter, weighted edges), and
:mod:`repro.graph.datasets` registers the named instances used by the
experiment harness.
"""

from repro.graph.csr import CSRGraph
from repro.graph.datasets import get_dataset, list_datasets
from repro.graph.generators import (
    erdos_renyi_graph,
    grid_graph,
    ldbc_like_graph,
    rmat_graph,
)

__all__ = [
    "CSRGraph",
    "erdos_renyi_graph",
    "get_dataset",
    "grid_graph",
    "ldbc_like_graph",
    "list_datasets",
    "rmat_graph",
]
