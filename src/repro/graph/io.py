"""Graph persistence: whitespace edge lists and NumPy archives.

Lets users bring their own graphs (SNAP/KONECT-style edge lists) to the
workloads, and cache generated graphs to disk:

    g = load_edge_list("soc-live.txt")
    save_npz("cache.npz", g)
    g = load_npz("cache.npz")

Edge-list format: one ``src dst [weight]`` triple per line; ``#`` or ``%``
lines are comments. Vertex ids may be arbitrary non-negative integers —
they are compacted to a dense range.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Union

import numpy as np

from repro.graph.csr import CSRGraph

PathLike = Union[str, Path, io.TextIOBase]


def load_edge_list(source: PathLike, weighted: bool | None = None) -> CSRGraph:
    """Parse an edge list into a :class:`CSRGraph`.

    ``weighted=None`` auto-detects from the first data line; ``True``
    requires a weight column; ``False`` ignores any third column.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r") as fh:
            return load_edge_list(fh, weighted)

    srcs: list[int] = []
    dsts: list[int] = []
    weights: list[float] = []
    for lineno, raw in enumerate(source, 1):
        line = raw.strip()
        if not line or line[0] in "#%":
            continue
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(f"line {lineno}: expected 'src dst [weight]', "
                             f"got {line!r}")
        if weighted is None:
            weighted = len(parts) >= 3
        if weighted and len(parts) < 3:
            raise ValueError(f"line {lineno}: missing weight column")
        s, d = int(parts[0]), int(parts[1])
        if s < 0 or d < 0:
            raise ValueError(f"line {lineno}: negative vertex id")
        srcs.append(s)
        dsts.append(d)
        if weighted:
            weights.append(float(parts[2]))

    if not srcs:
        raise ValueError("edge list contains no edges")

    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    # Compact arbitrary ids to 0..n-1.
    ids = np.unique(np.concatenate([src, dst]))
    remap = {int(v): i for i, v in enumerate(ids)}
    src = np.array([remap[int(v)] for v in src], dtype=np.int64)
    dst = np.array([remap[int(v)] for v in dst], dtype=np.int64)
    w = np.asarray(weights) if weighted else None
    return CSRGraph.from_edges(len(ids), src, dst, w)


def save_edge_list(path: PathLike, graph: CSRGraph) -> None:
    """Write a graph as ``src dst [weight]`` lines."""
    if isinstance(path, (str, Path)):
        with open(path, "w") as fh:
            save_edge_list(fh, graph)
            return
    n = graph.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    path.write(f"# {n} vertices, {graph.num_edges} edges\n")
    if graph.is_weighted:
        for s, d, w in zip(src, graph.indices, graph.weights):
            path.write(f"{s} {d} {w:.6g}\n")
    else:
        for s, d in zip(src, graph.indices):
            path.write(f"{s} {d}\n")


def save_npz(path: Union[str, Path], graph: CSRGraph) -> None:
    """Binary CSR archive (fast reload of generated graphs)."""
    arrays = {"indptr": graph.indptr, "indices": graph.indices}
    if graph.weights is not None:
        arrays["weights"] = graph.weights
    np.savez_compressed(path, **arrays)


def load_npz(path: Union[str, Path]) -> CSRGraph:
    """Load a :func:`save_npz` archive."""
    with np.load(path) as data:
        weights = data["weights"] if "weights" in data.files else None
        return CSRGraph(data["indptr"], data["indices"], weights)
