"""Policy leaderboard computed from cached simulation results.

``GET /leaderboard`` is the service's product face: it ranks every
throttling policy that has results in the content-addressed store —
base policies (non-offloading, naïve), the paper's SW-DynT/HW-DynT, the
ideal-thermal bound, and any variant registered later — across the
scenario suite the cache has accumulated.

A **scenario** is one (workload, dataset, cooling, seed, workload_scale,
injection scenario, injection seed) tuple — fault-injected runs rank in
their own group; within a scenario, policies are compared against that scenario's
``non-offloading`` baseline (the Fig. 10 speedup convention). A policy's
headline number is the geometric mean of its per-scenario speedups —
only over scenarios where the baseline exists, so partial caches never
skew the ratio — alongside thermal and energy aggregates straight from
the cached :class:`~repro.gpu.simulator.SimulationResult` dictionaries.

The ranking is deterministic: results are read from a content-addressed
store, aggregation order is sorted, and ties break on policy name.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.service.store import ResultStore

LEADERBOARD_SCHEMA_ID = "repro.leaderboard/1"

#: Baseline policy every speedup is measured against.
BASELINE_POLICY = "non-offloading"

ScenarioKey = Tuple[str, str, str, int, float, str, int]


def _scenario_key(params: Dict[str, Any], seed: int) -> ScenarioKey:
    return (
        str(params.get("workload", "?")),
        str(params.get("dataset", "ldbc")),
        str(params.get("cooling", "commodity")),
        int(seed),
        float(params.get("workload_scale", 1.0)),
        # Fault-injected runs (repro.scenarios) rank only against
        # baselines from the same injected stream, never clean runs.
        str(params.get("scenario", "")),
        int(params.get("scenario_seed", 0)),
    )


def _geo_mean(values: List[float]) -> Optional[float]:
    positive = [v for v in values if v > 0]
    if not positive:
        return None
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def build_leaderboard(
    store: ResultStore,
    workload: Optional[str] = None,
    dataset: Optional[str] = None,
    cooling: Optional[str] = None,
    include_stale: bool = False,
) -> Dict[str, Any]:
    """Rank policies over the cached scenario suite.

    Optional filters restrict the suite; ``include_stale`` admits records
    written by an older code fingerprint (off by default, matching the
    store's own read rules).
    """
    # scenario → policy → aggregates dict
    scenarios: Dict[ScenarioKey, Dict[str, Dict[str, Any]]] = {}
    for record in store.entries():
        spec = record.get("spec", {})
        if spec.get("kind") != "simulation":
            continue
        if not include_stale and record.get("fingerprint") != store.fingerprint:
            continue
        params = spec.get("params", {})
        if workload is not None and params.get("workload") != workload:
            continue
        if dataset is not None and params.get("dataset", "ldbc") != dataset:
            continue
        if cooling is not None and params.get("cooling", "commodity") != cooling:
            continue
        result = record.get("payload", {}).get("result")
        if not isinstance(result, dict) or "runtime_s" not in result:
            continue
        key = _scenario_key(params, spec.get("seed", 0))
        policy = str(params.get("policy", "?"))
        scenarios.setdefault(key, {})[policy] = result

    rows: Dict[str, Dict[str, Any]] = {}
    for key in sorted(scenarios):
        by_policy = scenarios[key]
        baseline = by_policy.get(BASELINE_POLICY)
        for policy in sorted(by_policy):
            result = by_policy[policy]
            row = rows.setdefault(
                policy,
                {
                    "policy": policy,
                    "scenarios": 0,
                    "speedups": [],
                    "energy_ratios": [],
                    "peak_temps": [],
                    "pim_rates": [],
                    "thermal_warnings": 0,
                    "shutdowns": 0,
                },
            )
            row["scenarios"] += 1
            row["peak_temps"].append(float(result.get("peak_dram_temp_c", 0.0)))
            row["pim_rates"].append(float(result.get("avg_pim_rate_ops_ns", 0.0)))
            row["thermal_warnings"] += int(result.get("thermal_warnings", 0))
            row["shutdowns"] += int(result.get("shutdowns", 0))
            if baseline is not None and result.get("runtime_s", 0) > 0:
                row["speedups"].append(
                    float(baseline["runtime_s"]) / float(result["runtime_s"])
                )
                base_energy = float(baseline.get("total_energy_j", 0.0))
                if base_energy > 0:
                    row["energy_ratios"].append(
                        float(result.get("total_energy_j", 0.0)) / base_energy
                    )

    entries: List[Dict[str, Any]] = []
    for policy in sorted(rows):
        row = rows[policy]
        speedups = row.pop("speedups")
        energy_ratios = row.pop("energy_ratios")
        peak_temps = row.pop("peak_temps")
        pim_rates = row.pop("pim_rates")
        row["geomean_speedup"] = _geo_mean(speedups)
        row["compared_scenarios"] = len(speedups)
        row["mean_energy_ratio"] = (
            sum(energy_ratios) / len(energy_ratios) if energy_ratios else None
        )
        row["mean_peak_temp_c"] = (
            sum(peak_temps) / len(peak_temps) if peak_temps else None
        )
        row["max_peak_temp_c"] = max(peak_temps) if peak_temps else None
        row["mean_pim_rate_ops_ns"] = (
            sum(pim_rates) / len(pim_rates) if pim_rates else None
        )
        entries.append(row)

    # Rank by geomean speedup (desc); policies without a comparable
    # baseline sort after ranked ones; ties break on name (already the
    # iteration order, but make it explicit).
    entries.sort(
        key=lambda e: (
            e["geomean_speedup"] is None,
            -(e["geomean_speedup"] or 0.0),
            e["policy"],
        )
    )
    for rank, entry in enumerate(entries, start=1):
        entry["rank"] = rank

    return {
        "schema": LEADERBOARD_SCHEMA_ID,
        "baseline": BASELINE_POLICY,
        "scenarios": len(scenarios),
        "filters": {
            "workload": workload,
            "dataset": dataset,
            "cooling": cooling,
        },
        "policies": entries,
    }
