"""Route wiring + server runtime for the simulation API.

Endpoint map (full reference in ``docs/SERVICE.md``)::

    POST /runs                        submit one simulation
    POST /sweeps                      submit a (workloads × policies × datasets) batch
    GET  /runs/{id}                   status + result aggregates
    GET  /runs/{id}/events            progress stream (SSE, or JSONL with
                                      ?format=jsonl / Accept: application/x-ndjson)
    GET  /runs/{id}/artifacts/metrics    repro.metrics/1 document
    GET  /runs/{id}/artifacts/report     rendered metrics text report
    GET  /runs/{id}/artifacts/manifest   repro.manifest/1 provenance
    GET  /runs/{id}/artifacts/trace      Chrome trace (needs "trace": true)
    GET  /sweeps/{id}                 sweep status summary
    GET  /leaderboard                 policy ranking over cached scenarios
    GET  /admin/cache                 store/journal stats (repro cache --json shape)
    GET  /admin/tenants               fairness-layer stats
    GET  /healthz                     liveness + counters
    GET  /readyz                      readiness (503 while draining/saturated)
    GET  /metrics                     Prometheus text exposition (process-wide)
    GET  /telemetry/runs/{id}         one run's in-flight telemetry series (JSON)

Event streams resume: ``GET /runs/{id}/events`` honours the SSE
``Last-Event-ID`` header (or ``?since=<seq>``) and replays from the next
sequence number, so reconnecting followers see no duplicates.

Wire formats deliberately reuse :mod:`repro.obs`: the metrics artifact is
the exact ``repro.metrics/1`` document ``repro report`` renders, the
manifest is ``repro.manifest/1``, and the trace artifact is a validated
Chrome trace built by replaying the run's sampled timeline through the
event engine.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, AsyncIterator, Dict, Optional

from repro.api.fairness import QuotaExceeded
from repro.api.http import (
    HttpError,
    HttpServer,
    Request,
    Response,
    Router,
    StreamResponse,
    json_response,
    text_response,
)
from repro.api.leaderboard import build_leaderboard
from repro.api.schemas import (
    ValidationError,
    validate_run_request,
    validate_since,
    validate_sweep_request,
    validate_tenant,
)
from repro.api.service import ApiService, RunRecord, ServiceClosed, UnknownRun

API_VERSION = "repro.api/1"


def _tenant_of(request: Request, body: Optional[Dict[str, Any]] = None) -> str:
    """Tenant from the ``X-Tenant`` header, else the body, else public."""
    try:
        header = request.headers.get("x-tenant")
        if header:
            return validate_tenant(header)
        return validate_tenant((body or {}).get("tenant"))
    except ValidationError as exc:
        raise HttpError(400, exc.message, field=exc.field) from exc


def _wants_jsonl(request: Request) -> bool:
    if request.query.get("format") == "jsonl":
        return True
    return "application/x-ndjson" in request.headers.get("accept", "")


def create_router(service: ApiService) -> Router:
    router = Router()

    def _get_run(request: Request) -> RunRecord:
        try:
            return service.get_run(request.path_params["id"])
        except UnknownRun:
            raise HttpError(
                404, f"unknown run {request.path_params['id']!r}"
            ) from None

    def _submit(spec, tenant: str) -> RunRecord:
        try:
            return service.submit(spec, tenant)
        except QuotaExceeded as exc:
            raise HttpError(
                429, str(exc), tenant=exc.tenant, quota=exc.limit
            ) from exc
        except ServiceClosed as exc:
            raise HttpError(503, str(exc)) from exc

    # -- submission --------------------------------------------------------

    async def post_run(request: Request):
        body = request.json()
        tenant = _tenant_of(request, body)
        try:
            spec = validate_run_request(body, service.allow_kinds)
        except ValidationError as exc:
            raise HttpError(400, exc.message, field=exc.field) from exc
        rec = _submit(spec, tenant)
        return json_response(
            {
                "run_id": rec.id,
                "key": rec.key,
                "status": rec.status,
                "cached": rec.cached,
                "coalesced_into": rec.coalesced_into,
            },
            status=200 if rec.cached else 202,
        )

    async def post_sweep(request: Request):
        body = request.json()
        tenant = _tenant_of(request, body)
        try:
            specs = validate_sweep_request(body, service.allow_kinds)
        except ValidationError as exc:
            raise HttpError(400, exc.message, field=exc.field) from exc
        try:
            sweep_id, records = service.submit_sweep(specs, tenant)
        except QuotaExceeded as exc:
            raise HttpError(
                429, str(exc), tenant=exc.tenant, quota=exc.limit
            ) from exc
        except ServiceClosed as exc:
            raise HttpError(503, str(exc)) from exc
        return json_response(
            {
                "sweep_id": sweep_id,
                "jobs": len(records),
                "runs": [
                    {
                        "run_id": r.id,
                        "key": r.key,
                        "name": r.spec.name,
                        "status": r.status,
                        "cached": r.cached,
                        "coalesced_into": r.coalesced_into,
                    }
                    for r in records
                ],
            },
            status=202,
        )

    # -- status ------------------------------------------------------------

    async def get_run(request: Request):
        return json_response(_get_run(request).to_dict())

    async def get_sweep(request: Request):
        try:
            return json_response(service.get_sweep(request.path_params["id"]))
        except UnknownRun:
            raise HttpError(
                404, f"unknown sweep {request.path_params['id']!r}"
            ) from None

    # -- event streaming ---------------------------------------------------

    async def get_events(request: Request):
        rec = _get_run(request)  # 404 before we commit to a stream
        jsonl = _wants_jsonl(request)
        try:
            # SSE reconnects send Last-Event-ID; manual resumes can use
            # ?since=<last seen seq>. Header wins when both are present.
            since_seq = validate_since(
                request.headers.get("last-event-id")
                or request.query.get("since")
            )
        except ValidationError as exc:
            raise HttpError(400, exc.message, field=exc.field) from exc

        async def sse_chunks() -> AsyncIterator[bytes]:
            async for event in service.iter_events(rec.id, since_seq):
                data = json.dumps(event, sort_keys=True)
                yield (
                    f"id: {event['seq']}\n"
                    f"event: {event['event']}\n"
                    f"data: {data}\n\n"
                ).encode("utf-8")
            yield b"event: end\ndata: {}\n\n"

        async def jsonl_chunks() -> AsyncIterator[bytes]:
            async for event in service.iter_events(rec.id, since_seq):
                yield (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")

        if jsonl:
            return StreamResponse(
                jsonl_chunks(), content_type="application/x-ndjson"
            )
        return StreamResponse(sse_chunks(), content_type="text/event-stream")

    # -- artifacts ---------------------------------------------------------

    def _completed_payload(request: Request) -> Dict[str, Any]:
        rec = _get_run(request)
        if rec.status != "completed" or rec.payload is None:
            raise HttpError(
                409,
                f"run {rec.id} is {rec.status}; artifacts exist only for "
                "completed runs",
            )
        return rec.payload

    async def get_metrics_artifact(request: Request):
        from repro.obs.metrics import export_metrics

        rec = _get_run(request)
        payload = _completed_payload(request)
        metrics = payload.get("metrics")
        if not metrics:
            raise HttpError(404, "run payload carries no metrics snapshot")
        doc = export_metrics(
            metrics,
            meta={
                "run_id": rec.id,
                "job": rec.spec.name,
                "seed": rec.spec.seed,
                **{
                    k: v
                    for k, v in payload.items()
                    if isinstance(v, (str, int, float, bool))
                },
            },
        )
        return json_response(doc)

    async def get_report_artifact(request: Request):
        from repro.obs.metrics import export_metrics, render_report

        payload = _completed_payload(request)
        metrics = payload.get("metrics")
        if not metrics:
            raise HttpError(404, "run payload carries no metrics snapshot")
        return text_response(render_report(export_metrics(metrics)))

    async def get_manifest_artifact(request: Request):
        from repro.obs.manifest import RunManifest

        rec = _get_run(request)
        payload = _completed_payload(request)
        result = payload.get("result") or {}
        manifest = RunManifest.collect(
            command="repro.api",
            config=dict(rec.spec.params),
            seed=rec.spec.seed,
            wall_duration_s=rec.elapsed_s,
            sim_duration_s=result.get("runtime_s"),
            run_id=rec.id,
            tenant=rec.tenant,
            job_key=rec.key,
            cached=rec.cached,
        )
        return json_response(manifest.to_dict())

    async def get_trace_artifact(request: Request):
        from repro.obs.chrome import export_chrome_trace
        from repro.obs.replay import replay_timeline
        from repro.obs.tracer import Tracer

        rec = _get_run(request)
        payload = _completed_payload(request)
        timeline = (payload.get("result") or {}).get("timeline")
        if not timeline:
            raise HttpError(
                404,
                "run payload carries no timeline; submit with "
                '"trace": true to keep one',
            )
        tracer = Tracer(enabled=True)
        replay_timeline(timeline, tracer=tracer)
        doc = export_chrome_trace(
            tracer.records,
            other_data={"run_id": rec.id, "job": rec.spec.name},
        )
        return json_response(doc)

    # -- product / admin ---------------------------------------------------

    async def get_leaderboard(request: Request):
        if service.store is None:
            raise HttpError(409, "server runs without a result store")
        board = build_leaderboard(
            service.store,
            workload=request.query.get("workload"),
            dataset=request.query.get("dataset"),
            cooling=request.query.get("cooling"),
            include_stale=request.query.get("include_stale") == "1",
        )
        return json_response(board)

    async def get_admin_cache(request: Request):
        from repro.service.store import store_stats_payload

        if service.store is None:
            raise HttpError(409, "server runs without a result store")
        journal_path = (
            service.journal.path if service.journal is not None else None
        )
        return json_response(
            store_stats_payload(service.store, journal_path=journal_path)
        )

    async def get_admin_tenants(request: Request):
        return json_response(service.queue.stats())

    async def get_healthz(request: Request):
        return json_response({"status": "ok", "api": API_VERSION,
                              **service.stats()})

    async def get_readyz(request: Request):
        ok, reason = service.ready()
        return json_response(
            {"ready": ok, "reason": reason, "api": API_VERSION},
            status=200 if ok else 503,
        )

    async def get_metrics(request: Request):
        from repro.telemetry import CONTENT_TYPE, get_registry, render_exposition

        reg = get_registry()
        # Scrape-time gauges: cheap to read, pointless to maintain hot.
        queue_depth = reg.gauge(
            "repro_api_queue_depth",
            help="Queued (not yet running) runs per tenant.",
            labelnames=("tenant",),
        )
        wait_age = reg.gauge(
            "repro_api_queue_wait_age_seconds",
            help="Age of the oldest queued run per tenant.",
            labelnames=("tenant",),
        )
        for tenant, tstats in service.queue.stats().items():
            queue_depth.labels(tenant=tenant).set(tstats["queued"])
            wait_age.labels(tenant=tenant).set(
                service.queue.oldest_wait_s(tenant)
            )
        reg.gauge(
            "repro_api_running", help="Runs currently executing."
        ).set(service.stats()["running"])
        reg.gauge(
            "repro_api_sse_subscribers",
            help="Live event-stream followers.",
        ).set(service.sse_subscribers)
        if service.store is not None:
            try:
                sstats = service.store.stats()
                reg.gauge(
                    "repro_store_entries",
                    help="Result-store entry count.",
                ).set(sstats.entries)
                reg.gauge(
                    "repro_store_bytes",
                    help="Result-store payload bytes on disk.",
                ).set(sstats.total_bytes)
            except Exception:
                pass  # a scrape must never 500 because the store is odd
        return Response(
            status=200,
            body=render_exposition(reg).encode("utf-8"),
            content_type=CONTENT_TYPE,
        )

    async def get_run_telemetry(request: Request):
        rec = _get_run(request)
        return json_response(
            {
                "run_id": rec.id,
                "status": rec.status,
                "samples": list(rec.telemetry),
                "count": len(rec.telemetry),
            }
        )

    router.post("/runs", post_run)
    router.post("/sweeps", post_sweep)
    router.get("/runs/{id}", get_run)
    router.get("/runs/{id}/events", get_events)
    router.get("/runs/{id}/artifacts/metrics", get_metrics_artifact)
    router.get("/runs/{id}/artifacts/report", get_report_artifact)
    router.get("/runs/{id}/artifacts/manifest", get_manifest_artifact)
    router.get("/runs/{id}/artifacts/trace", get_trace_artifact)
    router.get("/sweeps/{id}", get_sweep)
    router.get("/leaderboard", get_leaderboard)
    router.get("/admin/cache", get_admin_cache)
    router.get("/admin/tenants", get_admin_tenants)
    router.get("/healthz", get_healthz)
    router.get("/readyz", get_readyz)
    router.get("/metrics", get_metrics)
    router.get("/telemetry/runs/{id}", get_run_telemetry)
    return router


class ApiServer:
    """One :class:`ApiService` behind one :class:`HttpServer`."""

    def __init__(
        self,
        service: ApiService,
        host: str = "127.0.0.1",
        port: int = 0,
        debug: bool = False,
    ) -> None:
        self.service = service
        self.http = HttpServer(create_router(service), host, port, debug=debug)

    @property
    def host(self) -> str:
        return self.http.host

    @property
    def port(self) -> int:
        return self.http.port

    async def start(self) -> None:
        await self.service.startup()
        await self.http.start()

    async def stop(self, drain_timeout_s: float = 10.0) -> None:
        await self.service.shutdown(drain_timeout_s=drain_timeout_s)
        await self.http.stop()

    async def serve_until(
        self,
        stop: asyncio.Event,
        drain_timeout_s: float = 10.0,
        on_ready=None,
    ) -> None:
        """Start, announce readiness, block until ``stop``, then drain."""
        await self.start()
        if on_ready is not None:
            on_ready(self)
        try:
            await stop.wait()
        finally:
            await self.stop(drain_timeout_s=drain_timeout_s)


class ServerHandle:
    """A server running on a background thread (tests, embedding)."""

    def __init__(self, server: ApiServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread, stop: asyncio.Event) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread
        self._stop = stop

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def call(self, coro):
        """Run a coroutine on the server loop and wait for its result."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(30)

    def stop(self, timeout_s: float = 15.0) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join(timeout_s)


def start_server_thread(
    service: ApiService,
    host: str = "127.0.0.1",
    port: int = 0,
    drain_timeout_s: float = 10.0,
    debug: bool = False,
) -> ServerHandle:
    """Boot an :class:`ApiServer` on its own thread + event loop.

    Returns once the listener is bound (``handle.port`` is real).
    """
    server = ApiServer(service, host=host, port=port, debug=debug)
    ready = threading.Event()
    box: Dict[str, Any] = {}

    def _main() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        stop = asyncio.Event()
        box["loop"] = loop
        box["stop"] = stop
        try:
            loop.run_until_complete(
                server.serve_until(
                    stop,
                    drain_timeout_s=drain_timeout_s,
                    on_ready=lambda _s: ready.set(),
                )
            )
        finally:
            ready.set()  # unblock the starter even on startup failure
            loop.close()

    thread = threading.Thread(
        target=_main, name="repro-api-server", daemon=True
    )
    thread.start()
    ready.wait(15)
    if "loop" not in box or not thread.is_alive() and server.port == 0:
        raise RuntimeError("API server failed to start")
    return ServerHandle(server, box["loop"], thread, box["stop"])
