"""Minimal asyncio HTTP/1.1 server + router.

The service deliberately has **no hard HTTP-framework dependency**: this
module implements just enough of HTTP/1.1 on ``asyncio`` streams for the
simulation API — request parsing (method, target, headers, bounded body),
a pattern router with ``{param}`` path captures, JSON responses, and
long-lived streaming responses (SSE / JSONL) written incrementally until
the handler's generator ends. Every response closes its connection
(``Connection: close``), which keeps the protocol state machine trivial
and makes streams naturally delimited by EOF.

Handlers are ``async def handler(request) -> Response | StreamResponse``.
Raise :class:`HttpError` for structured error replies; anything else
becomes a 500 with the exception type (and a traceback on stderr when the
server runs with ``debug=True``).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import sys
import traceback
import urllib.parse
from dataclasses import dataclass, field
from typing import (
    Any,
    AsyncIterator,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)

#: Request bodies larger than this are rejected with 413.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Seconds allowed for a client to deliver its request head + body.
REQUEST_TIMEOUT_S = 30.0


class HttpError(Exception):
    """An error with an HTTP status; rendered as a JSON error body."""

    def __init__(self, status: int, message: str, **extra: Any) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.extra = extra


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    path_params: Dict[str, str] = field(default_factory=dict)

    def json(self) -> Any:
        """Parse the body as JSON; 400 on syntax errors or non-objects."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            doc = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(doc, dict):
            raise HttpError(400, "request body must be a JSON object")
        return doc


@dataclass
class Response:
    """A complete (non-streaming) HTTP response."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)


@dataclass
class StreamResponse:
    """A response whose body is produced incrementally.

    ``chunks`` yields raw bytes; each chunk is flushed to the socket as
    it is produced, and the connection closes when the iterator ends.
    """

    chunks: AsyncIterator[bytes]
    status: int = 200
    content_type: str = "text/event-stream"
    headers: Dict[str, str] = field(default_factory=dict)


def json_response(doc: Any, status: int = 200) -> Response:
    body = json.dumps(doc, sort_keys=True).encode("utf-8")
    return Response(status=status, body=body)


def text_response(text: str, status: int = 200) -> Response:
    return Response(
        status=status,
        body=text.encode("utf-8"),
        content_type="text/plain; charset=utf-8",
    )


Handler = Callable[[Request], Awaitable[Any]]


class Router:
    """Method + path-pattern dispatch with ``{param}`` captures."""

    def __init__(self) -> None:
        # (method, segment tuple, handler); "{name}" segments capture.
        self._routes: List[Tuple[str, Tuple[str, ...], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        segments = tuple(s for s in pattern.strip("/").split("/") if s)
        self._routes.append((method.upper(), segments, handler))

    def get(self, pattern: str, handler: Handler) -> None:
        self.add("GET", pattern, handler)

    def post(self, pattern: str, handler: Handler) -> None:
        self.add("POST", pattern, handler)

    def match(self, method: str, path: str) -> Tuple[Handler, Dict[str, str]]:
        """Resolve a request; raises 404/405 :class:`HttpError` on miss."""
        segments = tuple(s for s in path.strip("/").split("/") if s)
        path_matched = False
        for route_method, pattern, handler in self._routes:
            params = _match_segments(pattern, segments)
            if params is None:
                continue
            path_matched = True
            if route_method == method.upper():
                return handler, params
        if path_matched:
            raise HttpError(405, f"method {method} not allowed for {path}")
        raise HttpError(404, f"no route for {path}")


def _match_segments(
    pattern: Tuple[str, ...], segments: Tuple[str, ...]
) -> Optional[Dict[str, str]]:
    if len(pattern) != len(segments):
        return None
    params: Dict[str, str] = {}
    for want, got in zip(pattern, segments):
        if want.startswith("{") and want.endswith("}"):
            params[want[1:-1]] = got
        elif want != got:
            return None
    return params


class HttpServer:
    """One ``asyncio.start_server`` listener dispatching into a router."""

    def __init__(
        self,
        router: Router,
        host: str = "127.0.0.1",
        port: int = 0,
        debug: bool = False,
    ) -> None:
        self.router = router
        self.host = host
        self.port = port
        self.debug = debug
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        # With port 0 the OS picks; record the bound port for clients.
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, grace_s: float = 2.0) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._conn_tasks:
            _done, pending = await asyncio.wait(
                list(self._conn_tasks), timeout=grace_s
            )
            for task in pending:
                task.cancel()

    # -- connection handling ----------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._serve_one(reader, writer)
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
        ):
            pass  # client went away / server shutdown — nothing to answer
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(
                self._read_request(reader), timeout=REQUEST_TIMEOUT_S
            )
        except asyncio.TimeoutError:
            await self._write_response(
                writer, json_response({"error": "request timed out"}, 408)
            )
            return
        except HttpError as exc:
            await self._write_response(writer, _error_response(exc))
            return
        if request is None:
            return  # connection opened and closed without a request

        try:
            handler, params = self.router.match(request.method, request.path)
            request.path_params = params
            result = await handler(request)
        except HttpError as exc:
            result = _error_response(exc)
        except Exception as exc:  # noqa: BLE001 — a handler bug is a 500
            if self.debug:
                traceback.print_exc(file=sys.stderr)
            result = json_response(
                {"error": "internal server error",
                 "exception": type(exc).__name__},
                500,
            )

        if isinstance(result, StreamResponse):
            await self._write_stream(writer, result)
        elif isinstance(result, Response):
            await self._write_response(writer, result)
        else:  # handler returned a bare JSON-able document
            await self._write_response(writer, json_response(result))

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Request]:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            raise HttpError(400, "malformed request line") from None
        raw_path, _, raw_query = target.partition("?")
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise HttpError(400, "invalid Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return Request(
            method=method.upper(),
            path=urllib.parse.unquote(raw_path),
            query=dict(urllib.parse.parse_qsl(raw_query)),
            headers=headers,
            body=body,
        )

    @staticmethod
    def _head(status: int, headers: Dict[str, str]) -> bytes:
        reason = http.client.responses.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}"]
        lines += [f"{name}: {value}" for name, value in headers.items()]
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response
    ) -> None:
        headers = {
            "Content-Type": response.content_type,
            "Content-Length": str(len(response.body)),
            "Connection": "close",
        }
        headers.update(response.headers)
        writer.write(self._head(response.status, headers) + response.body)
        await writer.drain()

    async def _write_stream(
        self, writer: asyncio.StreamWriter, response: StreamResponse
    ) -> None:
        headers = {
            "Content-Type": response.content_type,
            "Cache-Control": "no-store",
            "Connection": "close",
        }
        headers.update(response.headers)
        writer.write(self._head(response.status, headers))
        await writer.drain()
        try:
            async for chunk in response.chunks:
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # client hung up mid-stream; generator cleanup via GC
        finally:
            close = getattr(response.chunks, "aclose", None)
            if close is not None:
                try:
                    await close()
                except Exception:  # noqa: BLE001 — best-effort cleanup
                    pass


def _error_response(exc: HttpError) -> Response:
    doc = {"error": exc.message}
    doc.update(exc.extra)
    return json_response(doc, exc.status)
