"""Multi-tenant fair queueing: weighted stride scheduling + priority aging.

This layer sits between the HTTP submission endpoints and the worker
fleet. Each tenant owns a FIFO queue; the dispatcher asks :meth:`FairQueue.pop`
which tenant goes next. Selection is **stride scheduling**: every tenant
carries a virtual time that advances by ``1 / weight`` per dispatched
job, and the runnable tenant with the smallest virtual time wins — over a
window, tenants therefore receive service proportional to their weights
regardless of how fast they submit.

Two guards keep one tenant from starving or flooding the pool:

- **Priority aging** — a queued head item earns ``aging_rate`` virtual
  seconds of credit per wall second it waits, so even a weight-0.1 tenant
  behind a firehose tenant is served eventually (its effective virtual
  time sinks below the flood's).
- **Quotas** — ``max_queued`` bounds a tenant's backlog (submission past
  it raises :class:`QuotaExceeded` → HTTP 429) and ``max_running``
  optionally caps its concurrently executing jobs.

The queue is plain synchronous code driven from the service's event loop
(single-threaded access); it takes an injectable ``clock`` so tests can
freeze aging.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Tuple


class QuotaExceeded(Exception):
    """A tenant tried to queue past its ``max_queued`` quota."""

    def __init__(self, tenant: str, limit: int) -> None:
        super().__init__(
            f"tenant {tenant!r} has {limit} queued job(s), quota reached"
        )
        self.tenant = tenant
        self.limit = limit


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant scheduling parameters."""

    #: Relative service share (stride = 1/weight).
    weight: float = 1.0
    #: Maximum queued (not yet running) jobs; submissions past it → 429.
    max_queued: int = 64
    #: Optional cap on concurrently running jobs for this tenant.
    max_running: Optional[int] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if self.max_queued < 1:
            raise ValueError("max_queued must be >= 1")


@dataclass
class _TenantState:
    policy: TenantPolicy
    queue: Deque[Tuple[Any, float]] = field(default_factory=deque)
    #: Stride-scheduling virtual time (advances 1/weight per dispatch).
    vtime: float = 0.0
    submitted: int = 0
    dispatched: int = 0
    rejected: int = 0


class FairQueue:
    """Weighted multi-tenant queue with aging and quotas."""

    def __init__(
        self,
        policies: Optional[Mapping[str, TenantPolicy]] = None,
        default_policy: Optional[TenantPolicy] = None,
        aging_rate: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.default_policy = default_policy or TenantPolicy()
        self.aging_rate = aging_rate
        self.clock = clock
        self._tenants: Dict[str, _TenantState] = {}
        for name, policy in (policies or {}).items():
            self._tenants[name] = _TenantState(policy=policy)
        #: Smallest vtime ever dispatched; newly active tenants join here
        #: so an idle tenant cannot bank unbounded credit.
        self._global_vtime = 0.0

    # -- tenant bookkeeping ------------------------------------------------

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(policy=self.default_policy)
            self._tenants[tenant] = state
        return state

    def set_policy(self, tenant: str, policy: TenantPolicy) -> None:
        self._state(tenant).policy = policy

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self._state(tenant).policy

    def queued_count(self, tenant: str) -> int:
        state = self._tenants.get(tenant)
        return len(state.queue) if state else 0

    def oldest_wait_s(self, tenant: str) -> float:
        """Seconds the tenant's queue head has been waiting (0 if empty).

        The ``/metrics`` wait-age gauge: a rising value under steady
        dispatch means the tenant is being out-weighted.
        """
        state = self._tenants.get(tenant)
        if state is None or not state.queue:
            return 0.0
        _, enqueued = state.queue[0]
        return max(0.0, self.clock() - enqueued)

    def capacity_for(self, tenant: str) -> int:
        """Remaining queue slots before the tenant's quota trips."""
        state = self._state(tenant)
        return max(0, state.policy.max_queued - len(state.queue))

    def __len__(self) -> int:
        return sum(len(s.queue) for s in self._tenants.values())

    # -- submit / dispatch -------------------------------------------------

    def submit(self, tenant: str, item: Any) -> int:
        """Enqueue ``item`` for ``tenant``; returns its queue position.

        Raises :class:`QuotaExceeded` when the tenant's backlog is full
        (the item is **not** queued).
        """
        state = self._state(tenant)
        if len(state.queue) >= state.policy.max_queued:
            state.rejected += 1
            raise QuotaExceeded(tenant, state.policy.max_queued)
        if not state.queue:
            # Re-activating tenant: join at the current virtual time so
            # idleness doesn't accumulate into a service burst.
            state.vtime = max(state.vtime, self._global_vtime)
        state.queue.append((item, self.clock()))
        state.submitted += 1
        return len(state.queue) - 1

    def _effective_vtime(self, state: _TenantState, now: float) -> float:
        _, enqueued = state.queue[0]
        aged = self.aging_rate * max(0.0, now - enqueued)
        return state.vtime - aged

    def pop(
        self, running_by_tenant: Optional[Mapping[str, int]] = None
    ) -> Optional[Tuple[str, Any]]:
        """Dispatch the next item, or ``None`` when nothing is runnable.

        ``running_by_tenant`` (tenant → currently running jobs) enforces
        per-tenant ``max_running`` caps.
        """
        running = running_by_tenant or {}
        now = self.clock()
        best: Optional[Tuple[float, str]] = None
        for name in sorted(self._tenants):  # sorted → deterministic ties
            state = self._tenants[name]
            if not state.queue:
                continue
            cap = state.policy.max_running
            if cap is not None and running.get(name, 0) >= cap:
                continue
            score = self._effective_vtime(state, now)
            if best is None or score < best[0]:
                best = (score, name)
        if best is None:
            return None
        name = best[1]
        state = self._tenants[name]
        item, _ = state.queue.popleft()
        # The winner's pre-dispatch vtime is the current service front:
        # tenants re-activating later join there, not behind everyone's
        # accumulated totals.
        self._global_vtime = max(self._global_vtime, state.vtime)
        state.vtime += 1.0 / state.policy.weight
        state.dispatched += 1
        return name, item

    def drain(self) -> List[Tuple[str, Any]]:
        """Remove and return every queued item (shutdown path)."""
        drained: List[Tuple[str, Any]] = []
        for name in sorted(self._tenants):
            state = self._tenants[name]
            while state.queue:
                item, _ = state.queue.popleft()
                drained.append((name, item))
        return drained

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-tenant counters for the admin endpoint."""
        out: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self._tenants):
            state = self._tenants[name]
            out[name] = {
                "weight": state.policy.weight,
                "max_queued": state.policy.max_queued,
                "max_running": state.policy.max_running,
                "queued": len(state.queue),
                "submitted": state.submitted,
                "dispatched": state.dispatched,
                "rejected": state.rejected,
            }
        return out
