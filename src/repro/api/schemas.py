"""Request validation: JSON bodies → :class:`~repro.service.jobs.JobSpec`.

Every submission endpoint validates its body here before anything touches
the job subsystem, so malformed requests are rejected with a field-level
message and a well-formed request maps onto exactly the same spec — and
therefore the same content key — the CLI would produce. That key equality
is what makes HTTP submissions dedupe against results cached by ``repro
batch`` and vice versa.

Unknown fields are rejected (a typo like ``"polcy"`` must not silently
run a default simulation), and every enum field is checked against the
live registries (workloads, datasets, policies, cooling solutions).

Servers started with ``allow_kinds`` (tests, the CI smoke) additionally
accept ``{"kind": ..., "params": {...}}`` bodies that pass through to a
registered job handler — the production default accepts simulations only.
"""

from __future__ import annotations

import re
from typing import Any, Dict, FrozenSet, List, Mapping, Optional

from repro.service.handlers import gang_sweep_spec, simulation_spec
from repro.service.jobs import JobSpec

#: Upper bound on jobs a single ``POST /sweeps`` may expand to.
MAX_SWEEP_JOBS = 256

#: Tenant identifiers: short, filesystem/log-safe tokens.
TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

DEFAULT_TENANT = "public"

_RUN_FIELDS = {
    "workload", "dataset", "policy", "cooling", "seed", "workload_scale",
    "engine", "trace", "scenario", "scenario_seed", "timeout_s", "tenant",
}
_SWEEP_FIELDS = {
    "workloads", "datasets", "policies", "cooling", "seed",
    "workload_scale", "engine", "trace", "scenario", "scenario_seed",
    "timeout_s", "tenant",
}
_CUSTOM_FIELDS = {"kind", "name", "params", "seed", "timeout_s", "tenant"}
_CUSTOM_SWEEP_FIELDS = {"kind", "items", "tenant"}

_ENGINES = ("macro", "stepped", "gang")


class ValidationError(ValueError):
    """A request body that cannot become a job spec."""

    def __init__(self, message: str, field: Optional[str] = None) -> None:
        super().__init__(message)
        self.message = message
        self.field = field


def _reject_unknown(body: Mapping[str, Any], allowed: FrozenSet[str]) -> None:
    unknown = sorted(set(body) - allowed)
    if unknown:
        raise ValidationError(
            f"unknown field(s): {', '.join(unknown)}", field=unknown[0]
        )


def _choice(body: Mapping[str, Any], field: str, options, default: str) -> str:
    value = body.get(field, default)
    if not isinstance(value, str) or value not in options:
        raise ValidationError(
            f"{field} must be one of {sorted(options)}, got {value!r}",
            field=field,
        )
    return value


def _seed(body: Mapping[str, Any]) -> int:
    seed = body.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int) or not (
        0 <= seed < 2**31
    ):
        raise ValidationError(
            f"seed must be an integer in [0, 2^31), got {seed!r}", field="seed"
        )
    return seed


def _workload_scale(body: Mapping[str, Any]) -> float:
    scale = body.get("workload_scale", 1.0)
    if isinstance(scale, bool) or not isinstance(scale, (int, float)) or not (
        0.0 < scale <= 1.0
    ):
        raise ValidationError(
            f"workload_scale must be in (0, 1], got {scale!r}",
            field="workload_scale",
        )
    return float(scale)


def _trace(body: Mapping[str, Any]) -> bool:
    trace = body.get("trace", False)
    if not isinstance(trace, bool):
        raise ValidationError(
            f"trace must be a boolean, got {trace!r}", field="trace"
        )
    return trace


def _timeout(body: Mapping[str, Any]) -> Optional[float]:
    timeout = body.get("timeout_s")
    if timeout is None:
        return None
    if isinstance(timeout, bool) or not isinstance(timeout, (int, float)) or (
        timeout <= 0
    ):
        raise ValidationError(
            f"timeout_s must be a positive number, got {timeout!r}",
            field="timeout_s",
        )
    return float(timeout)


def validate_since(value: Any) -> int:
    """Event-stream resume cursor: ``Last-Event-ID`` header or ``?since=``.

    Both carry the seq of the last event the follower *saw*; replay
    resumes at ``seq + 1``. ``None``/empty → 0 (full replay).
    """
    if value is None or value == "":
        return 0
    try:
        last_seen = int(str(value).strip())
    except ValueError:
        raise ValidationError(
            f"since must be a non-negative integer, got {value!r}",
            field="since",
        ) from None
    if last_seen < 0:
        raise ValidationError(
            f"since must be a non-negative integer, got {value!r}",
            field="since",
        )
    return last_seen + 1


def validate_tenant(value: Any) -> str:
    """Normalize a tenant identifier (``None`` → the public tenant)."""
    if value is None or value == "":
        return DEFAULT_TENANT
    if not isinstance(value, str) or not TENANT_RE.match(value):
        raise ValidationError(
            f"tenant must match {TENANT_RE.pattern}, got {value!r}",
            field="tenant",
        )
    return value


def _registries():
    from repro.core.policies import POLICY_NAMES
    from repro.graph.datasets import list_datasets
    from repro.thermal.cooling import COOLING_SOLUTIONS
    from repro.workloads.registry import list_workloads

    return (
        list_workloads(include_extras=True),
        list_datasets(),
        list(POLICY_NAMES),
        list(COOLING_SOLUTIONS),
    )


def _policy(value: Any, policies) -> str:
    """Policy names: the registry enums plus the ``static-<fraction>``
    open-loop family (``static-0.25``-style), which no fixed enum can
    enumerate."""
    from repro.core.policies import is_policy_name

    if not isinstance(value, str) or not is_policy_name(value):
        raise ValidationError(
            f"policy must be one of {sorted(policies)} or "
            f"static-<fraction> (e.g. static-0.25), got {value!r}",
            field="policy",
        )
    return value


def _scenario(body: Mapping[str, Any]) -> tuple:
    """Validate the optional fault-injection fields.

    Returns ``(scenario_name_or_None, scenario_seed)``; a seed without a
    scenario is rejected (it would silently not select anything).
    """
    from repro.scenarios import SCENARIO_NAMES, is_scenario_name

    name = body.get("scenario")
    seed = body.get("scenario_seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int) or not (
        0 <= seed < 2**31
    ):
        raise ValidationError(
            f"scenario_seed must be an integer in [0, 2^31), got {seed!r}",
            field="scenario_seed",
        )
    if name is None:
        if seed != 0:
            raise ValidationError(
                "scenario_seed requires a scenario", field="scenario_seed"
            )
        return None, 0
    if not isinstance(name, str) or not is_scenario_name(name):
        raise ValidationError(
            f"scenario must be one of {sorted(SCENARIO_NAMES)}, got {name!r}",
            field="scenario",
        )
    return name, seed


def _custom_spec(
    body: Mapping[str, Any], allow_kinds: FrozenSet[str]
) -> JobSpec:
    _reject_unknown(body, frozenset(_CUSTOM_FIELDS))
    kind = body["kind"]
    params = body.get("params", {})
    if not isinstance(params, dict):
        raise ValidationError("params must be an object", field="params")
    name = body.get("name", kind)
    if not isinstance(name, str) or not name:
        raise ValidationError("name must be a non-empty string", field="name")
    return JobSpec(
        kind=kind,
        name=name,
        params=params,
        seed=_seed(body),
        timeout_s=_timeout(body),
        tags=("api", kind),
    )


def validate_run_request(
    body: Any, allow_kinds: FrozenSet[str] = frozenset()
) -> JobSpec:
    """``POST /runs`` body → one job spec."""
    if not isinstance(body, Mapping):
        raise ValidationError("request body must be a JSON object")
    kind = body.get("kind", "simulation")
    if not isinstance(kind, str):
        raise ValidationError(f"kind must be a string, got {kind!r}",
                              field="kind")
    if kind != "simulation":
        if kind not in allow_kinds:
            raise ValidationError(
                f"job kind {kind!r} is not accepted by this server",
                field="kind",
            )
        return _custom_spec(body, allow_kinds)
    workloads, datasets, policies, coolings = _registries()
    fields = _RUN_FIELDS | {"kind"}
    _reject_unknown(body, frozenset(fields))
    if "workload" not in body:
        raise ValidationError("workload is required", field="workload")
    scenario, scenario_seed = _scenario(body)
    return simulation_spec(
        workload=_choice(body, "workload", workloads, ""),
        dataset=_choice(body, "dataset", datasets, "ldbc"),
        policy=_policy(body.get("policy", "coolpim-hw"), policies),
        cooling=_choice(body, "cooling", coolings, "commodity"),
        seed=_seed(body),
        workload_scale=_workload_scale(body),
        engine=_choice(body, "engine", _ENGINES, "macro"),
        trace=_trace(body),
        scenario=scenario,
        scenario_seed=scenario_seed,
        timeout_s=_timeout(body),
    )


def validate_sweep_request(
    body: Any,
    allow_kinds: FrozenSet[str] = frozenset(),
    max_jobs: int = MAX_SWEEP_JOBS,
) -> List[JobSpec]:
    """``POST /sweeps`` body → the cross-product list of job specs."""
    if not isinstance(body, Mapping):
        raise ValidationError("request body must be a JSON object")
    kind = body.get("kind", "simulation")
    if not isinstance(kind, str):
        raise ValidationError(f"kind must be a string, got {kind!r}",
                              field="kind")
    if kind != "simulation":
        if kind not in allow_kinds:
            raise ValidationError(
                f"job kind {kind!r} is not accepted by this server",
                field="kind",
            )
        _reject_unknown(body, frozenset(_CUSTOM_SWEEP_FIELDS))
        items = body.get("items")
        if not isinstance(items, list) or not items:
            raise ValidationError(
                "items must be a non-empty list", field="items"
            )
        if len(items) > max_jobs:
            raise ValidationError(
                f"sweep expands to {len(items)} jobs (limit {max_jobs})",
                field="items",
            )
        return [
            _custom_spec(dict(item, kind=kind), allow_kinds)
            if isinstance(item, Mapping)
            else _bad_item(i)
            for i, item in enumerate(items)
        ]

    workloads, datasets, policies, coolings = _registries()
    fields = _SWEEP_FIELDS | {"kind"}
    _reject_unknown(body, frozenset(fields))

    def _listing(field: str, options, default: List[str]) -> List[str]:
        values = body.get(field, default)
        if not isinstance(values, list) or not values:
            raise ValidationError(
                f"{field} must be a non-empty list", field=field
            )
        for v in values:
            if not isinstance(v, str) or v not in options:
                raise ValidationError(
                    f"{field} entry {v!r} not in {sorted(options)}",
                    field=field,
                )
        if len(set(values)) != len(values):
            raise ValidationError(
                f"{field} contains duplicates", field=field
            )
        return values

    if "workloads" not in body:
        raise ValidationError("workloads is required", field="workloads")
    wl = _listing("workloads", workloads, [])
    ds = _listing("datasets", datasets, ["ldbc"])
    pol = body.get("policies", list(policies))
    if not isinstance(pol, list) or not pol:
        raise ValidationError("policies must be a non-empty list",
                              field="policies")
    pol = [_policy(p, policies) for p in pol]
    if len(set(pol)) != len(pol):
        raise ValidationError("policies contains duplicates", field="policies")
    cooling = _choice(body, "cooling", coolings, "commodity")
    seed = _seed(body)
    scale = _workload_scale(body)
    engine = _choice(body, "engine", _ENGINES, "macro")
    trace = _trace(body)
    scenario, scenario_seed = _scenario(body)
    timeout_s = _timeout(body)

    total = len(wl) * len(ds) * len(pol)
    if total > max_jobs:
        raise ValidationError(
            f"sweep expands to {total} jobs (limit {max_jobs})"
        )
    if engine == "gang" and scenario is None and len(pol) > 1:
        # Gang-eligible shape: same workload+dataset+scale per gang,
        # varying only the policy axis (which carries the static-<f>
        # offload fractions), no fault scenario. One gang job per
        # (workload, dataset) cell; member results still land in the
        # store under their per-run simulation keys.
        return [
            gang_sweep_spec(
                workload=w, policies=pol, dataset=d, cooling=cooling,
                seed=seed, workload_scale=scale, trace=trace,
                timeout_s=timeout_s,
            )
            for w in wl
            for d in ds
        ]
    return [
        simulation_spec(
            workload=w, dataset=d, policy=p, cooling=cooling, seed=seed,
            workload_scale=scale, engine=engine, trace=trace,
            scenario=scenario, scenario_seed=scenario_seed,
            timeout_s=timeout_s,
        )
        for w in wl
        for d in ds
        for p in pol
    ]


def _bad_item(index: int) -> JobSpec:
    raise ValidationError(f"items[{index}] must be an object", field="items")
