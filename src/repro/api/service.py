"""Async run registry: submissions, dedupe, fairness dispatch, events.

:class:`ApiService` is the stateful core the HTTP handlers talk to. It
owns:

- the **run registry** — every submission becomes a :class:`RunRecord`
  with a short id, a tenant, the underlying job spec, and an ordered
  event log;
- **dedupe** — a submission whose content key is already in the
  :class:`~repro.service.store.ResultStore` completes immediately from
  cache; one whose key is currently executing attaches to the in-flight
  leader (API-level single-flight) and shares its outcome;
- the **fairness layer** — leaders enter the
  :class:`~repro.api.fairness.FairQueue`; the dispatcher coroutine pulls
  tenant-fairly whenever a worker slot frees up;
- **execution** — each dispatched run executes on a thread of the worker
  pool via a :class:`~repro.service.scheduler.JobScheduler` sharing the
  service's store/journal (and the process-wide scheduler single-flight
  group, which protects CLI/API races too);
- **event streams** — every state transition appends a seq-numbered
  event; ``GET /runs/{id}/events`` replays the log and then follows live
  appends, so a subscriber always sees ``queued → started → completed``
  in order no matter when it connects.

All mutation happens on the event loop; executor threads re-enter via
``call_soon_threadsafe``. The wakeup primitive is a rotating
``asyncio.Event``: waiters capture the current flag *before* inspecting
state, emitters set-and-replace it, so wakeups are never lost.
"""

from __future__ import annotations

import asyncio
import time
import uuid
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.fairness import FairQueue
from repro.service.jobs import JobFailure, JobResult, JobSpec
from repro.service.journal import JobJournal
from repro.service.scheduler import JobScheduler
from repro.service.store import ResultStore
from repro.telemetry.live import RunTelemetrySink, run_telemetry
from repro.telemetry.registry import get_registry

#: Run states; the last three are terminal.
QUEUED, RUNNING = "queued", "running"
COMPLETED, FAILED, DRAINED = "completed", "failed", "drained"
TERMINAL_STATES = frozenset({COMPLETED, FAILED, DRAINED})


class ServiceClosed(Exception):
    """Submission arrived while the service is shutting down."""


class UnknownRun(KeyError):
    """No run with the requested id."""


@dataclass
class RunRecord:
    """One submission's lifecycle, event log, and outcome."""

    id: str
    tenant: str
    spec: JobSpec
    status: str = QUEUED
    submitted_unix: float = 0.0
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    #: Served straight from the result store (no execution anywhere).
    cached: bool = False
    #: Run id of the in-flight leader this submission attached to.
    coalesced_into: Optional[str] = None
    sweep_id: Optional[str] = None
    payload: Optional[Dict[str, Any]] = None
    elapsed_s: Optional[float] = None
    error: Optional[str] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: In-flight telemetry samples (bounded copy of the ``telemetry``
    #: events, kept separately so ``GET /telemetry/runs/{id}`` can serve
    #: the series without scanning the event log).
    telemetry: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def key(self) -> str:
        return self.spec.key

    def to_dict(self, include_payload: bool = True) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "run_id": self.id,
            "tenant": self.tenant,
            "key": self.key,
            "name": self.spec.name,
            "kind": self.spec.kind,
            "status": self.status,
            "cached": self.cached,
            "coalesced_into": self.coalesced_into,
            "sweep_id": self.sweep_id,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "elapsed_s": self.elapsed_s,
            "error": self.error,
        }
        if include_payload and self.payload is not None:
            doc["result"] = _strip_timeline(self.payload)
        return doc


def _strip_timeline(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Payload copy without the bulky sampled timeline (that's what the
    trace artifact endpoint is for)."""
    out = dict(payload)
    result = out.get("result")
    if isinstance(result, dict) and "timeline" in result:
        result = dict(result)
        result.pop("timeline")
        out["result"] = result
    return out


class ApiService:
    """The simulation service behind the HTTP layer."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        journal: Optional[JobJournal] = None,
        queue: Optional[FairQueue] = None,
        workers: int = 2,
        pool: bool = False,
        use_cache: bool = True,
        allow_kinds: Sequence[str] = (),
        max_runs: int = 10_000,
        ready_backlog: Optional[int] = None,
        telemetry_max_samples: int = 64,
    ) -> None:
        self.store = store
        self.journal = journal
        # Not `queue or FairQueue()`: an empty FairQueue has len() == 0
        # and would be discarded as falsy.
        self.queue = queue if queue is not None else FairQueue()
        self.workers = max(1, workers)
        #: ``True`` → each job runs on a process pool inside its executor
        #: thread (full parallelism for real sweeps); ``False`` → the job
        #: executes serially in the thread (cheap, right for tests/CI).
        self.pool = pool
        self.use_cache = use_cache
        self.allow_kinds = frozenset(allow_kinds)
        self.max_runs = max_runs
        #: Queue depth beyond which ``/readyz`` reports saturated (503).
        self.ready_backlog = (
            ready_backlog
            if ready_backlog is not None
            else max(16, 8 * self.workers)
        )
        #: Per-run live-telemetry budget (``telemetry`` event cap).
        self.telemetry_max_samples = telemetry_max_samples

        self.runs: Dict[str, RunRecord] = {}
        self.sweeps: Dict[str, Dict[str, Any]] = {}
        self.counters: Counter = Counter()
        self.started_unix: Optional[float] = None

        self._leaders: Dict[str, str] = {}  # spec key → leader run id
        self._followers: Dict[str, List[str]] = {}
        self._running = 0
        self._running_by_tenant: Counter = Counter()
        self._sse_subscribers = 0
        self._closing = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._flag: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None

    # -- lifecycle ---------------------------------------------------------

    async def startup(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._flag = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-api"
        )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self.started_unix = time.time()
        self._journal("api_start", workers=self.workers, pool=self.pool)

    async def shutdown(self, drain_timeout_s: float = 10.0) -> None:
        """Stop accepting, drain the queue back to the journal, wait for
        running jobs (bounded), then release the worker pool."""
        self._closing = True
        self._notify()
        if self._dispatcher is not None:
            await self._dispatcher
        # Queued-but-unstarted runs go back to the journal with their full
        # spec: content-addressing makes resubmission idempotent, so an
        # operator (or a restart script) can replay `api_drained` events.
        for _tenant, rid in self.queue.drain():
            rec = self.runs[rid]
            self._leaders.pop(rec.key, None)
            rec.status = DRAINED
            rec.finished_unix = time.time()
            rec.error = "server shut down before execution"
            self.counters["drained"] += 1
            self._metric_run_done(DRAINED, None)
            self._journal(
                "api_drained", run_id=rid, tenant=rec.tenant, key=rec.key,
                spec=rec.spec.to_dict(),
            )
            self._emit(rec, DRAINED, status=DRAINED)
            self._settle_followers(rec)
        deadline = time.monotonic() + drain_timeout_s
        while self._running and time.monotonic() < deadline:
            await self._wait_notify(timeout=0.1)
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        self._journal(
            "api_stop",
            completed=self.counters["completed"],
            failed=self.counters["failed"],
            drained=self.counters["drained"],
            still_running=self._running,
        )

    # -- notification plumbing --------------------------------------------

    def _notify(self) -> None:
        """Wake every waiter (event subscribers, dispatcher)."""
        if self._flag is not None:
            flag, self._flag = self._flag, asyncio.Event()
            flag.set()

    async def _wait_notify(self, timeout: Optional[float] = None) -> None:
        """Wait for the *next* notification after this call.

        Callers must capture ``self._flag`` semantics via this method
        only after checking their predicate — see the event generator.
        """
        assert self._flag is not None
        flag = self._flag
        if timeout is None:
            await flag.wait()
        else:
            try:
                await asyncio.wait_for(flag.wait(), timeout)
            except asyncio.TimeoutError:
                pass

    def _journal(self, event: str, **fields: Any) -> None:
        if self.journal is not None:
            self.journal.append(event, **fields)

    def _emit(self, rec: RunRecord, event: str, **fields: Any) -> None:
        record = {
            "seq": len(rec.events),
            "event": event,
            "run_id": rec.id,
            "ts": time.time(),
        }
        record.update(fields)
        rec.events.append(record)
        self._notify()

    def _emit_telemetry(self, rec: RunRecord, sample: Dict[str, Any]) -> None:
        """Append one in-flight telemetry sample (event-loop thread).

        Samples arriving after the run went terminal (the executor thread
        races the ``_on_done`` callback) are dropped: followers must never
        see events after the terminal one.
        """
        if rec.status in TERMINAL_STATES:
            return
        rec.telemetry.append(sample)
        self._emit(rec, "telemetry", **sample)

    # -- process-wide telemetry (GET /metrics) -----------------------------

    def _metric_count(self, status: str, tenant: str) -> None:
        """Dual-write one submission outcome into the default registry."""
        get_registry().counter(
            "repro_api_requests_total",
            help="API submissions by tenant and outcome.",
            labelnames=("tenant", "status"),
        ).labels(tenant=tenant, status=status).inc()

    def _metric_run_done(self, status: str, elapsed_s: Optional[float]) -> None:
        reg = get_registry()
        reg.counter(
            "repro_api_runs_total",
            help="Terminal run outcomes.",
            labelnames=("status",),
        ).labels(status=status).inc()
        if elapsed_s is not None:
            reg.histogram(
                "repro_api_run_seconds",
                help="Run wall time from execution start to terminal.",
            ).observe(elapsed_s)

    # -- submission --------------------------------------------------------

    def submit(
        self,
        spec: JobSpec,
        tenant: str,
        sweep_id: Optional[str] = None,
    ) -> RunRecord:
        """Register one submission (event-loop thread only).

        Raises :class:`ServiceClosed` during shutdown and
        :class:`~repro.api.fairness.QuotaExceeded` when the tenant's
        queue quota is full (no record is kept in that case).
        """
        if self._closing:
            raise ServiceClosed("service is shutting down")
        if len(self.runs) >= self.max_runs:
            self._evict_finished()
        rid = uuid.uuid4().hex[:12]
        rec = RunRecord(
            id=rid,
            tenant=tenant,
            spec=spec,
            submitted_unix=time.time(),
            sweep_id=sweep_id,
        )

        # 1. Content-addressed dedupe: a cached result completes the run
        #    without touching the queue or the workers.
        hit = (
            self.store.get(spec)
            if (self.store is not None and self.use_cache)
            else None
        )
        if hit is not None:
            self.runs[rid] = rec
            self.counters["submitted"] += 1
            self.counters["cache_hits"] += 1
            self._metric_count("cache_hit", tenant)
            self._journal(
                "api_cache_hit", run_id=rid, tenant=tenant, key=spec.key
            )
            self._emit(rec, QUEUED, position=0, cached=True)
            self._finish_completed(
                rec, hit.payload, hit.elapsed_s, cached=True
            )
            return rec

        # 2. Single-flight: attach to an in-flight leader for the same key.
        leader = self._leaders.get(spec.key)
        if leader is not None:
            self.runs[rid] = rec
            rec.coalesced_into = leader
            self._followers.setdefault(spec.key, []).append(rid)
            self.counters["submitted"] += 1
            self.counters["coalesced"] += 1
            self._metric_count("coalesced", tenant)
            self._journal(
                "api_coalesced", run_id=rid, tenant=tenant, key=spec.key,
                leader=leader,
            )
            self._emit(rec, QUEUED, coalesced_into=leader)
            return rec

        # 3. Fresh work: enter the fair queue (may raise QuotaExceeded —
        #    before the record is registered, so a rejected submission
        #    leaves no trace beyond the counter).
        try:
            position = self.queue.submit(tenant, rid)
        except Exception:
            self.counters["rejected"] += 1
            self._metric_count("rejected", tenant)
            self._journal(
                "api_rejected", tenant=tenant, key=spec.key, name=spec.name
            )
            raise
        self.runs[rid] = rec
        self.counters["submitted"] += 1
        self._metric_count("accepted", tenant)
        self._leaders[spec.key] = rid
        self._journal(
            "api_submitted", run_id=rid, tenant=tenant, key=spec.key,
            name=spec.name,
        )
        self._emit(rec, QUEUED, position=position)
        self._notify()
        return rec

    def submit_sweep(
        self, specs: Sequence[JobSpec], tenant: str
    ) -> Tuple[str, List[RunRecord]]:
        """Submit a batch under one sweep id.

        Quota is pre-checked for the whole batch (conservatively assuming
        every spec is fresh work), so a sweep is all-or-nothing.
        """
        from repro.api.fairness import QuotaExceeded

        if len(specs) > self.queue.capacity_for(tenant):
            self.counters["rejected"] += 1
            raise QuotaExceeded(
                tenant, self.queue.policy_for(tenant).max_queued
            )
        sweep_id = uuid.uuid4().hex[:12]
        records = [
            self.submit(spec, tenant, sweep_id=sweep_id) for spec in specs
        ]
        self.sweeps[sweep_id] = {
            "sweep_id": sweep_id,
            "tenant": tenant,
            "submitted_unix": time.time(),
            "run_ids": [r.id for r in records],
        }
        self._journal(
            "api_sweep", sweep_id=sweep_id, tenant=tenant, jobs=len(records)
        )
        return sweep_id, records

    def _evict_finished(self) -> None:
        """Drop the oldest terminal runs to stay under ``max_runs``."""
        terminal = sorted(
            (r for r in self.runs.values() if r.status in TERMINAL_STATES),
            key=lambda r: r.finished_unix or 0.0,
        )
        excess = len(self.runs) - self.max_runs + 1
        for rec in terminal[:max(excess, 0)]:
            del self.runs[rec.id]

    # -- lookup ------------------------------------------------------------

    def get_run(self, run_id: str) -> RunRecord:
        try:
            return self.runs[run_id]
        except KeyError:
            raise UnknownRun(run_id) from None

    def get_sweep(self, sweep_id: str) -> Dict[str, Any]:
        try:
            sweep = self.sweeps[sweep_id]
        except KeyError:
            raise UnknownRun(sweep_id) from None
        runs = [self.runs[rid] for rid in sweep["run_ids"] if rid in self.runs]
        by_status = Counter(r.status for r in runs)
        return dict(
            sweep,
            status=(
                COMPLETED
                if all(r.status in TERMINAL_STATES for r in runs)
                else RUNNING
            ),
            counts=dict(by_status),
            runs=[r.to_dict(include_payload=False) for r in runs],
        )

    # -- dispatch / execution ----------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._loop is not None
        while not self._closing:
            flag = self._flag
            while self._running < self.workers:
                popped = self.queue.pop(self._running_by_tenant)
                if popped is None:
                    break
                _tenant, rid = popped
                self._start_run(self.runs[rid])
            assert flag is not None
            await flag.wait()

    def _start_run(self, rec: RunRecord) -> None:
        assert self._loop is not None and self._executor is not None
        rec.status = RUNNING
        rec.started_unix = time.time()
        self._running += 1
        self._running_by_tenant[rec.tenant] += 1
        self._emit(rec, "started", tenant=rec.tenant)
        future = self._loop.run_in_executor(
            self._executor, self._execute, rec
        )
        future.add_done_callback(
            lambda f, rec=rec: self._on_done(rec, f)
        )

    def _execute(self, rec: RunRecord) -> Any:
        """Worker-thread body: run one spec through the job scheduler.

        In serial mode (the default) the handler executes on *this*
        thread, so a thread-local :class:`RunTelemetrySink` routes the
        engine's in-flight samples back onto the event loop as
        ``telemetry`` events. Pool mode forks the actual work into child
        processes — no live channel there; fleet metrics still arrive via
        the scheduler's delta pipe.
        """
        spec = rec.spec
        loop = self._loop
        scheduler = JobScheduler(
            store=self.store,
            journal=self.journal,
            serial=not self.pool,
            use_cache=self.use_cache,
        )

        def run_spec() -> Any:
            report = scheduler.run([spec])
            if spec.key in report.results:
                return report.results[spec.key]
            return report.failures[spec.key]

        if self.pool or loop is None:
            return run_spec()
        sink = RunTelemetrySink(
            emit=lambda sample: loop.call_soon_threadsafe(
                self._emit_telemetry, rec, sample
            ),
            max_samples=self.telemetry_max_samples,
        )
        with run_telemetry(sink):
            return run_spec()

    def _on_done(self, rec: RunRecord, future: Any) -> None:
        """Executor-future callback (runs on the loop)."""
        self._running -= 1
        self._running_by_tenant[rec.tenant] -= 1
        self._leaders.pop(rec.key, None)
        try:
            outcome = future.result()
        except Exception as exc:  # noqa: BLE001 — scheduler itself failed
            outcome = JobFailure(
                key=rec.key, name=rec.spec.name, reason="error",
                message=f"{type(exc).__name__}: {exc}", attempts=1,
            )
        if isinstance(outcome, JobResult):
            self.counters["executed"] += 1
            self._finish_completed(
                rec, outcome.payload, outcome.elapsed_s,
                cached=outcome.cached,
            )
        else:
            self._finish_failed(rec, outcome.reason, outcome.message)
        self._settle_followers(rec)
        self._notify()

    def _finish_completed(
        self,
        rec: RunRecord,
        payload: Dict[str, Any],
        elapsed_s: float,
        cached: bool,
        coalesced: bool = False,
    ) -> None:
        rec.status = COMPLETED
        rec.finished_unix = time.time()
        rec.payload = payload
        rec.elapsed_s = elapsed_s
        rec.cached = cached
        self.counters["completed"] += 1
        # Cached/coalesced completions never executed here — only real
        # executions feed the latency histogram.
        self._metric_run_done(
            COMPLETED, None if (cached or coalesced) else elapsed_s
        )
        self._journal(
            "api_completed", run_id=rec.id, tenant=rec.tenant, key=rec.key,
            cached=cached, coalesced=coalesced, elapsed_s=elapsed_s,
        )
        data: Dict[str, Any] = {
            "status": COMPLETED,
            "cached": cached,
            "coalesced": coalesced,
            "elapsed_s": elapsed_s,
        }
        stripped = _strip_timeline(payload)
        if "result" in stripped:
            data["result"] = stripped["result"]
        # The metrics snapshot rides on the terminal event — the same
        # repro.obs structured-stats shape `repro report` renders.
        if "metrics" in stripped:
            data["metrics"] = stripped["metrics"]
        self._emit(rec, COMPLETED, **data)

    def _finish_failed(self, rec: RunRecord, reason: str, message: str) -> None:
        rec.status = FAILED
        rec.finished_unix = time.time()
        rec.error = f"{reason}: {message}"
        self.counters["failed"] += 1
        self._metric_run_done(FAILED, None)
        self._journal(
            "api_failed", run_id=rec.id, tenant=rec.tenant, key=rec.key,
            reason=reason, message=message,
        )
        self._emit(
            rec, FAILED, status=FAILED, reason=reason, message=message
        )

    def _settle_followers(self, leader: RunRecord) -> None:
        """Propagate a leader's terminal outcome to attached followers."""
        for fid in self._followers.pop(leader.key, ()):
            frec = self.runs.get(fid)
            if frec is None or frec.status in TERMINAL_STATES:
                continue
            if leader.status == COMPLETED:
                assert leader.payload is not None
                self._finish_completed(
                    frec, leader.payload, leader.elapsed_s or 0.0,
                    cached=leader.cached, coalesced=True,
                )
            elif leader.status == FAILED:
                self._finish_failed(
                    frec, "error", f"coalesced run failed: {leader.error}"
                )
            else:  # drained leader drains its followers too
                frec.status = DRAINED
                frec.finished_unix = time.time()
                frec.error = leader.error
                self.counters["drained"] += 1
                self._emit(frec, DRAINED, status=DRAINED)

    # -- event streaming ---------------------------------------------------

    async def iter_events(self, run_id: str, since_seq: int = 0):
        """Yield a run's events from ``since_seq`` on, then follow live
        appends until a terminal event has been delivered.

        ``since_seq`` is the resume cursor (``Last-Event-ID`` + 1 on the
        HTTP surface): a reconnecting follower passes the next seq it has
        *not* seen and never receives duplicates. Events carry their seq,
        so ordering is checkable client-side.
        """
        rec = self.get_run(run_id)
        cursor = max(0, int(since_seq))
        self._sse_subscribers += 1
        try:
            while True:
                # Capture the flag BEFORE scanning: an emit between the
                # scan and the wait sets this captured flag, so no lost
                # wakeups.
                assert self._flag is not None
                flag = self._flag
                while cursor < len(rec.events):
                    event = rec.events[cursor]
                    cursor += 1
                    yield event
                    if event["event"] in TERMINAL_STATES:
                        return
                if rec.status in TERMINAL_STATES:
                    return  # defensive: terminal without a terminal event
                await flag.wait()
        finally:
            self._sse_subscribers -= 1

    # -- introspection -----------------------------------------------------

    def ready(self) -> Tuple[bool, str]:
        """Readiness verdict for ``GET /readyz``.

        Not ready while draining (load balancers should stop routing
        here the moment shutdown starts) or while the fair queue is
        saturated past ``ready_backlog`` (shed load before the quota
        layer starts rejecting).
        """
        if self._closing:
            return False, "draining"
        if self.started_unix is None:
            return False, "starting"
        if len(self.queue) >= self.ready_backlog:
            return False, f"saturated: {len(self.queue)} queued"
        return True, "ok"

    @property
    def sse_subscribers(self) -> int:
        return self._sse_subscribers

    def stats(self) -> Dict[str, Any]:
        return {
            "started_unix": self.started_unix,
            "workers": self.workers,
            "running": self._running,
            "queued": len(self.queue),
            "runs_tracked": len(self.runs),
            "sse_subscribers": self._sse_subscribers,
            "counters": dict(self.counters),
            "tenants": self.queue.stats(),
        }
