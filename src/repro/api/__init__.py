"""Asynchronous simulation-as-a-service HTTP layer.

``repro.api`` puts an HTTP front end over the :mod:`repro.service` job
subsystem so many concurrent clients share one worker fleet:

- :mod:`repro.api.http` — minimal stdlib-asyncio HTTP/1.1 server, router,
  and streaming responses (no framework dependency).
- :mod:`repro.api.schemas` — request validation mapping JSON bodies onto
  the same :class:`~repro.service.jobs.JobSpec` content keys the CLI
  produces (HTTP and CLI submissions share one cache).
- :mod:`repro.api.fairness` — per-tenant weighted queues with priority
  aging and quotas between the HTTP layer and the scheduler.
- :mod:`repro.api.service` — the async run registry: cache dedupe,
  in-flight coalescing (single-flight), dispatch, event streams.
- :mod:`repro.api.leaderboard` — throttling-policy ranking over the
  cached scenario suite.
- :mod:`repro.api.app` — endpoint wiring + server runtime
  (:class:`ApiServer`, background-thread helper for embedding/tests).
- :mod:`repro.api.client` — blocking stdlib client.

Quickstart::

    repro serve --port 8177 &
    curl -s localhost:8177/healthz
    curl -s -XPOST localhost:8177/runs -d '{"workload": "pagerank"}'

See ``docs/SERVICE.md`` for the full endpoint and wire-format reference.
"""

from repro.api.app import ApiServer, ServerHandle, create_router, start_server_thread
from repro.api.client import ApiClient, ApiClientError
from repro.api.fairness import FairQueue, QuotaExceeded, TenantPolicy
from repro.api.http import (
    HttpError,
    HttpServer,
    Request,
    Response,
    Router,
    StreamResponse,
    json_response,
    text_response,
)
from repro.api.leaderboard import LEADERBOARD_SCHEMA_ID, build_leaderboard
from repro.api.schemas import (
    ValidationError,
    validate_run_request,
    validate_sweep_request,
    validate_tenant,
)
from repro.api.service import (
    ApiService,
    RunRecord,
    ServiceClosed,
    UnknownRun,
)

__all__ = [
    "LEADERBOARD_SCHEMA_ID",
    "ApiClient",
    "ApiClientError",
    "ApiServer",
    "ApiService",
    "FairQueue",
    "HttpError",
    "HttpServer",
    "QuotaExceeded",
    "Request",
    "Response",
    "Router",
    "RunRecord",
    "ServerHandle",
    "ServiceClosed",
    "StreamResponse",
    "TenantPolicy",
    "UnknownRun",
    "ValidationError",
    "build_leaderboard",
    "create_router",
    "json_response",
    "start_server_thread",
    "text_response",
    "validate_run_request",
    "validate_sweep_request",
    "validate_tenant",
]
