"""Blocking stdlib client for the simulation API.

``http.client`` only — usable from tests, scripts, and the CI smoke
without any extra dependency. One connection per request (the server is
``Connection: close``); event streams are consumed line-by-line off the
response socket so progress arrives as it happens.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, Optional, Tuple


class ApiClientError(RuntimeError):
    """A non-2xx response."""

    def __init__(self, status: int, body: Any) -> None:
        super().__init__(f"HTTP {status}: {body}")
        self.status = status
        self.body = body


class ApiClient:
    """Minimal synchronous client. ``tenant`` rides the X-Tenant header."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: Optional[str] = None,
        timeout_s: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout_s = timeout_s

    # -- plumbing ----------------------------------------------------------

    def _headers(self, extra: Optional[Dict[str, str]] = None) -> Dict[str, str]:
        headers = {"Accept": "application/json"}
        if self.tenant:
            headers["X-Tenant"] = self.tenant
        if extra:
            headers.update(extra)
        return headers

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Any]:
        """One request → (status, parsed JSON | raw text)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            payload = None
            send_headers = self._headers(headers)
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                send_headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=send_headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                doc = json.loads(raw.decode("utf-8")) if raw else None
            except (UnicodeDecodeError, json.JSONDecodeError):
                doc = raw.decode("utf-8", "replace")
            return response.status, doc
        finally:
            conn.close()

    def _checked(self, method: str, path: str, body=None) -> Any:
        status, doc = self.request(method, path, body)
        if status >= 400:
            raise ApiClientError(status, doc)
        return doc

    # -- API surface -------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._checked("GET", "/healthz")

    def readyz(self) -> Tuple[bool, Dict[str, Any]]:
        """(ready?, body) — 503 is a valid answer, not an error."""
        status, doc = self.request("GET", "/readyz")
        if status >= 400 and status != 503:
            raise ApiClientError(status, doc)
        return status == 200, doc

    def metrics(self) -> str:
        """Raw Prometheus text exposition from ``GET /metrics``."""
        status, doc = self.request("GET", "/metrics")
        if status >= 400:
            raise ApiClientError(status, doc)
        return doc if isinstance(doc, str) else json.dumps(doc)

    def run_telemetry(self, run_id: str) -> Dict[str, Any]:
        """One run's in-flight telemetry series."""
        return self._checked("GET", f"/telemetry/runs/{run_id}")

    def submit_run(self, **body: Any) -> Dict[str, Any]:
        return self._checked("POST", "/runs", body)

    def submit_sweep(self, **body: Any) -> Dict[str, Any]:
        return self._checked("POST", "/sweeps", body)

    def get_run(self, run_id: str) -> Dict[str, Any]:
        return self._checked("GET", f"/runs/{run_id}")

    def get_sweep(self, sweep_id: str) -> Dict[str, Any]:
        return self._checked("GET", f"/sweeps/{sweep_id}")

    def leaderboard(self, **filters: str) -> Dict[str, Any]:
        query = "&".join(f"{k}={v}" for k, v in filters.items() if v)
        return self._checked(
            "GET", "/leaderboard" + (f"?{query}" if query else "")
        )

    def admin_cache(self) -> Dict[str, Any]:
        return self._checked("GET", "/admin/cache")

    def artifact(self, run_id: str, name: str) -> Any:
        return self._checked("GET", f"/runs/{run_id}/artifacts/{name}")

    def stream_events(
        self, run_id: str, since: Optional[int] = None
    ) -> Iterator[Dict[str, Any]]:
        """Follow a run's JSONL event stream until its terminal event.

        ``since`` is the seq of the last event already seen (the
        ``Last-Event-ID`` contract): replay resumes after it.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        path = f"/runs/{run_id}/events?format=jsonl"
        if since is not None:
            path += f"&since={since}"
        try:
            conn.request(
                "GET",
                path,
                headers=self._headers({"Accept": "application/x-ndjson"}),
            )
            response = conn.getresponse()
            if response.status >= 400:
                raise ApiClientError(
                    response.status,
                    response.read().decode("utf-8", "replace"),
                )
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def wait_for_run(
        self, run_id: str, timeout_s: float = 60.0, poll_s: float = 0.05
    ) -> Dict[str, Any]:
        """Poll until the run reaches a terminal state."""
        deadline = time.monotonic() + timeout_s
        while True:
            doc = self.get_run(run_id)
            if doc["status"] in ("completed", "failed", "drained"):
                return doc
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"run {run_id} still {doc['status']} after {timeout_s}s"
                )
            time.sleep(poll_s)
