"""Breadth-first search variants (GraphBIG GPU kernels).

All variants compute the same depths; they differ in how work maps to GPU
threads, which changes traffic and divergence:

- ``bfs-ta`` — topology-driven, atomic per inspected edge: every level
  scans all vertices and issues a depth-CAS for every edge of active ones.
- ``bfs-ttc`` — topology-driven thread-centric: one thread per vertex,
  scattered adjacency reads, high divergence; atomics only on unvisited
  targets.
- ``bfs-twc`` — topology-driven warp-centric: a warp cooperates per
  vertex, coalescing adjacency reads and erasing divergence.
- ``bfs-dwc`` — data-driven (frontier queue) warp-centric: only frontier
  vertices are touched.

Each workload runs ``num_sources`` traversals back to back (the evaluation
drives BFS as a query stream — single-source runs on the LDBC graph are
too short to exercise thermal behaviour, Sec. V).
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.graph.csr import CSRGraph
from repro.workloads.base import EpochCounts, GraphWorkload, TrafficCoefficients


def bfs_depths(graph: CSRGraph, source: int) -> np.ndarray:
    """Reference level-synchronous BFS; -1 marks unreachable vertices."""
    depth = np.full(graph.num_vertices, -1, dtype=np.int64)
    depth[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        _, targets, _ = graph.expand(frontier)
        unvisited = np.unique(targets[depth[targets] == -1])
        depth[unvisited] = level + 1
        frontier = unvisited
        level += 1
    return depth


def pick_sources(graph: CSRGraph, count: int, seed: int) -> np.ndarray:
    """Deterministic query sources, biased to well-connected vertices."""
    deg = np.asarray(graph.out_degree())
    candidates = np.flatnonzero(deg > 0)
    if candidates.size == 0:
        return np.zeros(min(count, 1), dtype=np.int64)
    rng = np.random.default_rng(seed)
    return rng.choice(candidates, size=min(count, candidates.size), replace=False)


class _BfsBase(GraphWorkload):
    """Shared level-synchronous engine; subclasses set the mapping."""

    #: Topology-driven kernels scan the full vertex set every level.
    topological: bool = False
    #: "edge" → CAS per inspected edge; "unvisited" → CAS only on
    #: not-yet-visited targets (check-then-atomic mapping).
    atomic_mode: str = "unvisited"
    num_sources: int = 128

    def epochs(self, graph: CSRGraph) -> Iterator[EpochCounts]:
        sources = pick_sources(graph, self.num_sources, self.seed)
        for q, src in enumerate(sources):
            yield from self._one_traversal(graph, int(src), q)

    def _one_traversal(
        self, graph: CSRGraph, source: int, query: int
    ) -> Iterator[EpochCounts]:
        depth = np.full(graph.num_vertices, -1, dtype=np.int64)
        depth[source] = 0
        frontier = np.array([source], dtype=np.int64)
        level = 0
        while frontier.size:
            _, targets, _ = graph.expand(frontier)
            edges = int(targets.size)
            unvisited_mask = depth[targets] == -1
            if self.atomic_mode == "edge":
                atomics = edges
            else:
                atomics = int(unvisited_mask.sum())
            next_frontier = np.unique(targets[unvisited_mask])
            depth[next_frontier] = level + 1
            scanned = graph.num_vertices if self.topological else 0
            yield EpochCounts(
                label=f"q{query}-level{level}",
                frontier_vertices=int(frontier.size),
                scanned_vertices=scanned,
                edges_inspected=edges,
                atomics=atomics,
                updated_vertices=int(next_frontier.size),
            )
            frontier = next_frontier
            level += 1

    def reference(self, graph: CSRGraph) -> np.ndarray:
        sources = pick_sources(graph, self.num_sources, self.seed)
        return bfs_depths(graph, int(sources[0]))


class BfsTa(_BfsBase):
    """Topology-driven, atomic-per-edge (GraphBIG ``bfs_topo_atomic``)."""

    name = "bfs-ta"
    topological = True
    atomic_mode = "edge"
    coeffs = TrafficCoefficients(
        lines_per_edge=1.667,
        write_lines_per_edge=1.334,
        instrs_per_edge=14.0,
        divergence=0.40,
        read_hit_rate=0.45,
        atomic_coalescing=0.50,
    )


class BfsTtc(_BfsBase):
    """Topology-driven thread-centric: scattered reads, heavy divergence."""

    name = "bfs-ttc"
    topological = True
    atomic_mode = "edge"
    coeffs = TrafficCoefficients(
        lines_per_edge=1.053,
        write_lines_per_edge=0.764,
        instrs_per_edge=16.0,
        divergence=0.50,
        read_hit_rate=0.40,
        atomic_coalescing=0.351,
    )


class BfsTwc(_BfsBase):
    """Topology-driven warp-centric: coalesced reads, low divergence."""

    name = "bfs-twc"
    topological = True
    atomic_mode = "edge"
    coeffs = TrafficCoefficients(
        lines_per_edge=0.94,
        write_lines_per_edge=0.44,
        instrs_per_edge=10.0,
        divergence=0.05,
        read_hit_rate=0.50,
        atomic_coalescing=0.289,
    )


class BfsDwc(_BfsBase):
    """Data-driven warp-centric: frontier queue + coalesced expansion."""

    name = "bfs-dwc"
    topological = False
    atomic_mode = "edge"
    coeffs = TrafficCoefficients(
        lines_per_edge=0.94,
        write_lines_per_edge=0.44,
        instrs_per_edge=10.0,
        divergence=0.05,
        read_hit_rate=0.50,
        atomic_coalescing=0.289,
    )
