"""Single-source shortest paths variants (GraphBIG GPU kernels).

Distance relaxations are atomicMin operations — PIM's CAS-greater/less
class (Table III). Variants:

- ``sssp-dtc`` — data-driven thread-centric: frontier of improved
  vertices, one thread per vertex, scattered reads and high divergence.
- ``sssp-dwc`` — data-driven warp-centric: same frontier schedule with
  warp-cooperative coalesced expansion.
- ``sssp-twc`` — topology-driven warp-centric: Bellman-Ford sweeps over
  every edge each iteration until no distance changes.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.graph.csr import CSRGraph
from repro.workloads.base import EpochCounts, GraphWorkload, TrafficCoefficients
from repro.workloads.bfs import pick_sources


def sssp_distances(graph: CSRGraph, source: int) -> np.ndarray:
    """Reference shortest-path distances (Bellman-Ford, vectorized)."""
    if not graph.is_weighted:
        raise ValueError("SSSP requires a weighted graph")
    dist = np.full(graph.num_vertices, np.inf)
    dist[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    while frontier.size:
        src, dst, w = graph.expand(frontier, with_weights=True)
        cand = dist[src] + w
        improved = cand < dist[dst]
        if not improved.any():
            break
        # atomicMin semantics: keep the minimum candidate per target.
        np.minimum.at(dist, dst[improved], cand[improved])
        frontier = np.unique(dst[improved])
    return dist


class _SsspDataDriven(GraphWorkload):
    """Frontier-based relaxation engine."""

    num_sources: int = 32

    def epochs(self, graph: CSRGraph) -> Iterator[EpochCounts]:
        if not graph.is_weighted:
            raise ValueError(f"{self.name} requires a weighted graph")
        sources = pick_sources(graph, self.num_sources, self.seed)
        for q, source in enumerate(sources):
            dist = np.full(graph.num_vertices, np.inf)
            dist[int(source)] = 0.0
            frontier = np.array([int(source)], dtype=np.int64)
            it = 0
            while frontier.size:
                src, dst, w = graph.expand(frontier, with_weights=True)
                cand = dist[src] + w
                improved = cand < dist[dst]
                # Every inspected edge attempts an atomicMin on the target
                # distance (the kernel cannot know it won't improve until
                # the atomic resolves).
                atomics = int(dst.size)
                np.minimum.at(dist, dst[improved], cand[improved])
                nxt = np.unique(dst[improved])
                yield EpochCounts(
                    label=f"q{q}-iter{it}",
                    frontier_vertices=int(frontier.size),
                    edges_inspected=int(dst.size),
                    atomics=atomics,
                    updated_vertices=int(nxt.size),
                )
                frontier = nxt
                it += 1

    def reference(self, graph: CSRGraph) -> np.ndarray:
        sources = pick_sources(graph, self.num_sources, self.seed)
        return sssp_distances(graph, int(sources[0]))


class SsspDtc(_SsspDataDriven):
    """Data-driven thread-centric: scattered, divergent, read-heavy.

    The heavy per-edge read traffic dilutes atomics — this is one of the
    two benchmarks whose naïve PIM rate stays under the thermal threshold
    (Sec. V-B: kcore and sssp-dtc trigger no thermal issue).
    """

    name = "sssp-dtc"
    coeffs = TrafficCoefficients(
        lines_per_edge=3.40,
        instrs_per_edge=18.0,
        divergence=0.50,
        read_hit_rate=0.35,
        atomic_coalescing=0.55,
        return_fraction=0.3,
    )


class SsspDwc(_SsspDataDriven):
    """Data-driven warp-centric: coalesced expansion."""

    name = "sssp-dwc"
    coeffs = TrafficCoefficients(
        lines_per_edge=1.036,
        write_lines_per_edge=0.790,
        instrs_per_edge=12.0,
        divergence=0.08,
        read_hit_rate=0.45,
        atomic_coalescing=0.351,
        return_fraction=0.3,
    )


class SsspTwc(GraphWorkload):
    """Topology-driven warp-centric Bellman-Ford sweeps."""

    name = "sssp-twc"
    num_sources: int = 12
    coeffs = TrafficCoefficients(
        lines_per_edge=1.080,
        write_lines_per_edge=0.838,
        instrs_per_edge=12.0,
        divergence=0.08,
        read_hit_rate=0.45,
        atomic_coalescing=0.35,
        return_fraction=0.3,
    )

    def epochs(self, graph: CSRGraph) -> Iterator[EpochCounts]:
        if not graph.is_weighted:
            raise ValueError(f"{self.name} requires a weighted graph")
        n = graph.num_vertices
        all_vertices = np.arange(n, dtype=np.int64)
        sources = pick_sources(graph, self.num_sources, self.seed)
        for q, source in enumerate(sources):
            dist = np.full(n, np.inf)
            dist[int(source)] = 0.0
            it = 0
            while True:
                src, dst, w = graph.expand(all_vertices, with_weights=True)
                finite = np.isfinite(dist[src])
                cand = dist[src[finite]] + w[finite]
                tgt = dst[finite]
                improved = cand < dist[tgt]
                # Relaxations only issue for edges whose source has a
                # finite distance (the kernel checks before the atomic).
                atomics = int(finite.sum())
                changed = int(improved.sum())
                np.minimum.at(dist, tgt[improved], cand[improved])
                yield EpochCounts(
                    label=f"q{q}-sweep{it}",
                    frontier_vertices=n,
                    scanned_vertices=n,
                    edges_inspected=int(dst.size),
                    atomics=atomics,
                    updated_vertices=changed,
                )
                it += 1
                if changed == 0:
                    break

    def reference(self, graph: CSRGraph) -> np.ndarray:
        sources = pick_sources(graph, self.num_sources, self.seed)
        return sssp_distances(graph, int(sources[0]))
