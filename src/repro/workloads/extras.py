"""Extra GraphBIG kernels beyond the paper's evaluation set.

The paper evaluates ten benchmarks; GraphBIG itself ships more. Two of
the remaining PIM-relevant kernels are provided for library users (they
are *not* part of the Fig. 10–14 reproduction and are not registered in
:data:`repro.workloads.registry.BENCHMARKS`):

- ``cc`` — connected components by label propagation: each edge attempts
  an atomicMin on the neighbour's component label until a fixed point.
- ``tc`` — triangle counting: per-edge adjacency intersections with an
  atomicAdd per discovered triangle; heavy read traffic per atomic, so —
  like sssp-dtc — it never trips the thermal limit.
- ``gc`` — Jones–Plassmann graph coloring: per round, uncolored vertices
  that hold the local priority maximum claim the smallest color not used
  by a neighbour (an atomic color write plus per-edge conflict reads).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.graph.csr import CSRGraph
from repro.workloads.base import EpochCounts, GraphWorkload, TrafficCoefficients


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Reference label propagation (undirected semantics via both
    directions of whatever edges exist)."""
    labels = np.arange(graph.num_vertices, dtype=np.int64)
    all_v = np.arange(graph.num_vertices, dtype=np.int64)
    while True:
        src, dst, _ = graph.expand(all_v)
        cand = labels[src]
        improved = cand < labels[dst]
        if not improved.any():
            return labels
        np.minimum.at(labels, dst[improved], cand[improved])


def triangle_count(graph: CSRGraph) -> int:
    """Reference triangle count (each triangle counted once).

    Uses the standard degree-ordered orientation on the symmetrized
    graph: count paths u→v→w with u<v<w and edge u→w present.
    """
    und = graph.to_undirected()
    n = und.num_vertices
    neigh = [und.neighbors(v) for v in range(n)]
    fwd = [nb[nb > v] for v, nb in enumerate(neigh)]
    count = 0
    for v in range(n):
        fv = fwd[v]
        fv_set = set(fv.tolist())
        for u in fv:
            count += sum(1 for w in fwd[int(u)] if int(w) in fv_set)
    return count


class ConnectedComponents(GraphWorkload):
    """Label-propagation CC: atomicMin per inspected edge per round."""

    name = "cc"
    repeats: int = 8
    coeffs = TrafficCoefficients(
        lines_per_edge=1.2,
        write_lines_per_edge=0.5,
        instrs_per_edge=10.0,
        divergence=0.15,
        read_hit_rate=0.45,
        atomic_coalescing=0.45,
        return_fraction=0.3,
    )

    def epochs(self, graph: CSRGraph) -> Iterator[EpochCounts]:
        n = graph.num_vertices
        all_v = np.arange(n, dtype=np.int64)
        for rep in range(self.repeats):
            labels = np.arange(n, dtype=np.int64)
            rnd = 0
            while True:
                src, dst, _ = graph.expand(all_v)
                cand = labels[src]
                improved = cand < labels[dst]
                changed = int(improved.sum())
                np.minimum.at(labels, dst[improved], cand[improved])
                yield EpochCounts(
                    label=f"rep{rep}-round{rnd}",
                    frontier_vertices=n,
                    scanned_vertices=n,
                    edges_inspected=int(dst.size),
                    atomics=int(dst.size),
                    updated_vertices=changed,
                )
                rnd += 1
                if changed == 0:
                    break

    def reference(self, graph: CSRGraph) -> np.ndarray:
        return connected_components(graph)


def jones_plassmann_coloring(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Reference Jones–Plassmann coloring on the symmetrized graph.

    Returns a valid coloring: no two adjacent vertices share a color.
    Deterministic for a given seed.
    """
    und = graph.to_undirected()
    n = und.num_vertices
    rng = np.random.default_rng(seed)
    priority = rng.permutation(n)
    colors = np.full(n, -1, dtype=np.int64)
    uncolored = np.arange(n, dtype=np.int64)
    while uncolored.size:
        src, dst, _ = und.expand(uncolored)
        # A vertex wins the round if it out-prioritizes every uncolored
        # neighbour.
        blocked = np.zeros(n, dtype=bool)
        neighbour_uncolored = colors[dst] == -1
        loses = neighbour_uncolored & (priority[dst] > priority[src])
        np.logical_or.at(blocked, src[loses], True)
        winners = uncolored[~blocked[uncolored]]
        # Smallest color unused by any (colored) neighbour.
        for v in winners:
            used = {int(c) for c in colors[und.neighbors(int(v))] if c >= 0}
            c = 0
            while c in used:
                c += 1
            colors[v] = c
        uncolored = uncolored[blocked[uncolored]]
    return colors


class GraphColoring(GraphWorkload):
    """Jones–Plassmann coloring driven as rounds of parallel claims."""

    name = "gc"
    repeats: int = 6
    coeffs = TrafficCoefficients(
        lines_per_edge=1.6,
        instrs_per_edge=14.0,
        divergence=0.30,
        read_hit_rate=0.40,
        atomic_coalescing=0.50,
    )

    def epochs(self, graph: CSRGraph) -> Iterator[EpochCounts]:
        und = graph.to_undirected()
        n = und.num_vertices
        for rep in range(self.repeats):
            rng = np.random.default_rng(self.seed + rep)
            priority = rng.permutation(n)
            colors = np.full(n, -1, dtype=np.int64)
            uncolored = np.arange(n, dtype=np.int64)
            rnd = 0
            while uncolored.size:
                src, dst, _ = und.expand(uncolored)
                blocked = np.zeros(n, dtype=bool)
                neighbour_uncolored = colors[dst] == -1
                loses = neighbour_uncolored & (priority[dst] > priority[src])
                np.logical_or.at(blocked, src[loses], True)
                winners = uncolored[~blocked[uncolored]]
                # Winners atomically publish their color; every inspected
                # edge read a neighbour's color/priority.
                for v in winners:
                    used = {int(c) for c in colors[und.neighbors(int(v))]
                            if c >= 0}
                    c = 0
                    while c in used:
                        c += 1
                    colors[v] = c
                yield EpochCounts(
                    label=f"rep{rep}-round{rnd}",
                    frontier_vertices=int(uncolored.size),
                    edges_inspected=int(dst.size),
                    atomics=int(winners.size),
                    updated_vertices=int(winners.size),
                )
                uncolored = uncolored[blocked[uncolored]]
                rnd += 1

    def reference(self, graph: CSRGraph) -> np.ndarray:
        return jones_plassmann_coloring(graph, seed=self.seed)


class TriangleCount(GraphWorkload):
    """Adjacency-intersection TC: read-dominated, one atomicAdd per
    triangle — thermally benign like kcore/sssp-dtc."""

    name = "tc"
    repeats: int = 4
    chunk_vertices: int = 4096
    coeffs = TrafficCoefficients(
        lines_per_edge=2.8,
        instrs_per_edge=20.0,
        divergence=0.30,
        read_hit_rate=0.40,
        atomic_coalescing=0.55,
    )

    def epochs(self, graph: CSRGraph) -> Iterator[EpochCounts]:
        und = graph.to_undirected()
        n = und.num_vertices
        deg = np.diff(und.indptr)
        # Per-vertex triangle-path work: sum over forward neighbours of
        # their forward degree (the intersections actually performed).
        src_all = np.repeat(np.arange(n, dtype=np.int64), deg)
        forward = und.indices > src_all
        fwd_deg = np.bincount(src_all[forward], minlength=n)
        # Triangles discovered per vertex chunk come from the real count
        # proportionally to the chunk's path work.
        for rep in range(self.repeats):
            for start in range(0, n, self.chunk_vertices):
                stop = min(n, start + self.chunk_vertices)
                chunk = np.arange(start, stop, dtype=np.int64)
                _s, targets, _ = und.expand(chunk)
                paths = int(fwd_deg[targets].sum())
                yield EpochCounts(
                    label=f"rep{rep}-chunk{start}",
                    frontier_vertices=int(chunk.size),
                    edges_inspected=int(targets.size) + paths,
                    atomics=max(1, paths // 8),  # hits per intersection probe
                    updated_vertices=0,
                )

    def reference(self, graph: CSRGraph) -> np.ndarray:
        return np.array([triangle_count(graph)], dtype=np.int64)
