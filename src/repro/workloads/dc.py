"""Degree centrality (GraphBIG ``dc``).

Streams the edge list and bumps per-vertex in/out-degree counters with
integer atomicAdds — two atomics per edge, minimal other traffic, so the
highest PIM intensity per byte of any benchmark. Runs as a stream of
``repeats`` query batches (single passes over the LDBC graph are too short
to exercise thermal dynamics).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.graph.csr import CSRGraph
from repro.workloads.base import EpochCounts, GraphWorkload, TrafficCoefficients


def degree_centrality(graph: CSRGraph) -> np.ndarray:
    """Reference: (in-degree + out-degree) per vertex."""
    out_deg = np.asarray(graph.out_degree(), dtype=np.int64)
    in_deg = np.zeros(graph.num_vertices, dtype=np.int64)
    np.add.at(in_deg, graph.indices, 1)
    return in_deg + out_deg


class DegreeCentrality(GraphWorkload):
    name = "dc"
    repeats: int = 96
    #: Edges per kernel launch chunk (one epoch).
    chunk_edges: int = 1 << 18
    coeffs = TrafficCoefficients(
        lines_per_edge=1.011,
        write_lines_per_edge=0.916,
        instrs_per_edge=8.0,
        divergence=0.02,
        read_hit_rate=0.30,
        atomic_coalescing=0.413,
    )

    def epochs(self, graph: CSRGraph) -> Iterator[EpochCounts]:
        m = graph.num_edges
        for rep in range(self.repeats):
            done = 0
            chunk_id = 0
            while done < m:
                edges = min(self.chunk_edges, m - done)
                yield EpochCounts(
                    label=f"rep{rep}-chunk{chunk_id}",
                    frontier_vertices=edges,
                    edges_inspected=edges,
                    atomics=edges,           # in-degree bump per edge
                    updated_vertices=0,
                )
                done += edges
                chunk_id += 1

    def reference(self, graph: CSRGraph) -> np.ndarray:
        return degree_centrality(graph)
