"""Benchmark registry — the ten GraphBIG workloads of the evaluation,
plus extra kernels available by name but excluded from the figures."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.workloads.base import GraphWorkload
from repro.workloads.bfs import BfsDwc, BfsTa, BfsTtc, BfsTwc
from repro.workloads.dc import DegreeCentrality
from repro.workloads.extras import (
    ConnectedComponents,
    GraphColoring,
    TriangleCount,
)
from repro.workloads.kcore import KCore
from repro.workloads.pagerank import PageRank
from repro.workloads.sssp import SsspDtc, SsspDwc, SsspTwc

#: Figure order used in the paper's evaluation plots.
BENCHMARKS: Dict[str, Type[GraphWorkload]] = {
    "dc": DegreeCentrality,
    "bfs-ta": BfsTa,
    "bfs-dwc": BfsDwc,
    "bfs-ttc": BfsTtc,
    "bfs-twc": BfsTwc,
    "kcore": KCore,
    "pagerank": PageRank,
    "sssp-dtc": SsspDtc,
    "sssp-dwc": SsspDwc,
    "sssp-twc": SsspTwc,
}

#: Kernels beyond the paper's evaluation set (runnable via get_workload
#: and the CLI, but never part of the Fig. 10-14 matrix).
EXTRA_WORKLOADS: Dict[str, Type[GraphWorkload]] = {
    "cc": ConnectedComponents,
    "gc": GraphColoring,
    "tc": TriangleCount,
}


def list_workloads(include_extras: bool = False) -> List[str]:
    names = list(BENCHMARKS)
    if include_extras:
        names += list(EXTRA_WORKLOADS)
    return names


def get_workload(name: str, seed: int = 0) -> GraphWorkload:
    """Instantiate a benchmark (or extra kernel) by name."""
    cls = BENCHMARKS.get(name) or EXTRA_WORKLOADS.get(name)
    if cls is None:
        raise KeyError(
            f"unknown workload {name!r}; available: "
            f"{list_workloads(include_extras=True)}"
        )
    return cls(seed=seed)
