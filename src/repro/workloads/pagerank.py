"""PageRank (GraphBIG ``pagerank``).

Push-style power iteration: every edge contributes ``rank[src]/deg[src]``
to its target through a floating-point atomicAdd — the GraphPIM FP_ADD
extension when offloaded. High, steady PIM intensity across the whole run
(one atomic per edge per iteration).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.graph.csr import CSRGraph
from repro.workloads.base import EpochCounts, GraphWorkload, TrafficCoefficients

DAMPING = 0.85


def pagerank_scores(
    graph: CSRGraph, iterations: int = 20, damping: float = DAMPING
) -> np.ndarray:
    """Reference push-style PageRank (fixed iteration count)."""
    n = graph.num_vertices
    rank = np.full(n, 1.0 / n)
    deg = np.asarray(graph.out_degree(), dtype=np.float64)
    src_all = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    for _ in range(iterations):
        contrib = np.zeros(n)
        share = np.divide(rank, deg, out=np.zeros_like(rank), where=deg > 0)
        np.add.at(contrib, graph.indices, share[src_all])
        dangling = rank[deg == 0].sum()
        rank = (1.0 - damping) / n + damping * (contrib + dangling / n)
    return rank


class PageRank(GraphWorkload):
    name = "pagerank"
    iterations: int = 80
    coeffs = TrafficCoefficients(
        lines_per_edge=1.672,
        write_lines_per_edge=1.172,
        instrs_per_edge=11.0,
        divergence=0.10,
        read_hit_rate=0.50,
        writes_per_update=1.0 / 16.0,
        atomic_coalescing=0.477,
    )

    def epochs(self, graph: CSRGraph) -> Iterator[EpochCounts]:
        n = graph.num_vertices
        m = graph.num_edges
        rank = np.full(n, 1.0 / n)
        deg = np.asarray(graph.out_degree(), dtype=np.float64)
        src_all = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
        for it in range(self.iterations):
            contrib = np.zeros(n)
            share = np.divide(rank, deg, out=np.zeros_like(rank), where=deg > 0)
            np.add.at(contrib, graph.indices, share[src_all])
            dangling = rank[deg == 0].sum()
            rank = (1.0 - DAMPING) / n + DAMPING * (contrib + dangling / n)
            # Scatter phase: one FP atomicAdd per edge; then the apply
            # phase writes every vertex's new rank.
            yield EpochCounts(
                label=f"iter{it}",
                frontier_vertices=n,
                scanned_vertices=n,
                edges_inspected=m,
                atomics=m,
                updated_vertices=n,
            )

    def reference(self, graph: CSRGraph) -> np.ndarray:
        return pagerank_scores(graph, self.iterations)
