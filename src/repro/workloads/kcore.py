"""k-core decomposition (GraphBIG ``kcore``).

Iterative peeling: every round scans all vertices, removes those whose
residual degree fell below ``k``, and atomically decrements the degrees of
their neighbours. Most of the traffic is the repeated full-vertex scans;
atomics only fire on the (shrinking) removal frontier — so PIM intensity
is low and naïve offloading never trips the thermal limit (Sec. V-B: one
of the two benchmarks where naïve and CoolPIM coincide).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.graph.csr import CSRGraph
from repro.workloads.base import EpochCounts, GraphWorkload, TrafficCoefficients


def kcore_mask(graph: CSRGraph, k: int) -> np.ndarray:
    """Reference: boolean mask of vertices in the k-core."""
    deg = np.asarray(graph.out_degree(), dtype=np.int64).copy()
    alive = np.ones(graph.num_vertices, dtype=bool)
    while True:
        doomed = np.flatnonzero(alive & (deg < k))
        if doomed.size == 0:
            return alive
        alive[doomed] = False
        _, targets, _ = graph.expand(doomed)
        targets = targets[alive[targets]]
        np.subtract.at(deg, targets, 1)


class KCore(GraphWorkload):
    """Sweeps a range of k values (a full coreness profile), peeling the
    graph from scratch for each — GraphBIG's kCore driven as a query
    stream, like the other benchmarks."""

    name = "kcore"
    k: int = 16
    k_values: tuple = (4, 8, 12, 16, 20, 24, 28, 32)
    repeats: int = 10
    coeffs = TrafficCoefficients(
        lines_per_edge=3.0,
        lines_per_scan_vertex=1.0 / 8.0,
        instrs_per_edge=14.0,
        divergence=0.35,
        read_hit_rate=0.35,
        atomic_coalescing=0.48,
        return_fraction=0.5,   # decrements feed the < k check
    )

    def epochs(self, graph: CSRGraph) -> Iterator[EpochCounts]:
        n = graph.num_vertices
        for rep in range(self.repeats):
            for k in self.k_values:
                deg = np.asarray(graph.out_degree(), dtype=np.int64).copy()
                alive = np.ones(n, dtype=bool)
                rnd = 0
                while True:
                    doomed = np.flatnonzero(alive & (deg < k))
                    if doomed.size == 0:
                        break
                    alive[doomed] = False
                    _, targets, _ = graph.expand(doomed)
                    live_targets = targets[alive[targets]]
                    np.subtract.at(deg, live_targets, 1)
                    yield EpochCounts(
                        label=f"rep{rep}-k{k}-round{rnd}",
                        frontier_vertices=int(doomed.size),
                        scanned_vertices=n,
                        edges_inspected=int(targets.size),
                        atomics=int(live_targets.size),
                        updated_vertices=int(doomed.size),
                    )
                    rnd += 1

    def reference(self, graph: CSRGraph) -> np.ndarray:
        return kcore_mask(graph, self.k)
