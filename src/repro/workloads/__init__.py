"""GraphBIG-style GPU graph workloads (Sec. V: Table IV benchmarks).

Python reimplementations of the ten GraphBIG kernels the paper evaluates —
``dc``, ``bfs-ta``, ``bfs-dwc``, ``bfs-ttc``, ``bfs-twc``, ``kcore``,
``pagerank``, ``sssp-dtc``, ``sssp-dwc``, ``sssp-twc`` — executing the real
algorithms on CSR graphs and emitting per-epoch operation batches
(:class:`repro.sim.trace.OpBatch`) for the interval simulator.

Variant naming follows GraphBIG's GPU implementations: ``t``/``d`` =
topology-driven vs data-driven, ``tc``/``wc`` = thread-centric vs
warp-centric mapping, ``ta`` = topology-driven with per-edge atomics.
Warp-centric kernels coalesce adjacency reads and barely diverge;
thread-centric and topology-driven ones read poorly and diverge heavily —
exactly the knobs in Eq. (1).
"""

from repro.workloads.base import EpochCounts, GraphWorkload, TrafficCoefficients
from repro.workloads.registry import (
    BENCHMARKS,
    get_workload,
    list_workloads,
)

__all__ = [
    "BENCHMARKS",
    "EpochCounts",
    "GraphWorkload",
    "TrafficCoefficients",
    "get_workload",
    "list_workloads",
]
