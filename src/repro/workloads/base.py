"""Workload base: algorithm execution → epoch traffic translation.

Each workload *executes its algorithm for real* on a CSR graph (vectorized
NumPy), yielding per-epoch :class:`EpochCounts` — actual frontier sizes,
edges inspected, and atomic operations performed. A per-variant
:class:`TrafficCoefficients` block translates those counts into memory
traffic (:class:`repro.sim.trace.OpBatch`): warp-centric kernels fetch
adjacency lists coalesced (few lines per edge), thread-centric ones pay
scattered accesses and heavy divergence.

The coefficients are the calibration surface of the reproduction: they are
chosen per benchmark so the simulated baseline bandwidth, naive PIM rates,
and speedup pattern land on the paper's evaluation (DESIGN.md §5).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.gpu.caches import CacheModel
from repro.gpu.config import GPU_DEFAULT, GpuConfig
from repro.gpu.kernel import KernelLaunch
from repro.graph.csr import CSRGraph
from repro.sim.trace import OpBatch, TraceCursor


@dataclass(frozen=True)
class EpochCounts:
    """Raw algorithmic work of one epoch (level / iteration / pass)."""

    label: str
    frontier_vertices: int = 0     # vertices actively processed
    scanned_vertices: int = 0      # vertices touched by topological scans
    edges_inspected: int = 0       # adjacency entries examined
    atomics: int = 0               # atomic RMW operations actually issued
    updated_vertices: int = 0      # vertices whose property was written

    def __post_init__(self) -> None:
        if min(self.frontier_vertices, self.scanned_vertices,
               self.edges_inspected, self.atomics, self.updated_vertices) < 0:
            raise ValueError(f"negative counts: {self}")


@dataclass(frozen=True)
class TrafficCoefficients:
    """Counts → traffic translation for one kernel variant.

    Attributes
    ----------
    lines_per_edge:
        64 B read lines per inspected edge (adjacency + property loads,
        post warp-coalescing).
    write_lines_per_edge:
        64 B write lines per inspected edge (frontier enqueues, visited
        bitmaps, output buffers). Balancing the request/response lanes is
        what lets a kernel reach the link-saturated operating points of
        Figs. 4/5.
    lines_per_scan_vertex:
        Read lines per scanned vertex (topological kernels stream the
        status array; fully coalesced ≈ 1/16 line per 4 B entry).
    writes_per_update:
        Write lines per updated vertex.
    instrs_per_edge:
        Thread instructions per inspected edge (compute floor).
    divergence:
        Divergent-warp ratio of the kernel (Eq. (1) input).
    read_hit_rate / write_hit_rate:
        Cache profile for ordinary loads/stores.
    atomic_coalescing:
        Fraction of host-executed atomics that cost a full DRAM RMW
        (L2 ROP merge absorbs the rest).
    return_fraction:
        Fraction of atomics whose old value the kernel consumes
        (PIM-with-return packets, Table I).
    """

    lines_per_edge: float
    write_lines_per_edge: float = 0.0
    lines_per_scan_vertex: float = 1.0 / 16.0
    writes_per_update: float = 1.0 / 8.0
    instrs_per_edge: float = 12.0
    divergence: float = 0.1
    read_hit_rate: float = 0.5
    write_hit_rate: float = 0.5
    atomic_coalescing: float = 0.6
    return_fraction: float = 0.0

    def __post_init__(self) -> None:
        for name in ("lines_per_edge", "write_lines_per_edge",
                     "lines_per_scan_vertex", "writes_per_update",
                     "instrs_per_edge"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")
        for name in ("divergence", "read_hit_rate", "write_hit_rate",
                     "atomic_coalescing", "return_fraction"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0,1], got {v}")


class GraphWorkload(abc.ABC):
    """A GraphBIG kernel: algorithm + traffic coefficients."""

    #: Benchmark name as it appears in the paper's figures.
    name: str = "workload"
    coeffs: TrafficCoefficients = TrafficCoefficients(lines_per_edge=0.5)

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    # -- algorithm ------------------------------------------------------------

    @abc.abstractmethod
    def epochs(self, graph: CSRGraph) -> Iterator[EpochCounts]:
        """Execute the algorithm, yielding per-epoch work counts."""

    @abc.abstractmethod
    def reference(self, graph: CSRGraph) -> np.ndarray:
        """The algorithm's result (for correctness tests)."""

    # -- translation ----------------------------------------------------------

    def batch_for(self, counts: EpochCounts, warp_size: int = 32) -> OpBatch:
        """Translate epoch counts into an operation batch."""
        c = self.coeffs
        reads = int(round(
            counts.edges_inspected * c.lines_per_edge
            + counts.scanned_vertices * c.lines_per_scan_vertex
            + counts.frontier_vertices * c.lines_per_scan_vertex
        ))
        writes = int(round(
            counts.edges_inspected * c.write_lines_per_edge
            + counts.updated_vertices * c.writes_per_update
        ))
        atomics = counts.atomics
        with_ret = int(round(atomics * c.return_fraction))
        # Concurrent memory streams the epoch can keep in flight: one per
        # active/scanned vertex plus the adjacency streams (a coalesced
        # 64 B line covers ~8 edges' worth of data). This is what the
        # simulator's memory-level-parallelism cap consumes — big social
        # frontiers saturate the links, shallow road frontiers cannot.
        threads = max(
            1,
            int(counts.frontier_vertices
                + counts.scanned_vertices / 8
                + counts.edges_inspected / 8),
        )
        compute = int(round(counts.edges_inspected * c.instrs_per_edge / warp_size))
        return OpBatch(
            reads=reads,
            writes=writes,
            atomics=atomics,
            atomics_with_return=with_ret,
            compute_cycles=compute,
            threads=threads,
            divergent_warp_ratio=c.divergence,
            label=counts.label,
        )

    def trace(self, graph: CSRGraph) -> TraceCursor:
        """Full epoch trace for a run on ``graph``."""
        return TraceCursor(self.batch_for(c) for c in self.epochs(graph))

    def cache_model(self, gpu: GpuConfig = GPU_DEFAULT) -> CacheModel:
        """Cache model matching this kernel's locality profile."""
        c = self.coeffs
        return CacheModel(
            gpu,
            read_hit_rate=c.read_hit_rate,
            write_hit_rate=c.write_hit_rate,
            host_atomic_coalescing=c.atomic_coalescing,
        )

    def launch(
        self, graph: CSRGraph, gpu: GpuConfig = GPU_DEFAULT
    ) -> KernelLaunch:
        """Kernel launch (one thread per vertex, GraphBIG-style)."""
        return KernelLaunch(
            name=self.name,
            trace=self.trace(graph),
            total_threads=max(graph.num_vertices, gpu.threads_per_block),
            config=gpu,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
