"""Fig. 10 — speedup over the non-offloading baseline.

Ten GraphBIG benchmarks × {naïve offloading, CoolPIM (SW), CoolPIM (HW),
ideal thermal}, all normalized to the non-offloading baseline. Paper
headlines: CoolPIM up to 1.4× vs baseline / 1.37× vs naïve; average 21 %
(SW) and 25 % (HW); naïve *degrades* bfs-dwc and bfs-twc (−18 %/−16 %);
ideal thermal up to 61 %, average 36 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.common import RunScale, format_table
from repro.experiments.evaluation import EvaluationMatrix, run_matrix

POLICIES = ["naive-offloading", "coolpim-sw", "coolpim-hw", "ideal-thermal"]


@dataclass
class SpeedupResult:
    matrix: EvaluationMatrix
    #: [workload][policy] → speedup over baseline.
    speedups: Dict[str, Dict[str, float]]
    geo_means: Dict[str, float]

    def best_coolpim_vs_baseline(self) -> float:
        return max(
            self.speedups[wl][p]
            for wl in self.speedups
            for p in ("coolpim-sw", "coolpim-hw")
        )

    def best_coolpim_vs_naive(self) -> float:
        return max(
            max(self.speedups[wl]["coolpim-sw"], self.speedups[wl]["coolpim-hw"])
            / self.speedups[wl]["naive-offloading"]
            for wl in self.speedups
        )


def run(scale: Optional[RunScale] = None) -> SpeedupResult:
    matrix = run_matrix(scale)
    speedups = {
        wl: {p: matrix.speedup(wl, p) for p in POLICIES} for wl in matrix.workloads
    }
    geo = {p: matrix.geo_mean_speedup(p) for p in POLICIES}
    return SpeedupResult(matrix=matrix, speedups=speedups, geo_means=geo)


def format_result(result: SpeedupResult) -> str:
    headers = ["Benchmark", "Naive", "CoolPIM(SW)", "CoolPIM(HW)", "IdealThermal"]
    rows: List[list] = []
    for wl, per_policy in result.speedups.items():
        rows.append([wl] + [per_policy[p] for p in POLICIES])
    rows.append(
        ["geo-mean"] + [result.geo_means[p] for p in POLICIES]
    )
    table = format_table(
        headers, rows, title="Fig. 10 - Speedup over the non-offloading baseline"
    )
    notes = [
        f"  best CoolPIM vs baseline: {result.best_coolpim_vs_baseline():.2f}x "
        "(paper: up to 1.4x)",
        f"  best CoolPIM vs naive:    {result.best_coolpim_vs_naive():.2f}x "
        "(paper: up to 1.37x)",
    ]
    from repro.viz import bar_chart

    naive_bars = bar_chart(
        {wl: result.speedups[wl]["naive-offloading"] for wl in result.speedups},
        reference=1.0, unit="x", title="Naive offloading vs baseline:",
        width=40,
    )
    cool_bars = bar_chart(
        {wl: max(result.speedups[wl]["coolpim-sw"],
                 result.speedups[wl]["coolpim-hw"])
         for wl in result.speedups},
        reference=1.0, unit="x", title="Best CoolPIM vs baseline:", width=40,
    )
    return "\n".join([table, *notes, "", naive_bars, "", cool_bars])


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
