"""Cooling-budget sweep (extension): does CoolPIM adapt to the sink?

The paper evaluates one cooling point (commodity-server). CoolPIM's
feedback loop makes no assumption about the sink — the 85 °C warning is
the only input — so it should automatically offload *less* under a
weaker sink and *more* under a stronger one, always beating naïve
offloading once the sink is weak enough to matter. This experiment runs
one thermally-intense benchmark across Table II's active sinks.

(The passive sink is excluded: it cannot even sustain the baseline's
bandwidth — Fig. 4 — so every policy just shuts down.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import CoolPimSystem
from repro.experiments.common import RunScale, format_table, scaled_workload
from repro.graph import get_dataset
from repro.thermal.cooling import COOLING_SOLUTIONS

SINKS = ["low-end", "commodity", "high-end"]
POLICIES = ["non-offloading", "naive-offloading", "coolpim-sw"]


@dataclass
class CoolingSweepResult:
    #: [sink][policy] → (speedup_vs_that_sink's_baseline, peak_T, frac)
    cells: Dict[str, Dict[str, tuple]]

    def coolpim_fraction(self, sink: str) -> float:
        return self.cells[sink]["coolpim-sw"][2]


def run(
    workload: str = "bfs-twc", scale: Optional[RunScale] = None
) -> CoolingSweepResult:
    scale = scale or RunScale.full()
    graph = get_dataset(scale.dataset)
    cells: Dict[str, Dict[str, tuple]] = {}
    for sink in SINKS:
        system = CoolPimSystem(cooling=COOLING_SOLUTIONS[sink])
        results = {
            p: system.run(scaled_workload(workload, scale), graph, p)
            for p in POLICIES
        }
        base = results["non-offloading"]
        cells[sink] = {
            p: (
                r.speedup_over(base),
                r.peak_dram_temp_c,
                r.offload_fraction,
            )
            for p, r in results.items()
        }
    return CoolingSweepResult(cells=cells)


def format_result(result: CoolingSweepResult, workload: str = "bfs-twc") -> str:
    rows = []
    for sink, per_policy in result.cells.items():
        naive = per_policy["naive-offloading"]
        cool = per_policy["coolpim-sw"]
        rows.append(
            (sink, naive[0], naive[1], cool[0], cool[1], cool[2])
        )
    table = format_table(
        ["Sink", "Naive su", "Naive T(C)", "CoolPIM su", "CoolPIM T(C)",
         "CoolPIM offload"],
        rows,
        title=f"Cooling-budget sweep on {workload}",
    )
    return table + (
        "\n  The feedback loop adapts the offloading intensity to whatever "
        "sink is fitted\n  — no reconfiguration, no re-calibration."
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
