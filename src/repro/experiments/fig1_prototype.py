"""Fig. 1 — thermal evaluation of a real HMC 1.1 prototype.

The paper photographs an AC-510 module (Kintex FPGA + 4 GB HMC 1.1,
60 GB/s) with a thermal camera under three heat sinks, at idle and busy,
and observes a shutdown with the passive sink. Paper surface readings:

=============  =======  =======
Heat sink      Idle     Busy
=============  =======  =======
High-end       40.5 °C  47.3 °C
Low-end        45.3 °C  60.5 °C
Passive        71.1 °C  85.4 °C (→ shutdown)
=============  =======  =======

We reproduce the experiment with the calibrated thermal model of the
HMC 1.1 package. The prototype's HMC draws ~11.5 W at idle (the SerDes
links never idle — consistent with the independent characterization the
paper cites [12]), and the module shares its heat sink with the FPGA, so
a fraction of FPGA power crosses into the HMC's sink; both effects are
part of the experiment configuration below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.common import format_table
from repro.hmc.config import HMC_1_1
from repro.thermal.cooling import (
    COOLING_SOLUTIONS,
    CoolingSolution,
    HIGH_END_ACTIVE,
    LOW_END_ACTIVE,
    PASSIVE,
)
from repro.thermal.model import HmcThermalModel
from repro.thermal.power import PowerModel, TrafficPoint

#: HMC 1.1 prototype static power split (W) — SerDes-dominated idle draw.
PROTOTYPE_STATIC_LOGIC_W = 9.0
PROTOTYPE_STATIC_DRAM_W = 2.5

#: Share of the ~20 W FPGA's heat crossing through the shared heat sink,
#: expressed as equivalent extra logic power.
FPGA_COUPLING_W = 3.0

#: Prototype busy point: both half-width links saturated.
BUSY_BANDWIDTH_GBS = 60.0

#: The AC-510's heat sinks are small module parts, not the server-class
#: sinks of Table II: its "high-end active" option is a compact sink with
#: a strong fan (~1 °C/W), far from the 2×-wheel 0.2 °C/W plate-fin sink
#: modelled for HMC 2.0. Passive and low-end match Table II.
PROTOTYPE_HIGH_END = CoolingSolution("high-end", 1.0, 380.0)
PROTOTYPE_SINKS = [PROTOTYPE_HIGH_END, LOW_END_ACTIVE, PASSIVE]

#: Surface temperature at which the prototype shuts down (die ≈ 95 °C).
SHUTDOWN_SURFACE_C = 85.0

#: Paper's measured surface temperatures (°C) for comparison columns.
PAPER_SURFACE_C = {
    ("high-end", "idle"): 40.5,
    ("high-end", "busy"): 47.3,
    ("low-end", "idle"): 45.3,
    ("low-end", "busy"): 60.5,
    ("passive", "idle"): 71.1,
    ("passive", "busy"): 85.4,
}


@dataclass(frozen=True)
class PrototypePoint:
    cooling: str
    state: str            # "idle" | "busy"
    surface_c: float
    die_c: float
    paper_surface_c: float
    shutdown: bool


def _prototype_model(cooling: CoolingSolution) -> HmcThermalModel:
    power = PowerModel(
        HMC_1_1,
        static_logic_w=PROTOTYPE_STATIC_LOGIC_W + FPGA_COUPLING_W,
        static_dram_total_w=PROTOTYPE_STATIC_DRAM_W,
    )
    return HmcThermalModel(config=HMC_1_1, cooling=cooling, power_model=power)


def run(coolings: List[CoolingSolution] | None = None) -> List[PrototypePoint]:
    """Idle/busy surface and die temperatures under each heat sink."""
    coolings = coolings if coolings is not None else PROTOTYPE_SINKS
    points: List[PrototypePoint] = []
    for cooling in coolings:
        model = _prototype_model(cooling)
        for state, traffic in (
            ("idle", TrafficPoint.idle()),
            ("busy", TrafficPoint.streaming(BUSY_BANDWIDTH_GBS)),
        ):
            surface = model.steady_surface_c(traffic)
            die = model.steady_peak_dram_c(traffic)
            points.append(
                PrototypePoint(
                    cooling=cooling.name,
                    state=state,
                    surface_c=surface,
                    die_c=die,
                    paper_surface_c=PAPER_SURFACE_C.get((cooling.name, state), float("nan")),
                    shutdown=surface >= SHUTDOWN_SURFACE_C,
                )
            )
    return points


def format_result(points: List[PrototypePoint]) -> str:
    rows = [
        (
            p.cooling,
            p.state,
            p.surface_c,
            p.paper_surface_c,
            p.die_c,
            "SHUTDOWN" if p.shutdown else "",
        )
        for p in points
    ]
    return format_table(
        ["Cooling", "State", "Surface (model, C)", "Surface (paper, C)",
         "Die (model, C)", "Note"],
        rows,
        title="Fig. 1 - HMC 1.1 prototype thermal evaluation",
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
