"""Overheat-management comparison (Sec. III-C's performance trade-off).

The paper discusses two alternatives to source throttling when the HMC
overheats:

1. **Conservative shutdown** (the HMC 1.1 prototype): run at full speed
   until the die hits ~95 °C, then stop completely — contents lost,
   recovery takes tens of seconds, "much longer than the processing time
   of typical GPU kernels".
2. **Dynamic DRAM management**: derate frequency / double refresh per
   temperature phase — "a non-trivial performance degradation because of
   slowing down not only PIM instructions but regular memory requests".

CoolPIM is motivated as the balance between them. This experiment runs a
thermally-intense workload under naïve offloading with each management
mode, plus CoolPIM under dynamic management, and reports the runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import CoolPimSystem
from repro.experiments.common import RunScale, format_table, scaled_workload
from repro.graph import get_dataset
from repro.hmc.dram_timing import TemperaturePhasePolicy


@dataclass
class ManagementResult:
    #: label → (runtime_s, peak_temp_c, shutdowns, speedup_vs_baseline)
    rows: Dict[str, tuple]


def run(
    workload: str = "bfs-dwc", scale: Optional[RunScale] = None
) -> ManagementResult:
    scale = scale or RunScale.full()
    graph = get_dataset(scale.dataset)

    dynamic = CoolPimSystem()
    conservative = CoolPimSystem(
        phase_policy=TemperaturePhasePolicy(conservative_shutdown=True)
    )

    rows: Dict[str, tuple] = {}

    base = dynamic.run(scaled_workload(workload, scale), graph,
                       "non-offloading")
    rows["baseline (no offloading)"] = (
        base.runtime_s, base.peak_dram_temp_c, base.shutdowns, 1.0
    )

    for label, system, policy in (
        ("naive + conservative shutdown", conservative, "naive-offloading"),
        ("naive + dynamic derating", dynamic, "naive-offloading"),
        ("CoolPIM (SW) + dynamic derating", dynamic, "coolpim-sw"),
        ("CoolPIM (HW) + dynamic derating", dynamic, "coolpim-hw"),
    ):
        res = system.run(scaled_workload(workload, scale), graph, policy)
        rows[label] = (
            res.runtime_s,
            res.peak_dram_temp_c,
            res.shutdowns,
            base.runtime_s / res.runtime_s,
        )
    return ManagementResult(rows=rows)


def format_result(result: ManagementResult, workload: str = "bfs-dwc") -> str:
    table_rows = [
        (label, t * 1e3, temp, shutdowns, su)
        for label, (t, temp, shutdowns, su) in result.rows.items()
    ]
    return format_table(
        ["Management", "Runtime (ms)", "Peak T (C)", "Shutdowns", "Speedup"],
        table_rows,
        title=f"Overheat-management comparison on {workload} "
              "(naive offloading unless throttled)",
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
