"""Fig. 14 — PIM rate over time under software and hardware control.

Replays ``bfs-ta`` (chosen by the paper for its long runtime and larger
SW/HW delay difference) under naïve offloading, CoolPIM (SW), and
CoolPIM (HW), sampling the PIM offloading rate at millisecond granularity.
The paper's observations: naïve holds a high rate throughout; both
CoolPIM variants pull the rate into range shortly after the thermal
warning; the software path lags the hardware path by under a millisecond —
trivial against the thermal response time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import CoolPimSystem
from repro.experiments.common import RunScale, format_table, scaled_workload
from repro.graph import get_dataset

POLICIES = ["naive-offloading", "coolpim-sw", "coolpim-hw"]
SAMPLE_MS = 1.0


@dataclass
class TimeSeriesResult:
    #: policy → list of (time_ms, pim_rate_ops_ns, temp_c).
    series: Dict[str, List[Tuple[float, float, float]]]
    #: policy → time (ms) of the first thermal warning (None if never).
    first_warning_ms: Dict[str, Optional[float]]


def _resample(
    timeline: List[Tuple[float, float, float, float]], sample_ms: float
) -> List[Tuple[float, float, float]]:
    """Average the simulator timeline into fixed millisecond bins."""
    if not timeline:
        return []
    t = np.array([p[0] for p in timeline]) * 1e3
    temp = np.array([p[1] for p in timeline])
    rate = np.array([p[2] for p in timeline])
    out = []
    edge = 0.0
    while edge < t[-1]:
        mask = (t >= edge) & (t < edge + sample_ms)
        if mask.any():
            out.append(
                (edge + sample_ms / 2, float(rate[mask].mean()),
                 float(temp[mask].mean()))
            )
        edge += sample_ms
    return out


def run(
    workload: str = "bfs-ta",
    scale: Optional[RunScale] = None,
    sample_ms: float = SAMPLE_MS,
) -> TimeSeriesResult:
    scale = scale or RunScale.full()
    graph = get_dataset(scale.dataset)
    system = CoolPimSystem()
    series: Dict[str, List[Tuple[float, float, float]]] = {}
    first_warning: Dict[str, Optional[float]] = {}
    for policy in POLICIES:
        result = system.run(scaled_workload(workload, scale), graph, policy)
        series[policy] = _resample(result.timeline, sample_ms)
        warn_ms = None
        for t_s, temp, _rate, _frac in result.timeline:
            if temp >= 85.0:
                warn_ms = t_s * 1e3
                break
        first_warning[policy] = warn_ms
    return TimeSeriesResult(series=series, first_warning_ms=first_warning)


def format_result(result: TimeSeriesResult) -> str:
    # Align on the shortest series for a compact comparison table.
    n = min(len(s) for s in result.series.values())
    rows = []
    for i in range(n):
        t = result.series[POLICIES[0]][i][0]
        rows.append(
            [f"{t:.1f}"] + [f"{result.series[p][i][1]:.2f}" for p in POLICIES]
        )
    table = format_table(
        ["Time (ms)", "Naive", "CoolPIM(SW)", "CoolPIM(HW)"],
        rows,
        title="Fig. 14 - PIM rate (op/ns) over time, bfs-ta",
    )
    notes = [
        f"  first thermal warning ({p}): "
        + (f"{w:.1f} ms" if w is not None else "never")
        for p, w in result.first_warning_ms.items()
    ]
    from repro.viz import sparkline

    sparks = [
        f"  {p:18s} {sparkline([r for _t, r, _T in result.series[p]])}"
        for p in POLICIES
    ]
    return "\n".join([table, *notes, "  PIM-rate trend:", *sparks])


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
