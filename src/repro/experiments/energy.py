"""Energy-efficiency analysis (extension beyond the paper's figures).

PIM's promise is *energy* efficiency (Sec. I), and CoolPIM's thermal
argument has an energy corollary the paper only implies: operating in the
extended temperature phases costs extra energy (doubled refresh, leakage,
derated frequency stretching runtime), and strong cooling costs fan
power. This experiment reports total energy (package + fan) per
benchmark/policy, normalized to the non-offloading baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments.common import RunScale, format_table
from repro.experiments.evaluation import EvaluationMatrix, run_matrix

POLICIES = ["naive-offloading", "coolpim-sw", "coolpim-hw", "ideal-thermal"]


@dataclass
class EnergyResult:
    matrix: EvaluationMatrix
    #: [workload][policy] → total energy normalized to baseline.
    energy_ratio: Dict[str, Dict[str, float]]
    #: [workload][policy] → average package+fan power (W).
    avg_power_w: Dict[str, Dict[str, float]]

    def naive_energy_overhead(self, workload: str) -> float:
        """Extra energy naïve offloading burns vs baseline (fraction)."""
        return self.energy_ratio[workload]["naive-offloading"] - 1.0


def run(scale: Optional[RunScale] = None) -> EnergyResult:
    matrix = run_matrix(scale)
    ratios: Dict[str, Dict[str, float]] = {}
    powers: Dict[str, Dict[str, float]] = {}
    for wl in matrix.workloads:
        base = matrix.baseline(wl)
        ratios[wl] = {
            p: matrix.results[wl][p].energy_ratio(base) for p in POLICIES
        }
        powers[wl] = {
            p: matrix.results[wl][p].avg_power_w
            for p in ["non-offloading"] + POLICIES
        }
    return EnergyResult(matrix=matrix, energy_ratio=ratios, avg_power_w=powers)


def format_result(result: EnergyResult) -> str:
    headers = ["Benchmark", "Naive", "CoolPIM(SW)", "CoolPIM(HW)", "Ideal"]
    rows = [
        [wl] + [result.energy_ratio[wl][p] for p in POLICIES]
        for wl in result.energy_ratio
    ]
    table = format_table(
        headers, rows,
        title="Energy (package + fan) normalized to the non-offloading "
              "baseline",
    )
    worst = max(result.energy_ratio, key=result.naive_energy_overhead)
    note = (
        f"  worst naive energy overhead: +{result.naive_energy_overhead(worst):.0%} "
        f"({worst}) — overheated offloading pays twice: derated runtime and "
        "hot-phase DRAM energy"
    )
    return "\n".join([table, note])


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
