"""Fig. 3 — heat map at full bandwidth with a commodity-server sink.

The paper renders a 3D heat map of all layers plus a 2D map of the logic
layer at 320 GB/s, observing (1) the lowest DRAM die and the logic layer
run hottest, and (2) hot spots at the centre of each vault (vault
controller + FU power density). ``run()`` returns the per-layer fields;
``format_result`` renders an ASCII map and the per-layer peaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.experiments.common import format_table
from repro.thermal.model import HmcThermalModel
from repro.thermal.power import TrafficPoint

FULL_BANDWIDTH_GBS = 320.0


@dataclass
class HeatmapResult:
    layer_maps: Dict[str, np.ndarray]        # °C fields (ny, nx)
    layer_peaks: List[tuple]                 # (layer, peak, mean) bottom→top
    hotspot_is_vault_center: bool
    model: HmcThermalModel


def run(sub: int = 4) -> HeatmapResult:
    """Solve the steady full-bandwidth operating point on a finer grid."""
    model = HmcThermalModel(sub=sub)
    model.steady_state(TrafficPoint.streaming(FULL_BANDWIDTH_GBS))
    maps = model.all_heatmaps()

    ordered = [l.name for l in model.stack.layers]
    peaks = [
        (name, float(maps[name].max()), float(maps[name].mean()))
        for name in ordered
    ]

    # Hot-spot check: within vault 0, the hottest logic cell should be one
    # of the centre cells (controller + FU placement).
    logic = maps["logic"]
    cells = model.floorplan.vault_cells(0)
    centers = set(model.floorplan.vault_center_cells(0))
    hottest = max(cells, key=lambda c: logic[c[1], c[0]])
    return HeatmapResult(
        layer_maps=maps,
        layer_peaks=peaks,
        hotspot_is_vault_center=hottest in centers,
        model=model,
    )


def ascii_heatmap(grid: np.ndarray, levels: str = " .:-=+*#%@") -> str:
    """Render a temperature field as ASCII art (hotter → denser glyph)."""
    lo, hi = float(grid.min()), float(grid.max())
    span = (hi - lo) or 1.0
    out_lines = []
    for row in grid:
        idx = ((row - lo) / span * (len(levels) - 1)).astype(int)
        out_lines.append("".join(levels[i] for i in idx))
    out_lines.append(f"[{lo:.1f} C .. {hi:.1f} C]")
    return "\n".join(out_lines)


def format_result(result: HeatmapResult) -> str:
    parts = [
        format_table(
            ["Layer (bottom→top)", "Peak (C)", "Mean (C)"],
            result.layer_peaks,
            title="Fig. 3 - Layer temperatures at 320 GB/s, commodity sink",
        ),
        "",
        "Logic-layer heat map (hot spots at vault centres):",
        ascii_heatmap(result.layer_maps["logic"]),
        "",
        f"Hottest logic cell at a vault centre: {result.hotspot_is_vault_center}",
    ]
    return "\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
