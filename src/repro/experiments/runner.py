"""Run every experiment and print the paper-style outputs.

Usage::

    python -m repro.experiments.runner [--quick] [--seed N] [--jobs N]

``--quick`` shrinks the evaluation graph and query counts (CI-scale).
``--seed`` makes the whole sweep reproducible end to end. ``--jobs N``
runs the selected experiments as jobs on the :mod:`repro.service`
process pool (with result caching when ``--cache-dir`` points at a
store); the default remains the classic serial in-process sweep.
EXPERIMENTS.md records one full run of this script.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.obs.tracer import get_tracer

from repro.experiments import (
    energy,
    fig1_prototype,
    fig2_validation,
    fig3_heatmap,
    fig4_bandwidth,
    fig5_pim_rate,
    fig8_delays,
    fig10_speedup,
    fig11_bandwidth_savings,
    fig12_pim_rate_avg,
    fig13_peak_temp,
    cooling_sweep,
    fig14_time_series,
    hotspot,
    management,
    sensitivity,
    tables,
)
from repro.experiments.common import RunScale


def experiment_catalog(scale: RunScale) -> Dict[str, Callable[[], str]]:
    """Every experiment id mapped to a thunk producing its formatted text."""
    return {
        "tables": lambda: tables.all_tables(),
        "fig1": lambda: fig1_prototype.format_result(fig1_prototype.run()),
        "fig2": lambda: fig2_validation.format_result(fig2_validation.run()),
        "fig3": lambda: fig3_heatmap.format_result(fig3_heatmap.run()),
        "fig4": lambda: fig4_bandwidth.format_result(fig4_bandwidth.run()),
        "fig5": lambda: fig5_pim_rate.format_result(fig5_pim_rate.run()),
        "fig8": lambda: fig8_delays.format_result(fig8_delays.run(scale=scale)),
        "fig10": lambda: fig10_speedup.format_result(fig10_speedup.run(scale)),
        "fig11": lambda: fig11_bandwidth_savings.format_result(
            fig11_bandwidth_savings.run(scale)),
        "fig12": lambda: fig12_pim_rate_avg.format_result(
            fig12_pim_rate_avg.run(scale)),
        "fig13": lambda: fig13_peak_temp.format_result(fig13_peak_temp.run(scale)),
        "fig14": lambda: fig14_time_series.format_result(
            fig14_time_series.run(scale=scale)),
        # Extensions beyond the paper's figures (DESIGN.md §6):
        "energy": lambda: energy.format_result(energy.run(scale)),
        "management": lambda: management.format_result(
            management.run(scale=scale)),
        "sensitivity": lambda: sensitivity.format_result(
            sensitivity.run(scale=scale)),
        "hotspot": lambda: hotspot.format_result(hotspot.run()),
        "cooling-sweep": lambda: cooling_sweep.format_result(
            cooling_sweep.run(scale=scale)),
    }


#: Stable list of experiment ids (sweep order).
EXPERIMENT_IDS: List[str] = list(experiment_catalog(RunScale.quick()))


def run_experiment(name: str, scale: Optional[RunScale] = None) -> str:
    """Execute one experiment by id and return its formatted text.

    This is the entry point the ``experiment`` job kind calls inside
    pool workers (:func:`repro.service.handlers.run_experiment_job`).
    """
    scale = scale or RunScale.full()
    catalog = experiment_catalog(scale)
    if name not in catalog:
        raise KeyError(
            f"unknown experiment {name!r}; available: {list(catalog)}"
        )
    with get_tracer().span(
        f"experiment.{name}", cat="experiment", dataset=scale.dataset,
        workload_scale=scale.workload_scale, seed=scale.seed,
    ):
        return catalog[name]()


def sweep_texts_parallel(
    selected: List[str],
    scale: RunScale,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    timeout_s: Optional[float] = None,
    max_retries: int = 0,
):
    """Run experiments as pool jobs; returns ``(texts, report)``.

    ``texts`` maps experiment id → formatted output (or an error note for
    failed jobs) in the requested order.
    """
    from repro.service import (
        JobJournal,
        JobScheduler,
        ResultStore,
        experiment_spec,
    )
    from repro.service.handlers import prewarm_worker
    from repro.service.store import default_cache_dir

    specs = [
        experiment_spec(
            name, scale=scale, timeout_s=timeout_s, max_retries=max_retries,
        )
        for name in selected
    ]
    root = cache_dir if cache_dir is not None else default_cache_dir()
    store = ResultStore(root=root)
    with JobJournal(store.root / "journal.jsonl") as journal:
        scheduler = JobScheduler(
            store=store, journal=journal, max_workers=jobs, use_cache=use_cache,
            worker_initializer=prewarm_worker,
        )
        report = scheduler.run(specs)

    texts: Dict[str, str] = {}
    for name, spec in zip(selected, specs):
        result = report.result_for(spec)
        if result is not None:
            texts[name] = result.payload.get("text", "")
        else:
            failure = report.failure_for(spec)
            texts[name] = (
                f"[job failed: {failure.reason} after {failure.attempts} "
                f"attempt(s) — {failure.message}]"
                if failure is not None
                else "[job produced no result]"
            )
    return texts, report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small graph / short runs (smoke-test scale)",
    )
    parser.add_argument(
        "--only", default=None,
        help="comma-separated experiment ids (e.g. 'fig5,fig10,tables')",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="also write each experiment's output to DIR/<id>.txt",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload RNG seed threaded through every experiment",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="run experiments on an N-worker process pool via the job "
             "service (default: serial in-process)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory for --jobs mode "
             "(default: results/cache, or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="with --jobs: re-execute everything, ignoring cached results",
    )
    parser.add_argument(
        "--engine", default=None, choices=["macro", "gang"],
        help="evaluation-sweep engine (gang: lockstep policy gangs, "
             "bit-equal to macro; exported so --jobs workers inherit it)",
    )
    args = parser.parse_args(argv)
    if args.engine:
        # Env (not argv/params) so forked sweep workers see it while job
        # cache keys stay engine-independent.
        os.environ["REPRO_SWEEP_ENGINE"] = args.engine
    scale = (
        RunScale.quick(seed=args.seed) if args.quick
        else RunScale.full(seed=args.seed)
    )

    experiments = experiment_catalog(scale)
    selected = (
        [e.strip() for e in args.only.split(",")] if args.only else list(experiments)
    )
    unknown = [e for e in selected if e not in experiments]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(experiments)}")
        return 2

    out_dir = None
    if args.out:
        import pathlib

        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)

    sweep_start = time.time()

    def write_manifest(ok: bool) -> None:
        """Provenance record for the sweep (``--out DIR/manifest.json``)."""
        if out_dir is None:
            return
        from repro.obs.manifest import RunManifest

        manifest = RunManifest.collect(
            command="repro.experiments.runner",
            config={
                "experiments": selected,
                "scale": scale.to_dict(),
                "jobs": args.jobs,
                "quick": args.quick,
            },
            seed=args.seed,
            wall_duration_s=time.time() - sweep_start,
            outputs=sorted(
                str(out_dir / f"{name}.txt") for name in selected
            ),
            ok=ok,
        )
        manifest.write(out_dir / "manifest.json")

    if args.jobs is not None:
        texts, report = sweep_texts_parallel(
            selected, scale,
            jobs=args.jobs or None,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
        )
        for name in selected:
            print(f"\n{'=' * 72}\n== {name}\n{'=' * 72}")
            print(texts[name])
            if out_dir is not None:
                (out_dir / f"{name}.txt").write_text(texts[name] + "\n")
        print(f"\n[sweep: {report.summary_line()}]")
        write_manifest(report.ok)
        return 0 if report.ok else 1

    for name in selected:
        start = time.time()
        print(f"\n{'=' * 72}\n== {name}\n{'=' * 72}")
        text = run_experiment(name, scale)
        print(text)
        print(f"[{name} took {time.time() - start:.1f} s]")
        if out_dir is not None:
            (out_dir / f"{name}.txt").write_text(text + "\n")
    write_manifest(True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
