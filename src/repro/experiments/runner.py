"""Run every experiment and print the paper-style outputs.

Usage::

    python -m repro.experiments.runner [--quick]

``--quick`` shrinks the evaluation graph and query counts (CI-scale).
EXPERIMENTS.md records one full run of this script.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    energy,
    fig1_prototype,
    fig2_validation,
    fig3_heatmap,
    fig4_bandwidth,
    fig5_pim_rate,
    fig8_delays,
    fig10_speedup,
    fig11_bandwidth_savings,
    fig12_pim_rate_avg,
    fig13_peak_temp,
    cooling_sweep,
    fig14_time_series,
    hotspot,
    management,
    sensitivity,
    tables,
)
from repro.experiments.common import RunScale


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small graph / short runs (smoke-test scale)",
    )
    parser.add_argument(
        "--only", default=None,
        help="comma-separated experiment ids (e.g. 'fig5,fig10,tables')",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="also write each experiment's output to DIR/<id>.txt",
    )
    args = parser.parse_args(argv)
    scale = RunScale.quick() if args.quick else RunScale.full()

    experiments = {
        "tables": lambda: tables.all_tables(),
        "fig1": lambda: fig1_prototype.format_result(fig1_prototype.run()),
        "fig2": lambda: fig2_validation.format_result(fig2_validation.run()),
        "fig3": lambda: fig3_heatmap.format_result(fig3_heatmap.run()),
        "fig4": lambda: fig4_bandwidth.format_result(fig4_bandwidth.run()),
        "fig5": lambda: fig5_pim_rate.format_result(fig5_pim_rate.run()),
        "fig8": lambda: fig8_delays.format_result(fig8_delays.run(scale=scale)),
        "fig10": lambda: fig10_speedup.format_result(fig10_speedup.run(scale)),
        "fig11": lambda: fig11_bandwidth_savings.format_result(
            fig11_bandwidth_savings.run(scale)),
        "fig12": lambda: fig12_pim_rate_avg.format_result(
            fig12_pim_rate_avg.run(scale)),
        "fig13": lambda: fig13_peak_temp.format_result(fig13_peak_temp.run(scale)),
        "fig14": lambda: fig14_time_series.format_result(
            fig14_time_series.run(scale=scale)),
        # Extensions beyond the paper's figures (DESIGN.md §6):
        "energy": lambda: energy.format_result(energy.run(scale)),
        "management": lambda: management.format_result(
            management.run(scale=scale)),
        "sensitivity": lambda: sensitivity.format_result(
            sensitivity.run(scale=scale)),
        "hotspot": lambda: hotspot.format_result(hotspot.run()),
        "cooling-sweep": lambda: cooling_sweep.format_result(
            cooling_sweep.run(scale=scale)),
    }
    selected = (
        [e.strip() for e in args.only.split(",")] if args.only else list(experiments)
    )
    unknown = [e for e in selected if e not in experiments]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(experiments)}")
        return 2

    out_dir = None
    if args.out:
        import pathlib

        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)

    for name in selected:
        start = time.time()
        print(f"\n{'=' * 72}\n== {name}\n{'=' * 72}")
        text = experiments[name]()
        print(text)
        print(f"[{name} took {time.time() - start:.1f} s]")
        if out_dir is not None:
            (out_dir / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
