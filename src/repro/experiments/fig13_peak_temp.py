"""Fig. 13 — peak DRAM temperature per benchmark.

With naïve offloading the peak DRAM temperature exceeds 90 °C for most
benchmarks (bfs-dwc and bfs-twc reach ~95 °C); CoolPIM keeps every
benchmark at/near the 85 °C normal-range boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments.common import RunScale, format_table
from repro.experiments.evaluation import EvaluationMatrix, run_matrix

POLICIES = ["naive-offloading", "coolpim-sw", "coolpim-hw"]


@dataclass
class PeakTempResult:
    matrix: EvaluationMatrix
    temps: Dict[str, Dict[str, float]]

    def hottest_naive(self) -> float:
        return max(self.temps[wl]["naive-offloading"] for wl in self.temps)

    def hottest_coolpim(self) -> float:
        return max(
            self.temps[wl][p]
            for wl in self.temps
            for p in ("coolpim-sw", "coolpim-hw")
        )


def run(scale: Optional[RunScale] = None) -> PeakTempResult:
    matrix = run_matrix(scale)
    temps = {
        wl: {p: matrix.results[wl][p].peak_dram_temp_c for p in POLICIES}
        for wl in matrix.workloads
    }
    return PeakTempResult(matrix=matrix, temps=temps)


def format_result(result: PeakTempResult) -> str:
    headers = ["Benchmark", "Naive", "CoolPIM(SW)", "CoolPIM(HW)"]
    rows = [
        [wl] + [result.temps[wl][p] for p in POLICIES] for wl in result.temps
    ]
    table = format_table(
        headers, rows, title="Fig. 13 - Peak DRAM temperature (C)"
    )
    notes = [
        f"  hottest naive run:   {result.hottest_naive():.1f} C (paper: ~95 C)",
        f"  hottest CoolPIM run: {result.hottest_coolpim():.1f} C "
        "(paper: <= 85 C)",
    ]
    from repro.viz import bar_chart

    chart = bar_chart(
        {wl: result.temps[wl]["naive-offloading"] for wl in result.temps},
        reference=85.0, unit="C", width=40,
        title="Naive-offloading peak DRAM temperature:",
    )
    return "\n".join([table, *notes, "", chart])


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
