"""Tables I–IV: the paper's constant tables, regenerated from the code.

Each ``table*`` function derives its rows from the implementation (not
from literals local to this module), so the table doubles as a check that
the model encodes the paper's parameters.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.translation import PIM_TO_CUDA
from repro.experiments.common import format_table
from repro.gpu.config import GPU_DEFAULT
from repro.hmc.config import HMC_2_0
from repro.hmc.isa import OPCODE_INFO, PimOpClass
from repro.hmc.packet import PacketType, flit_cost
from repro.thermal.cooling import COOLING_SOLUTIONS, relative_fan_power


def table1_rows() -> List[Tuple[str, str, str]]:
    """Table I: FLIT cost per transaction type."""
    labels = {
        PacketType.READ64: "64-byte READ",
        PacketType.WRITE64: "64-byte WRITE",
        PacketType.PIM: "PIM inst. without return",
        PacketType.PIM_RET: "PIM inst. with return",
    }
    rows = []
    for ptype, label in labels.items():
        req, rsp = flit_cost(ptype)
        rows.append((label, f"{req} FLITs", f"{rsp} FLITs"))
    return rows


def table1() -> str:
    return format_table(
        ["Type", "Request", "Response"],
        table1_rows(),
        title="Table I - HMC memory transaction bandwidth requirement "
        "(FLIT size: 128-bit)",
    )


def table2_rows() -> List[Tuple[str, float, str]]:
    """Table II: cooling solutions with fan-curve power."""
    rows = []
    for cooling in COOLING_SOLUTIONS.values():
        power = relative_fan_power(
            cooling.thermal_resistance_c_w, cooling.wheel_diameter_relative
        )
        label = "0" if power == 0 else f"{power:.0f}x"
        rows.append((cooling.name, cooling.thermal_resistance_c_w, label))
    return rows


def table2() -> str:
    return format_table(
        ["Type", "Thermal Resistance (C/W)", "Cooling Power"],
        table2_rows(),
        title="Table II - Typical cooling types",
    )


def table3_rows() -> List[Tuple[str, str, str]]:
    """Table III: PIM instruction → CUDA atomic mapping by class."""
    class_labels = {
        PimOpClass.ARITHMETIC: "Arithmetic",
        PimOpClass.BITWISE: "Bitwise",
        PimOpClass.BOOLEAN: "Boolean",
        PimOpClass.COMPARISON: "Comparison",
        PimOpClass.FLOATING: "Floating (ext. [23])",
    }
    by_class: dict = {}
    for opcode, (op_class, _ret) in OPCODE_INFO.items():
        by_class.setdefault(op_class, []).append(opcode)
    rows = []
    for op_class, opcodes in by_class.items():
        pim = ", ".join(sorted(o.value for o in opcodes))
        cuda = ", ".join(sorted({PIM_TO_CUDA[o] for o in opcodes}))
        rows.append((class_labels[op_class], pim, cuda))
    return rows


def table3() -> str:
    return format_table(
        ["Type", "PIM instruction", "Non-PIM"],
        table3_rows(),
        title="Table III - Examples of PIM instruction mapping",
    )


def table4_rows() -> List[Tuple[str, str]]:
    """Table IV: performance-evaluation configuration."""
    g, h = GPU_DEFAULT, HMC_2_0
    t = h.timing
    return [
        ("Host GPU", f"{g.num_sms} PTX SMs, {g.threads_per_warp} threads/warp, "
                     f"{g.freq_ghz} GHz"),
        ("GPU caches", f"{g.l1d_kb}KB private L1D, {g.l2_kb // 1024}MB "
                       f"{g.l2_ways}-way L2"),
        ("HMC", f"{h.capacity_gb} GB cube, 1 logic die, {h.num_dram_dies} DRAM dies"),
        ("HMC vaults", f"{h.num_vaults} vaults, {h.total_banks} DRAM banks"),
        ("DRAM timing", f"tCL=tRCD=tRP={t.tCL} ns, tRAS={t.tRAS} ns"),
        ("Links", f"{h.num_links} links per package, "
                  f"{h.link_bandwidth_gbs:.0f} GB/s per link"),
        ("Data bandwidth", f"{h.link_data_bandwidth_gbs:.0f} GB/s data bandwidth "
                           f"per link"),
        ("DRAM temp phases", "0-85C, 85-95C, 95-105C; 20% freq reduction "
                             "per higher phase"),
        ("Benchmarks", "GraphBIG suite on LDBC-like synthetic graph"),
    ]


def table4() -> str:
    return format_table(
        ["Component", "Configuration"],
        table4_rows(),
        title="Table IV - Performance evaluation configurations",
    )


def all_tables() -> str:
    return "\n\n".join([table1(), table2(), table3(), table4()])


if __name__ == "__main__":  # pragma: no cover
    print(all_tables())
