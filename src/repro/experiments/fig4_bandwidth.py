"""Fig. 4 — peak DRAM temperature vs data bandwidth × cooling solution.

Sweeps 0–320 GB/s for the four Table II heat sinks. The paper's
observations: temperature grows with bandwidth; with a commodity-server
sink the peak reaches 81 °C at 320 GB/s and 33 °C idle; passive and
low-end sinks blow through the 105 °C operating ceiling well before full
bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.common import format_table
from repro.hmc.dram_timing import TemperaturePhasePolicy
from repro.thermal.cooling import COOLING_SOLUTIONS
from repro.thermal.model import HmcThermalModel
from repro.thermal.power import TrafficPoint

DEFAULT_BANDWIDTHS = tuple(range(0, 321, 40))
OPERATING_CEILING_C = 105.0


@dataclass
class BandwidthSweep:
    bandwidths_gbs: Sequence[float]
    #: cooling name → peak DRAM temperature per bandwidth point.
    curves: Dict[str, List[float]]
    #: cooling name → lowest bandwidth exceeding 105 °C (None if never).
    ceiling_crossing_gbs: Dict[str, float | None]


def run(bandwidths: Sequence[float] = DEFAULT_BANDWIDTHS) -> BandwidthSweep:
    curves: Dict[str, List[float]] = {}
    crossings: Dict[str, float | None] = {}
    for name, cooling in COOLING_SOLUTIONS.items():
        model = HmcThermalModel(cooling=cooling)
        temps = [
            model.steady_peak_dram_c(TrafficPoint.streaming(bw)) for bw in bandwidths
        ]
        curves[name] = temps
        crossing = None
        for bw, t in zip(bandwidths, temps):
            if t > OPERATING_CEILING_C:
                crossing = bw
                break
        crossings[name] = crossing
    return BandwidthSweep(
        bandwidths_gbs=list(bandwidths), curves=curves,
        ceiling_crossing_gbs=crossings,
    )


def format_result(sweep: BandwidthSweep) -> str:
    headers = ["BW (GB/s)"] + list(sweep.curves)
    rows = []
    for i, bw in enumerate(sweep.bandwidths_gbs):
        rows.append([bw] + [sweep.curves[c][i] for c in sweep.curves])
    table = format_table(
        headers, rows,
        title="Fig. 4 - Peak DRAM temperature (C) vs data bandwidth and cooling",
    )
    notes = [
        f"  {name}: exceeds {OPERATING_CEILING_C:.0f} C at {bw} GB/s"
        for name, bw in sweep.ceiling_crossing_gbs.items()
        if bw is not None
    ]
    from repro.viz import line_chart

    chart = line_chart(
        sweep.curves, xs=list(sweep.bandwidths_gbs), width=56, height=12,
        x_label="data bandwidth (GB/s)", y_label="peak DRAM C",
    )
    return "\n".join([table, *notes, "", chart])


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
