"""Fig. 12 — average PIM offloading rate per benchmark.

Naïve offloading reaches multi-op/ns rates on the BFS/SSSP warp-centric
kernels, while CoolPIM's source throttling holds every benchmark at or
below the 1.3 op/ns thermal threshold (Fig. 5). kcore and sssp-dtc sit
under the threshold on their own, which is why throttling never engages
for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.initialization import PIM_RATE_THRESHOLD_OPS_NS
from repro.experiments.common import RunScale, format_table
from repro.experiments.evaluation import EvaluationMatrix, run_matrix

POLICIES = ["naive-offloading", "coolpim-sw", "coolpim-hw"]


@dataclass
class PimRateResult:
    matrix: EvaluationMatrix
    rates: Dict[str, Dict[str, float]]

    def coolpim_within_threshold(self, slack: float = 0.25) -> bool:
        """All CoolPIM rates at/below the threshold (+slack for control
        ripple)."""
        limit = PIM_RATE_THRESHOLD_OPS_NS + slack
        return all(
            self.rates[wl][p] <= limit
            for wl in self.rates
            for p in ("coolpim-sw", "coolpim-hw")
        )


def run(scale: Optional[RunScale] = None) -> PimRateResult:
    matrix = run_matrix(scale)
    rates = {
        wl: {
            p: matrix.results[wl][p].avg_pim_rate_ops_ns for p in POLICIES
        }
        for wl in matrix.workloads
    }
    return PimRateResult(matrix=matrix, rates=rates)


def format_result(result: PimRateResult) -> str:
    headers = ["Benchmark", "Naive", "CoolPIM(SW)", "CoolPIM(HW)"]
    rows = [
        [wl] + [result.rates[wl][p] for p in POLICIES] for wl in result.rates
    ]
    table = format_table(
        headers, rows,
        title="Fig. 12 - Average PIM offloading rate (op/ns)",
    )
    ok = result.coolpim_within_threshold()
    return "\n".join(
        [table, f"  CoolPIM holds all rates near/below "
                f"{PIM_RATE_THRESHOLD_OPS_NS} op/ns: {ok}"]
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
