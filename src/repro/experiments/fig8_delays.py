"""Fig. 8 — delay time in the feedback control.

The paper's table:

================  ================  ================
Delay             Software-based    Hardware-based
================  ================  ================
Tthrottle         ~0.1 ms           ~0.1 µs
Tthermal          ~1 ms             ~1 ms
================  ================  ================

Regenerated from the policy implementations, plus a *measured* column:
the simulated time from the first thermal warning to the first effective
offloading-intensity reduction, observed in a live run of each mechanism
on a thermally-intense workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import CoolPimSystem
from repro.core.feedback import FeedbackDelays
from repro.core.hw_dynt import HwDynT
from repro.core.sw_dynt import SwDynT
from repro.experiments.common import RunScale, format_table, scaled_workload
from repro.graph import get_dataset


@dataclass
class DelayResult:
    sw: FeedbackDelays
    hw: FeedbackDelays
    #: mechanism → measured warning→reduction delay (s), None if the run
    #: never warned.
    measured_s: Dict[str, Optional[float]]


def _measure_reaction(policy, workload: str, scale: RunScale) -> Optional[float]:
    """Simulated time from first warning to first fraction drop."""
    system = CoolPimSystem()
    graph = get_dataset(scale.dataset)
    result = system.run(scaled_workload(workload, scale), graph, policy)
    warn_t = None
    for t, temp, _rate, _frac in result.timeline:
        if temp >= 85.0:
            warn_t = t
            break
    if warn_t is None:
        return None
    start_frac = policy.fraction_history[0][1]
    for t, frac in policy.fraction_history:
        if t >= warn_t and frac < start_frac - 1e-9:
            return t - warn_t
    return None


def run(workload: str = "bfs-twc", scale: Optional[RunScale] = None) -> DelayResult:
    scale = scale or RunScale.full()
    measured = {
        "software": _measure_reaction(SwDynT(), workload, scale),
        "hardware": _measure_reaction(HwDynT(), workload, scale),
    }
    return DelayResult(
        sw=FeedbackDelays.software(),
        hw=FeedbackDelays.hardware(),
        measured_s=measured,
    )


def format_result(result: DelayResult) -> str:
    def fmt(seconds: Optional[float]) -> str:
        if seconds is None:
            return "n/a (never warned)"
        if seconds < 1e-4:
            return f"{seconds * 1e6:.1f} us"
        return f"{seconds * 1e3:.2f} ms"

    rows = [
        ("Tthrottle (source throttling delay)",
         fmt(result.sw.throttle_s), fmt(result.hw.throttle_s)),
        ("Tthermal (thermal delay)",
         fmt(result.sw.thermal_s), fmt(result.hw.thermal_s)),
        ("measured warning->reduction",
         fmt(result.measured_s["software"]), fmt(result.measured_s["hardware"])),
    ]
    return format_table(
        ["Delay", "Software-based", "Hardware-based"],
        rows,
        title="Fig. 8 - Delay time in the feedback control",
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
