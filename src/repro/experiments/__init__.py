"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(...)`` returning structured rows and
``format_table(result)`` producing the text the paper's table/figure
reports. ``python -m repro.experiments.runner`` regenerates everything
(EXPERIMENTS.md records one such run).

==========  ====================================================
Module      Reproduces
==========  ====================================================
tables      Tables I–IV (FLIT costs, cooling, mapping, config)
fig1        HMC 1.1 prototype surface temperatures
fig2        Thermal-model validation (surface vs die)
fig3        Heat map at full bandwidth, commodity cooling
fig4        Peak DRAM temperature vs bandwidth × cooling
fig5        Peak DRAM temperature vs PIM offloading rate
fig10       Speedups over the non-offloading baseline
fig11       Normalized bandwidth consumption
fig12       Average PIM offloading rates
fig13       Peak DRAM temperature per benchmark
fig14       PIM-rate-over-time control traces (bfs-ta)
energy      Package+fan energy per policy (extension)
management  Shutdown vs derating vs CoolPIM (Sec. III-C, extension)
==========  ====================================================
"""

from repro.experiments.evaluation import EvaluationMatrix, run_matrix

__all__ = ["EvaluationMatrix", "run_matrix"]
