"""Fig. 5 — thermal impact of PIM offloading.

Peak DRAM temperature vs PIM offloading rate with the off-chip links kept
fully utilized by the PIM + regular mix (commodity-server cooling). The
paper's anchor points: ≤1.3 op/ns keeps the stack under 85 °C; 6.5 op/ns
reaches the 105 °C limit (the maximum sustainable rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.experiments.common import format_table
from repro.thermal.model import HmcThermalModel
from repro.thermal.power import TrafficPoint

DEFAULT_RATES = tuple(np.linspace(0.0, 7.0, 15))

NORMAL_LIMIT_C = 85.0
SHUTDOWN_LIMIT_C = 105.0


@dataclass
class PimRateSweep:
    rates_ops_ns: Sequence[float]
    temps_c: List[float]
    #: Highest rate keeping the stack within the normal range (≤85 °C).
    normal_rate_limit: float
    #: Highest rate before exceeding the 105 °C operating ceiling.
    max_rate_limit: float


def _crossing(rates: Sequence[float], temps: Sequence[float], limit: float) -> float:
    """Interpolated rate at which ``temps`` crosses ``limit``."""
    for i in range(1, len(rates)):
        if temps[i] > limit >= temps[i - 1]:
            span = temps[i] - temps[i - 1]
            frac = (limit - temps[i - 1]) / span if span else 0.0
            return rates[i - 1] + frac * (rates[i] - rates[i - 1])
    return float(rates[-1])


def run(rates: Sequence[float] = DEFAULT_RATES) -> PimRateSweep:
    model = HmcThermalModel()
    temps = [
        model.steady_peak_dram_c(TrafficPoint.pim_saturated(r)) for r in rates
    ]
    return PimRateSweep(
        rates_ops_ns=list(rates),
        temps_c=temps,
        normal_rate_limit=_crossing(rates, temps, NORMAL_LIMIT_C),
        max_rate_limit=_crossing(rates, temps, SHUTDOWN_LIMIT_C),
    )


def phase_label(temp_c: float) -> str:
    if temp_c < 85.0:
        return "0C-85C"
    if temp_c < 95.0:
        return "85C-95C"
    if temp_c < 105.0:
        return "95C-105C"
    return "Too Hot"


def format_result(sweep: PimRateSweep) -> str:
    rows: List[Tuple[float, float, str]] = [
        (r, t, phase_label(t)) for r, t in zip(sweep.rates_ops_ns, sweep.temps_c)
    ]
    table = format_table(
        ["PIM rate (op/ns)", "Peak DRAM temp (C)", "Phase"],
        rows,
        title="Fig. 5 - Thermal impact of PIM offloading (commodity sink)",
    )
    notes = [
        f"  rate for <= {NORMAL_LIMIT_C:.0f} C: {sweep.normal_rate_limit:.2f} op/ns "
        "(paper: 1.3)",
        f"  max rate before {SHUTDOWN_LIMIT_C:.0f} C: {sweep.max_rate_limit:.2f} "
        "op/ns (paper: 6.5)",
    ]
    from repro.viz import line_chart

    chart = line_chart(
        {"peak DRAM temp": sweep.temps_c}, xs=list(sweep.rates_ops_ns),
        width=56, height=12, x_label="PIM rate (op/ns)", y_label="C",
    )
    return "\n".join([table, *notes, "", chart])


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
