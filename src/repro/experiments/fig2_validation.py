"""Fig. 2 — thermal-model validation against the HMC 1.1 measurements.

The paper validates its KitFox/3D-ICE environment by modelling the
HMC 1.1 system at the prototype's cooling/bandwidth configuration and
comparing three quantities per heat sink (low-end and high-end):

- *Surface (measured)* — the thermal-camera reading,
- *Die (estimated)* — measured surface + a typical surface-to-junction
  resistance (Sec. III-A: 5–10 °C at ~20 W),
- *Die (modeling)* — the thermal model's DRAM-die temperature.

We replicate the same three-way comparison: the "measured" column uses
the paper's numbers, the estimate applies the same resistance rule, and
the modelled die temperature comes from our RC network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.common import format_table
from repro.experiments.fig1_prototype import (
    BUSY_BANDWIDTH_GBS,
    PAPER_SURFACE_C,
    PROTOTYPE_HIGH_END,
    _prototype_model,
)
from repro.thermal.cooling import LOW_END_ACTIVE
from repro.thermal.power import TrafficPoint


@dataclass(frozen=True)
class ValidationPoint:
    cooling: str
    surface_measured_c: float
    die_estimated_c: float
    die_modeled_c: float

    @property
    def error_c(self) -> float:
        """Model-vs-estimate disagreement."""
        return self.die_modeled_c - self.die_estimated_c


def run() -> List[ValidationPoint]:
    points: List[ValidationPoint] = []
    for cooling in (LOW_END_ACTIVE, PROTOTYPE_HIGH_END):
        model = _prototype_model(cooling)
        traffic = TrafficPoint.streaming(BUSY_BANDWIDTH_GBS)
        measured = PAPER_SURFACE_C[(cooling.name, "busy")]
        total_power = model.power.package_total_w(traffic)
        estimated = model.junction_from_surface_c(measured, total_power)
        modeled = model.steady_peak_dram_c(traffic)
        points.append(
            ValidationPoint(
                cooling=cooling.name,
                surface_measured_c=measured,
                die_estimated_c=estimated,
                die_modeled_c=modeled,
            )
        )
    return points


def format_result(points: List[ValidationPoint]) -> str:
    rows = [
        (p.cooling, p.surface_measured_c, p.die_estimated_c, p.die_modeled_c,
         p.error_c)
        for p in points
    ]
    return format_table(
        ["Cooling", "Surface (measured, C)", "Die (estimated, C)",
         "Die (modeling, C)", "Error (C)"],
        rows,
        title="Fig. 2 - Thermal model validation",
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
