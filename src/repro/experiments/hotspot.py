"""Vault-skew hotspot study (extension).

Fig. 3's hot spots sit at vault centres even under uniform traffic. Real
workloads can skew traffic toward a few vaults (hub vertices all hashing
to the same channel), concentrating power and raising the peak DRAM
temperature at the *same* total bandwidth. This experiment sweeps the
skew — the fraction of traffic landing on one vault — and reports the
peak temperature, quantifying how much thermal headroom the HMC's
low-order address interleaving buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.experiments.common import format_table
from repro.thermal.model import HmcThermalModel
from repro.thermal.power import TrafficPoint

#: Skews beyond ~0.3 leave the compact model's validity range (and any
#: real device's operating range) — the point is made well before that.
DEFAULT_SKEWS = (0.0, 0.05, 0.1, 0.2, 0.3)
BANDWIDTH_GBS = 320.0


@dataclass
class HotspotSweep:
    skews: Sequence[float]
    peak_temps_c: List[float]
    #: Temperature cost of the worst skew vs uniform interleaving.
    interleaving_headroom_c: float


def vault_weights_for_skew(num_vaults: int, skew: float) -> np.ndarray:
    """Weight vector: ``skew`` of the traffic on vault 0, rest uniform."""
    if not 0.0 <= skew < 1.0:
        raise ValueError(f"skew must be in [0,1): {skew}")
    weights = np.full(num_vaults, (1.0 - skew) / num_vaults)
    weights[0] += skew
    return weights


def run(skews: Sequence[float] = DEFAULT_SKEWS) -> HotspotSweep:
    model = HmcThermalModel()
    traffic = TrafficPoint.streaming(BANDWIDTH_GBS)
    temps: List[float] = []
    for skew in skews:
        weights = vault_weights_for_skew(model.config.num_vaults, skew)
        temps.append(model.steady_peak_dram_c(traffic, vault_weights=weights))
    return HotspotSweep(
        skews=list(skews),
        peak_temps_c=temps,
        interleaving_headroom_c=temps[-1] - temps[0],
    )


def format_result(sweep: HotspotSweep) -> str:
    rows: List[Tuple[float, float, float]] = [
        (skew, temp, temp - sweep.peak_temps_c[0])
        for skew, temp in zip(sweep.skews, sweep.peak_temps_c)
    ]
    table = format_table(
        ["Traffic share on one vault", "Peak DRAM temp (C)", "vs uniform (C)"],
        rows,
        title=f"Vault-skew hotspots at {BANDWIDTH_GBS:.0f} GB/s, commodity sink",
    )
    return table + (
        f"\n  Low-order address interleaving is worth "
        f"{sweep.interleaving_headroom_c:.1f} C of thermal headroom at the "
        "worst skew tested."
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
