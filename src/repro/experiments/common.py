"""Shared experiment utilities: table formatting and run configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width ASCII table (numbers rendered to 3 significant places)."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3g}" if abs(cell) < 1000 else f"{cell:.0f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


@dataclass(frozen=True)
class RunScale:
    """Evaluation scale: 'full' matches the calibrated figure runs; 'quick'
    shrinks the graph and query counts for CI-speed smoke runs.

    ``seed`` rides along so one value reproduces an entire sweep: every
    experiment that instantiates workloads through :func:`scaled_workload`
    inherits it, and the job-service cache key (repro.service) hashes the
    scale, so runs at different seeds never collide in the result store.
    """

    dataset: str
    workload_scale: float  # multiplier on query/iteration counts
    seed: int = 0

    @classmethod
    def full(cls, seed: int = 0) -> "RunScale":
        return cls(dataset="ldbc", workload_scale=1.0, seed=seed)

    @classmethod
    def quick(cls, seed: int = 0) -> "RunScale":
        return cls(dataset="ldbc-small", workload_scale=0.25, seed=seed)

    def to_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "workload_scale": self.workload_scale,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunScale":
        return cls(
            dataset=d["dataset"],
            workload_scale=d["workload_scale"],
            seed=d.get("seed", 0),
        )


def apply_workload_scale(workload, factor: float):
    """Scale a workload's run-length knobs (sources/repeats/iterations)
    in place by ``factor``; returns the workload for chaining."""
    if factor != 1.0:
        for attr in ("num_sources", "repeats", "iterations"):
            if hasattr(workload, attr):
                value = getattr(workload, attr)
                setattr(workload, attr, max(1, int(round(value * factor))))
    return workload


def scaled_workload(name: str, scale: RunScale, seed: int | None = None):
    """Instantiate a benchmark with its run length scaled.

    ``seed`` defaults to the scale's own seed so sweeps stay reproducible
    end to end without threading an extra argument through every figure.
    """
    from repro.workloads import get_workload

    w = get_workload(name, seed=scale.seed if seed is None else seed)
    return apply_workload_scale(w, scale.workload_scale)
