"""Dataset-sensitivity study (extension beyond the paper).

The paper evaluates on the LDBC social graph only. Thermal throttling's
value depends on the offloading intensity the *graph structure* induces:
power-law graphs keep huge frontiers (and the atomics flowing), while
road-like graphs crawl through tiny frontiers that never push the PIM
rate near the thermal threshold. This experiment runs a BFS and an SSSP
kernel on both families and compares naïve-offloading temperatures and
CoolPIM's engagement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import CoolPimSystem
from repro.experiments.common import RunScale, format_table, scaled_workload
from repro.graph import get_dataset

WORKLOADS = ["bfs-dwc", "sssp-dwc"]
POLICIES = ["non-offloading", "naive-offloading", "coolpim-sw"]


@dataclass
class SensitivityResult:
    #: [(dataset, workload)][policy] → (speedup, peak_temp, pim_rate)
    cells: Dict[tuple, Dict[str, tuple]]

    def naive_peak(self, dataset: str, workload: str) -> float:
        return self.cells[(dataset, workload)]["naive-offloading"][1]


def run(
    scale: Optional[RunScale] = None,
    datasets: tuple = ("ldbc", "road"),
) -> SensitivityResult:
    scale = scale or RunScale.full()
    system = CoolPimSystem()
    cells: Dict[tuple, Dict[str, tuple]] = {}
    for ds in datasets:
        graph = get_dataset(ds if scale.dataset == "ldbc" else f"{ds}-small")
        for wl in WORKLOADS:
            results = {
                p: system.run(scaled_workload(wl, scale), graph, p)
                for p in POLICIES
            }
            base = results["non-offloading"]
            cells[(ds, wl)] = {
                p: (
                    r.speedup_over(base),
                    r.peak_dram_temp_c,
                    r.avg_pim_rate_ops_ns,
                )
                for p, r in results.items()
            }
    return SensitivityResult(cells=cells)


def format_result(result: SensitivityResult) -> str:
    rows = []
    for (ds, wl), per_policy in result.cells.items():
        naive = per_policy["naive-offloading"]
        cool = per_policy["coolpim-sw"]
        rows.append(
            (ds, wl, naive[0], naive[1], naive[2], cool[0], cool[1])
        )
    table = format_table(
        ["Dataset", "Kernel", "Naive su", "Naive T(C)", "Naive op/ns",
         "CoolPIM su", "CoolPIM T(C)"],
        rows,
        title="Dataset sensitivity: social (ldbc) vs road-like structure",
    )
    return table + (
        "\n  Road-like graphs keep tiny frontiers: the memory system never "
        "saturates, the\n  PIM rate stays under the thermal threshold, and "
        "naive offloading is safe.\n  Note the SW variant's exposure: its "
        "Eq. (1) static initialization assumes\n  full utilization, so it "
        "over-throttles road graphs that were never going to\n  overheat — "
        "the HW variant's no-initialization design avoids this."
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
