"""Shared evaluation matrix for Figs. 10–14.

Runs every (benchmark × policy) combination once and caches the results so
the five evaluation figures don't re-simulate. The matrix is the Sec. V-B
experiment: ten GraphBIG benchmarks on the LDBC-like graph under
non-offloading, naïve offloading, CoolPIM (SW), CoolPIM (HW), and the
ideal-thermal bound.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core import CoolPimSystem
from repro.core.policies import POLICY_NAMES
from repro.experiments.common import RunScale, scaled_workload
from repro.gpu.simulator import SimulationResult
from repro.graph import get_dataset
from repro.workloads import list_workloads


@dataclass
class EvaluationMatrix:
    """Results keyed by ``[workload][policy]``."""

    scale: RunScale
    results: Dict[str, Dict[str, SimulationResult]] = field(default_factory=dict)

    @property
    def workloads(self) -> List[str]:
        return list(self.results)

    def baseline(self, workload: str) -> SimulationResult:
        return self.results[workload]["non-offloading"]

    def speedup(self, workload: str, policy: str) -> float:
        return self.results[workload][policy].speedup_over(self.baseline(workload))

    def geo_mean_speedup(self, policy: str) -> float:
        prod = 1.0
        n = 0
        for wl in self.workloads:
            prod *= self.speedup(wl, policy)
            n += 1
        return prod ** (1.0 / n) if n else 0.0


_CACHE: Dict[tuple, EvaluationMatrix] = {}


def default_engine() -> str:
    """The engine evaluation sweeps run on unless told otherwise.

    ``repro batch --engine gang`` (and ``repro experiments``) export
    ``REPRO_SWEEP_ENGINE`` so forked sweep workers inherit the choice
    without it entering any job cache key — macro and gang produce
    bit-equal results, so the engine is a throughput knob, never part
    of a result's identity.
    """
    return os.environ.get("REPRO_SWEEP_ENGINE", "macro")


def run_matrix(
    scale: Optional[RunScale] = None,
    workloads: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    use_cache: bool = True,
    engine: Optional[str] = None,
) -> EvaluationMatrix:
    """Run (and cache) the evaluation matrix at the requested scale.

    ``engine`` deliberately stays out of the memo key: ``"gang"`` runs
    the per-workload policy sweep in lockstep (see :mod:`repro.gpu.gang`)
    but returns the same floats the default per-run macro path would.
    """
    scale = scale or RunScale.full()
    wl_names = list(workloads) if workloads is not None else list_workloads()
    pol_names = list(policies) if policies is not None else list(POLICY_NAMES)
    key = (scale, tuple(wl_names), tuple(pol_names))
    if use_cache and key in _CACHE:
        return _CACHE[key]

    graph = get_dataset(scale.dataset)
    system = CoolPimSystem(engine=engine or default_engine())
    matrix = EvaluationMatrix(scale=scale)
    for name in wl_names:
        workload = scaled_workload(name, scale)
        matrix.results[name] = system.run_all_policies(
            workload, graph, policies=pol_names
        )
    if use_cache:
        _CACHE[key] = matrix
    return matrix


def clear_cache() -> None:
    _CACHE.clear()
