"""Fig. 11 — bandwidth consumption normalized to the baseline.

Average off-chip link bandwidth of each configuration divided by the
non-offloading baseline's. The paper's counterintuitive observation:
naïve offloading achieves the *largest* bandwidth savings (up to 39 % on
sssp-dwc) yet the *worst* performance on the hot benchmarks — bandwidth
saved is useless when the thermal phase derates the memory.

Note (DESIGN.md §5): our baseline is host-atomic-throughput-bound rather
than link-bound, so absolute ratios sit closer to 1 than the paper's;
the ordering (naïve saves most, CoolPIM intermediate) is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments.common import RunScale, format_table
from repro.experiments.evaluation import EvaluationMatrix, run_matrix

POLICIES = ["non-offloading", "naive-offloading", "coolpim-sw", "coolpim-hw"]


@dataclass
class BandwidthResult:
    matrix: EvaluationMatrix
    #: [workload][policy] → avg link bandwidth / baseline avg link bandwidth.
    consumption_ratio: Dict[str, Dict[str, float]]
    #: [workload][policy] → total link bytes / baseline link bytes.
    traffic_ratio: Dict[str, Dict[str, float]]


def run(scale: Optional[RunScale] = None) -> BandwidthResult:
    matrix = run_matrix(scale)
    consumption: Dict[str, Dict[str, float]] = {}
    traffic: Dict[str, Dict[str, float]] = {}
    for wl in matrix.workloads:
        base = matrix.baseline(wl)
        consumption[wl] = {
            p: matrix.results[wl][p].bandwidth_ratio(base) for p in POLICIES
        }
        traffic[wl] = {
            p: (matrix.results[wl][p].link_bytes / base.link_bytes
                if base.link_bytes else 0.0)
            for p in POLICIES
        }
    return BandwidthResult(
        matrix=matrix, consumption_ratio=consumption, traffic_ratio=traffic
    )


def format_result(result: BandwidthResult) -> str:
    headers = ["Benchmark", "Non-Off", "Naive", "CoolPIM(SW)", "CoolPIM(HW)"]
    rows = [
        [wl] + [result.traffic_ratio[wl][p] for p in POLICIES]
        for wl in result.traffic_ratio
    ]
    return format_table(
        headers, rows,
        title="Fig. 11 - Link traffic normalized to the non-offloading baseline",
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
