"""Simulation kernel: discrete-event engine, clocks, statistics, and traces.

This subpackage provides the substrate shared by the event-level HMC cube
model (:mod:`repro.hmc.cube`) and the time-stepped full-system co-simulation
(:mod:`repro.gpu.simulator`):

- :class:`~repro.sim.engine.EventEngine` — a priority-queue discrete-event
  scheduler with deterministic tie-breaking.
- :class:`~repro.sim.clock.Clock` — a frequency-aware cycle/time converter.
- :class:`~repro.sim.stats.StatRegistry` — hierarchical counters, running
  means, and time-weighted averages.
- :mod:`~repro.sim.trace` — operation-batch records emitted by workloads and
  consumed by the GPU interval model.
"""

from repro.sim.clock import Clock
from repro.sim.engine import Event, EventEngine
from repro.sim.stats import Counter, Histogram, StatRegistry, TimeWeightedStat
from repro.sim.trace import OpBatch, TraceCursor, merge_batches

__all__ = [
    "Clock",
    "Counter",
    "Event",
    "EventEngine",
    "Histogram",
    "OpBatch",
    "StatRegistry",
    "TimeWeightedStat",
    "TraceCursor",
    "merge_batches",
]
