"""Operation-batch traces.

Workloads in :mod:`repro.workloads` execute real graph algorithms and emit a
sequence of :class:`OpBatch` records — the per-epoch traffic summary that the
interval-style GPU model turns into time. An epoch corresponds to a slice of
GPU work whose instruction/traffic mix is homogeneous (e.g. one chunk of a
BFS frontier).

This keeps the full-system simulation fast (epochs, not individual memory
requests) while retaining the quantities the paper's evaluation depends on:
read/write traffic, the number of offloadable atomics, and warp divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, List, Optional, Sequence


@dataclass(frozen=True)
class OpBatch:
    """Traffic summary for one workload epoch.

    Attributes
    ----------
    reads:
        Number of 64-byte cache-line read requests to memory (post-cache).
    writes:
        Number of 64-byte cache-line write requests to memory (post-cache).
    atomics:
        Number of PIM-offloadable atomic operations (each is a 16-byte
        read-modify-write on offloading-target data).
    atomics_with_return:
        Subset of ``atomics`` whose result is consumed by the program (these
        cost one extra response FLIT when offloaded, Table I).
    compute_cycles:
        GPU-side compute work in SM cycles for the epoch (per-thread work
        aggregated over the launched threads).
    threads:
        Number of GPU threads that execute in this epoch.
    divergent_warp_ratio:
        Fraction of warps whose lanes diverge in this epoch (affects Eq. (1)
        PTP initialization and effective PIM issue rate).
    label:
        Optional tag ("frontier-3", "iteration-12/relax", ...) for debugging.
    """

    reads: int
    writes: int
    atomics: int
    atomics_with_return: int = 0
    compute_cycles: int = 0
    threads: int = 0
    divergent_warp_ratio: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if min(self.reads, self.writes, self.atomics, self.atomics_with_return) < 0:
            raise ValueError(f"negative traffic counts in {self}")
        if self.atomics_with_return > self.atomics:
            raise ValueError(
                f"atomics_with_return ({self.atomics_with_return}) exceeds "
                f"atomics ({self.atomics})"
            )
        if not 0.0 <= self.divergent_warp_ratio <= 1.0:
            raise ValueError(
                f"divergent_warp_ratio out of [0,1]: {self.divergent_warp_ratio}"
            )

    @property
    def total_ops(self) -> int:
        return self.reads + self.writes + self.atomics

    def scaled(self, factor: float) -> "OpBatch":
        """Return a copy with traffic counts scaled (rounded) by ``factor``."""
        if factor < 0:
            raise ValueError(f"negative scale factor: {factor}")
        return replace(
            self,
            reads=int(round(self.reads * factor)),
            writes=int(round(self.writes * factor)),
            atomics=int(round(self.atomics * factor)),
            atomics_with_return=int(round(self.atomics_with_return * factor)),
            compute_cycles=int(round(self.compute_cycles * factor)),
            threads=int(round(self.threads * factor)),
        )


def merge_batches(batches: Sequence[OpBatch], label: str = "") -> OpBatch:
    """Sum a sequence of batches into one (divergence is thread-weighted)."""
    if not batches:
        return OpBatch(0, 0, 0, label=label)
    threads = sum(b.threads for b in batches)
    if threads > 0:
        div = sum(b.divergent_warp_ratio * b.threads for b in batches) / threads
    else:
        div = sum(b.divergent_warp_ratio for b in batches) / len(batches)
    return OpBatch(
        reads=sum(b.reads for b in batches),
        writes=sum(b.writes for b in batches),
        atomics=sum(b.atomics for b in batches),
        atomics_with_return=sum(b.atomics_with_return for b in batches),
        compute_cycles=sum(b.compute_cycles for b in batches),
        threads=threads,
        divergent_warp_ratio=div,
        label=label,
    )


class TraceCursor:
    """Replayable iterator over a workload's epoch trace.

    The GPU simulator pulls epochs one at a time; :meth:`rewind` restarts the
    trace so the same workload can be run under several policies without
    regenerating it. Traces can be persisted with :meth:`save` /
    :meth:`load` to skip regeneration across processes.
    """

    def __init__(self, batches: Iterable[OpBatch]) -> None:
        self._batches: List[OpBatch] = list(batches)
        self._pos = 0

    def __len__(self) -> int:
        return len(self._batches)

    def __iter__(self) -> Iterator[OpBatch]:
        return iter(self._batches)

    @property
    def position(self) -> int:
        return self._pos

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._batches)

    def next(self) -> Optional[OpBatch]:
        """Return the next epoch, or ``None`` at end of trace."""
        if self.exhausted:
            return None
        batch = self._batches[self._pos]
        self._pos += 1
        return batch

    def rewind(self) -> None:
        self._pos = 0

    def seek(self, position: int) -> None:
        """Move the cursor to an absolute epoch index.

        Speculative consumers (the macro-step engine reads ahead, then
        commits only a validated prefix) use this to restore the cursor to
        the last committed epoch.
        """
        if not 0 <= position <= len(self._batches):
            raise ValueError(
                f"position {position} out of range [0, {len(self._batches)}]"
            )
        self._pos = position

    def totals(self) -> OpBatch:
        """Aggregate over the full trace (ignores cursor position)."""
        return merge_batches(self._batches, label="totals")

    # -- persistence ----------------------------------------------------------

    def save(self, path) -> None:
        """Write the trace as a compressed NumPy archive."""
        import numpy as np

        cols = {
            "reads": [b.reads for b in self._batches],
            "writes": [b.writes for b in self._batches],
            "atomics": [b.atomics for b in self._batches],
            "atomics_with_return": [b.atomics_with_return for b in self._batches],
            "compute_cycles": [b.compute_cycles for b in self._batches],
            "threads": [b.threads for b in self._batches],
        }
        arrays = {k: np.asarray(v, dtype=np.int64) for k, v in cols.items()}
        arrays["divergence"] = np.asarray(
            [b.divergent_warp_ratio for b in self._batches], dtype=np.float64
        )
        # Unicode dtype (not object) so the archive needs no pickling; and
        # no stray keywords — np.savez_compressed treats *every* kwarg as
        # an array to save, so `allow_pickle=True` here would silently
        # write a bogus 0-d array named "allow_pickle" into the archive.
        arrays["labels"] = np.asarray(
            [b.label for b in self._batches], dtype=np.str_
        )
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path) -> "TraceCursor":
        """Load a trace written by :meth:`save`."""
        import numpy as np

        with np.load(path, allow_pickle=True) as data:
            n = data["reads"].size
            batches = [
                OpBatch(
                    reads=int(data["reads"][i]),
                    writes=int(data["writes"][i]),
                    atomics=int(data["atomics"][i]),
                    atomics_with_return=int(data["atomics_with_return"][i]),
                    compute_cycles=int(data["compute_cycles"][i]),
                    threads=int(data["threads"][i]),
                    divergent_warp_ratio=float(data["divergence"][i]),
                    label=str(data["labels"][i]),
                )
                for i in range(n)
            ]
        return cls(batches)
