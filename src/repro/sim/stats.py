"""Statistics collection: counters, histograms, and time-weighted averages.

Simulators in this repo register their statistics in a
:class:`StatRegistry`, which supports hierarchical naming
(``"hmc.vault3.read_requests"``) and snapshot/diff for interval reporting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


class Counter:
    """Monotonic (or signed) accumulator."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class RunningMean:
    """Streaming mean/variance via Welford's algorithm."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        self.min = min(self.min, x)
        self.max = max(self.max, x)

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def reset(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf


class TimeWeightedStat:
    """Time-weighted average of a piecewise-constant signal.

    Used for quantities like "PIM-enabled warp count over time", where the
    mean must weight each level by how long it was held.
    """

    def __init__(self, name: str = "", initial: float = 0.0, start_time: float = 0.0):
        self.name = name
        self.initial = initial
        self._value = initial
        self._last_time = start_time
        self._weighted_sum = 0.0
        self._elapsed = 0.0
        self.min = initial
        self.max = initial

    @property
    def value(self) -> float:
        return self._value

    def update(self, value: float, now: float) -> None:
        """Record that the signal changed to ``value`` at time ``now``."""
        if now < self._last_time:
            raise ValueError(f"time went backwards: {now} < {self._last_time}")
        dt = now - self._last_time
        self._weighted_sum += self._value * dt
        self._elapsed += dt
        self._last_time = now
        self._value = value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def mean(self, now: Optional[float] = None) -> float:
        """Time-weighted mean up to ``now`` (defaults to last update)."""
        ws, el = self._weighted_sum, self._elapsed
        if now is not None:
            if now < self._last_time:
                raise ValueError(f"time went backwards: {now} < {self._last_time}")
            dt = now - self._last_time
            ws += self._value * dt
            el += dt
        return ws / el if el > 0 else self._value

    @property
    def elapsed(self) -> float:
        """Total signal-holding time accumulated so far."""
        return self._elapsed

    def reset(self, initial: Optional[float] = None, start_time: float = 0.0) -> None:
        """Restart accumulation, optionally at a new level/origin.

        Needed when the same registry outlives one simulation run: the
        next run restarts its clock at zero, which :meth:`update` would
        otherwise reject as time going backwards.
        """
        if initial is not None:
            self.initial = initial
        self._value = self.initial
        self._last_time = start_time
        self._weighted_sum = 0.0
        self._elapsed = 0.0
        self.min = self.initial
        self.max = self.initial


class Histogram:
    """Fixed-bin histogram over [lo, hi) with under/overflow buckets."""

    def __init__(self, name: str, lo: float, hi: float, nbins: int) -> None:
        if hi <= lo:
            raise ValueError(f"hi must exceed lo: [{lo}, {hi})")
        if nbins <= 0:
            raise ValueError(f"nbins must be positive, got {nbins}")
        self.name = name
        self.lo = lo
        self.hi = hi
        self.nbins = nbins
        self.bins = [0] * nbins
        self.underflow = 0
        self.overflow = 0
        self.count = 0
        self.total = 0.0

    def add(self, x: float) -> None:
        self.count += 1
        self.total += x
        if x < self.lo:
            self.underflow += 1
        elif x >= self.hi:
            self.overflow += 1
        else:
            idx = int((x - self.lo) / (self.hi - self.lo) * self.nbins)
            self.bins[min(idx, self.nbins - 1)] += 1

    def add_many(self, xs) -> None:
        """Bulk-add a sequence of samples (vectorized fill).

        Equivalent to calling :meth:`add` per sample except that ``total``
        accumulates via a vectorized sum, so its float rounding may differ
        from the sequential order by ULPs. Batch writers (the macro-step
        simulator engine) use this to fill thousands of samples per burst.
        """
        import numpy as np

        xs = np.asarray(xs, dtype=float)
        if xs.size == 0:
            return
        self.count += int(xs.size)
        self.total += float(xs.sum())
        under = xs < self.lo
        over = xs >= self.hi
        self.underflow += int(under.sum())
        self.overflow += int(over.sum())
        mid = xs[~(under | over)]
        if mid.size:
            idx = ((mid - self.lo) / (self.hi - self.lo) * self.nbins).astype(int)
            np.minimum(idx, self.nbins - 1, out=idx)
            counts = np.bincount(idx, minlength=self.nbins)
            for i in np.nonzero(counts)[0]:
                self.bins[int(i)] += int(counts[i])

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.bins = [0] * self.nbins
        self.underflow = 0
        self.overflow = 0
        self.count = 0
        self.total = 0.0

    def bin_edges(self) -> List[float]:
        w = (self.hi - self.lo) / self.nbins
        return [self.lo + i * w for i in range(self.nbins + 1)]

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-th percentile (``0 <= q <= 100``).

        Walks the cumulative bin counts and interpolates linearly within
        the containing bin. Samples in the underflow bucket are treated
        as sitting at ``lo``, overflow at ``hi`` — the estimate is
        clamped to the histogram range by construction. Returns ``None``
        for an empty histogram (degenerate series render as ``n=0``
        downstream, they never raise); raises :class:`ValueError` only
        for ``q`` out of range.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of [0, 100]: {q}")
        if self.count == 0:
            return None
        target = q / 100.0 * self.count
        cum = self.underflow
        if target <= cum:
            return self.lo
        w = (self.hi - self.lo) / self.nbins
        for i, n in enumerate(self.bins):
            if n and target <= cum + n:
                frac = (target - cum) / n
                return self.lo + (i + frac) * w
            cum += n
        return self.hi


@dataclass
class StatRegistry:
    """Hierarchical registry of named statistics.

    Names are dot-separated; :meth:`scoped` returns a child view that
    prefixes all names, so components can register stats without knowing
    where they sit in the hierarchy.
    """

    prefix: str = ""
    _stats: Dict[str, object] = field(default_factory=dict)

    def _full(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def scoped(self, prefix: str) -> "StatRegistry":
        """Child registry sharing storage, with ``prefix`` prepended."""
        return StatRegistry(prefix=self._full(prefix), _stats=self._stats)

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def running_mean(self, name: str) -> RunningMean:
        return self._get_or_create(name, RunningMean)

    def time_weighted(self, name: str, initial: float = 0.0) -> TimeWeightedStat:
        full = self._full(name)
        stat = self._stats.get(full)
        if stat is None:
            stat = TimeWeightedStat(full, initial=initial)
            self._stats[full] = stat
        if not isinstance(stat, TimeWeightedStat):
            raise TypeError(f"stat {full!r} already registered as {type(stat).__name__}")
        if stat.initial != initial:
            raise ValueError(
                f"stat {full!r} already registered with initial="
                f"{stat.initial}, conflicting with initial={initial}"
            )
        return stat

    def histogram(self, name: str, lo: float, hi: float, nbins: int) -> Histogram:
        full = self._full(name)
        stat = self._stats.get(full)
        if stat is None:
            stat = Histogram(full, lo, hi, nbins)
            self._stats[full] = stat
        if not isinstance(stat, Histogram):
            raise TypeError(f"stat {full!r} already registered as {type(stat).__name__}")
        if (stat.lo, stat.hi, stat.nbins) != (lo, hi, nbins):
            raise ValueError(
                f"stat {full!r} already registered with bins "
                f"[{stat.lo}, {stat.hi})x{stat.nbins}, conflicting with "
                f"[{lo}, {hi})x{nbins}"
            )
        return stat

    def _get_or_create(self, name: str, cls):
        full = self._full(name)
        stat = self._stats.get(full)
        if stat is None:
            stat = cls(full)
            self._stats[full] = stat
        if not isinstance(stat, cls):
            raise TypeError(f"stat {full!r} already registered as {type(stat).__name__}")
        return stat

    def get(self, name: str) -> object:
        return self._stats[self._full(name)]

    def items(self) -> Iterator[Tuple[str, object]]:
        pre = self.prefix + "." if self.prefix else ""
        for k, v in sorted(self._stats.items()):
            if k.startswith(pre):
                yield k, v

    def snapshot(self, structured: bool = False) -> Dict[str, object]:
        """Snapshot every registered stat.

        Flat mode (default, backward compatible): one scalar per stat.
        Structured mode: one JSON-serializable dict per stat, typed by a
        ``"type"`` field — the contract consumed by
        :func:`repro.obs.metrics.export_metrics`. Non-finite sentinels
        (an empty :class:`RunningMean`'s ±inf min/max) become ``None``
        so the snapshot always survives ``json.dumps``.
        """
        if not structured:
            out: Dict[str, object] = {}
            for k, v in self.items():
                if isinstance(v, Counter):
                    out[k] = v.value
                elif isinstance(v, RunningMean):
                    out[k] = v.mean
                elif isinstance(v, TimeWeightedStat):
                    out[k] = v.mean()
                elif isinstance(v, Histogram):
                    out[k] = v.mean
            return out
        return {k: _describe(v) for k, v in self.items()}


def _describe(stat: object) -> Dict[str, object]:
    """One stat → JSON-serializable typed dict (see ``snapshot``)."""
    if isinstance(stat, Counter):
        return {"type": "counter", "value": stat.value}
    if isinstance(stat, RunningMean):
        return {
            "type": "mean",
            "n": stat.n,
            "mean": stat.mean,
            "stddev": stat.stddev,
            "min": stat.min if stat.n else None,
            "max": stat.max if stat.n else None,
        }
    if isinstance(stat, TimeWeightedStat):
        return {
            "type": "time_weighted",
            "mean": stat.mean(),
            "value": stat.value,
            "min": stat.min,
            "max": stat.max,
            "elapsed": stat.elapsed,
        }
    if isinstance(stat, Histogram):
        # percentile() is None-safe on empty histograms, so degenerate
        # series describe as n=0 with null quantiles instead of raising.
        return {
            "type": "histogram",
            "count": stat.count,
            "mean": stat.mean,
            "lo": stat.lo,
            "hi": stat.hi,
            "underflow": stat.underflow,
            "overflow": stat.overflow,
            "p50": stat.percentile(50),
            "p90": stat.percentile(90),
            "p99": stat.percentile(99),
        }
    raise TypeError(f"unknown stat type: {type(stat).__name__}")
