"""Discrete-event simulation engine.

A small, deterministic event scheduler used by the event-level HMC cube
model. Events are ordered by (time, priority, sequence number); the sequence
number guarantees FIFO ordering among events scheduled for the same instant,
which keeps simulations reproducible across runs.

Times are in **nanoseconds** throughout the event-level models (the HMC
timing parameters in the paper are given in ns).
"""

from __future__ import annotations

import heapq
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.obs.tracer import Tracer, get_tracer


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time in nanoseconds.
    priority:
        Lower values run earlier among events at the same time.
    seq:
        Monotonic tie-breaker assigned by the engine.
    callback:
        Zero-argument callable invoked when the event fires.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    _engine: Optional["EventEngine"] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped.

        Safe to call at any time: cancelling an event that already fired,
        was already cancelled, or was orphaned by :meth:`EventEngine.reset`
        is a no-op (the engine detaches itself from events it has finished
        with, so the live count can never be decremented twice).
        """
        if not self.cancelled:
            self.cancelled = True
            if self._engine is not None:
                self._engine._live -= 1
                self._engine = None


class EventEngine:
    """Priority-queue discrete-event scheduler.

    Example
    -------
    >>> eng = EventEngine()
    >>> out = []
    >>> _ = eng.schedule(5.0, lambda: out.append("b"))
    >>> _ = eng.schedule(1.0, lambda: out.append("a"))
    >>> eng.run()
    >>> out
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        # Live (non-cancelled, not-yet-fired) event count, maintained
        # incrementally: __len__ sits on the hot scheduling path and must
        # not rescan the heap.
        self._live = 0
        # Explicit tracer override; None falls back to the global tracer,
        # which is disabled by default. All instrumentation lives in run()
        # behind a single bool so step() stays untouched and a disabled
        # tracer costs one attribute test per run() call.
        self._tracer: Optional[Tracer] = None

    def set_tracer(self, tracer: Optional[Tracer]) -> None:
        """Attach a specific tracer (None reverts to the global one)."""
        self._tracer = tracer

    @property
    def now(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now

    def __len__(self) -> int:
        return self._live

    def schedule(
        self, time: float, callback: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` at absolute ``time``.

        Raises :class:`ValueError` for events in the past.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        ev = Event(
            time=time, priority=priority, seq=self._seq, callback=callback,
            _engine=self,
        )
        self._seq += 1
        self._live += 1
        heapq.heappush(self._queue, ev)
        return ev

    def schedule_after(
        self, delay: float, callback: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` after a relative ``delay`` (ns)."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule(self._now + delay, callback, priority)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the single next event. Returns ``False`` if queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self._live -= 1
            # Detach: a late cancel() on a fired event must not decrement
            # the live count again.
            ev._engine = None
            self._now = ev.time
            ev.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired. Returns the number of events executed.

        When ``until`` is given, the engine stops *before* executing any
        event with ``time > until``, and ``now`` advances to ``until``
        if and only if no pending event at ``time <= until`` remains —
        i.e. the interval was fully simulated. A run truncated by
        ``max_events`` with work still pending inside the interval leaves
        ``now`` at the last executed event, so callers can resume with
        another :meth:`run` call without skipping simulated time.
        """
        tr = self._tracer if self._tracer is not None else get_tracer()
        traced = tr.enabled
        if traced:
            t0 = _time.perf_counter()
            sim0 = self._now
            depth0 = self._live
        count = 0
        while True:
            if max_events is not None and count >= max_events:
                break
            t = self.peek_time()
            if t is None:
                break
            if until is not None and t > until:
                break
            self.step()
            count += 1
            # Sample queue depth every 64 events: enough resolution for a
            # Perfetto track, negligible cost when tracing is live.
            if traced and count & 63 == 0:
                tr.counter(
                    "engine.queue_depth", self._live, cat="engine",
                    sim_time_ns=self._now,
                )
        if until is not None and until > self._now:
            t = self.peek_time()
            if t is None or t > until:
                self._now = until
        if traced:
            tr.complete(
                "engine.run", t0, _time.perf_counter(), cat="engine",
                events=count, queue_depth_start=depth0, queue_depth_end=self._live,
                sim_start_ns=sim0, sim_end_ns=self._now,
            )
        return count

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero.

        Orphaned events are detached first, so cancelling a stale handle
        from before the reset cannot corrupt the new live count.
        """
        for ev in self._queue:
            ev._engine = None
        self._queue.clear()
        self._now = 0.0
        self._seq = 0
        self._live = 0


class Ticker:
    """Fixed-period recurring event helper.

    Invokes ``callback(now)`` every ``period`` ns until :meth:`stop`.
    """

    def __init__(
        self,
        engine: EventEngine,
        period: float,
        callback: Callable[[float], None],
        start: Optional[float] = None,
        priority: int = 0,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._engine = engine
        self._period = period
        self._callback = callback
        self._priority = priority
        self._stopped = False
        first = engine.now + period if start is None else start
        self._event: Optional[Event] = engine.schedule(first, self._fire, priority)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback(self._engine.now)
        if not self._stopped:
            self._event = self._engine.schedule(
                self._engine.now + self._period, self._fire, self._priority
            )

    def stop(self) -> None:
        """Cancel future firings."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None
