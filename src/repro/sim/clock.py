"""Frequency-aware clock/cycle arithmetic.

The paper's models mix units: GPU cycles at 1.4 GHz, DRAM timing in ns, and
thermal transients in ms. :class:`Clock` centralizes the conversions and
supports runtime frequency derating (the 20 % DRAM frequency reduction per
temperature phase, Table IV).
"""

from __future__ import annotations

import math


class Clock:
    """Converts between cycles and nanoseconds at a mutable frequency.

    Parameters
    ----------
    freq_ghz:
        Nominal clock frequency in GHz.
    """

    def __init__(self, freq_ghz: float) -> None:
        if freq_ghz <= 0:
            raise ValueError(f"frequency must be positive, got {freq_ghz}")
        self._nominal_ghz = freq_ghz
        self._scale = 1.0

    @property
    def nominal_ghz(self) -> float:
        """Frequency without derating, in GHz."""
        return self._nominal_ghz

    @property
    def effective_ghz(self) -> float:
        """Current (derated) frequency in GHz."""
        return self._nominal_ghz * self._scale

    @property
    def period_ns(self) -> float:
        """Current clock period in nanoseconds."""
        return 1.0 / self.effective_ghz

    @property
    def scale(self) -> float:
        """Derating multiplier in (0, 1]."""
        return self._scale

    def set_scale(self, scale: float) -> None:
        """Apply a frequency derating multiplier (e.g. 0.8 for −20 %)."""
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        self._scale = scale

    def cycles_to_ns(self, cycles: float) -> float:
        """Duration of ``cycles`` at the effective frequency."""
        return cycles / self.effective_ghz

    def ns_to_cycles(self, ns: float) -> float:
        """Effective cycles elapsed in ``ns``."""
        return ns * self.effective_ghz

    def ceil_cycles(self, ns: float) -> int:
        """Whole cycles needed to cover ``ns`` (rounds up)."""
        return math.ceil(ns * self.effective_ghz - 1e-12)
