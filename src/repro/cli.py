"""Command-line interface.

    python -m repro list
    python -m repro run pagerank --policy coolpim-hw --dataset ldbc
    python -m repro compare bfs-dwc
    python -m repro experiments --only fig5,fig10
    python -m repro batch --quick
    python -m repro cache stats
    python -m repro serve --port 8177

``run`` simulates one (workload, policy) pair, ``compare`` runs the full
policy matrix for one workload, and ``experiments`` delegates to
:mod:`repro.experiments.runner` (serial). ``batch`` runs the figure
sweep as jobs on the :mod:`repro.service` process pool with the
content-addressed result cache (re-running a sweep skips completed
jobs), ``cache`` inspects or clears that store (``--json`` for the
machine-readable shape the API's admin endpoint serves), and ``serve``
runs the async HTTP API (:mod:`repro.api`, see ``docs/SERVICE.md``).

Observability (see ``docs/OBSERVABILITY.md``)::

    python -m repro trace pagerank --dataset ldbc-small --quick -o trace.json
    python -m repro report trace.json --require engine,core,thermal,scheduler
    python -m repro report trace.metrics.json
    python -m repro report trace.manifest.json

``trace`` runs one instrumented simulation through the job scheduler and
writes a Perfetto-loadable Chrome trace plus a metrics JSON and a run
manifest; ``report`` validates/renders any of the three artifacts.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.coolpim import CoolPimSystem
from repro.core.policies import POLICY_NAMES, is_policy_name
from repro.graph.datasets import get_dataset, list_datasets
from repro.scenarios import SCENARIO_NAMES
from repro.thermal.cooling import COOLING_SOLUTIONS
from repro.workloads.registry import get_workload, list_workloads


def _build_system(args) -> CoolPimSystem:
    return CoolPimSystem(
        cooling=COOLING_SOLUTIONS[args.cooling],
        engine=getattr(args, "engine", "macro"),
    )


def _policy_name(value: str) -> str:
    """argparse type for --policy: registry names plus static-<fraction>."""
    if not is_policy_name(value):
        raise argparse.ArgumentTypeError(
            f"unknown policy {value!r}; choose from {', '.join(POLICY_NAMES)} "
            "or static-<fraction> (e.g. static-0.25)"
        )
    return value


def _scenario_from(args):
    """Compile the --scenario/--scenario-seed flags (None when unset)."""
    name = getattr(args, "scenario", None)
    if not name:
        return None
    from repro.scenarios import make_scenario

    return make_scenario(name, seed=getattr(args, "scenario_seed", 0))


def _result_line(res) -> str:
    return (
        f"  runtime        : {res.runtime_s * 1e3:.3f} ms\n"
        f"  peak DRAM temp : {res.peak_dram_temp_c:.1f} C\n"
        f"  PIM rate       : {res.avg_pim_rate_ops_ns:.2f} op/ns\n"
        f"  offloaded      : {res.offload_fraction:.0%} of "
        f"{res.total_atomics:,} atomics\n"
        f"  link bandwidth : {res.avg_link_bandwidth_gbs:.0f} GB/s\n"
        f"  energy         : {res.total_energy_j * 1e3:.1f} mJ "
        f"({res.avg_power_w:.1f} W avg)\n"
        f"  thermal events : {res.thermal_warnings} warnings, "
        f"{res.shutdowns} shutdowns"
    )


def cmd_list(_args) -> int:
    print("workloads:", ", ".join(list_workloads(include_extras=True)))
    print("datasets: ", ", ".join(list_datasets()))
    print("policies: ", ", ".join(POLICY_NAMES) + ", static-<fraction>")
    print("cooling:  ", ", ".join(COOLING_SOLUTIONS))
    print("scenarios:", ", ".join(SCENARIO_NAMES))
    return 0


def cmd_run(args) -> int:
    system = _build_system(args)
    graph = get_dataset(args.dataset)
    workload = get_workload(args.workload, seed=args.seed)
    scenario = _scenario_from(args)
    res = system.run(workload, graph, args.policy, scenario=scenario)
    if args.json:
        import json

        print(json.dumps(res.to_dict(), indent=2))
        return 0
    injected = (
        f", scenario {scenario.name} (seed {scenario.seed})"
        if scenario is not None else ""
    )
    print(f"{args.workload} on {args.dataset} "
          f"({graph.num_vertices:,} vertices, {graph.num_edges:,} edges) "
          f"under {args.policy}, {args.cooling} cooling{injected}")
    print(_result_line(res))
    return 0


def cmd_compare(args) -> int:
    system = _build_system(args)
    graph = get_dataset(args.dataset)
    workload = get_workload(args.workload, seed=args.seed)
    scenario = _scenario_from(args)
    injected = (
        f", scenario {scenario.name} (seed {scenario.seed})"
        if scenario is not None else ""
    )
    print(f"{args.workload} on {args.dataset} under all policies "
          f"({args.cooling} cooling{injected})\n")
    results = system.run_all_policies(workload, graph, scenario=scenario)
    base = results["non-offloading"]
    print(f"{'policy':18s} {'speedup':>8s} {'peak T':>7s} {'op/ns':>6s} "
          f"{'energy':>7s}")
    for name, res in results.items():
        print(
            f"{name:18s} {res.speedup_over(base):8.2f} "
            f"{res.peak_dram_temp_c:6.1f}C {res.avg_pim_rate_ops_ns:6.2f} "
            f"{res.energy_ratio(base):6.2f}x"
        )
    return 0


def cmd_experiments(args) -> int:
    from repro.experiments import runner

    argv = []
    if args.quick:
        argv.append("--quick")
    if args.only:
        argv.extend(["--only", args.only])
    if args.seed:
        argv.extend(["--seed", str(args.seed)])
    return runner.main(argv)


def cmd_batch(args) -> int:
    """Parallel figure sweep through the job service (cached, resumable)."""
    from repro.experiments import runner

    argv = ["--jobs", str(args.jobs if args.jobs is not None else 0)]
    if args.quick:
        argv.append("--quick")
    if args.only:
        argv.extend(["--only", args.only])
    if args.seed:
        argv.extend(["--seed", str(args.seed)])
    if args.cache_dir:
        argv.extend(["--cache-dir", args.cache_dir])
    if args.no_cache:
        argv.append("--no-cache")
    if args.out:
        argv.extend(["--out", args.out])
    if args.engine:
        argv.extend(["--engine", args.engine])
    return runner.main(argv)


def cmd_cache(args) -> int:
    from repro.service import JobJournal, ResultStore, store_stats_payload

    store = ResultStore(root=args.cache_dir) if args.cache_dir else ResultStore()
    action = args.action
    if getattr(args, "json", False):
        if action != "stats":
            print("--json only applies to the stats action", file=sys.stderr)
            return 2
        import json

        print(json.dumps(store_stats_payload(store), indent=2, sort_keys=True))
        return 0
    if action == "clear":
        print(f"removed {store.clear()} cached result(s) from {store.root}")
        return 0
    if action == "prune":
        print(f"pruned {store.prune_stale()} stale result(s) from {store.root}")
        return 0
    if action == "ls":
        for record in sorted(
            store.entries(), key=lambda r: r.get("created_unix", 0.0)
        ):
            spec = record.get("spec", {})
            stale = "" if record.get("fingerprint") == store.fingerprint else " [stale]"
            print(
                f"{record.get('key', '?')[:12]}  "
                f"{spec.get('kind', '?'):10s}  {spec.get('name', '?'):24s}  "
                f"seed={spec.get('seed', 0)}  "
                f"{record.get('elapsed_s', 0.0):8.2f}s{stale}"
            )
        return 0
    # default: stats
    stats = store.stats()
    print(f"cache dir : {store.root}")
    print(f"entries   : {stats.entries} ({stats.stale_entries} stale)")
    print(f"size      : {stats.total_bytes / 1024:.1f} KiB")
    journal_path = store.root / "journal.jsonl"
    counts = JobJournal.summary(journal_path)
    if counts:
        events = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        print(f"journal   : {journal_path} ({events})")
    return 0


def cmd_serve(args) -> int:
    """Run the simulation-as-a-service HTTP API (see docs/SERVICE.md)."""
    import asyncio
    import signal as signal_mod

    from repro.api import ApiServer, ApiService
    from repro.api.fairness import FairQueue, TenantPolicy
    from repro.service import JobJournal, ResultStore

    store = None
    journal = None
    if not args.no_cache:
        store = (
            ResultStore(root=args.cache_dir) if args.cache_dir else ResultStore()
        )
        journal = JobJournal(
            store.root / "journal.jsonl",
            max_bytes=args.journal_max_bytes,
        )
    service = ApiService(
        store=store,
        journal=journal,
        queue=FairQueue(
            default_policy=TenantPolicy(max_queued=args.tenant_quota)
        ),
        workers=args.workers,
        pool=args.pool,
        use_cache=not args.no_cache,
    )
    server = ApiServer(service, host=args.host, port=args.port)

    async def _main() -> int:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal_mod.SIGINT, signal_mod.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover — non-Unix
                pass

        def _ready(s: ApiServer) -> None:
            print(f"repro api listening on http://{s.host}:{s.port} "
                  f"({args.workers} worker(s), "
                  f"{'process-pool' if args.pool else 'serial'} jobs, "
                  f"cache {'off' if args.no_cache else store.root})",
                  flush=True)

        await server.serve_until(
            stop, drain_timeout_s=args.drain_timeout, on_ready=_ready
        )
        print("repro api stopped (queue drained to journal)", flush=True)
        return 0

    try:
        return asyncio.run(_main())
    finally:
        if journal is not None:
            journal.close()


def cmd_trace(args) -> int:
    """One instrumented run → Chrome trace + metrics JSON + run manifest."""
    import time
    from pathlib import Path

    from repro.obs import (
        RunManifest,
        export_chrome_trace,
        export_metrics,
        validate_chrome_trace,
    )
    from repro.obs.replay import replay_timeline
    from repro.obs.tracer import tracing
    from repro.service.handlers import simulation_spec
    from repro.service.scheduler import JobScheduler
    from repro.thermal import operators

    out = Path(args.output)
    spec = simulation_spec(
        workload=args.workload,
        dataset=args.dataset,
        policy=args.policy,
        cooling=args.cooling,
        seed=args.seed,
        workload_scale=0.25 if args.quick else 1.0,
        scenario=getattr(args, "scenario", None),
        scenario_seed=getattr(args, "scenario_seed", 0),
    )
    wall0 = time.perf_counter()
    with tracing(sink=args.jsonl) as tracer:
        # Serial scheduler with no store/journal: the job always executes
        # in this process, so simulation spans and scheduler spans land in
        # one tracer.
        report = JobScheduler(serial=True).run([spec])
        if not report.ok:
            for failure in report.failures.values():
                print(f"trace run failed: {failure.name}: {failure.message}",
                      file=sys.stderr)
            return 1
        payload = next(iter(report.results.values())).payload
        timeline = payload["result"].get("timeline") or []
        # The flow-model simulators don't use the event engine directly;
        # replaying the sampled timeline through it produces the engine
        # spans and the sim-clock counter tracks.
        replay_timeline(timeline, tracer=tracer)
        records = tracer.records
    wall_s = time.perf_counter() - wall0

    doc = export_chrome_trace(
        records, out,
        other_data={"workload": args.workload, "policy": args.policy},
    )
    summary = validate_chrome_trace(doc)

    metrics_path = out.parent / (out.stem + ".metrics.json")
    manifest_path = out.parent / (out.stem + ".manifest.json")
    stats = dict(payload.get("metrics") or {})
    for key, value in operators.cache_stats().items():
        stats[f"thermal.operator_cache.{key}"] = {
            "type": "counter", "value": value,
        }
    config = {
        "workload": args.workload,
        "dataset": args.dataset,
        "policy": args.policy,
        "cooling": args.cooling,
        "quick": bool(args.quick),
    }
    export_metrics(stats, metrics_path, meta=dict(config, seed=args.seed))
    manifest = RunManifest.collect(
        command="repro trace",
        config=config,
        seed=args.seed,
        wall_duration_s=wall_s,
        sim_duration_s=payload["result"].get("runtime_s"),
        outputs=[out, metrics_path, manifest_path],
        trace_events=summary["events"],
    )
    manifest.write(manifest_path)

    cats = ", ".join(sorted(summary["categories"]))
    print(f"trace    : {out} ({summary['events']} events; layers: {cats})")
    print(f"metrics  : {metrics_path}")
    print(f"manifest : {manifest_path}")
    print("open the trace at https://ui.perfetto.dev (Open trace file)")
    return 0


def cmd_report(args) -> int:
    """Render/validate a trace, metrics, or manifest artifact."""
    import json
    from pathlib import Path

    from repro.obs import (
        MANIFEST_SCHEMA_ID,
        METRICS_SCHEMA_ID,
        RunManifest,
        TraceValidationError,
        diff_metrics,
        format_report,
        load_metrics,
        render_report,
        validate_chrome_trace,
    )

    path = Path(args.file)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"report: cannot read {path}: {exc}", file=sys.stderr)
        return 2

    if "traceEvents" in doc:
        try:
            summary = validate_chrome_trace(doc)
        except TraceValidationError as exc:
            print(f"{path}: INVALID Chrome trace: {exc}", file=sys.stderr)
            return 1
        print(f"{path}: valid Chrome trace, {summary['events']} events")
        phases = ", ".join(
            f"{k}={v}" for k, v in sorted(summary["phases"].items())
        )
        print(f"  phases    : {phases}")
        for cat, n in sorted(summary["categories"].items()):
            print(f"  {cat:10s}: {n} events")
        if args.require:
            want = {c.strip() for c in args.require.split(",") if c.strip()}
            missing = want - set(summary["categories"])
            if missing:
                print(
                    f"{path}: missing required layers: {', '.join(sorted(missing))}",
                    file=sys.stderr,
                )
                return 1
            print(f"  all required layers present: {', '.join(sorted(want))}")
        return 0

    schema = doc.get("schema")
    if schema == METRICS_SCHEMA_ID:
        if args.diff:
            # Diff contract: 0 = identical, 1 = differences, 2 = error
            # (bad/missing file) — scriptable like diff(1).
            try:
                delta = diff_metrics(load_metrics(path), load_metrics(args.diff))
            except (OSError, ValueError, json.JSONDecodeError) as exc:
                print(f"report --diff: {exc}", file=sys.stderr)
                return 2
            print(delta or "no metric differences\n", end="")
            return 1 if delta else 0
        print(render_report(doc), end="")
        return 0
    if schema == MANIFEST_SCHEMA_ID:
        print(format_report(RunManifest.load(path)), end="")
        return 0

    print(
        f"{path}: unrecognized document (no traceEvents, schema={schema!r})",
        file=sys.stderr,
    )
    return 1


def cmd_bench_trend(args) -> int:
    """Compare BENCH_*.json artifacts against committed baselines."""
    from pathlib import Path

    from repro.telemetry.trend import run_trend

    code, report = run_trend(
        bench_dir=Path(args.dir),
        baselines_path=Path(args.baselines),
        report_path=Path(args.report) if args.report else None,
        check=args.check,
    )
    print(report, end="", file=sys.stderr if code == 2 else sys.stdout)
    return code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CoolPIM reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="available workloads/datasets/policies")

    def common(p):
        p.add_argument("workload", help="benchmark name (see `repro list`)")
        p.add_argument("--dataset", default="ldbc")
        p.add_argument("--cooling", default="commodity",
                       choices=list(COOLING_SOLUTIONS))
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--engine", default="macro",
                       choices=["macro", "stepped", "gang"],
                       help="simulation engine (macro: vectorized burst "
                            "fast path; stepped: scalar reference loop; "
                            "gang: lockstep multi-config sweeps, bit-equal "
                            "to macro — single runs fall back to macro)")
        p.add_argument("--scenario", default=None, choices=SCENARIO_NAMES,
                       help="inject a seeded fault scenario (degraded "
                            "cooling, sensor faults, ...; see repro list)")
        p.add_argument("--scenario-seed", type=int, default=0, metavar="N",
                       help="seed for the scenario's event stream")

    run_p = sub.add_parser("run", help="simulate one workload+policy")
    common(run_p)
    run_p.add_argument("--policy", default="coolpim-hw",
                       type=_policy_name, metavar="POLICY",
                       help=f"one of {', '.join(POLICY_NAMES)}, or "
                            "static-<fraction> (e.g. static-0.25)")
    run_p.add_argument("--json", action="store_true",
                       help="emit the result as JSON")

    cmp_p = sub.add_parser("compare", help="run the full policy matrix")
    common(cmp_p)

    exp_p = sub.add_parser("experiments", help="regenerate tables/figures")
    exp_p.add_argument("--quick", action="store_true")
    exp_p.add_argument("--only", default=None)
    exp_p.add_argument("--seed", type=int, default=0)

    batch_p = sub.add_parser(
        "batch",
        help="parallel figure sweep via the job service (cached, resumable)",
    )
    batch_p.add_argument("--quick", action="store_true")
    batch_p.add_argument("--only", default=None)
    batch_p.add_argument("--seed", type=int, default=0)
    batch_p.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="pool size (default: one per CPU)")
    batch_p.add_argument("--cache-dir", default=None, metavar="DIR")
    batch_p.add_argument("--no-cache", action="store_true",
                         help="re-execute everything, ignoring cached results")
    batch_p.add_argument("--out", default=None, metavar="DIR",
                         help="also write each experiment's output to DIR")
    batch_p.add_argument("--engine", default=None,
                         choices=["macro", "gang"],
                         help="evaluation-sweep engine (gang: lockstep "
                              "policy gangs, bit-equal to macro)")

    cache_p = sub.add_parser("cache", help="inspect or clear the result cache")
    cache_p.add_argument(
        "action", nargs="?", default="stats",
        choices=["stats", "ls", "clear", "prune"],
    )
    cache_p.add_argument("--cache-dir", default=None, metavar="DIR")
    cache_p.add_argument("--json", action="store_true",
                         help="emit stats as JSON (machine-readable; same "
                              "shape as the API's GET /admin/cache)")

    serve_p = sub.add_parser(
        "serve",
        help="run the async simulation-as-a-service HTTP API",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8177,
                         help="listen port (0 picks a free one)")
    serve_p.add_argument("--workers", type=int, default=2, metavar="N",
                         help="concurrent jobs (worker threads)")
    serve_p.add_argument("--pool", action="store_true",
                         help="run each job on a process pool instead of "
                              "serially in its worker thread")
    serve_p.add_argument("--cache-dir", default=None, metavar="DIR")
    serve_p.add_argument("--no-cache", action="store_true",
                         help="no result store: every submission executes")
    serve_p.add_argument("--tenant-quota", type=int, default=64,
                         metavar="N", help="max queued jobs per tenant")
    serve_p.add_argument("--journal-max-bytes", type=int, default=8_000_000,
                         metavar="BYTES",
                         help="rotate the job journal past this size")
    serve_p.add_argument("--drain-timeout", type=float, default=10.0,
                         metavar="S",
                         help="seconds to wait for running jobs on shutdown")

    trace_p = sub.add_parser(
        "trace",
        help="run one instrumented simulation; write Chrome trace + "
             "metrics + manifest",
    )
    common(trace_p)
    trace_p.add_argument("--policy", default="coolpim-hw",
                         type=_policy_name, metavar="POLICY",
                         help=f"one of {', '.join(POLICY_NAMES)}, or "
                              "static-<fraction>")
    trace_p.add_argument("--quick", action="store_true",
                         help="quarter-length run (smoke/CI)")
    trace_p.add_argument("-o", "--output", default="trace.json",
                         metavar="FILE",
                         help="Chrome trace output path (metrics/manifest "
                              "are written next to it)")
    trace_p.add_argument("--jsonl", default=None, metavar="FILE",
                         help="also stream raw tracer records as JSONL")

    report_p = sub.add_parser(
        "report",
        help="render/validate a trace, metrics, or manifest JSON",
    )
    report_p.add_argument("file", help="trace.json, *.metrics.json, or "
                                       "*.manifest.json")
    report_p.add_argument("--require", default=None, metavar="CATS",
                          help="comma-separated trace layers that must be "
                               "present (exit 1 otherwise)")
    report_p.add_argument("--diff", default=None, metavar="FILE2",
                          help="diff a second metrics JSON against the first "
                               "(exit 0 equal, 1 changed, 2 error)")

    trend_p = sub.add_parser(
        "bench-trend",
        help="compare BENCH_*.json against benchmarks/baselines.json",
    )
    trend_p.add_argument("--dir", default=".", metavar="DIR",
                         help="directory holding BENCH_*.json artifacts "
                              "(default: .)")
    trend_p.add_argument("--baselines", default="benchmarks/baselines.json",
                         metavar="FILE",
                         help="committed baselines document")
    trend_p.add_argument("--report", default=None, metavar="FILE",
                         help="also write the trend report to FILE")
    trend_p.add_argument("--check", action="store_true",
                         help="exit 1 on any out-of-tolerance metric "
                              "(the CI gate); without it the report is "
                              "informational")
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "compare": cmd_compare,
        "experiments": cmd_experiments,
        "batch": cmd_batch,
        "cache": cmd_cache,
        "serve": cmd_serve,
        "trace": cmd_trace,
        "report": cmd_report,
        "bench-trend": cmd_bench_trend,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
