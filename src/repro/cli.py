"""Command-line interface.

    python -m repro list
    python -m repro run pagerank --policy coolpim-hw --dataset ldbc
    python -m repro compare bfs-dwc
    python -m repro experiments --only fig5,fig10

``run`` simulates one (workload, policy) pair, ``compare`` runs the full
policy matrix for one workload, and ``experiments`` delegates to
:mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.coolpim import CoolPimSystem
from repro.core.policies import POLICY_NAMES
from repro.graph.datasets import get_dataset, list_datasets
from repro.thermal.cooling import COOLING_SOLUTIONS
from repro.workloads.registry import get_workload, list_workloads


def _build_system(args) -> CoolPimSystem:
    return CoolPimSystem(cooling=COOLING_SOLUTIONS[args.cooling])


def _result_line(res) -> str:
    return (
        f"  runtime        : {res.runtime_s * 1e3:.3f} ms\n"
        f"  peak DRAM temp : {res.peak_dram_temp_c:.1f} C\n"
        f"  PIM rate       : {res.avg_pim_rate_ops_ns:.2f} op/ns\n"
        f"  offloaded      : {res.offload_fraction:.0%} of "
        f"{res.total_atomics:,} atomics\n"
        f"  link bandwidth : {res.avg_link_bandwidth_gbs:.0f} GB/s\n"
        f"  energy         : {res.total_energy_j * 1e3:.1f} mJ "
        f"({res.avg_power_w:.1f} W avg)\n"
        f"  thermal events : {res.thermal_warnings} warnings, "
        f"{res.shutdowns} shutdowns"
    )


def cmd_list(_args) -> int:
    print("workloads:", ", ".join(list_workloads(include_extras=True)))
    print("datasets: ", ", ".join(list_datasets()))
    print("policies: ", ", ".join(POLICY_NAMES))
    print("cooling:  ", ", ".join(COOLING_SOLUTIONS))
    return 0


def cmd_run(args) -> int:
    system = _build_system(args)
    graph = get_dataset(args.dataset)
    workload = get_workload(args.workload, seed=args.seed)
    res = system.run(workload, graph, args.policy)
    if args.json:
        import json

        print(json.dumps(res.to_dict(), indent=2))
        return 0
    print(f"{args.workload} on {args.dataset} "
          f"({graph.num_vertices:,} vertices, {graph.num_edges:,} edges) "
          f"under {args.policy}, {args.cooling} cooling")
    print(_result_line(res))
    return 0


def cmd_compare(args) -> int:
    system = _build_system(args)
    graph = get_dataset(args.dataset)
    workload = get_workload(args.workload, seed=args.seed)
    print(f"{args.workload} on {args.dataset} under all policies "
          f"({args.cooling} cooling)\n")
    results = system.run_all_policies(workload, graph)
    base = results["non-offloading"]
    print(f"{'policy':18s} {'speedup':>8s} {'peak T':>7s} {'op/ns':>6s} "
          f"{'energy':>7s}")
    for name, res in results.items():
        print(
            f"{name:18s} {res.speedup_over(base):8.2f} "
            f"{res.peak_dram_temp_c:6.1f}C {res.avg_pim_rate_ops_ns:6.2f} "
            f"{res.energy_ratio(base):6.2f}x"
        )
    return 0


def cmd_experiments(args) -> int:
    from repro.experiments import runner

    argv = []
    if args.quick:
        argv.append("--quick")
    if args.only:
        argv.extend(["--only", args.only])
    return runner.main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CoolPIM reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="available workloads/datasets/policies")

    def common(p):
        p.add_argument("workload", help="benchmark name (see `repro list`)")
        p.add_argument("--dataset", default="ldbc")
        p.add_argument("--cooling", default="commodity",
                       choices=list(COOLING_SOLUTIONS))
        p.add_argument("--seed", type=int, default=0)

    run_p = sub.add_parser("run", help="simulate one workload+policy")
    common(run_p)
    run_p.add_argument("--policy", default="coolpim-hw",
                       choices=POLICY_NAMES)
    run_p.add_argument("--json", action="store_true",
                       help="emit the result as JSON")

    cmp_p = sub.add_parser("compare", help="run the full policy matrix")
    common(cmp_p)

    exp_p = sub.add_parser("experiments", help="regenerate tables/figures")
    exp_p.add_argument("--quick", action="store_true")
    exp_p.add_argument("--only", default=None)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "compare": cmd_compare,
        "experiments": cmd_experiments,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
