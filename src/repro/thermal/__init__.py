"""Compact thermal model of a 3D-stacked HMC package.

A 3D-ICE-style RC-network model (DESIGN.md §2): each die is discretized
into a grid of cells; vertical conduction crosses the bond/TIM interfaces;
the top of the stack connects to ambient through a plate-fin heat sink
(Table II). Power maps come from :mod:`repro.thermal.power` (traffic-driven
pJ/bit energies plus PIM FU power); steady-state and implicit-Euler
transient solvers live in :mod:`repro.thermal.solver`.

The facade used by simulations is :class:`repro.thermal.model.HmcThermalModel`.
"""

from repro.thermal.cooling import (
    COMMODITY_SERVER,
    COOLING_SOLUTIONS,
    HIGH_END_ACTIVE,
    LOW_END_ACTIVE,
    PASSIVE,
    CoolingSolution,
    fan_power_w,
)
from repro.thermal.model import HmcThermalModel
from repro.thermal.operators import ThermalOperators, get_operators, prewarm
from repro.thermal.power import PowerModel, TrafficPoint
from repro.thermal.sensor import ThermalSensor

__all__ = [
    "COMMODITY_SERVER",
    "COOLING_SOLUTIONS",
    "CoolingSolution",
    "HIGH_END_ACTIVE",
    "HmcThermalModel",
    "LOW_END_ACTIVE",
    "PASSIVE",
    "PowerModel",
    "ThermalOperators",
    "ThermalSensor",
    "TrafficPoint",
    "fan_power_w",
    "get_operators",
    "prewarm",
]
