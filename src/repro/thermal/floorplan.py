"""Vault-grid floorplan and power-map construction.

The die is partitioned evenly into vaults (Sec. V-A: 68 mm² / 16 vaults =
4.25 mm² per vault for HMC 1.1; HMC 2.0 assumed the same per-vault area).
Each vault places its controller and PIM FU at the vault centre, which is
why Fig. 3's logic-layer heat map shows a hot spot in the middle of every
vault. The floorplan discretizes each vault into ``sub × sub`` grid cells
and splits vault power between a concentrated centre component (controller
+ FU + SerDes share) and a distributed component (DRAM arrays, wiring).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.hmc.config import HmcConfig


def _grid_shape(num_vaults: int) -> tuple[int, int]:
    """Near-square vault arrangement, e.g. 32 → 8×4, 16 → 4×4."""
    best = (num_vaults, 1)
    for rows in range(1, int(math.isqrt(num_vaults)) + 1):
        if num_vaults % rows == 0:
            best = (num_vaults // rows, rows)
    return best


@dataclass(frozen=True)
class Floorplan:
    """Cell grid over the die, aligned to vault boundaries.

    Attributes
    ----------
    vault_cols, vault_rows:
        Vault arrangement on the die.
    sub:
        Cells per vault edge (sub² cells per vault).
    """

    config: HmcConfig
    vault_cols: int
    vault_rows: int
    sub: int = 2

    @classmethod
    def for_config(cls, config: HmcConfig, sub: int = 2) -> "Floorplan":
        cols, rows = _grid_shape(config.num_vaults)
        return cls(config=config, vault_cols=cols, vault_rows=rows, sub=sub)

    @property
    def nx(self) -> int:
        """Grid cells along x."""
        return self.vault_cols * self.sub

    @property
    def ny(self) -> int:
        """Grid cells along y."""
        return self.vault_rows * self.sub

    @property
    def num_cells(self) -> int:
        return self.nx * self.ny

    @property
    def cell_area_m2(self) -> float:
        return self.config.die_area_mm2 * 1e-6 / self.num_cells

    @property
    def die_width_m(self) -> float:
        # Aspect ratio follows the vault grid; area fixed by the config.
        area = self.config.die_area_mm2 * 1e-6
        return math.sqrt(area * self.vault_cols / self.vault_rows)

    @property
    def die_height_m(self) -> float:
        area = self.config.die_area_mm2 * 1e-6
        return math.sqrt(area * self.vault_rows / self.vault_cols)

    @property
    def cell_dx_m(self) -> float:
        return self.die_width_m / self.nx

    @property
    def cell_dy_m(self) -> float:
        return self.die_height_m / self.ny

    def vault_cells(self, vault_id: int) -> list[tuple[int, int]]:
        """(ix, iy) cells belonging to a vault."""
        if not 0 <= vault_id < self.config.num_vaults:
            raise ValueError(f"vault {vault_id} out of range")
        vx = vault_id % self.vault_cols
        vy = vault_id // self.vault_cols
        return [
            (vx * self.sub + dx, vy * self.sub + dy)
            for dy in range(self.sub)
            for dx in range(self.sub)
        ]

    def vault_center_cells(self, vault_id: int) -> list[tuple[int, int]]:
        """Cells closest to the vault centre (controller + FU placement)."""
        cells = self.vault_cells(vault_id)
        if self.sub == 1:
            return cells
        cx = (self.sub - 1) / 2.0
        # The sub//2-sized central block (1 cell for sub=2 is ambiguous;
        # pick the cells minimizing distance to centre, ties broadcast).
        def dist(c: tuple[int, int]) -> float:
            lx = c[0] % self.sub
            ly = c[1] % self.sub
            return (lx - cx) ** 2 + (ly - cx) ** 2

        dmin = min(dist(c) for c in cells)
        return [c for c in cells if abs(dist(c) - dmin) < 1e-9]

    # -- power maps -----------------------------------------------------------

    def uniform_map(self, total_power_w: float) -> np.ndarray:
        """Power spread evenly over the die, shape (ny, nx)."""
        if total_power_w < 0:
            raise ValueError(f"negative power: {total_power_w}")
        return np.full((self.ny, self.nx), total_power_w / self.num_cells)

    def vault_map(
        self,
        per_vault_power_w: np.ndarray | float,
        center_fraction: float = 0.0,
    ) -> np.ndarray:
        """Per-vault power, optionally concentrating a fraction at centres.

        ``center_fraction`` models the vault controller + FU hot spot: that
        share of the vault's power lands on the centre cells, the rest is
        spread over the vault.
        """
        if not 0.0 <= center_fraction <= 1.0:
            raise ValueError(f"center_fraction out of [0,1]: {center_fraction}")
        nv = self.config.num_vaults
        if np.isscalar(per_vault_power_w):
            powers = np.full(nv, float(per_vault_power_w))
        else:
            powers = np.asarray(per_vault_power_w, dtype=float)
            if powers.shape != (nv,):
                raise ValueError(f"expected {nv} per-vault powers, got {powers.shape}")
        if np.any(powers < 0):
            raise ValueError("negative vault power")
        grid = np.zeros((self.ny, self.nx))
        for v in range(nv):
            cells = self.vault_cells(v)
            centers = self.vault_center_cells(v)
            spread = powers[v] * (1.0 - center_fraction) / len(cells)
            conc = powers[v] * center_fraction / len(centers)
            for ix, iy in cells:
                grid[iy, ix] += spread
            for ix, iy in centers:
                grid[iy, ix] += conc
        return grid
