"""Thermal model facade used by experiments and the co-simulation.

Wraps floorplan + stack + RC network + solvers into the queries the rest
of the system needs:

- :meth:`HmcThermalModel.steady_peak_dram_c` — Fig. 4/5-style operating
  points (peak DRAM die temperature at a traffic level).
- :meth:`HmcThermalModel.step` — transient integration for the feedback
  control loop (Fig. 14).
- :meth:`HmcThermalModel.heatmap` — per-layer temperature fields (Fig. 3).
- Surface-temperature estimates for the prototype experiments (Fig. 1/2).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.hmc.config import HMC_2_0, HmcConfig
from repro.obs.tracer import get_tracer
from repro.thermal.cooling import COMMODITY_SERVER, CoolingSolution
from repro.thermal.floorplan import Floorplan
from repro.thermal.operators import get_operators, get_propagator
from repro.thermal.propagator import ReducedPropagator
from repro.thermal.power import PowerModel, TrafficPoint
from repro.thermal.rc_network import DEFAULT_INTERFACE_SCALE, RcNetwork, build_network
from repro.thermal.solver import SteadySolver, TransientSolver
from repro.thermal.stack import StackSpec, build_stack


class HmcThermalModel:
    """Compact thermal model of one HMC package under a cooling solution.

    By default the expensive operators (assembled RC network, steady LU,
    per-dt step LUs) come from the process-level cache in
    :mod:`repro.thermal.operators`, so the dozens of models a sweep
    constructs share one assembly and factorization per package/cooling
    combination. Transient state is always per-instance. Pass
    ``share_operators=False`` to build private copies (e.g. when mutating
    network matrices in calibration studies).
    """

    def __init__(
        self,
        config: HmcConfig = HMC_2_0,
        cooling: CoolingSolution = COMMODITY_SERVER,
        ambient_c: float = 25.0,
        sub: int = 2,
        power_model: Optional[PowerModel] = None,
        interface_scale: float = DEFAULT_INTERFACE_SCALE,
        share_operators: bool = True,
    ) -> None:
        self.config = config
        self.cooling = cooling
        self.ambient_c = ambient_c
        self.power = power_model or PowerModel(config)
        if share_operators:
            ops = get_operators(
                config, cooling, sub=sub,
                interface_scale=interface_scale, ambient_c=ambient_c,
            )
            self.stack: StackSpec = ops.stack
            self.floorplan = ops.floorplan
            self.network: RcNetwork = ops.network
            self._steady = ops.steady
            self._transient = TransientSolver(
                self.network, ambient_c=ambient_c, lu_cache=ops.step_lus
            )
        else:
            self.stack = build_stack(config)
            self.floorplan = Floorplan.for_config(config, sub=sub)
            self.network = build_network(
                self.stack,
                self.floorplan,
                sink_resistance_c_w=cooling.thermal_resistance_c_w,
                interface_scale=interface_scale,
            )
            self._steady = SteadySolver(self.network, ambient_c=ambient_c)
            self._transient = TransientSolver(self.network, ambient_c=ambient_c)
            ops = None
        self._shared_ops = ops
        self._private_propagators: Dict[tuple, ReducedPropagator] = {}
        self._last_T: Optional[np.ndarray] = None

    # -- power plumbing ---------------------------------------------------------

    def _basis(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Cached linear power basis for uniform vault weights.

        Node power is linear in (external GB/s, internal GB/s, PIM rate):
        ``P = Plogic0 + s·Pdram0 + ext·Vext + s·int·Vint + s·pim·Vpim``
        where ``s`` is the hot-phase DRAM energy scale — the per-step
        power-map assembly reduces to a few AXPYs. The DRAM-affected
        components (static DRAM, internal traffic, PIM ops — the latter
        dominated by DRAM activation energy) carry the scale; logic static
        and SerDes switching do not.
        """
        if not hasattr(self, "_basis_cache"):
            # The basis is a pure function of the power-model constants
            # and the shared floorplan/network, so instances over the
            # same operators (gang lanes, sweep systems) reuse one
            # assembly instead of re-running the per-vault map walks.
            if self._shared_ops is not None:
                shared = getattr(self._shared_ops, "_basis_cache", None)
                if shared is None:
                    shared = self._shared_ops._basis_cache = {}
                key = self._power_fingerprint()
                hit = shared.get(key)
                if hit is not None:
                    self._basis_cache = hit
                    return hit
            from dataclasses import replace as _replace

            def vec(pm: PowerModel, t: TrafficPoint) -> np.ndarray:
                maps = pm.layer_power_maps(self.floorplan, t)
                return self.network.power_vector(maps)

            pm = self.power
            pm_dram_only = PowerModel(
                pm.config,
                dram_energy_per_bit=pm.dram_energy_per_bit,
                logic_energy_per_bit=pm.logic_energy_per_bit,
                fu_energy_per_bit=pm.fu_energy_per_bit,
                static_logic_w=0.0,
                static_dram_total_w=pm.static_dram_total_w,
            )
            p0 = vec(pm, TrafficPoint.idle())
            p0_dram = vec(pm_dram_only, TrafficPoint.idle())
            p0_logic = p0 - p0_dram
            v_ext = vec(pm, TrafficPoint(external_gbs=1.0)) - p0
            v_int = vec(pm, TrafficPoint(internal_dram_gbs=1.0)) - p0
            v_pim = vec(pm, TrafficPoint(pim_rate_ops_ns=1.0)) - p0
            self._basis_cache = (p0_logic, p0_dram, v_ext, v_int, v_pim)
            if self._shared_ops is not None:
                shared[key] = self._basis_cache
        return self._basis_cache

    def _power_vector(
        self,
        traffic: TrafficPoint,
        vault_weights: Optional[np.ndarray] = None,
        dram_energy_scale: float = 1.0,
    ) -> np.ndarray:
        if dram_energy_scale < 0:
            raise ValueError(f"negative energy scale: {dram_energy_scale}")
        if vault_weights is None:
            p0_logic, p0_dram, v_ext, v_int, v_pim = self._basis()
            s = dram_energy_scale
            return (
                p0_logic
                + s * p0_dram
                + traffic.external_gbs * v_ext
                + s * traffic.internal_dram_gbs * v_int
                + s * traffic.pim_rate_ops_ns * v_pim
            )
        if dram_energy_scale != 1.0:
            raise NotImplementedError(
                "hot-phase energy scaling requires uniform vault weights"
            )
        maps = self.power.layer_power_maps(self.floorplan, traffic, vault_weights)
        return self.network.power_vector(maps)

    # -- steady-state queries --------------------------------------------------

    def steady_state(
        self, traffic: TrafficPoint, vault_weights: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Full steady node-temperature vector for an operating point."""
        with get_tracer().span(
            "thermal.steady_solve", cat="thermal",
            nodes=self.network.num_nodes,
        ):
            T = self._steady.solve(self._power_vector(traffic, vault_weights))
        self._last_T = T
        return T

    def _peak_over_layers(self, T: np.ndarray, names: list[str]) -> float:
        net = self.network
        return max(
            float(net.layer_temps(T, net.layer_index[n]).max()) for n in names
        )

    def steady_peak_dram_c(
        self, traffic: TrafficPoint, vault_weights: Optional[np.ndarray] = None
    ) -> float:
        """Peak DRAM-die temperature at steady state (Fig. 4/5 metric)."""
        T = self.steady_state(traffic, vault_weights)
        names = [f"dram{i}" for i in range(self.config.num_dram_dies)]
        return self._peak_over_layers(T, names)

    def steady_peak_logic_c(self, traffic: TrafficPoint) -> float:
        T = self.steady_state(traffic)
        return self._peak_over_layers(T, ["logic"])

    def steady_surface_c(self, traffic: TrafficPoint) -> float:
        """Package-surface (spreader-top) temperature — what a thermal
        camera sees in the prototype experiments (Fig. 1/2)."""
        T = self.steady_state(traffic)
        net = self.network
        surf = net.layer_temps(T, net.layer_index["spreader"])
        return float(surf.max())

    def junction_from_surface_c(self, surface_c: float, power_w: float) -> float:
        """Estimate die temperature from a surface measurement using a
        typical surface-to-junction resistance (Sec. III-A: 5–10 °C hotter
        at ~20 W — i.e. ~0.35 °C/W)."""
        return surface_c + 0.35 * power_w

    # -- transient interface -----------------------------------------------------

    @property
    def state(self) -> np.ndarray:
        return self._transient.T

    def reset_transient(self, temp_c: Optional[float] = None) -> None:
        self._transient.T = np.full(
            self.network.num_nodes, self.ambient_c if temp_c is None else temp_c
        )

    # -- scenario injection ------------------------------------------------------

    def set_ambient_offset(self, delta_c: float) -> None:
        """Shift the boundary (case/ambient) temperature by ``delta_c``.

        Scenario injection uses this for both ambient excursions and
        heat-sink degradation: a degraded sink raises the effective
        case-to-ambient resistance, which to first order (lumped, fixed
        reference power ``P_ref``) is an additive boundary-temperature
        penalty ``ΔT = ΔR_sink · P_ref``. The offset only enters the
        transient forcing term (``B · ambient``) — the conductance
        network, operator caches, and reduced propagators are untouched,
        so the macro fast path stays valid; with ``delta_c == 0`` the
        forcing is bit-identical to the unperturbed model. Steady-state
        helpers (warm start, shutdown recovery) keep the nominal ambient
        in both engines.
        """
        self._transient.ambient_c = self.ambient_c + delta_c

    @property
    def effective_ambient_c(self) -> float:
        """Boundary temperature currently driving the transient solver."""
        return self._transient.ambient_c

    def warm_start(self, traffic: TrafficPoint) -> None:
        """Initialize the transient state at the steady point of ``traffic``."""
        self._transient.set_state(self.steady_state(traffic))

    def step(
        self,
        traffic: TrafficPoint,
        dt_s: float,
        vault_weights: Optional[np.ndarray] = None,
        dram_energy_scale: float = 1.0,
    ) -> float:
        """Advance the transient by ``dt_s``; returns peak DRAM temp (°C).

        ``dram_energy_scale`` applies the hot-phase energy penalty
        (doubled refresh + leakage above 85 °C, see
        :meth:`repro.hmc.dram_timing.TemperaturePhasePolicy.dram_energy_scale`).
        """
        P = self._power_vector(traffic, vault_weights, dram_energy_scale)
        T = self._transient.step(P, dt_s)
        self._last_T = T
        names = [f"dram{i}" for i in range(self.config.num_dram_dies)]
        return self._peak_over_layers(T, names)

    def settle(
        self,
        traffic: TrafficPoint,
        dt_s: float = 25e-6,
        tol_c: float = 1e-4,
        vault_weights: Optional[np.ndarray] = None,
        dram_energy_scale: float = 1.0,
    ) -> float:
        """Integrate at constant traffic until the transient settles.

        Runs the batched constant-power fast path
        (:meth:`TransientSolver.run_to_steady`) instead of stepping the
        control loop; returns the settled peak DRAM temperature (°C).
        """
        P = self._power_vector(traffic, vault_weights, dram_energy_scale)
        with get_tracer().span(
            "thermal.settle", cat="thermal", dt_s=dt_s, tol_c=tol_c
        ) as span:
            T, steps = self._transient.run_to_steady(P, dt_s, tol_c=tol_c)
            span.set(steps=steps)
        self._last_T = T
        names = [f"dram{i}" for i in range(self.config.num_dram_dies)]
        return self._peak_over_layers(T, names)

    def peak_dram_c(self) -> float:
        """Peak DRAM temperature of the current transient state."""
        T = self._transient.T
        names = [f"dram{i}" for i in range(self.config.num_dram_dies)]
        return self._peak_over_layers(T, names)

    def set_transient_state(self, T: np.ndarray) -> None:
        """Install a node-temperature state (macro-engine burst commit)."""
        self._transient.set_state(T)
        self._last_T = self._transient.T

    # -- reduced propagation -----------------------------------------------------

    def _power_fingerprint(self) -> tuple:
        pm = self.power
        return (
            pm.dram_energy_per_bit, pm.logic_energy_per_bit,
            pm.fu_energy_per_bit, pm.static_logic_w, pm.static_dram_total_w,
        )

    def propagator(self, dt_s: float) -> ReducedPropagator:
        """Reduced K-step propagator for ``dt_s`` (see
        :mod:`repro.thermal.propagator`).

        Forcing-basis columns are ordered ``(p0_logic, p0_dram, v_ext,
        v_int, v_pim, B)``, so a step's coefficient vector under energy
        scale ``s`` and ambient ``T_amb`` is
        ``(1, s, ext_gbs, s·int_gbs, s·pim_rate, T_amb)`` — matching
        :meth:`_power_vector` plus the boundary term. Cached on the shared
        operator bundle when available, else per-model.
        """
        inputs = np.column_stack([*self._basis(), self.network.B])
        fingerprint = self._power_fingerprint()
        if self._shared_ops is not None:
            return get_propagator(self._shared_ops, dt_s, inputs, fingerprint)
        key = (float(dt_s), fingerprint)
        prop = self._private_propagators.get(key)
        if prop is None:
            net = self.network
            dram_index = np.concatenate([
                np.arange(net.num_nodes)[net.layer_slice(net.layer_index[f"dram{i}"])]
                for i in range(self.config.num_dram_dies)
            ])
            prop = ReducedPropagator(
                net, self._transient._lus.get(dt_s), dt_s, inputs, dram_index
            )
            self._private_propagators[key] = prop
        return prop

    # -- maps ---------------------------------------------------------------------

    def heatmap(self, layer_name: str) -> np.ndarray:
        """(ny, nx) temperature field of a layer from the last solve."""
        if self._last_T is None:
            raise RuntimeError("no solve has been performed yet")
        net = self.network
        if layer_name not in net.layer_index:
            raise KeyError(
                f"unknown layer {layer_name!r}; have {sorted(net.layer_index)}"
            )
        return net.layer_temps(self._last_T, net.layer_index[layer_name]).copy()

    def all_heatmaps(self) -> Dict[str, np.ndarray]:
        return {name: self.heatmap(name) for name in self.network.layer_index}
