"""Thermal sensor with sampling delay and hysteresis.

The HMC raises thermal warnings through response-packet ERRSTAT bits
(Sec. II-A). Physical sensors sample periodically and the package responds
thermally on a ~1 ms timescale (Fig. 8: Tthermal ≈ 1 ms). The sensor here
samples the peak DRAM temperature at a fixed period and drives the warning
flag with hysteresis so the control loop doesn't chatter at the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

#: Scenario-injection hook: ``(true_temp_c, now_s) -> reading``. Returning
#: ``None`` models sensor dropout — the sample slot is consumed but the
#: reading is lost, freezing the warning state and ``last_temp_c``.
PerturbFn = Callable[[float, float], Optional[float]]


@dataclass
class ThermalSensor:
    """Sampled warning generator.

    Attributes
    ----------
    warn_threshold_c:
        Raise the warning when peak temperature is at/above this (85 °C —
        the top of DRAM's normal operating range).
    clear_threshold_c:
        Clear the warning when temperature falls below this (hysteresis).
    sample_period_s:
        Sensor sampling period.
    """

    warn_threshold_c: float = 85.0
    clear_threshold_c: float = 83.0
    sample_period_s: float = 100e-6
    _warning: bool = field(default=False, init=False)
    _last_sample_time: float = field(default=float("-inf"), init=False)
    #: ``None`` until the first sample lands — a fictitious 0 °C here
    #: would poison HW-DynT's severity/settling logic after a reset.
    _last_temp: Optional[float] = field(default=None, init=False)
    #: Measurement-channel perturbation (noise/dropout); ``None`` = ideal.
    perturb: Optional[PerturbFn] = field(
        default=None, init=False, repr=False, compare=False
    )
    history: List[Tuple[float, float, bool]] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.clear_threshold_c > self.warn_threshold_c:
            raise ValueError(
                f"clear threshold ({self.clear_threshold_c}) must not exceed "
                f"warn threshold ({self.warn_threshold_c})"
            )
        if self.sample_period_s <= 0:
            raise ValueError(f"sample period must be positive: {self.sample_period_s}")

    @property
    def warning(self) -> bool:
        return self._warning

    @property
    def last_temp_c(self) -> Optional[float]:
        """Most recent accepted reading; ``None`` before the first sample."""
        return self._last_temp

    @property
    def next_sample_s(self) -> float:
        """Earliest time at which :meth:`observe` will take a new sample.

        ``-inf`` before the first observation (the first call always
        samples). The macro-step engine uses this to place sensor horizon
        events without re-deriving the sampling rule.
        """
        return self._last_sample_time + self.sample_period_s

    def sample_due(self, now_s: float) -> bool:
        """Whether an :meth:`observe` call at ``now_s`` would take a sample."""
        return now_s - self._last_sample_time >= self.sample_period_s

    def observe(self, temp_c: float, now_s: float) -> bool:
        """Offer a temperature reading; takes effect only at sample times.

        Returns the (possibly updated) warning state.
        """
        if now_s - self._last_sample_time < self.sample_period_s:
            return self._warning
        if self.perturb is not None:
            reading = self.perturb(temp_c, now_s)
            if reading is None:
                # Dropout: the slot is consumed, the reading is lost.
                self._last_sample_time = now_s
                return self._warning
            temp_c = reading
        self._last_sample_time = now_s
        self._last_temp = temp_c
        if self._warning:
            if temp_c < self.clear_threshold_c:
                self._warning = False
        else:
            if temp_c >= self.warn_threshold_c:
                self._warning = True
        self.history.append((now_s, temp_c, self._warning))
        return self._warning

    def reset(self) -> None:
        """Clear sampling state. ``perturb`` is left alone on purpose: a
        scenario's sensor-fault window survives mid-run resets (thermal
        shutdown recovery) — the fault is in the channel, not the run."""
        self._warning = False
        self._last_sample_time = float("-inf")
        self._last_temp = None
        self.history.clear()
