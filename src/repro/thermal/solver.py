"""Steady-state and transient solvers for the RC thermal network.

Steady state solves ``G·T = P + B·T_amb`` with a sparse factorization.
Transients use implicit (backward) Euler, unconditionally stable for this
stiff system:

    (C/dt + G) T_{n+1} = (C/dt) T_n + P + B·T_amb

The step factorization is cached per ``dt``, so fixed-step co-simulation
pays one LU per run.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.thermal.rc_network import RcNetwork


class SteadySolver:
    """Cached-factorization steady-state solver."""

    def __init__(self, network: RcNetwork, ambient_c: float = 25.0) -> None:
        self.network = network
        self.ambient_c = ambient_c
        self._lu = spla.splu(sp.csc_matrix(network.G))

    def solve(self, P: np.ndarray) -> np.ndarray:
        """Steady temperatures (°C) for node power vector ``P`` (W)."""
        net = self.network
        if P.shape != (net.num_nodes,):
            raise ValueError(f"P has shape {P.shape}, expected ({net.num_nodes},)")
        rhs = P + net.B * self.ambient_c
        return self._lu.solve(rhs)


class TransientSolver:
    """Implicit-Euler transient integrator with per-dt cached LU."""

    def __init__(
        self,
        network: RcNetwork,
        ambient_c: float = 25.0,
        initial_c: Optional[float] = None,
    ) -> None:
        self.network = network
        self.ambient_c = ambient_c
        self.T = np.full(network.num_nodes, ambient_c if initial_c is None else initial_c)
        self._lus: Dict[float, spla.SuperLU] = {}

    def set_state(self, T: np.ndarray) -> None:
        if T.shape != self.T.shape:
            raise ValueError(f"T has shape {T.shape}, expected {self.T.shape}")
        self.T = T.copy()

    def _lu_for(self, dt_s: float) -> spla.SuperLU:
        lu = self._lus.get(dt_s)
        if lu is None:
            net = self.network
            A = sp.csc_matrix(sp.diags(net.C / dt_s) + net.G)
            lu = spla.splu(A)
            self._lus[dt_s] = lu
        return lu

    def step(self, P: np.ndarray, dt_s: float) -> np.ndarray:
        """Advance one implicit-Euler step of ``dt_s`` seconds."""
        if dt_s <= 0:
            raise ValueError(f"dt must be positive: {dt_s}")
        net = self.network
        if P.shape != (net.num_nodes,):
            raise ValueError(f"P has shape {P.shape}, expected ({net.num_nodes},)")
        lu = self._lu_for(dt_s)
        rhs = net.C / dt_s * self.T + P + net.B * self.ambient_c
        self.T = lu.solve(rhs)
        return self.T

    def run(self, P: np.ndarray, duration_s: float, dt_s: float) -> np.ndarray:
        """Integrate a constant power vector for ``duration_s``."""
        steps = int(round(duration_s / dt_s))
        for _ in range(steps):
            self.step(P, dt_s)
        return self.T

    def dominant_time_constant_s(self) -> float:
        """Estimate of the slowest thermal time constant (diagnostic).

        Uses the ratio of total capacitance to total boundary conductance —
        an upper bound on the settling timescale of the package.
        """
        net = self.network
        return float(net.C.sum() / net.B.sum())
