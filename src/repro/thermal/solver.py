"""Steady-state and transient solvers for the RC thermal network.

Steady state solves ``G·T = P + B·T_amb`` with a sparse factorization.
Transients use implicit (backward) Euler, unconditionally stable for this
stiff system:

    (C/dt + G) T_{n+1} = (C/dt) T_n + P + B·T_amb

Step factorizations are cached per ``dt`` in a bounded, quantized-key
:class:`StepLuCache`, so fixed-step co-simulation pays one LU per run and
adaptive stepping cannot leak a factorization per distinct float ``dt``.
The cache object can be shared between solvers over the same network
(see :mod:`repro.thermal.operators`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.obs.tracer import get_tracer
from repro.thermal.rc_network import RcNetwork

#: Default bound on cached step factorizations per solver/cache.
DEFAULT_MAX_STEP_LUS = 8

#: Significant digits kept when keying LUs by dt: steps closer than one
#: part in 1e9 share a factorization (far below any physical difference).
_DT_KEY_DIGITS = 9


def _dt_key(dt_s: float) -> float:
    """Quantize ``dt`` to a cache key with bounded relative precision."""
    return float(f"{dt_s:.{_DT_KEY_DIGITS}g}")


class StepLuCache:
    """Bounded LRU cache of implicit-Euler step factorizations.

    Keys are :func:`_dt_key`-quantized step sizes; values are SuperLU
    factorizations of ``C/dt + G``. Bounded so adaptive-stepping callers
    that sweep many distinct ``dt`` values recycle the oldest entries
    instead of leaking a full factorization each.
    """

    def __init__(self, network: RcNetwork, max_entries: int = DEFAULT_MAX_STEP_LUS):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive: {max_entries}")
        self.network = network
        self.max_entries = max_entries
        self._lus: "OrderedDict[float, spla.SuperLU]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._lus)

    def get(self, dt_s: float) -> spla.SuperLU:
        key = _dt_key(dt_s)
        lu = self._lus.get(key)
        if lu is not None:
            self.hits += 1
            self._lus.move_to_end(key)
            return lu
        self.misses += 1
        net = self.network
        with get_tracer().span(
            "thermal.lu_factorize", cat="thermal", dt_s=key, nodes=net.num_nodes
        ):
            A = sp.csc_matrix(sp.diags(net.C / key) + net.G)
            lu = spla.splu(A)
        self._lus[key] = lu
        while len(self._lus) > self.max_entries:
            self._lus.popitem(last=False)
        return lu


class SteadySolver:
    """Cached-factorization steady-state solver.

    Stateless after construction (the LU depends only on ``G``), so one
    instance can be shared by any number of thermal models over the same
    network.
    """

    def __init__(self, network: RcNetwork, ambient_c: float = 25.0) -> None:
        self.network = network
        self.ambient_c = ambient_c
        self._lu = spla.splu(sp.csc_matrix(network.G))

    def solve(self, P: np.ndarray) -> np.ndarray:
        """Steady temperatures (°C) for node power vector ``P`` (W)."""
        net = self.network
        if P.shape != (net.num_nodes,):
            raise ValueError(f"P has shape {P.shape}, expected ({net.num_nodes},)")
        rhs = P + net.B * self.ambient_c
        return self._lu.solve(rhs)


class TransientSolver:
    """Implicit-Euler transient integrator with a bounded per-dt LU cache.

    ``lu_cache`` may be a shared :class:`StepLuCache` (must wrap the same
    network); the solver's own state (``T``) is never shared.
    """

    def __init__(
        self,
        network: RcNetwork,
        ambient_c: float = 25.0,
        initial_c: Optional[float] = None,
        lu_cache: Optional[StepLuCache] = None,
    ) -> None:
        if lu_cache is not None and lu_cache.network is not network:
            raise ValueError("shared lu_cache wraps a different network")
        self.network = network
        self.ambient_c = ambient_c
        self.T = np.full(network.num_nodes, ambient_c if initial_c is None else initial_c)
        self._lus = lu_cache if lu_cache is not None else StepLuCache(network)

    def set_state(self, T: np.ndarray) -> None:
        if T.shape != self.T.shape:
            raise ValueError(f"T has shape {T.shape}, expected {self.T.shape}")
        self.T = T.copy()

    def _lu_for(self, dt_s: float) -> spla.SuperLU:
        return self._lus.get(dt_s)

    def _check(self, P: np.ndarray, dt_s: float) -> None:
        if dt_s <= 0:
            raise ValueError(f"dt must be positive: {dt_s}")
        if P.shape != (self.network.num_nodes,):
            raise ValueError(
                f"P has shape {P.shape}, expected ({self.network.num_nodes},)"
            )

    def step(self, P: np.ndarray, dt_s: float) -> np.ndarray:
        """Advance one implicit-Euler step of ``dt_s`` seconds."""
        self._check(P, dt_s)
        net = self.network
        lu = self._lu_for(dt_s)
        rhs = net.C / dt_s * self.T + P + net.B * self.ambient_c
        self.T = lu.solve(rhs)
        return self.T

    def _integrate(
        self,
        P: np.ndarray,
        dt_s: float,
        max_steps: int,
        tol_c: Optional[float] = None,
    ) -> Tuple[np.ndarray, int]:
        """Shared constant-power integration loop.

        Validation, the LU lookup, ``C/dt`` and the T-independent RHS
        terms are hoisted out of the loop, so each step is one AXPY plus
        one triangular solve. Returns ``(T, steps_taken)``; with ``tol_c``
        set, stops early once the per-step update falls below it.
        """
        self._check(P, dt_s)
        net = self.network
        lu = self._lu_for(dt_s)
        c_over_dt = net.C / dt_s
        base_rhs = P + net.B * self.ambient_c
        T = self.T
        taken = 0
        with get_tracer().span(
            "thermal.integrate", cat="thermal", dt_s=dt_s, max_steps=max_steps
        ) as span:
            for _ in range(max_steps):
                T_next = lu.solve(c_over_dt * T + base_rhs)
                taken += 1
                converged = (
                    tol_c is not None and float(np.max(np.abs(T_next - T))) < tol_c
                )
                T = T_next
                if converged:
                    break
            span.set(steps=taken)
        self.T = T
        return T, taken

    def run(self, P: np.ndarray, duration_s: float, dt_s: float) -> np.ndarray:
        """Integrate a constant power vector for ``duration_s``."""
        steps = int(round(duration_s / dt_s))
        if steps <= 0:
            return self.T
        T, _ = self._integrate(P, dt_s, steps)
        return T

    def run_to_steady(
        self,
        P: np.ndarray,
        dt_s: float,
        tol_c: float = 1e-4,
        max_steps: int = 100_000,
    ) -> Tuple[np.ndarray, int]:
        """Integrate constant power until the transient settles.

        Steps until the largest per-step temperature change drops below
        ``tol_c`` (°C) or ``max_steps`` elapse; returns ``(T, steps)``.
        Feedback-loop experiments use this to reach a thermal operating
        point without paying per-step Python overhead or guessing a
        duration.
        """
        if tol_c <= 0:
            raise ValueError(f"tol_c must be positive: {tol_c}")
        return self._integrate(P, dt_s, max_steps, tol_c=tol_c)

    def dominant_time_constant_s(self) -> float:
        """Estimate of the slowest thermal time constant (diagnostic).

        Uses the ratio of total capacitance to total boundary conductance —
        an upper bound on the settling timescale of the package.
        """
        net = self.network
        return float(net.C.sum() / net.B.sum())
