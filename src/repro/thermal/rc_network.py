"""3D RC thermal network construction.

Discretizes the layer stack × floorplan grid into a conduction network
(3D-ICE style): every (layer, cell) pair is a node; vertical conductances
cross layer interfaces (half-thickness series model), lateral conductances
connect neighbouring cells within a layer; the top layer couples to ambient
through the heat sink (Table II resistance, distributed over cells) and the
bottom leaks weakly to the board.

Produces the sparse conductance matrix ``G``, capacitance vector ``C``, and
boundary conductance vector ``B`` consumed by :mod:`repro.thermal.solver`:

    C dT/dt = P + B·T_amb − G·T
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np
import scipy.sparse as sp

from repro.thermal.floorplan import Floorplan
from repro.thermal.stack import StackSpec

#: Vertical interface-resistance multiplier. Compact per-cell 1-D vertical
#: conduction mis-estimates the constriction/spreading resistance around
#: the microbump fields; this scale is calibrated once (together with the
#: static logic power) against the paper's commodity-cooling operating
#: points (33 °C idle, 81 °C at 320 GB/s — Sec. III-B), the same way the
#: authors validated against the HMC 1.1 prototype (Fig. 2).
DEFAULT_INTERFACE_SCALE = 0.7928

#: Weak conduction path from the logic die to the board (°C/W, total).
BOARD_RESISTANCE_C_W = 25.0

#: Transient-capacitance scales. The paper's feedback model uses a thermal
#: response delay of ~1 ms (Fig. 8) — the *local* die response that its
#: 3D-ICE simulations exhibit — while a lumped package (die stack + sink
#: base) settles orders of magnitude slower. We keep the full conduction
#: network for steady accuracy but scale capacitances so the die-level
#: transient matches the paper's millisecond dynamics: the spreader (sink
#: base) is treated as quasi-steady, and die capacitance is reduced to the
#: thermally-active volume near the junctions.
DIE_CAPACITANCE_SCALE = 0.02
SPREADER_CAPACITANCE_SCALE = 0.005


@dataclass
class RcNetwork:
    """Assembled network matrices and index helpers."""

    stack: StackSpec
    floorplan: Floorplan
    G: sp.csr_matrix            # conductance Laplacian + boundary diagonal
    C: np.ndarray               # per-node heat capacity (J/K)
    B: np.ndarray               # per-node boundary conductance to ambient (W/K)
    layer_index: Dict[str, int]

    @property
    def num_nodes(self) -> int:
        return self.C.size

    @property
    def cells_per_layer(self) -> int:
        return self.floorplan.num_cells

    def node(self, layer: int, ix: int, iy: int) -> int:
        """Flat node index of (layer, cell)."""
        fp = self.floorplan
        if not (0 <= ix < fp.nx and 0 <= iy < fp.ny):
            raise ValueError(f"cell ({ix},{iy}) outside {fp.nx}x{fp.ny} grid")
        if not 0 <= layer < self.stack.num_layers:
            raise ValueError(f"layer {layer} outside stack")
        return layer * fp.num_cells + iy * fp.nx + ix

    def layer_slice(self, layer: int) -> slice:
        n = self.floorplan.num_cells
        return slice(layer * n, (layer + 1) * n)

    def layer_temps(self, T: np.ndarray, layer: int) -> np.ndarray:
        """Temperatures of one layer reshaped to (ny, nx)."""
        fp = self.floorplan
        return T[self.layer_slice(layer)].reshape(fp.ny, fp.nx)

    def power_vector(self, layer_maps: Dict[str, np.ndarray]) -> np.ndarray:
        """Assemble the node power vector from per-layer maps."""
        P = np.zeros(self.num_nodes)
        fp = self.floorplan
        for name, grid in layer_maps.items():
            if name not in self.layer_index:
                raise KeyError(f"unknown layer {name!r}; have {sorted(self.layer_index)}")
            g = np.asarray(grid, dtype=float)
            if g.shape != (fp.ny, fp.nx):
                raise ValueError(
                    f"map for {name!r} has shape {g.shape}, expected {(fp.ny, fp.nx)}"
                )
            P[self.layer_slice(self.layer_index[name])] = g.ravel()
        return P


def _validate_build_args(sink_resistance_c_w: float, interface_scale: float) -> None:
    if sink_resistance_c_w <= 0:
        raise ValueError(f"sink resistance must be positive: {sink_resistance_c_w}")
    if interface_scale <= 0:
        raise ValueError(f"interface scale must be positive: {interface_scale}")


def _lateral_conductances(
    layers, dx: float, dy: float
) -> tuple[np.ndarray, np.ndarray]:
    """Per-layer neighbour conductances (g_x, g_y) as arrays over layers."""
    k = np.array([layer.material.conductivity_w_mk for layer in layers])
    t = np.array([layer.thickness_m for layer in layers])
    return k * t * dy / dx, k * t * dx / dy


def _vertical_conductances(
    layers, cell_area: float, interface_scale: float
) -> np.ndarray:
    """Per-interface conductance between adjacent layers (length nl-1)."""
    r_half = 0.5 * np.array(
        [layer.vertical_resistance_k_w(cell_area) for layer in layers]
    )
    r = r_half[:-1] + r_half[1:]
    is_iface = np.array(
        [layer.name.startswith(("bond", "tim")) for layer in layers]
    )
    r[is_iface[:-1] | is_iface[1:]] *= interface_scale
    return 1.0 / r


def _boundary_vector(
    nl: int, nc: int, sink_resistance_c_w: float, board_resistance_c_w: float
) -> np.ndarray:
    """Boundary conductances: heat sink above the top layer, weak board
    path below the bottom layer. A total resistance R spread over nc
    parallel cells is R*nc per cell."""
    B = np.zeros(nl * nc)
    B[(nl - 1) * nc :] += 1.0 / (sink_resistance_c_w * nc)
    B[:nc] += 1.0 / (board_resistance_c_w * nc)
    return B


def _capacitance_vector(layers, nc: int, cell_area: float) -> np.ndarray:
    """Heat capacities (with transient calibration scales, see above)."""
    cap = np.array(
        [
            layer.heat_capacity_j_k(cell_area)
            * (
                SPREADER_CAPACITANCE_SCALE
                if layer.name == "spreader"
                else DIE_CAPACITANCE_SCALE
            )
            for layer in layers
        ]
    )
    return np.repeat(cap, nc)


def build_network(
    stack: StackSpec,
    floorplan: Floorplan,
    sink_resistance_c_w: float,
    interface_scale: float = DEFAULT_INTERFACE_SCALE,
    board_resistance_c_w: float = BOARD_RESISTANCE_C_W,
) -> RcNetwork:
    """Build G, C, B for a stack/floorplan/heat-sink combination.

    Assembly is pure numpy index arithmetic — no per-cell Python loops —
    and produces the same matrices as :func:`build_network_reference`
    (the readable loop formulation kept as the specification).
    """
    _validate_build_args(sink_resistance_c_w, interface_scale)

    fp = floorplan
    layers = stack.layers
    nl, nc = len(layers), fp.num_cells
    n = nl * nc
    nx, ny = fp.nx, fp.ny
    cell_area = fp.cell_area_m2

    g_x, g_y = _lateral_conductances(layers, fp.cell_dx_m, fp.cell_dy_m)
    g_v = _vertical_conductances(layers, cell_area, interface_scale)

    # Edge endpoint indices, vectorized per edge family. Cells are numbered
    # iy*nx + ix within a layer; layer l occupies [l*nc, (l+1)*nc).
    cell = np.arange(nc).reshape(ny, nx)
    layer_off = np.arange(nl)[:, None] * nc

    # x-neighbours: (l, ix, iy) — (l, ix+1, iy), for ix+1 < nx.
    ex = (layer_off + cell[:, :-1].ravel()).ravel()
    ex_g = np.repeat(g_x, ny * (nx - 1))
    # y-neighbours: (l, ix, iy) — (l, ix, iy+1), for iy+1 < ny.
    ey = (layer_off + cell[:-1, :].ravel()).ravel()
    ey_g = np.repeat(g_y, (ny - 1) * nx)
    # vertical: (l, ix, iy) — (l+1, ix, iy) for every interface l.
    ev = (layer_off[:-1] + cell.ravel()).ravel()
    ev_g = np.repeat(g_v, nc)

    edge_a = np.concatenate((ex, ey, ev))
    edge_b = np.concatenate((ex + 1, ey + nx, ev + nc))
    edge_g = np.concatenate((ex_g, ey_g, ev_g))

    # Degree (diagonal) accumulation; each edge contributes g at both ends.
    diag = np.zeros(n)
    np.add.at(diag, edge_a, edge_g)
    np.add.at(diag, edge_b, edge_g)

    B = _boundary_vector(nl, nc, sink_resistance_c_w, board_resistance_c_w)

    G = sp.csr_matrix(
        sp.coo_matrix(
            (
                np.concatenate((edge_g * -1.0, edge_g * -1.0, diag + B)),
                (
                    np.concatenate((edge_a, edge_b, np.arange(n))),
                    np.concatenate((edge_b, edge_a, np.arange(n))),
                ),
            ),
            shape=(n, n),
        )
    )

    C = _capacitance_vector(layers, nc, cell_area)
    layer_index = {layer.name: i for i, layer in enumerate(layers)}
    return RcNetwork(
        stack=stack, floorplan=fp, G=G, C=C, B=B, layer_index=layer_index
    )


def build_network_reference(
    stack: StackSpec,
    floorplan: Floorplan,
    sink_resistance_c_w: float,
    interface_scale: float = DEFAULT_INTERFACE_SCALE,
    board_resistance_c_w: float = BOARD_RESISTANCE_C_W,
) -> RcNetwork:
    """Per-cell loop assembly — the readable specification.

    Retained for the equivalence tests and the assembly benchmark;
    production code uses the vectorized :func:`build_network`.
    """
    _validate_build_args(sink_resistance_c_w, interface_scale)

    fp = floorplan
    layers = stack.layers
    nl, nc = len(layers), fp.num_cells
    n = nl * nc
    cell_area = fp.cell_area_m2
    dx, dy = fp.cell_dx_m, fp.cell_dy_m

    def node(l: int, ix: int, iy: int) -> int:
        return l * nc + iy * fp.nx + ix

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []

    def add_conductance(a: int, b: int, g: float) -> None:
        rows.extend((a, b, a, b))
        cols.extend((a, b, b, a))
        vals.extend((g, g, -g, -g))

    # Lateral conduction within each layer.
    for l, layer in enumerate(layers):
        k = layer.material.conductivity_w_mk
        t = layer.thickness_m
        g_x = k * t * dy / dx   # between horizontal neighbours
        g_y = k * t * dx / dy
        for iy in range(fp.ny):
            for ix in range(fp.nx):
                if ix + 1 < fp.nx:
                    add_conductance(node(l, ix, iy), node(l, ix + 1, iy), g_x)
                if iy + 1 < fp.ny:
                    add_conductance(node(l, ix, iy), node(l, ix, iy + 1), g_y)

    # Vertical conduction between adjacent layers (half-thickness series).
    for l in range(nl - 1):
        la, lb = layers[l], layers[l + 1]
        r = (
            0.5 * la.vertical_resistance_k_w(cell_area)
            + 0.5 * lb.vertical_resistance_k_w(cell_area)
        )
        # Interface (bond/TIM) crossings carry the calibration scale.
        if la.name.startswith(("bond", "tim")) or lb.name.startswith(("bond", "tim")):
            r *= interface_scale
        g_v = 1.0 / r
        for iy in range(fp.ny):
            for ix in range(fp.nx):
                add_conductance(node(l, ix, iy), node(l + 1, ix, iy), g_v)

    # Boundary: heat sink above the top layer, weak board path below the
    # bottom layer. A total resistance R spread over nc parallel cells is
    # R*nc per cell.
    B = np.zeros(n)
    g_sink_cell = 1.0 / (sink_resistance_c_w * nc)
    top = nl - 1
    for iy in range(fp.ny):
        for ix in range(fp.nx):
            B[node(top, ix, iy)] += g_sink_cell
    g_board_cell = 1.0 / (board_resistance_c_w * nc)
    for iy in range(fp.ny):
        for ix in range(fp.nx):
            B[node(0, ix, iy)] += g_board_cell

    G = sp.csr_matrix(
        sp.coo_matrix((vals, (rows, cols)), shape=(n, n))
    )
    G = G + sp.diags(B)

    # Heat capacities (with transient calibration scales, see above).
    C = np.zeros(n)
    for l, layer in enumerate(layers):
        scale = (
            SPREADER_CAPACITANCE_SCALE
            if layer.name == "spreader"
            else DIE_CAPACITANCE_SCALE
        )
        C[l * nc : (l + 1) * nc] = layer.heat_capacity_j_k(cell_area) * scale

    layer_index = {layer.name: i for i, layer in enumerate(layers)}
    return RcNetwork(
        stack=stack, floorplan=fp, G=G, C=C, B=B, layer_index=layer_index
    )
