"""Cooling solutions (Table II) and the fan-curve power model.

Table II of the paper:

=============================  ===================  =============
Type                           Thermal Resistance   Cooling Power
=============================  ===================  =============
Passive heat sink              4.0 °C/W             0
Low-end active heat sink       2.0 °C/W             1×
Commodity-server active sink   0.5 °C/W             104×
High-end active heat sink      0.2 °C/W             380×
=============================  ===================  =============

All configurations use the same plate-fin heat-sink model; the high-end
fan has 2× wheel diameter. The paper's fan power follows the fan-curve
methodology [34]: for a plate-fin sink, lowering thermal resistance
requires roughly quadratically more airflow, and fan power grows with the
cube of airflow — so power explodes as resistance shrinks. The high-end
0.2 °C/W sink's fan draws ≈13 W (half a fully-utilized HMC 2.0 cube).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class CoolingSolution:
    """A heat sink: case-to-ambient resistance + fan characteristics."""

    name: str
    thermal_resistance_c_w: float
    fan_power_relative: float  # relative to low-end active (1x)
    wheel_diameter_relative: float = 1.0

    def __post_init__(self) -> None:
        if self.thermal_resistance_c_w <= 0:
            raise ValueError(f"thermal resistance must be positive: {self}")
        if self.fan_power_relative < 0:
            raise ValueError(f"fan power cannot be negative: {self}")

    @property
    def is_passive(self) -> bool:
        return self.fan_power_relative == 0.0

    def fan_power_w(self) -> float:
        """Absolute fan power, anchored at 13 W for the 380× high-end fan."""
        return self.fan_power_relative * _WATTS_PER_UNIT


#: High-end fan ≈ 13 W at 380× (Sec. III-B) → 1× ≈ 34 mW.
_WATTS_PER_UNIT = 13.0 / 380.0

PASSIVE = CoolingSolution("passive", 4.0, 0.0)
LOW_END_ACTIVE = CoolingSolution("low-end", 2.0, 1.0)
COMMODITY_SERVER = CoolingSolution("commodity", 0.5, 104.0)
HIGH_END_ACTIVE = CoolingSolution("high-end", 0.2, 380.0, wheel_diameter_relative=2.0)

COOLING_SOLUTIONS: Dict[str, CoolingSolution] = {
    c.name: c for c in (PASSIVE, LOW_END_ACTIVE, COMMODITY_SERVER, HIGH_END_ACTIVE)
}


# Fan-curve model constants (see fan_power_w): forced-convection floor of
# the plate-fin sink and the cubic-law coefficient calibrated on the
# low-end Table II point.
_R_FLOOR = 0.0946
_K_CUBIC = 1.0 / (1.0 / (2.0 - _R_FLOOR)) ** 3  # 1x at R = 2.0, d = 1


def relative_fan_power(
    thermal_resistance_c_w: float, wheel_diameter_relative: float = 1.0
) -> float:
    """Fan power (in Table II's 'x' units) for a plate-fin sink.

    Fan-curve extrapolation per the characteristic-curve methodology [34]
    combined with the fan affinity laws: sink resistance follows
    ``R = R0 + a/V`` in airflow ``V``, and fan power follows
    ``P ∝ V³ / d⁴`` for wheel diameter ``d``. Calibrating R0 on the
    commodity/low-end pair reproduces all three active Table II points:

    >>> round(relative_fan_power(2.0))
    1
    >>> round(relative_fan_power(0.5))
    104
    >>> round(relative_fan_power(0.2, wheel_diameter_relative=2.0))
    369
    """
    if thermal_resistance_c_w <= 0:
        raise ValueError(f"resistance must be positive: {thermal_resistance_c_w}")
    if wheel_diameter_relative <= 0:
        raise ValueError(f"diameter must be positive: {wheel_diameter_relative}")
    # Natural-convection limit of the bare sink; at/above it no fan needed.
    if thermal_resistance_c_w >= 4.0:
        return 0.0
    if thermal_resistance_c_w <= _R_FLOOR:
        return float("inf")
    v = 1.0 / (thermal_resistance_c_w - _R_FLOOR)
    return _K_CUBIC * v**3 / wheel_diameter_relative**4


def fan_power_w(
    thermal_resistance_c_w: float, wheel_diameter_relative: float = 1.0
) -> float:
    """Absolute fan power in watts (high-end ≈ 13 W, Sec. III-B).

    >>> 11.0 < fan_power_w(0.2, wheel_diameter_relative=2.0) < 14.0
    True
    """
    return (
        relative_fan_power(thermal_resistance_c_w, wheel_diameter_relative)
        * _WATTS_PER_UNIT
    )
