"""Reduced-order K-step propagator for the implicit-Euler thermal step.

The co-simulation's hot path applies one cached step operator per 25 µs
control quantum:

    T_{k+1} = A⁻¹ (D T_k + P_k + B·T_amb),   A = C/dt + G,  D = diag(C/dt)

with ``P_k`` drawn from a six-vector power basis (logic static, DRAM
static, external-, internal-, PIM-traffic responses, ambient boundary).
Each application costs a full sparse triangular solve — the dominant term
of the scalar loop. This module collapses K such steps into dense
arithmetic in a small invariant subspace:

- Symmetrize: with ``x = D^{1/2} T`` the step becomes ``x' = S x + c``
  where ``S = D^{1/2} A⁻¹ D^{1/2}`` is symmetric positive definite with
  spectrum in (0, 1) (``G`` is symmetric, ``C > 0``).
- Build an orthonormal basis ``W`` from block-Krylov chains of the six
  forcing images ``D^{1/2} A⁻¹ v_i`` (batched multi-RHS LU solves), and
  eigendecompose the reduced operator ``S_r = WᵀSW = V Λ Vᵀ``.
- A K-step trajectory then costs one (r×K) diagonal recurrence plus one
  dense GEMM to read out per-step peak DRAM temperatures — microseconds
  per quantum instead of a ~0.5 ms solve.

States outside the span (a warm-start steady point after a shutdown,
altered power constants) are detected by the projection residual and
healed by extending the basis with a Krylov chain seeded at the residual;
callers see ``project`` fail closed, never a silently wrong trajectory.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.obs.tracer import get_tracer
from repro.thermal.rc_network import RcNetwork

#: Default projection-residual tolerance (°C, inf-norm) above which a
#: state is considered outside the basis and triggers an extension.
DEFAULT_PROJECT_TOL_C = 1e-7

#: Default cap on the reduced rank; extensions beyond it mark the
#: propagator unhealthy so callers fall back to exact stepping.
DEFAULT_MAX_RANK = 480

#: Relative column-norm threshold below which a candidate Krylov
#: direction is considered numerically contained in the basis.
_DROP_TOL = 1e-10


def first_crossing(series: np.ndarray, threshold: float) -> Optional[int]:
    """Index of the first element of ``series`` at/above ``threshold``.

    The temperature-threshold crossing search of the macro engine: given a
    per-quantum peak-temperature trajectory, returns the exact quantum at
    which a phase boundary (85/95/105 °C) or sensor threshold is reached,
    or ``None`` if the trajectory stays below it throughout.
    """
    mask = series >= threshold
    if not mask.size:
        return None
    # ``argmax`` on a boolean array short-circuits at the first True,
    # unlike ``nonzero`` which scans the whole series and materializes
    # every index after the crossing.
    hit = int(mask.argmax())
    return hit if mask[hit] else None


class ReducedPropagator:
    """Shared reduced-order propagator for one (network, LU, dt) triple.

    The object is cheap to *use* concurrently from many simulator runs
    (projection/marching never mutate), while :meth:`project` may *extend*
    the basis in place — single-threaded per process, like the operator
    caches it lives beside.
    """

    def __init__(
        self,
        network: RcNetwork,
        lu,
        dt_s: float,
        inputs: np.ndarray,
        dram_index: np.ndarray,
        project_tol_c: float = DEFAULT_PROJECT_TOL_C,
        max_rank: int = DEFAULT_MAX_RANK,
        chain_depth: int = 48,
        extend_depth: int = 16,
    ) -> None:
        if inputs.ndim != 2 or inputs.shape[0] != network.num_nodes:
            raise ValueError(
                f"inputs must be (num_nodes, n_inputs), got {inputs.shape}"
            )
        self.network = network
        self.lu = lu
        self.dt_s = float(dt_s)
        self.project_tol_c = project_tol_c
        self.max_rank = max_rank
        self.extend_depth = extend_depth
        self.healthy = True
        self.extensions = 0
        self._d = network.C / self.dt_s
        self._sd = np.sqrt(self._d)
        self._dram_index = np.asarray(dram_index, dtype=int)
        # Forcing images in x-space: c_i = D^{1/2} A⁻¹ v_i.
        self._forcing = self._sd[:, None] * lu.solve(np.ascontiguousarray(inputs))
        with get_tracer().span(
            "thermal.propagator_build", cat="thermal",
            nodes=network.num_nodes, n_inputs=inputs.shape[1],
        ) as span:
            seeds = np.column_stack([self._forcing, self._sd])
            self._W = self._grow_basis(np.empty((network.num_nodes, 0)), seeds,
                                       chain_depth)
            self._finalize()
            span.set(rank=self.rank)

    # -- construction ------------------------------------------------------

    @property
    def rank(self) -> int:
        return self._W.shape[1]

    def _apply_s(self, X: np.ndarray) -> np.ndarray:
        """S @ X via the cached LU (batched multi-RHS solve)."""
        return self._sd[:, None] * self.lu.solve(
            np.ascontiguousarray(self._sd[:, None] * X)
        )

    @staticmethod
    def _orthonormalize(W: np.ndarray, block: np.ndarray) -> np.ndarray:
        """New orthonormal directions of ``block`` against ``W`` (may be
        empty). Two rounds of classical Gram-Schmidt, then a QR with
        small-column dropping."""
        norms = np.linalg.norm(block, axis=0)
        keep = norms > 0
        if not keep.all():
            block = block[:, keep]
            norms = norms[keep]
        if block.shape[1] == 0:
            return block
        block = block / norms
        for _ in range(2):
            if W.shape[1]:
                block = block - W @ (W.T @ block)
        q, r = np.linalg.qr(block)
        mags = np.abs(np.diag(r))
        cols = mags > _DROP_TOL
        return q[:, cols]

    def _grow_basis(
        self, W: np.ndarray, seeds: np.ndarray, depth: int
    ) -> np.ndarray:
        """Block-Krylov growth: append chains S^k·seeds until directions
        converge, ``depth`` is reached, or the rank cap binds."""
        block = self._orthonormalize(W, seeds)
        parts: List[np.ndarray] = [W] if W.shape[1] else []
        rank = W.shape[1]
        for _ in range(depth):
            if block.shape[1] == 0 or rank >= self.max_rank:
                break
            room = self.max_rank - rank
            block = block[:, :room]
            parts.append(block)
            rank += block.shape[1]
            Wcur = np.column_stack(parts)
            block = self._orthonormalize(Wcur, self._apply_s(block))
        return np.column_stack(parts) if parts else W

    def _finalize(self) -> None:
        """Reduced operator, eigenbasis, and projected I/O maps."""
        W = self._W
        SW = self._apply_s(W)
        S_r = W.T @ SW
        S_r = 0.5 * (S_r + S_r.T)
        #: Invariance defect of the basis (x-space, per-column inf bound).
        self.invariance_residual = float(
            np.abs(SW - W @ S_r).max()
        ) if W.shape[1] else 0.0
        lam, V = np.linalg.eigh(S_r)
        self._lam = lam
        #: n×r map straight between node space and eigen-coordinates.
        self._WV = W @ V
        self._proj_in = self._WV.T @ self._forcing       # (r, n_inputs)
        out = self._WV[self._dram_index] / self._sd[self._dram_index, None]
        self._out = np.ascontiguousarray(out)            # (n_dram, r)
        #: Per-mode readout column norms — the Lipschitz constants bounding
        #: how much a unit of eigen-coordinate ``m`` can move any DRAM
        #: node's temperature. :class:`PeakReader` certifies its mode
        #: truncation against these.
        self._out_colnorms = np.linalg.norm(self._out, axis=0)

    def _extend(self, residual_x: np.ndarray) -> None:
        """Self-heal: absorb an out-of-span state into the basis."""
        before = self.rank
        self._W = self._grow_basis(
            self._W, residual_x[:, None], self.extend_depth
        )
        if self.rank == before:
            self.healthy = False
            return
        self.extensions += 1
        if self.rank >= self.max_rank:
            # The cap bound the chain short; marching could drift. Fail
            # closed — callers revert to exact stepping.
            self.healthy = False
        self._finalize()

    # -- runtime interface --------------------------------------------------

    def project(self, T: np.ndarray) -> Tuple[Optional[np.ndarray], float]:
        """Eigen-coordinates of a node-temperature state.

        Returns ``(z, residual_inf_c)``. If the state lies outside the
        basis beyond ``project_tol_c`` the basis is extended (bounded by
        ``max_rank``) and the projection retried; an unhealable state
        returns ``(None, residual)`` so the caller falls back to exact
        stepping rather than marching a wrong trajectory.
        """
        x = self._sd * T
        for _ in range(2):
            z = self._WV.T @ x
            resid_x = x - self._WV @ z
            resid_c = float(np.abs(resid_x / self._sd).max())
            if resid_c <= self.project_tol_c:
                return z, resid_c
            if not self.healthy:
                break
            self._extend(resid_x)
        return None, resid_c

    def reconstruct(self, z: np.ndarray) -> np.ndarray:
        """Node-temperature state from eigen-coordinates."""
        return (self._WV @ z) / self._sd

    def march(self, z0: np.ndarray, coeffs: np.ndarray) -> np.ndarray:
        """Advance K quanta; returns the (r, K) post-step trajectory.

        ``coeffs`` is (n_inputs, K): column k holds the power-basis
        weights of quantum k, so the forcing term is ``proj_in @ coeffs``
        and each step is a diagonal update ``z ← Λz + h_k``.
        """
        H = self._proj_in @ coeffs
        K = H.shape[1]
        Z = np.empty((self._lam.size, K))
        z = z0
        lam = self._lam
        for k in range(K):
            z = lam * z + H[:, k]
            Z[:, k] = z
        return Z

    def multi_step(
        self, T0: np.ndarray, coeffs: np.ndarray
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """K steps from a full state: ``(T_K, per-step peak DRAM °C)``.

        Convenience wrapper over project/march/peaks for callers that
        think in node space; returns ``(None, None)`` when the state
        cannot be represented (unhealthy basis).
        """
        z0, _ = self.project(T0)
        if z0 is None:
            return None, None
        Z = self.march(z0, coeffs)
        return self.reconstruct(Z[:, -1]), self.dram_peaks(Z)

    def march_many(
        self, z0s: List[np.ndarray], coeffs_list: List[np.ndarray]
    ) -> List[np.ndarray]:
        """Advance several independent trajectories in one lockstep loop.

        Batched counterpart of :meth:`march` for a gang of lanes sharing
        this basis: lane ``l`` starts at ``z0s[l]`` and marches
        ``coeffs_list[l].shape[1]`` quanta. The diagonal recurrence runs
        once over an ``(L, r)`` state matrix instead of once per lane, so
        the Python-level step loop is paid a single time for the longest
        lane. Elementwise multiply/add are shape-independent bitwise, and
        the forcing GEMM ``proj_in @ coeffs`` is issued per lane with the
        same operand shapes as :meth:`march`, so every returned trajectory
        is bit-identical to a solo march of that lane.
        """
        L = len(z0s)
        if L == 0:
            return []
        lengths = [c.shape[1] for c in coeffs_list]
        k_max = max(lengths)
        lam = self._lam
        r = lam.size
        # Per-lane forcing, same GEMM shape as the solo march (a fused
        # wide GEMM would not be bitwise equal column-block by block).
        # Step-major layout keeps each quantum's (L, r) slice contiguous
        # for the recurrence; lanes shorter than ``k_max`` coast on zero
        # forcing past their end (their surplus columns are discarded).
        # Callers batching lanes of very different lengths should group
        # them by magnitude — the loop is paid to the longest lane.
        H = np.zeros((k_max, L, r))
        for l, coeffs in enumerate(coeffs_list):
            if coeffs.shape[1]:
                H[: coeffs.shape[1], l, :] = (self._proj_in @ coeffs).T
        Z_all = np.empty((k_max, L, r))
        z = np.array(z0s)
        for k in range(k_max):
            z = lam * z + H[k]
            Z_all[k] = z
        return [np.ascontiguousarray(Z_all[:n, l, :].T) for l, n in
                enumerate(lengths)]

    def dram_peaks(self, Z: np.ndarray) -> np.ndarray:
        """Per-step peak DRAM temperature (°C) of a marched trajectory.

        The plain full readout. Hot-path callers that issue many readouts
        per run (the macro and gang engines) should hold a
        :class:`PeakReader` instead — same values for the same call
        sequence, at a fraction of the flops.
        """
        return (self._out @ Z).max(axis=0)

    def dram_peaks_many(
        self,
        Zs: List[np.ndarray],
        readers: Optional[List["PeakReader"]] = None,
    ) -> List[np.ndarray]:
        """Peak readout for a gang of trajectories.

        A per-lane loop on purpose: fusing lanes into one wide GEMM would
        change the BLAS kernel's reduction blocking, and a column-block of
        a wider GEMM is not bitwise equal to the narrow GEMM a solo run
        performs — which would break the gang's bit-equality contract.
        With ``readers`` (one per lane, in lane order) each lane's
        certified low-rank reader is used, matching what a solo macro run
        of that lane computes call-for-call.
        """
        if readers is None:
            return [self.dram_peaks(Z) for Z in Zs]
        return [rd.peaks(Z) for rd, Z in zip(readers, Zs)]

    def peak_reader(self) -> "PeakReader":
        """A fresh per-run certified peak readout over this basis."""
        return PeakReader(self)

    def dram_peak_of(self, z: np.ndarray) -> float:
        """Peak DRAM temperature of a single eigen-coordinate state."""
        return float((self._out @ z).max())




class PeakReader:
    """Per-run certified truncated-mode peak readout over a shared basis.

    The macro engine's dominant GEMM is the per-burst peak readout
    ``(out @ Z).max(axis=0)`` — ``(n_dram, r) @ (r, K)`` with
    ``n_dram ≈ 1024`` rows of which only the hottest plateau of nodes can
    ever win the max, and ``r ≈ 192`` eigenmodes of which only a few
    dozen carry any readout weight along a real trajectory. The reader
    exploits both axes, with every shortcut *certified* so the returned
    floats are exact row readouts, never approximations:

    - **Mode truncation.** ``Z`` is already in the eigenbasis, so the
      readout splits by mode: ``T_i(k) = out[i, S]·Z[S, k] + e_ik`` with
      ``|e_ik| ≤ Σ_{m∉S} ‖out[:, m]‖·|Z[m, k]|`` — a cheap abs-GEMV
      against precomputed column norms. The kept set ``S`` grows
      deterministically whenever the tail bound exceeds the budget.
    - **Row dominance.** Over a bounding box of the truncated
      coordinates seen so far, each row's deficit against a reference
      hot row is bounded above by interval arithmetic
      (``D·mid + |D|·halfwidth``). Rows that cannot close the deficit
      anywhere in the box are excluded once, not re-tested per call; a
      call whose coordinates stay inside the box pays only the subset
      readout. Box misses re-center and re-pad the box — warm-started
      runs typically rebuild once.
    - The surviving candidate rows are read out **exactly** (full-rank
      subset GEMM) and their max returned.

    The candidate max equals the full-readout max *as a real number* —
    the bounds are exact — but a row-subset GEMM is not bitwise equal to
    the same rows of a full GEMM, and the mode-set/box state depends on
    the run's burst history. Both are why the reader is per-run and
    shared by engines: a gang lane replaying a macro run's burst sequence
    through its own reader sees the identical mode sets, boxes, candidate
    sets, and output floats, call for call. Selection error is covered by
    the certified bounds plus ``SLACK_C`` of float headroom, far below
    the 1e-6 °C decision margins.
    """

    #: Certification budget (°C): worst-case readout error of the
    #: truncated-mode approximation before candidate slack is applied.
    #: Loose on purpose — it widens the candidate set, never the result:
    #: rows within the budget of the apex are read out exactly anyway.
    TOL_C = 2e-3
    #: Float headroom (°C) on the exclusion threshold, absorbing rounding
    #: of the interval-arithmetic deficit bounds themselves.
    SLACK_C = 1e-6
    #: Modes kept initially and added per tail-bound miss.
    MODES_INIT = 32
    MODES_GROW = 16
    #: Mode-set ceiling; beyond it the reader falls back to full
    #: readouts for the rest of the run.
    MAX_MODES = 128
    #: Box padding: span-relative, magnitude-relative, and absolute —
    #: sized so a warm-started run's drift stays inside one box.
    PAD_SPAN = 0.5
    PAD_REL = 0.1
    PAD_ABS = 0.2

    def __init__(self, prop: ReducedPropagator) -> None:
        self._prop = prop
        self._S: Optional[np.ndarray] = None      # kept modes, sorted
        self._rest: Optional[np.ndarray] = None   # dropped modes
        self._w_rest: Optional[np.ndarray] = None  # their column norms
        self._BS: Optional[np.ndarray] = None     # out[:, S], contiguous
        self._lo: Optional[np.ndarray] = None     # coordinate box, (q,)
        self._hi: Optional[np.ndarray] = None
        self._cand: Optional[np.ndarray] = None   # surviving row indices
        self._Osub: Optional[np.ndarray] = None   # out[cand], contiguous
        self.dead = False
        self.full_readouts = 0
        self.pruned_readouts = 0
        self.rebuilds = 0

    def _set_modes(self, S: np.ndarray) -> None:
        prop = self._prop
        self._S = np.sort(S)
        self._rest = np.setdiff1d(
            np.arange(prop.rank, dtype=np.intp), self._S
        )
        self._w_rest = np.ascontiguousarray(prop._out_colnorms[self._rest])
        self._BS = np.ascontiguousarray(prop._out[:, self._S])
        # New coordinates invalidate the box and the dominance bounds.
        self._lo = None
        self._hi = None
        self._cand = None
        if self._S.size > self.MAX_MODES:
            self.dead = True

    def _grow_modes(self, Z: np.ndarray, room: int) -> None:
        """Deterministically absorb the strongest dropped modes."""
        contrib = self._prop._out_colnorms * np.abs(Z).max(axis=1)
        if self._S is not None:
            contrib[self._S] = -1.0
        take = np.argsort(contrib, kind="stable")[-room:]
        S = take if self._S is None else np.concatenate([self._S, take])
        self._set_modes(S)

    def _rebuild_box(self, cmin: np.ndarray, cmax: np.ndarray) -> None:
        """Re-center the box on the current call and re-derive candidates.

        For each row the deficit against a reference hot row is bounded
        above over the whole box by interval arithmetic: with
        ``D = BS − BS[jref]``, ``max_c D·c = D·mid + |D|·halfwidth``.
        Any row whose bound sits below ``−(2·TOL_C + SLACK_C)`` cannot
        reach the apex anywhere in the box (both rows carry ≤ TOL_C of
        truncation error) and is excluded until the box or mode set
        changes.
        """
        pad = (
            self.PAD_SPAN * (cmax - cmin)
            + self.PAD_REL * np.abs(0.5 * (cmin + cmax))
            + self.PAD_ABS
        )
        self._lo = cmin - pad
        self._hi = cmax + pad
        mid = 0.5 * (self._lo + self._hi)
        half = 0.5 * (self._hi - self._lo)
        BS = self._BS
        jref = int((BS @ mid).argmax())
        D = BS - BS[jref]
        ub = D @ mid + np.abs(D) @ half
        cand = np.nonzero(ub > -(2.0 * self.TOL_C + self.SLACK_C))[0]
        n = BS.shape[0]
        if cand.size * 2 > n:
            # Near-degenerate regime (e.g. a cold uniform state): the
            # subset would not pay for itself — serve this box with full
            # readouts instead of materializing most of ``out``.
            self._cand = None
            self._Osub = None
        else:
            self._cand = cand
            self._Osub = np.ascontiguousarray(self._prop._out[cand])
        self.rebuilds += 1

    def peaks(self, Z: np.ndarray) -> np.ndarray:
        """Per-step peak DRAM °C; same values as the run's full readouts.

        Deterministic given the sequence of trajectories this reader has
        served — the contract the gang engine's bit-equality rests on.
        """
        prop = self._prop
        out = prop._out
        if self.dead or Z.shape[1] == 0 or out.shape[0] <= 8:
            self.full_readouts += 1
            return (out @ Z).max(axis=0)
        for attempt in range(2):
            if self._S is None:
                self._grow_modes(Z, self.MODES_INIT)
            tail = self._w_rest @ np.abs(Z[self._rest])
            if float(tail.max(initial=0.0)) > self.TOL_C:
                if attempt == 0 and not self.dead:
                    self._grow_modes(Z, self.MODES_GROW)
                    continue
                break
            C = Z[self._S]
            cmin = C.min(axis=1)
            cmax = C.max(axis=1)
            if (
                self._lo is None
                or (cmin < self._lo).any()
                or (cmax > self._hi).any()
            ):
                self._rebuild_box(cmin, cmax)
            if self._Osub is None:
                break
            self.pruned_readouts += 1
            return (self._Osub @ Z).max(axis=0)
        self.full_readouts += 1
        return (out @ Z).max(axis=0)
