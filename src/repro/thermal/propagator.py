"""Reduced-order K-step propagator for the implicit-Euler thermal step.

The co-simulation's hot path applies one cached step operator per 25 µs
control quantum:

    T_{k+1} = A⁻¹ (D T_k + P_k + B·T_amb),   A = C/dt + G,  D = diag(C/dt)

with ``P_k`` drawn from a six-vector power basis (logic static, DRAM
static, external-, internal-, PIM-traffic responses, ambient boundary).
Each application costs a full sparse triangular solve — the dominant term
of the scalar loop. This module collapses K such steps into dense
arithmetic in a small invariant subspace:

- Symmetrize: with ``x = D^{1/2} T`` the step becomes ``x' = S x + c``
  where ``S = D^{1/2} A⁻¹ D^{1/2}`` is symmetric positive definite with
  spectrum in (0, 1) (``G`` is symmetric, ``C > 0``).
- Build an orthonormal basis ``W`` from block-Krylov chains of the six
  forcing images ``D^{1/2} A⁻¹ v_i`` (batched multi-RHS LU solves), and
  eigendecompose the reduced operator ``S_r = WᵀSW = V Λ Vᵀ``.
- A K-step trajectory then costs one (r×K) diagonal recurrence plus one
  dense GEMM to read out per-step peak DRAM temperatures — microseconds
  per quantum instead of a ~0.5 ms solve.

States outside the span (a warm-start steady point after a shutdown,
altered power constants) are detected by the projection residual and
healed by extending the basis with a Krylov chain seeded at the residual;
callers see ``project`` fail closed, never a silently wrong trajectory.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.obs.tracer import get_tracer
from repro.thermal.rc_network import RcNetwork

#: Default projection-residual tolerance (°C, inf-norm) above which a
#: state is considered outside the basis and triggers an extension.
DEFAULT_PROJECT_TOL_C = 1e-7

#: Default cap on the reduced rank; extensions beyond it mark the
#: propagator unhealthy so callers fall back to exact stepping.
DEFAULT_MAX_RANK = 480

#: Relative column-norm threshold below which a candidate Krylov
#: direction is considered numerically contained in the basis.
_DROP_TOL = 1e-10


def first_crossing(series: np.ndarray, threshold: float) -> Optional[int]:
    """Index of the first element of ``series`` at/above ``threshold``.

    The temperature-threshold crossing search of the macro engine: given a
    per-quantum peak-temperature trajectory, returns the exact quantum at
    which a phase boundary (85/95/105 °C) or sensor threshold is reached,
    or ``None`` if the trajectory stays below it throughout.
    """
    hits = np.nonzero(series >= threshold)[0]
    return int(hits[0]) if hits.size else None


class ReducedPropagator:
    """Shared reduced-order propagator for one (network, LU, dt) triple.

    The object is cheap to *use* concurrently from many simulator runs
    (projection/marching never mutate), while :meth:`project` may *extend*
    the basis in place — single-threaded per process, like the operator
    caches it lives beside.
    """

    def __init__(
        self,
        network: RcNetwork,
        lu,
        dt_s: float,
        inputs: np.ndarray,
        dram_index: np.ndarray,
        project_tol_c: float = DEFAULT_PROJECT_TOL_C,
        max_rank: int = DEFAULT_MAX_RANK,
        chain_depth: int = 48,
        extend_depth: int = 16,
    ) -> None:
        if inputs.ndim != 2 or inputs.shape[0] != network.num_nodes:
            raise ValueError(
                f"inputs must be (num_nodes, n_inputs), got {inputs.shape}"
            )
        self.network = network
        self.lu = lu
        self.dt_s = float(dt_s)
        self.project_tol_c = project_tol_c
        self.max_rank = max_rank
        self.extend_depth = extend_depth
        self.healthy = True
        self.extensions = 0
        self._d = network.C / self.dt_s
        self._sd = np.sqrt(self._d)
        self._dram_index = np.asarray(dram_index, dtype=int)
        # Forcing images in x-space: c_i = D^{1/2} A⁻¹ v_i.
        self._forcing = self._sd[:, None] * lu.solve(np.ascontiguousarray(inputs))
        with get_tracer().span(
            "thermal.propagator_build", cat="thermal",
            nodes=network.num_nodes, n_inputs=inputs.shape[1],
        ) as span:
            seeds = np.column_stack([self._forcing, self._sd])
            self._W = self._grow_basis(np.empty((network.num_nodes, 0)), seeds,
                                       chain_depth)
            self._finalize()
            span.set(rank=self.rank)

    # -- construction ------------------------------------------------------

    @property
    def rank(self) -> int:
        return self._W.shape[1]

    def _apply_s(self, X: np.ndarray) -> np.ndarray:
        """S @ X via the cached LU (batched multi-RHS solve)."""
        return self._sd[:, None] * self.lu.solve(
            np.ascontiguousarray(self._sd[:, None] * X)
        )

    @staticmethod
    def _orthonormalize(W: np.ndarray, block: np.ndarray) -> np.ndarray:
        """New orthonormal directions of ``block`` against ``W`` (may be
        empty). Two rounds of classical Gram-Schmidt, then a QR with
        small-column dropping."""
        norms = np.linalg.norm(block, axis=0)
        keep = norms > 0
        if not keep.all():
            block = block[:, keep]
            norms = norms[keep]
        if block.shape[1] == 0:
            return block
        block = block / norms
        for _ in range(2):
            if W.shape[1]:
                block = block - W @ (W.T @ block)
        q, r = np.linalg.qr(block)
        mags = np.abs(np.diag(r))
        cols = mags > _DROP_TOL
        return q[:, cols]

    def _grow_basis(
        self, W: np.ndarray, seeds: np.ndarray, depth: int
    ) -> np.ndarray:
        """Block-Krylov growth: append chains S^k·seeds until directions
        converge, ``depth`` is reached, or the rank cap binds."""
        block = self._orthonormalize(W, seeds)
        parts: List[np.ndarray] = [W] if W.shape[1] else []
        rank = W.shape[1]
        for _ in range(depth):
            if block.shape[1] == 0 or rank >= self.max_rank:
                break
            room = self.max_rank - rank
            block = block[:, :room]
            parts.append(block)
            rank += block.shape[1]
            Wcur = np.column_stack(parts)
            block = self._orthonormalize(Wcur, self._apply_s(block))
        return np.column_stack(parts) if parts else W

    def _finalize(self) -> None:
        """Reduced operator, eigenbasis, and projected I/O maps."""
        W = self._W
        SW = self._apply_s(W)
        S_r = W.T @ SW
        S_r = 0.5 * (S_r + S_r.T)
        #: Invariance defect of the basis (x-space, per-column inf bound).
        self.invariance_residual = float(
            np.abs(SW - W @ S_r).max()
        ) if W.shape[1] else 0.0
        lam, V = np.linalg.eigh(S_r)
        self._lam = lam
        #: n×r map straight between node space and eigen-coordinates.
        self._WV = W @ V
        self._proj_in = self._WV.T @ self._forcing       # (r, n_inputs)
        out = self._WV[self._dram_index] / self._sd[self._dram_index, None]
        self._out = np.ascontiguousarray(out)            # (n_dram, r)

    def _extend(self, residual_x: np.ndarray) -> None:
        """Self-heal: absorb an out-of-span state into the basis."""
        before = self.rank
        self._W = self._grow_basis(
            self._W, residual_x[:, None], self.extend_depth
        )
        if self.rank == before:
            self.healthy = False
            return
        self.extensions += 1
        if self.rank >= self.max_rank:
            # The cap bound the chain short; marching could drift. Fail
            # closed — callers revert to exact stepping.
            self.healthy = False
        self._finalize()

    # -- runtime interface --------------------------------------------------

    def project(self, T: np.ndarray) -> Tuple[Optional[np.ndarray], float]:
        """Eigen-coordinates of a node-temperature state.

        Returns ``(z, residual_inf_c)``. If the state lies outside the
        basis beyond ``project_tol_c`` the basis is extended (bounded by
        ``max_rank``) and the projection retried; an unhealable state
        returns ``(None, residual)`` so the caller falls back to exact
        stepping rather than marching a wrong trajectory.
        """
        x = self._sd * T
        for _ in range(2):
            z = self._WV.T @ x
            resid_x = x - self._WV @ z
            resid_c = float(np.abs(resid_x / self._sd).max())
            if resid_c <= self.project_tol_c:
                return z, resid_c
            if not self.healthy:
                break
            self._extend(resid_x)
        return None, resid_c

    def reconstruct(self, z: np.ndarray) -> np.ndarray:
        """Node-temperature state from eigen-coordinates."""
        return (self._WV @ z) / self._sd

    def march(self, z0: np.ndarray, coeffs: np.ndarray) -> np.ndarray:
        """Advance K quanta; returns the (r, K) post-step trajectory.

        ``coeffs`` is (n_inputs, K): column k holds the power-basis
        weights of quantum k, so the forcing term is ``proj_in @ coeffs``
        and each step is a diagonal update ``z ← Λz + h_k``.
        """
        H = self._proj_in @ coeffs
        K = H.shape[1]
        Z = np.empty((self._lam.size, K))
        z = z0
        lam = self._lam
        for k in range(K):
            z = lam * z + H[:, k]
            Z[:, k] = z
        return Z

    def multi_step(
        self, T0: np.ndarray, coeffs: np.ndarray
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """K steps from a full state: ``(T_K, per-step peak DRAM °C)``.

        Convenience wrapper over project/march/peaks for callers that
        think in node space; returns ``(None, None)`` when the state
        cannot be represented (unhealthy basis).
        """
        z0, _ = self.project(T0)
        if z0 is None:
            return None, None
        Z = self.march(z0, coeffs)
        return self.reconstruct(Z[:, -1]), self.dram_peaks(Z)

    def dram_peaks(self, Z: np.ndarray) -> np.ndarray:
        """Per-step peak DRAM temperature (°C) of a marched trajectory."""
        return (self._out @ Z).max(axis=0)

    def dram_peak_of(self, z: np.ndarray) -> float:
        """Peak DRAM temperature of a single eigen-coordinate state."""
        return float((self._out @ z).max())
