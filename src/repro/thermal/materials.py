"""Material properties and layer geometry for the 3D stack.

Values are standard for silicon dies, die-attach/underfill bond layers, and
thermal interface material; they put the stack's junction-to-case
resistance and millisecond-scale thermal time constant in the range the
paper observes (Sec. IV-D: thermal response ~1 ms).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Material:
    """Bulk material: conductivity (W/m·K) and volumetric heat capacity
    (J/m³·K)."""

    name: str
    conductivity_w_mk: float
    volumetric_heat_j_m3k: float

    def __post_init__(self) -> None:
        if self.conductivity_w_mk <= 0 or self.volumetric_heat_j_m3k <= 0:
            raise ValueError(f"material properties must be positive: {self}")


#: Doped silicon die.
SILICON = Material("silicon", conductivity_w_mk=120.0, volumetric_heat_j_m3k=1.63e6)

#: Microbump + underfill bond layer between stacked dies (effective).
BOND = Material("bond", conductivity_w_mk=1.2, volumetric_heat_j_m3k=2.0e6)

#: Thermal interface material between top die and heat-sink base.
TIM = Material("tim", conductivity_w_mk=3.0, volumetric_heat_j_m3k=2.2e6)

#: Copper heat-spreader base plate of the sink.
COPPER = Material("copper", conductivity_w_mk=390.0, volumetric_heat_j_m3k=3.4e6)


@dataclass(frozen=True)
class LayerSpec:
    """One physical layer of the stack.

    ``thickness_m`` is the die/film thickness; ``interface`` marks layers
    that carry no power (bond, TIM).
    """

    name: str
    material: Material
    thickness_m: float
    powered: bool = False

    def __post_init__(self) -> None:
        if self.thickness_m <= 0:
            raise ValueError(f"layer thickness must be positive: {self}")

    def vertical_resistance_k_w(self, area_m2: float) -> float:
        """Conduction resistance through the layer for a given cell area."""
        return self.thickness_m / (self.material.conductivity_w_mk * area_m2)

    def heat_capacity_j_k(self, area_m2: float) -> float:
        """Thermal capacitance of the layer volume over a cell."""
        return self.material.volumetric_heat_j_m3k * area_m2 * self.thickness_m
