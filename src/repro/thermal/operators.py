"""Process-level shared thermal operators.

A parameter sweep (``repro batch``, the evaluation matrix, sensitivity
studies) constructs dozens of :class:`~repro.thermal.model.HmcThermalModel`
instances whose expensive pieces — the assembled RC network and the sparse
LU factorizations — depend only on ``(config, cooling, sub,
interface_scale, ambient, board_resistance)``. This module memoizes those
pieces per process so every model over the same physical package reuses
one assembly, one steady-state factorization, and one bounded per-dt step
factorization cache.

Sharing is safe because all shared state is immutable after construction:
the network matrices are never mutated, :class:`SteadySolver` is stateless
after its LU, and :class:`StepLuCache` only ever *adds* factorizations.
Mutable integration state (``TransientSolver.T``) stays per-model.

The job service forks its pool workers (where the platform allows), so
operators warmed in the parent — see :func:`prewarm` and the scheduler's
``worker_initializer`` — are inherited by every worker for free; under a
spawn start method each worker warms its own cache on first use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.hmc.config import HmcConfig
from repro.obs.tracer import get_tracer
from repro.thermal.cooling import CoolingSolution
from repro.thermal.floorplan import Floorplan
from repro.thermal.rc_network import (
    BOARD_RESISTANCE_C_W,
    DEFAULT_INTERFACE_SCALE,
    RcNetwork,
    build_network,
)
from repro.thermal.propagator import ReducedPropagator
from repro.thermal.solver import StepLuCache, SteadySolver, _dt_key
from repro.thermal.stack import StackSpec, build_stack

#: (config, cooling, sub, interface_scale, ambient, board_resistance)
OperatorKey = Tuple[HmcConfig, CoolingSolution, int, float, float, float]


@dataclass
class ThermalOperators:
    """Operator bundle for one package.

    Immutable after construction except for the additive caches: the step
    LUs and the reduced propagators only ever gain entries (and a
    propagator only ever *extends* its basis), which is the same sharing
    contract :class:`StepLuCache` already relies on.
    """

    stack: StackSpec
    floorplan: Floorplan
    network: RcNetwork
    steady: SteadySolver
    step_lus: StepLuCache
    #: Reduced K-step propagators keyed by (quantized dt, ambient,
    #: power-basis fingerprint) — see :func:`get_propagator`.
    propagators: Dict[Tuple, ReducedPropagator] = field(default_factory=dict)


def get_propagator(
    ops: ThermalOperators,
    dt_s: float,
    inputs: np.ndarray,
    fingerprint: Tuple,
) -> ReducedPropagator:
    """Memoized :class:`ReducedPropagator` for one (bundle, dt, basis).

    ``inputs`` are the forcing basis columns (the thermal model's power
    basis plus the ambient boundary vector); ``fingerprint`` must identify
    their provenance (power-model constants, ambient) so models with
    altered calibration don't share a basis built for different vectors.
    """
    key = (_dt_key(dt_s), fingerprint)
    prop = ops.propagators.get(key)
    if prop is None:
        net = ops.network
        dram_index = np.concatenate([
            np.arange(net.num_nodes)[net.layer_slice(idx)]
            for name, idx in sorted(net.layer_index.items())
            if name.startswith("dram")
        ])
        prop = ReducedPropagator(
            net, ops.step_lus.get(dt_s), dt_s, inputs, dram_index
        )
        ops.propagators[key] = prop
    return prop


_CACHE: Dict[OperatorKey, ThermalOperators] = {}
_HITS = 0
_MISSES = 0


def get_operators(
    config: HmcConfig,
    cooling: CoolingSolution,
    sub: int = 2,
    interface_scale: float = DEFAULT_INTERFACE_SCALE,
    ambient_c: float = 25.0,
    board_resistance_c_w: float = BOARD_RESISTANCE_C_W,
) -> ThermalOperators:
    """Memoized network + solver operators for one package/cooling combo."""
    global _HITS, _MISSES
    key: OperatorKey = (
        config,
        cooling,
        int(sub),
        float(interface_scale),
        float(ambient_c),
        float(board_resistance_c_w),
    )
    ops = _CACHE.get(key)
    if ops is not None:
        _HITS += 1
        return ops
    _MISSES += 1
    with get_tracer().span(
        "thermal.operators_build", cat="thermal",
        cooling=cooling.name, sub=int(sub),
    ):
        stack = build_stack(config)
        floorplan = Floorplan.for_config(config, sub=sub)
        network = build_network(
            stack,
            floorplan,
            sink_resistance_c_w=cooling.thermal_resistance_c_w,
            interface_scale=interface_scale,
            board_resistance_c_w=board_resistance_c_w,
        )
        ops = ThermalOperators(
            stack=stack,
            floorplan=floorplan,
            network=network,
            steady=SteadySolver(network, ambient_c=ambient_c),
            step_lus=StepLuCache(network),
        )
    _CACHE[key] = ops
    return ops


def prewarm(
    config: HmcConfig,
    cooling: CoolingSolution,
    control_dt_s: float = 25e-6,
    **kwargs,
) -> ThermalOperators:
    """Build operators ahead of use, including the control-quantum step LU.

    Called in the job-service parent before the pool forks (and per worker
    as the pool initializer) so simulation jobs start with a hot cache.
    """
    ops = get_operators(config, cooling, **kwargs)
    ops.step_lus.get(control_dt_s)
    return ops


def cache_stats() -> Dict[str, int]:
    """Process-level cache counters (diagnostics and tests).

    Includes aggregates over the per-bundle step-LU caches, so a metrics
    snapshot shows both operator reuse (one assembly per package) and
    step-factorization reuse (one LU per distinct dt).
    """
    return {
        "entries": len(_CACHE),
        "hits": _HITS,
        "misses": _MISSES,
        "step_lu_entries": sum(len(ops.step_lus) for ops in _CACHE.values()),
        "step_lu_hits": sum(ops.step_lus.hits for ops in _CACHE.values()),
        "step_lu_misses": sum(ops.step_lus.misses for ops in _CACHE.values()),
        "propagators": sum(len(ops.propagators) for ops in _CACHE.values()),
        "propagator_extensions": sum(
            p.extensions for ops in _CACHE.values()
            for p in ops.propagators.values()
        ),
    }


def clear_cache() -> None:
    """Drop all shared operators (tests and long-lived tooling)."""
    global _HITS, _MISSES
    _CACHE.clear()
    _HITS = 0
    _MISSES = 0
