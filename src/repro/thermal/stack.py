"""Layer stack definitions for HMC packages.

HMC stacks the logic die at the bottom with DRAM dies above it, so memory
dies sit between the logic die's heat and the heat sink (Sec. I). The
stack here is ordered bottom → top:

    [logic die] [bond] [DRAM 0] [bond] ... [DRAM N-1] [TIM] (sink)

The heat sink itself is a lumped boundary (Table II resistance), attached
above the TIM through a copper spreader node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.hmc.config import HMC_1_1, HMC_2_0, HmcConfig
from repro.thermal.materials import BOND, COPPER, SILICON, TIM, LayerSpec

#: Die thicknesses (thinned stack dies).
_LOGIC_THICKNESS_M = 100e-6
_DRAM_THICKNESS_M = 50e-6
_BOND_THICKNESS_M = 20e-6
_TIM_THICKNESS_M = 75e-6
_SPREADER_THICKNESS_M = 1.0e-3


@dataclass(frozen=True)
class StackSpec:
    """Ordered layers (bottom → top) plus die footprint."""

    name: str
    layers: List[LayerSpec] = field(default_factory=list)
    die_area_mm2: float = 68.0

    @property
    def die_area_m2(self) -> float:
        return self.die_area_mm2 * 1e-6

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def powered_layer_indices(self) -> List[int]:
        return [i for i, l in enumerate(self.layers) if l.powered]

    def dram_layer_indices(self) -> List[int]:
        return [
            i for i, l in enumerate(self.layers) if l.powered and l.name.startswith("dram")
        ]

    @property
    def logic_layer_index(self) -> int:
        for i, l in enumerate(self.layers):
            if l.name == "logic":
                return i
        raise ValueError(f"stack {self.name} has no logic layer")


def build_stack(config: HmcConfig) -> StackSpec:
    """Stack for a cube config: logic + ``num_dram_dies`` DRAM dies."""
    layers: List[LayerSpec] = [
        LayerSpec("logic", SILICON, _LOGIC_THICKNESS_M, powered=True)
    ]
    for i in range(config.num_dram_dies):
        layers.append(LayerSpec(f"bond{i}", BOND, _BOND_THICKNESS_M))
        layers.append(LayerSpec(f"dram{i}", SILICON, _DRAM_THICKNESS_M, powered=True))
    layers.append(LayerSpec("tim", TIM, _TIM_THICKNESS_M))
    layers.append(LayerSpec("spreader", COPPER, _SPREADER_THICKNESS_M))
    return StackSpec(name=config.name, layers=layers, die_area_mm2=config.die_area_mm2)


#: Prebuilt stacks for the two cube generations.
STACK_HMC_2_0 = build_stack(HMC_2_0)
STACK_HMC_1_1 = build_stack(HMC_1_1)
