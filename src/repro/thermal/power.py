"""Traffic → power conversion (Sec. III-B/C and V-A).

Energy constants from the paper:

- DRAM layers: 3.7 pJ/bit (Micron, [14]) — applied to *internal* DRAM
  bandwidth (external payload plus the 2×16 B per PIM op).
- Logic layer: 6.78 pJ/bit — applied to off-chip payload bandwidth.
- PIM FU: ``Power(FU) = E × FU_width × PIM_rate`` with FU width 128 bit;
  ``E`` is calibrated so Fig. 5's temperature/PIM-rate slope holds (the
  paper derives it from 28 nm synthesis).

Static (idle) power models the always-on SerDes links and DRAM standby
current; it is calibrated to the 33 °C idle point with commodity cooling
(Sec. III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.hmc.config import HmcConfig
from repro.thermal.floorplan import Floorplan

#: Energy constants (J/bit).
DRAM_ENERGY_PER_BIT = 3.7e-12
LOGIC_ENERGY_PER_BIT = 6.78e-12
#: Calibrated effective energy per PIM-op bit. This is not the bare ALU
#: energy: a PIM op's 2 × 16 B random DRAM accesses pay full row
#: activations (far costlier per bit than the streaming 3.7 pJ/bit), plus
#: vault-controller command handling and the FU itself. The lumped value
#: is calibrated so Fig. 5 reproduces exactly — 85 °C at 1.3 op/ns and
#: 105 °C at 6.5 op/ns on the link-saturated operating line (see
#: TrafficPoint.pim_saturated and DESIGN.md §5).
FU_ENERGY_PER_BIT = 2.057e-11
FU_WIDTH_BITS = 128

#: Static power split (W): SerDes + PLLs on the logic die dominate idle.
#: Calibrated with the interface scale to the 33 °C idle / 81 °C full-
#: bandwidth commodity-cooling points (Sec. III-B).
STATIC_LOGIC_W = 3.429
STATIC_DRAM_TOTAL_W = 0.8


@dataclass(frozen=True)
class TrafficPoint:
    """Operating point handed to the thermal model.

    Attributes
    ----------
    external_gbs:
        Off-chip payload bandwidth (GB/s).
    internal_dram_gbs:
        Internal DRAM bandwidth (GB/s), ≥ external payload when PIM runs.
    pim_rate_ops_ns:
        PIM operations per nanosecond (= Gop/s).
    """

    external_gbs: float = 0.0
    internal_dram_gbs: float = 0.0
    pim_rate_ops_ns: float = 0.0

    def __post_init__(self) -> None:
        if min(self.external_gbs, self.internal_dram_gbs, self.pim_rate_ops_ns) < 0:
            raise ValueError(f"negative traffic: {self}")

    @classmethod
    def idle(cls) -> "TrafficPoint":
        return cls()

    @classmethod
    def streaming(cls, data_gbs: float) -> "TrafficPoint":
        """Plain read/write traffic (no PIM): internal == external."""
        return cls(external_gbs=data_gbs, internal_dram_gbs=data_gbs)

    @classmethod
    def with_pim(cls, data_gbs: float, pim_rate_ops_ns: float) -> "TrafficPoint":
        """External payload plus PIM ops (2 × 16 B internal each)."""
        internal = data_gbs + pim_rate_ops_ns * 32.0
        return cls(
            external_gbs=data_gbs,
            internal_dram_gbs=internal,
            pim_rate_ops_ns=pim_rate_ops_ns,
        )

    @classmethod
    def pim_saturated(cls, pim_rate_ops_ns: float) -> "TrafficPoint":
        """Fig. 5 operating point: links saturated by PIM + regular mix.

        With PIM at rate ρ, the request lanes carry 2 FLITs per op and the
        remaining capacity a balanced read/write mix whose payload is
        320 − 42.67ρ GB/s; adding the 2 × 16 B internal accesses per op,
        both the payload-equivalent external bandwidth and the internal
        DRAM bandwidth come to 320 − 10.67ρ GB/s.
        """
        if pim_rate_ops_ns < 0:
            raise ValueError(f"negative PIM rate: {pim_rate_ops_ns}")
        rw_payload = max(0.0, 320.0 - (128.0 / 3.0) * pim_rate_ops_ns)
        level = rw_payload + 32.0 * pim_rate_ops_ns
        return cls(
            external_gbs=level,
            internal_dram_gbs=level,
            pim_rate_ops_ns=pim_rate_ops_ns,
        )


class PowerModel:
    """Computes per-layer power (totals and floorplan maps)."""

    def __init__(
        self,
        config: HmcConfig,
        dram_energy_per_bit: float = DRAM_ENERGY_PER_BIT,
        logic_energy_per_bit: float = LOGIC_ENERGY_PER_BIT,
        fu_energy_per_bit: float = FU_ENERGY_PER_BIT,
        static_logic_w: float = STATIC_LOGIC_W,
        static_dram_total_w: float = STATIC_DRAM_TOTAL_W,
    ) -> None:
        for name, v in (
            ("dram_energy_per_bit", dram_energy_per_bit),
            ("logic_energy_per_bit", logic_energy_per_bit),
            ("fu_energy_per_bit", fu_energy_per_bit),
            ("static_logic_w", static_logic_w),
            ("static_dram_total_w", static_dram_total_w),
        ):
            if v < 0:
                raise ValueError(f"{name} cannot be negative: {v}")
        self.config = config
        self.dram_energy_per_bit = dram_energy_per_bit
        self.logic_energy_per_bit = logic_energy_per_bit
        self.fu_energy_per_bit = fu_energy_per_bit
        self.static_logic_w = static_logic_w
        self.static_dram_total_w = static_dram_total_w

    # -- scalar powers -----------------------------------------------------------

    def logic_dynamic_w(self, t: TrafficPoint) -> float:
        """Logic-die switching power from off-chip traffic."""
        return self.logic_energy_per_bit * t.external_gbs * 1e9 * 8

    def dram_dynamic_w(self, t: TrafficPoint) -> float:
        """Total DRAM-stack switching power from internal traffic."""
        return self.dram_energy_per_bit * t.internal_dram_gbs * 1e9 * 8

    def fu_power_w(self, t: TrafficPoint) -> float:
        """Power(FU) = E × FU_width × PIM_rate (Sec. III-C)."""
        return self.fu_energy_per_bit * FU_WIDTH_BITS * t.pim_rate_ops_ns * 1e9

    def logic_total_w(self, t: TrafficPoint) -> float:
        return self.static_logic_w + self.logic_dynamic_w(t) + self.fu_power_w(t)

    def dram_total_w(self, t: TrafficPoint) -> float:
        return self.static_dram_total_w + self.dram_dynamic_w(t)

    def package_total_w(self, t: TrafficPoint, dram_energy_scale: float = 1.0) -> float:
        """Whole-package power, with the hot-phase DRAM energy penalty
        applied to the DRAM-dominated components (static DRAM, internal
        traffic, PIM ops) — the same split the thermal basis uses."""
        if dram_energy_scale < 0:
            raise ValueError(f"negative energy scale: {dram_energy_scale}")
        unscaled = self.static_logic_w + self.logic_dynamic_w(t)
        scaled = self.fu_power_w(t) + self.dram_total_w(t)
        return unscaled + dram_energy_scale * scaled

    # -- floorplan maps ---------------------------------------------------------

    def layer_power_maps(
        self,
        floorplan: Floorplan,
        t: TrafficPoint,
        vault_weights: Optional[np.ndarray] = None,
    ) -> Dict[str, np.ndarray]:
        """Per-powered-layer power maps keyed by layer name.

        ``vault_weights`` (summing to 1) skews traffic across vaults;
        address interleaving makes the default uniform.

        The vault controller + FU share of the logic die's power is
        concentrated at vault centres — this produces the per-vault hot
        spots of Fig. 3.
        """
        nv = self.config.num_vaults
        if vault_weights is None:
            weights = np.full(nv, 1.0 / nv)
        else:
            weights = np.asarray(vault_weights, dtype=float)
            if weights.shape != (nv,):
                raise ValueError(f"expected {nv} vault weights, got {weights.shape}")
            if np.any(weights < 0) or not np.isclose(weights.sum(), 1.0):
                raise ValueError("vault weights must be non-negative and sum to 1")

        maps: Dict[str, np.ndarray] = {}

        # Logic die: static spread uniformly (SerDes ring), dynamic split
        # between vault controllers (concentrated) and switch/links.
        logic_static = floorplan.uniform_map(self.static_logic_w)
        link_share = 0.5  # switch + SerDes part of dynamic logic power
        dyn = self.logic_dynamic_w(t)
        logic_links = floorplan.uniform_map(dyn * link_share)
        per_vault_ctrl = dyn * (1.0 - link_share) * weights
        per_vault_fu = self.fu_power_w(t) * weights
        logic_vaults = floorplan.vault_map(per_vault_ctrl + per_vault_fu,
                                           center_fraction=0.8)
        maps["logic"] = logic_static + logic_links + logic_vaults

        # DRAM dies: split the stack's power evenly across dies, spread
        # per-vault (arrays span the vault footprint).
        n_dram = self.config.num_dram_dies
        dram_total = self.dram_total_w(t)
        per_die = dram_total / n_dram
        for i in range(n_dram):
            maps[f"dram{i}"] = floorplan.vault_map(per_die * weights,
                                                   center_fraction=0.0)
        return maps
