"""Terminal plotting: line charts, bar charts, sparklines.

The experiment modules print tables; these helpers render the same series
the paper plots as figures — dependency-free ASCII, suitable for logs and
CI output.

    from repro.viz import line_chart, bar_chart
    print(line_chart({"commodity": temps}, xs=bandwidths,
                     title="Peak DRAM temp vs bandwidth"))
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

_MARKERS = "*o+x#@%&"
_SPARK = "▁▂▃▄▅▆▇█"


def _scale(value: float, lo: float, hi: float, steps: int) -> int:
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return min(steps - 1, max(0, int(round(frac * (steps - 1)))))


def sparkline(values: Sequence[float]) -> str:
    """One-line trend, e.g. ``▁▂▅▇█▆``."""
    vals = list(values)
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    return "".join(_SPARK[_scale(v, lo, hi, len(_SPARK))] for v in vals)


def line_chart(
    series: Dict[str, Sequence[float]],
    xs: Optional[Sequence[float]] = None,
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Multi-series scatter/line chart on a character canvas.

    Each series gets a marker from ``*o+x…``; points are linearly placed
    by (x, y). ``xs`` defaults to the sample index.
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    n = lengths.pop()
    if n == 0:
        raise ValueError("series are empty")
    if xs is None:
        xs = list(range(n))
    if len(xs) != n:
        raise ValueError(f"xs has {len(xs)} entries for series of length {n}")

    all_y = [y for v in series.values() for y in v]
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(xs), max(xs)

    canvas = [[" "] * width for _ in range(height)]
    for idx, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in zip(xs, ys):
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            canvas[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(canvas):
        if i == 0:
            label = f"{y_hi:8.3g} ┤"
        elif i == height - 1:
            label = f"{y_lo:8.3g} ┤"
        else:
            label = " " * 8 + " │"
        lines.append(label + "".join(row))
    lines.append(" " * 8 + " └" + "─" * width)
    x_axis = f"{x_lo:<10.4g}{x_label:^{max(0, width - 20)}}{x_hi:>10.4g}"
    lines.append(" " * 10 + x_axis)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    if y_label:
        lines.insert(1 if title else 0, f"[{y_label}]")
    return "\n".join(lines)


def bar_chart(
    values: Dict[str, float],
    width: int = 48,
    title: str = "",
    reference: Optional[float] = None,
    unit: str = "",
) -> str:
    """Horizontal bars, one per key, with an optional reference rule.

    ``reference`` draws a ``|`` at that value (e.g. the baseline 1.0 for
    speedup charts or 85 °C for temperature charts).
    """
    if not values:
        raise ValueError("need at least one bar")
    hi = max(list(values.values()) + ([reference] if reference else []))
    if hi <= 0:
        raise ValueError("bar charts need positive values")
    label_w = max(len(k) for k in values)
    ref_col = (
        _scale(reference, 0.0, hi, width) if reference is not None else None
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    for name, value in values.items():
        length = _scale(value, 0.0, hi, width) + 1
        bar = list("█" * min(length, width) + " " * (width - min(length, width)))
        if ref_col is not None and ref_col < width and bar[ref_col] == " ":
            bar[ref_col] = "|"
        lines.append(f"{name:>{label_w}} {''.join(bar)} {value:.3g}{unit}")
    if reference is not None:
        lines.append(f"{'':>{label_w}} {'':>{min(ref_col or 0, width)}}"
                     f"^ reference = {reference:g}{unit}")
    return "\n".join(lines)
