"""Serialized off-chip links with FLIT-level bandwidth accounting.

Each HMC link is full duplex: 16 input + 16 output lanes (Sec. II-A). The
model treats each direction as a serial resource: a packet of N FLITs
occupies the lane for N × flit_time. Requests are striped across links
round-robin, approximating the crossbar's link-level load balancing.

Both directions expose scalar (:meth:`SerialLink.send_request`) and
batched (:meth:`SerialLink.send_request_batch`) entry points; the batched
ones run the same FIFO recurrence through the exact segmented scans of
:mod:`repro.hmc.scan`, so a batch produces bit-identical timestamps,
ready times, busy counters, and FLIT ledgers to the equivalent scalar
call sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hmc.packet import (
    FLIT_BYTES,
    PTYPES_BY_CODE,
    FlitLedger,
    PacketType,
    flit_cost,
)
from repro.hmc.scan import seeded_fold, serial_fifo


@dataclass
class LinkStats:
    request_busy_ns: float = 0.0
    response_busy_ns: float = 0.0


class SerialLink:
    """One full-duplex link: independent request/response serial lanes."""

    def __init__(self, link_id: int, bandwidth_gbs: float) -> None:
        if bandwidth_gbs <= 0:
            raise ValueError(f"link bandwidth must be positive: {bandwidth_gbs}")
        self.link_id = link_id
        # Bandwidth per direction; a "120 GB/s" HMC link is 60 GB/s each way.
        self.direction_bandwidth_gbs = bandwidth_gbs / 2.0
        self.flit_time_ns = FLIT_BYTES / self.direction_bandwidth_gbs
        self.req_ready_at = 0.0
        self.rsp_ready_at = 0.0
        self.ledger = FlitLedger()
        self.stats = LinkStats()
        # Per-type-code serialization durations, computed with the same
        # float expression as the scalar path (flits * flit_time_ns) so
        # batched lookups reproduce scalar results bitwise.
        self._req_dur_by_code = np.array(
            [flit_cost(t)[0] * self.flit_time_ns for t in PTYPES_BY_CODE]
        )
        self._rsp_dur_by_code = np.array(
            [flit_cost(t)[1] * self.flit_time_ns for t in PTYPES_BY_CODE]
        )

    def send_request(self, ptype: PacketType, now: float) -> float:
        """Serialize a request packet; returns arrival time at the cube."""
        flits = flit_cost(ptype)[0]
        start = max(now, self.req_ready_at)
        dur = flits * self.flit_time_ns
        self.req_ready_at = start + dur
        self.stats.request_busy_ns += dur
        self.ledger.record(ptype)
        return start + dur

    def send_response(self, ptype: PacketType, now: float) -> float:
        """Serialize a response packet; returns arrival time at the host.

        The ledger already counted both directions in :meth:`send_request`,
        so only timing is updated here.
        """
        flits = flit_cost(ptype)[1]
        start = max(now, self.rsp_ready_at)
        dur = flits * self.flit_time_ns
        self.rsp_ready_at = start + dur
        self.stats.response_busy_ns += dur
        return start + dur

    def send_request_batch(self, codes: np.ndarray, arrivals: np.ndarray) -> np.ndarray:
        """Serialize many request packets (stream order); returns arrival
        times at the cube — bit-identical to the scalar loop."""
        durs = self._req_dur_by_code[codes]
        _, finishes = serial_fifo(arrivals, durs, self.req_ready_at)
        if finishes.size:
            self.req_ready_at = float(finishes[-1])
        self.stats.request_busy_ns = seeded_fold(self.stats.request_busy_ns, durs)
        self.ledger.record_batch(np.bincount(codes, minlength=len(PTYPES_BY_CODE)))
        return finishes

    def send_response_batch(self, codes: np.ndarray, arrivals: np.ndarray) -> np.ndarray:
        """Serialize many response packets (stream order); returns arrival
        times at the host — bit-identical to the scalar loop."""
        durs = self._rsp_dur_by_code[codes]
        _, finishes = serial_fifo(arrivals, durs, self.rsp_ready_at)
        if finishes.size:
            self.rsp_ready_at = float(finishes[-1])
        self.stats.response_busy_ns = seeded_fold(self.stats.response_busy_ns, durs)
        return finishes

    def utilization(self, elapsed_ns: float) -> float:
        """Mean of the two directions' busy fractions."""
        if elapsed_ns <= 0:
            return 0.0
        req = min(1.0, self.stats.request_busy_ns / elapsed_ns)
        rsp = min(1.0, self.stats.response_busy_ns / elapsed_ns)
        return (req + rsp) / 2.0


class LinkGroup:
    """All links of a package with round-robin request striping."""

    def __init__(self, num_links: int, bandwidth_gbs_per_link: float) -> None:
        if num_links <= 0:
            raise ValueError(f"need at least one link, got {num_links}")
        self.links = [SerialLink(i, bandwidth_gbs_per_link) for i in range(num_links)]
        self._next = 0

    def pick(self) -> SerialLink:
        """Next link in round-robin order."""
        link = self.links[self._next]
        self._next = (self._next + 1) % len(self.links)
        return link

    def assign_batch(self, count: int) -> np.ndarray:
        """Link index for each of ``count`` stream-ordered requests,
        advancing the round-robin pointer exactly as ``count`` calls to
        :meth:`pick` would."""
        idx = (self._next + np.arange(count, dtype=np.int64)) % len(self.links)
        self._next = (self._next + count) % len(self.links)
        return idx

    def total_flits(self) -> int:
        return sum(l.ledger.total_flits for l in self.links)

    def merged_ledger(self) -> FlitLedger:
        out = FlitLedger()
        for l in self.links:
            out.merge(l.ledger)
        return out
