"""Batched struct-of-arrays transaction engine for the event-level cube.

The scalar path (:meth:`repro.hmc.cube.HmcCube.submit`) runs one Python
method chain per transaction, which caps the detailed co-simulation at
~10⁵ transactions. This engine timestamps an entire stream of requests at
once: every cube resource is a serial FIFO (``start = max(arrival,
ready)`` + duration), so a batch issued in stream order reduces to

1. decoding all addresses at once (:meth:`AddressMap.decode_batch`),
2. grouping requests by resource (link lane, crossbar vault port,
   DRAM bank) with stable sorts, and
3. running the exact segmented FIFO scans of :mod:`repro.hmc.scan`
   per group, with refresh windows injected per bank arithmetically
   (a refresh-free vectorized pass, split at the first access whose
   start time crosses the bank's next tREFI boundary, then the bank's
   own refresh catch-up code runs and the remainder is re-scanned).

The result is *bit-identical* to submitting the same requests one at a
time at the same ``now``: completion times, latencies, ERRSTAT, tags,
every stats counter and float accumulator, the FLIT ledgers, and the
backing-store contents all match the scalar oracle exactly (pinned by
``tests/hmc/test_batch.py``). Functional PIM semantics are preserved
either through a vectorized fast path (uniform integer ``ADD_IMM``
streams fold per-address immediate sums before one read-modify-write per
unique address — exact because two's-complement wrapping addition is
associative) or through an ordered per-op fallback for mixed opcode
streams.

Throughput is guarded by ``benchmarks/test_detailed_bench.py`` (≥10×
the scalar path at ≥10⁵ transactions).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.hmc.bank import ROW_BYTES, DramBank
from repro.hmc.isa import OPCODE_INFO, PimInstruction, PimOpcode
from repro.hmc.packet import (
    ERRSTAT_OK,
    ERRSTAT_THERMAL_WARNING,
    PTYPE_CODES,
    PacketType,
    Request,
)
from repro.hmc.pim_unit import PimUnit
from repro.hmc.scan import segment_slices, serial_fifo

if TYPE_CHECKING:
    from repro.hmc.cube import HmcCube

#: Dense packet-type codes (module-level for hot-path lookups).
CODE_READ64 = PTYPE_CODES[PacketType.READ64]
CODE_WRITE64 = PTYPE_CODES[PacketType.WRITE64]
CODE_PIM = PTYPE_CODES[PacketType.PIM]
CODE_PIM_RET = PTYPE_CODES[PacketType.PIM_RET]

#: Opcodes whose functional effect can be folded per address (wrapping
#: integer addition is associative and commutative).
_FOLDABLE_OPCODES = (PimOpcode.ADD_IMM, PimOpcode.ADD_IMM_RET)


@dataclass
class BatchResponse:
    """Struct-of-arrays responses for one batch, in stream order.

    Mirrors the per-request :class:`~repro.hmc.packet.Response` fields
    that are meaningful in bulk; data payloads are not materialized
    (use the scalar path when response data matters).
    """

    tags: np.ndarray              # int64 — device-assigned, unique
    complete_time_ns: np.ndarray  # float64 — arrival back at the host
    latency_ns: np.ndarray        # float64 — complete - issue
    errstat: np.ndarray           # int16 — ERRSTAT[6:0] per response
    atomic_flag: np.ndarray       # bool — conditional-atomic success

    def __len__(self) -> int:
        return int(self.tags.shape[0])

    @property
    def thermal_warnings(self) -> int:
        return int(np.count_nonzero(self.errstat == ERRSTAT_THERMAL_WARNING))


class BatchEngine:
    """Vectorized transaction engine bound to one :class:`HmcCube`."""

    def __init__(self, cube: "HmcCube") -> None:
        self.cube = cube

    # -- public entry ----------------------------------------------------------

    def submit(
        self,
        codes: np.ndarray,
        addresses: np.ndarray,
        now: float,
        *,
        pim_template: Optional[PimInstruction] = None,
        pim_insts: Optional[Sequence[PimInstruction]] = None,
        payloads: Optional[Sequence[Optional[bytes]]] = None,
    ) -> BatchResponse:
        """Timestamp and execute a stream of requests issued at ``now``.

        Parameters
        ----------
        codes, addresses:
            Parallel arrays (stream order): packet-type codes from
            :data:`repro.hmc.packet.PTYPE_CODES` and byte addresses.
        pim_template:
            A shared :class:`PimInstruction` applied at each PIM
            element's address (its own ``address`` is ignored); the
            cheap way to issue uniform atomic streams.
        pim_insts:
            Per-op instructions for the PIM elements, aligned with
            their order of appearance in the stream. Mutually exclusive
            with ``pim_template``.
        payloads:
            Optional per-request write payloads (64 B for WRITE64
            entries, ``None`` elsewhere), aligned with the full stream.

        Unlike the scalar path, validation is all-or-nothing: any bad
        address or payload raises before device state changes.
        """
        cube = self.cube
        if cube.is_shutdown:
            raise RuntimeError("HMC is shut down (overheated); call recover() first")
        codes = np.ascontiguousarray(codes, dtype=np.int64)
        addresses = np.ascontiguousarray(addresses, dtype=np.int64)
        if codes.shape != addresses.shape or codes.ndim != 1:
            raise ValueError("codes and addresses must be parallel 1-D arrays")
        n = codes.shape[0]

        is_pim = (codes == CODE_PIM) | (codes == CODE_PIM_RET)
        pim_idx = np.flatnonzero(is_pim)
        if pim_idx.size:
            if not cube.config.supports_pim:
                raise ValueError(f"{cube.config.name} does not support PIM")
            if (pim_template is None) == (pim_insts is None):
                raise ValueError(
                    "PIM requests need exactly one of pim_template / pim_insts"
                )
            if pim_insts is not None and len(pim_insts) != pim_idx.size:
                raise ValueError(
                    f"{pim_idx.size} PIM requests but {len(pim_insts)} instructions"
                )
        if payloads is not None:
            if len(payloads) != n:
                raise ValueError(f"{n} requests but {len(payloads)} payloads")
            for i, payload in enumerate(payloads):
                if payload is None:
                    continue
                if codes[i] != CODE_WRITE64:
                    raise ValueError(f"payload at index {i} on a non-WRITE64 request")
                if len(payload) != 64:
                    raise ValueError(
                        f"WRITE64 payload must be 64 B, got {len(payload)}"
                    )

        # Decode first: bad addresses abort before any state changes.
        vault_ids, bank_ids, local_addrs = cube.addr_map.decode_batch(addresses)

        tags = np.arange(cube._next_tag, cube._next_tag + n, dtype=np.int64)
        cube._next_tag += n

        at_cube = self._stage_links_request(codes, n, now)
        at_vault = self._stage_crossbar(codes, vault_ids, at_cube)
        fu_lat = self._fu_latencies(n, pim_idx, pim_template, pim_insts)
        bank_done = self._stage_banks(
            codes, vault_ids, bank_ids, local_addrs, at_vault, fu_lat, is_pim
        )
        at_host = self._stage_links_response(codes, bank_done)

        atomic_flag = np.ones(n, dtype=bool)
        self._apply_functional(
            codes, addresses, vault_ids, pim_idx,
            pim_template, pim_insts, payloads, atomic_flag,
        )

        warning = cube.thermal_warning
        errstat_val = ERRSTAT_THERMAL_WARNING if warning else ERRSTAT_OK
        errstat = np.full(n, errstat_val, dtype=np.int16)

        self._record_vault_stats(codes, vault_ids, is_pim)
        cube.stats.transactions += n
        cube.stats.pim_ops += int(pim_idx.size)
        if warning:
            cube.stats.thermal_warnings_sent += n

        return BatchResponse(
            tags=tags,
            complete_time_ns=at_host,
            latency_ns=at_host - now,
            errstat=errstat,
            atomic_flag=atomic_flag,
        )

    def submit_requests(
        self,
        requests: Sequence[Request],
        now: float,
        payloads: Optional[Sequence[Optional[bytes]]] = None,
    ) -> BatchResponse:
        """Convenience wrapper converting :class:`Request` objects to the
        struct-of-arrays form (the compatibility path; hot callers should
        build arrays directly)."""
        n = len(requests)
        codes = np.fromiter(
            (PTYPE_CODES[r.ptype] for r in requests), dtype=np.int64, count=n
        )
        addresses = np.fromiter(
            (r.address for r in requests), dtype=np.int64, count=n
        )
        pim_insts: List[PimInstruction] = [
            r.pim for r in requests if r.pim is not None
        ]
        return self.submit(
            codes, addresses, now,
            pim_insts=pim_insts if pim_insts else None,
            payloads=payloads,
        )

    # -- pipeline stages -------------------------------------------------------

    def _stage_links_request(
        self, codes: np.ndarray, n: int, now: float
    ) -> np.ndarray:
        """Serialize all requests on their round-robin link lanes."""
        cube = self.cube
        self._link_ids = cube.links.assign_batch(n)
        at_cube = np.empty(n)
        for li, link in enumerate(cube.links.links):
            idx = np.flatnonzero(self._link_ids == li)
            if idx.size == 0:
                continue
            at_cube[idx] = link.send_request_batch(
                codes[idx], np.full(idx.size, now)
            )
        return at_cube

    def _stage_crossbar(
        self, codes: np.ndarray, vault_ids: np.ndarray, at_cube: np.ndarray
    ) -> np.ndarray:
        """Serialize on each vault's crossbar ingress port."""
        cube = self.cube
        order = np.argsort(vault_ids, kind="stable")
        keys, offsets = segment_slices(vault_ids[order])
        # Sort once so per-vault segments are contiguous views instead of
        # per-segment fancy-index copies.
        codes_o = codes[order]
        at_cube_o = at_cube[order]
        at_vault_o = np.empty(at_cube.shape[0])
        for k, vault_id in enumerate(keys.tolist()):
            lo, hi = int(offsets[k]), int(offsets[k + 1])
            at_vault_o[lo:hi] = cube.crossbar.forward_to_vault_batch(
                int(vault_id), codes_o[lo:hi], at_cube_o[lo:hi]
            )
        at_vault = np.empty(at_cube.shape[0])
        at_vault[order] = at_vault_o
        return at_vault

    def _fu_latencies(
        self,
        n: int,
        pim_idx: np.ndarray,
        pim_template: Optional[PimInstruction],
        pim_insts: Optional[Sequence[PimInstruction]],
    ) -> np.ndarray:
        fu = np.zeros(n)
        if pim_idx.size:
            if pim_template is not None:
                fu[pim_idx] = PimUnit.latency_ns_for(pim_template.op_class)
            else:
                fu[pim_idx] = np.fromiter(
                    (PimUnit.latency_ns_for(i.op_class) for i in pim_insts),
                    dtype=np.float64,
                    count=pim_idx.size,
                )
        return fu

    def _stage_banks(
        self,
        codes: np.ndarray,
        vault_ids: np.ndarray,
        bank_ids: np.ndarray,
        local_addrs: np.ndarray,
        at_vault: np.ndarray,
        fu_lat: np.ndarray,
        is_pim: np.ndarray,
    ) -> np.ndarray:
        """Occupy DRAM banks: row-buffer timing, RMW locking, refresh."""
        cube = self.cube
        banks_per_vault = cube.config.banks_per_vault
        global_bank = vault_ids * banks_per_vault + bank_ids
        rows = local_addrs // ROW_BYTES
        order = np.argsort(global_bank, kind="stable")
        keys, offsets = segment_slices(global_bank[order])
        # Sort every lane once so per-bank segments are contiguous views
        # instead of per-segment fancy-index copies.
        codes_o = codes[order]
        rows_o = rows[order]
        arr_o = at_vault[order]
        fu_o = fu_lat[order]
        pim_o = is_pim[order]
        # Row-transition hits and cumulative stat counts, computed once
        # globally: neither depends on per-bank latency state. Segment
        # heads get a ``-1`` placeholder row (patched against the live
        # open row inside :meth:`_service_bank`).
        n = at_vault.shape[0]
        prev_rows = np.empty(n, dtype=np.int64)
        prev_rows[1:] = rows_o[:-1]
        prev_rows[offsets[:-1]] = -1
        hit_o = prev_rows == rows_o
        cum_pim = np.cumsum(pim_o)
        cum_read = np.cumsum(codes_o == CODE_READ64)
        cum_write = np.cumsum(codes_o == CODE_WRITE64)
        cum_hit = np.cumsum(hit_o)
        done_o = np.empty(n)
        for k, gb in enumerate(keys.tolist()):
            lo, hi = int(offsets[k]), int(offsets[k + 1])
            bank = cube.vaults[gb // banks_per_vault].banks[gb % banks_per_vault]
            done_o[lo:hi] = self._service_bank(
                bank, codes_o[lo:hi], rows_o[lo:hi], arr_o[lo:hi],
                fu_o[lo:hi], pim_o[lo:hi], hit_o[lo:hi],
                cum_pim[lo:hi], cum_read[lo:hi], cum_write[lo:hi],
                cum_hit[lo:hi],
            )
        done = np.empty(n)
        done[order] = done_o
        return done

    def _service_bank(
        self,
        bank: DramBank,
        codes: np.ndarray,
        rows: np.ndarray,
        arrivals: np.ndarray,
        fu_lat: np.ndarray,
        is_pim: np.ndarray,
        hit: np.ndarray,
        cum_pim: np.ndarray,
        cum_read: np.ndarray,
        cum_write: np.ndarray,
        cum_hit: np.ndarray,
    ) -> np.ndarray:
        """One bank's stream-ordered accesses, refresh-aware.

        Vectorized refresh-free runs: durations follow from consecutive
        row transitions (``hit`` and the inclusive ``cum_*`` counters
        arrive precomputed from :meth:`_stage_banks`), start/finish
        times from the exact FIFO scan. The run is cut at the first
        access whose start time crosses the bank's next scheduled
        refresh; the bank's own
        :meth:`~repro.hmc.bank.DramBank.catch_up_refreshes` then drains
        refreshes (closing the row, delaying ``ready_at``) exactly as the
        scalar path does, and the remainder is re-scanned.
        """
        m = codes.shape[0]
        out = np.empty(m)

        # Durations under the no-refresh row-transition assumption,
        # computed once for the whole segment; only each round's head
        # element depends on live bank state and is patched in place.
        # (freq_scale cannot change inside a batch, so the latency
        # triple is stable.)
        lat_hit, lat_miss, lat_closed = bank.scaled_latencies()
        base = np.where(hit, lat_hit, lat_miss)
        # PIM RMW: column read + FU op + write-back into the row the
        # read just opened (same association as the scalar path).
        durs = np.where(is_pim, (base + fu_lat) + lat_hit, base)

        # The cum_* slices are inclusive scans over the *whole* batch;
        # a window's count is two subtractions against the running
        # committed total (seeded from the slice head), with a per-round
        # correction on ``hit`` for the patched head element.
        done_pim = int(cum_pim[0]) - int(is_pim[0])
        done_read = int(cum_read[0]) - int(codes[0] == CODE_READ64)
        done_write = int(cum_write[0]) - int(codes[0] == CODE_WRITE64)
        done_hit = int(cum_hit[0]) - int(hit[0])

        i = 0
        while i < m:
            if bank.open_row is None:
                b0, h0 = lat_closed, False
            elif bank.open_row == int(rows[i]):
                b0, h0 = lat_hit, True
            else:
                b0, h0 = lat_miss, False
            hit_adj = int(h0) - int(hit[i])
            durs[i] = (b0 + fu_lat[i]) + lat_hit if is_pim[i] else b0

            # Bounded window: refresh cuts make any computation past the
            # cut wasted work. Arrivals are nondecreasing (they are FIFO
            # finishes of the crossbar port), so everything at/after
            # ``searchsorted(arrivals, next_refresh)`` is guaranteed to
            # start inside the refresh and would be recomputed anyway;
            # queueing can only move the cut *earlier*, which the
            # start-time cut below catches.
            next_refresh = bank._next_refresh_ns
            j = int(arrivals.searchsorted(next_refresh))
            j = min(m, max(j, i + 1), i + 512)
            starts, finishes = serial_fifo(
                arrivals[i:j], durs[i:j], bank.ready_at
            )

            # Starts are nondecreasing too, so the first start at/inside
            # the refresh is a binary search, not a scan.
            limit = int(starts.searchsorted(next_refresh))
            if limit:
                sl = slice(i, i + limit)
                end = i + limit - 1
                pims = int(cum_pim[end]) - done_pim
                done_pim += pims
                reads = int(cum_read[end]) - done_read
                done_read += reads
                writes = int(cum_write[end]) - done_write
                done_write += writes
                hits = int(cum_hit[end]) - done_hit + hit_adj
                done_hit = int(cum_hit[end])
                bank.commit_batch(
                    durs[sl],
                    reads=reads,
                    writes=writes,
                    pim_ops=pims,
                    # Every PIM write-back is an extra row hit.
                    row_hits=hits + pims,
                    row_misses=limit - hits,
                    last_row=int(rows[i + limit - 1]),
                    ready_at=float(finishes[limit - 1]),
                )
                out[sl] = finishes[:limit]
                i += limit
            else:
                # A refresh is due before the next access starts: drain
                # it (and any cascade) through the scalar refresh code.
                bank.catch_up_refreshes(float(arrivals[i]))
        return out

    def _stage_links_response(
        self, codes: np.ndarray, bank_done: np.ndarray
    ) -> np.ndarray:
        """Crossbar traversal back plus response-lane serialization."""
        cube = self.cube
        back_at_switch = bank_done + cube.crossbar.traversal_ns
        at_host = np.empty(bank_done.shape[0])
        for li, link in enumerate(cube.links.links):
            idx = np.flatnonzero(self._link_ids == li)
            if idx.size == 0:
                continue
            at_host[idx] = link.send_response_batch(codes[idx], back_at_switch[idx])
        return at_host

    def _record_vault_stats(
        self, codes: np.ndarray, vault_ids: np.ndarray, is_pim: np.ndarray
    ) -> None:
        cube = self.cube
        nv = cube.config.num_vaults
        reads = np.bincount(vault_ids[codes == CODE_READ64], minlength=nv)
        writes = np.bincount(vault_ids[codes == CODE_WRITE64], minlength=nv)
        pims = np.bincount(vault_ids[is_pim], minlength=nv)
        for v, vault in enumerate(cube.vaults):
            r, w, p = int(reads[v]), int(writes[v]), int(pims[v])
            if r or w or p:
                vault.record_batch(r, w, p)

    # -- functional semantics --------------------------------------------------

    def _apply_functional(
        self,
        codes: np.ndarray,
        addresses: np.ndarray,
        vault_ids: np.ndarray,
        pim_idx: np.ndarray,
        pim_template: Optional[PimInstruction],
        pim_insts: Optional[Sequence[PimInstruction]],
        payloads: Optional[Sequence[Optional[bytes]]],
        atomic_flag: np.ndarray,
    ) -> None:
        """Apply write payloads and PIM read-modify-writes to the store.

        Tries the vectorized fold for uniform integer-add streams; falls
        back to a strict stream-order per-op loop whenever ordering could
        matter (mixed opcodes, conditional atomics, overlapping writes).
        """
        cube = self.cube
        write_idx = np.empty(0, dtype=np.int64)
        if payloads is not None:
            write_idx = np.flatnonzero(
                [payloads[i] is not None for i in range(len(payloads))]
            )

        if pim_idx.size and self._fast_pim_applicable(
            addresses, pim_idx, write_idx, pim_template, pim_insts
        ):
            self._apply_writes(addresses, write_idx, payloads)
            self._apply_pim_fold(addresses, vault_ids, pim_idx, pim_template)
            return

        # Ordered fallback: functional effects in exact stream order.
        self._apply_mixed_ordered(
            addresses, vault_ids, pim_idx,
            pim_template, pim_insts, payloads, write_idx, atomic_flag,
        )

    def _fast_pim_applicable(
        self,
        addresses: np.ndarray,
        pim_idx: np.ndarray,
        write_idx: np.ndarray,
        pim_template: Optional[PimInstruction],
        pim_insts: Optional[Sequence[PimInstruction]],
    ) -> bool:
        # Only uniform template streams fold (per-op instruction lists may
        # carry differing immediates; those take the ordered fallback).
        if pim_template is None or pim_insts is not None:
            return False
        if pim_template.opcode not in _FOLDABLE_OPCODES:
            return False
        nb = pim_template.operand_bytes
        if not isinstance(pim_template.immediate, (int, np.integer)):
            return False
        paddrs = addresses[pim_idx]
        # Aligned operands are identical-or-disjoint, so per-address
        # folding cannot straddle two live operands.
        if int(np.count_nonzero(paddrs % nb)):
            return False
        if write_idx.size:
            # Any write payload overlapping a PIM operand forces ordering.
            uniq = np.unique(paddrs)
            waddrs = addresses[write_idx]
            lo = np.searchsorted(uniq, waddrs - (nb - 1))
            hi = np.searchsorted(uniq, waddrs + 64)
            if int(np.count_nonzero(hi > lo)):
                return False
        return True

    def _apply_writes(
        self,
        addresses: np.ndarray,
        write_idx: np.ndarray,
        payloads: Optional[Sequence[Optional[bytes]]],
    ) -> None:
        if payloads is None:
            return
        store = self.cube.store
        for i in write_idx.tolist():
            store.write(int(addresses[i]), payloads[i])

    def _apply_pim_fold(
        self,
        addresses: np.ndarray,
        vault_ids: np.ndarray,
        pim_idx: np.ndarray,
        pim_template: Optional[PimInstruction],
    ) -> None:
        """Fold a uniform integer-add stream: one RMW per unique address.

        Exact because wrapping (two's-complement) addition is associative
        and commutative: ``wrap(wrap(old + i1) + i2) == wrap(old + i1 + i2)``.
        """
        cube = self.cube
        template = pim_template
        assert template is not None
        nb = template.operand_bytes
        imm = int(template.immediate)
        opcode = template.opcode
        paddrs = addresses[pim_idx]
        uniq, counts = np.unique(paddrs, return_counts=True)
        if -(1 << 31) <= imm <= (1 << 31) - 1:
            # |imm * count| < 2**62: the fold fits int64, so the deltas
            # can stay in numpy end to end.
            cube.store.bulk_int_add(uniq, np.int64(imm) * counts, nb)
        else:
            cube.store.bulk_int_add(
                uniq.tolist(), [imm * c for c in counts.tolist()], nb
            )
        has_return = OPCODE_INFO[opcode][1]
        per_vault = np.bincount(
            vault_ids[pim_idx], minlength=cube.config.num_vaults
        )
        for v, ops in enumerate(per_vault.tolist()):
            if ops:
                cube.vaults[v].pim_unit.record_batch(
                    ops, ops_with_return=ops if has_return else 0, failed=0
                )

    def _apply_mixed_ordered(
        self,
        addresses: np.ndarray,
        vault_ids: np.ndarray,
        pim_idx: np.ndarray,
        pim_template: Optional[PimInstruction],
        pim_insts: Optional[Sequence[PimInstruction]],
        payloads: Optional[Sequence[Optional[bytes]]],
        write_idx: np.ndarray,
        atomic_flag: np.ndarray,
    ) -> None:
        cube = self.cube
        store = cube.store
        pim_rank = {int(i): r for r, i in enumerate(pim_idx.tolist())}
        write_set = set(write_idx.tolist())
        func_order = np.union1d(pim_idx, write_idx)
        for i in func_order.tolist():
            i = int(i)
            if i in write_set:
                store.write(int(addresses[i]), payloads[i])  # type: ignore[index]
                continue
            if pim_template is not None:
                inst = dataclasses.replace(
                    pim_template, address=int(addresses[i])
                )
            else:
                inst = pim_insts[pim_rank[i]]  # type: ignore[index]
            unit = cube.vaults[int(vault_ids[i])].pim_unit
            _, flag = unit.execute(inst, store)
            atomic_flag[i] = flag
