"""HMC architectural configurations (Table IV and the HMC 1.1/2.0 specs).

Quantities cited from the paper:

- HMC 2.0: 8 GB cube, 1 logic die + 8 DRAM dies, 32 vaults, 512 banks,
  4 links at 120 GB/s aggregate (80 GB/s data payload) each → 480 GB/s
  aggregate link bandwidth, 320 GB/s peak data bandwidth.
- HMC 1.1 (prototype): 4 GB, 16 vaults, 2 half-width links, 60 GB/s.
- DRAM timing: tCL = tRCD = tRP = 13.75 ns, tRAS = 27.5 ns.
- Die size 68 mm²; 4.25 mm² per HMC 1.1 vault (same per-vault area assumed
  for HMC 2.0); FU area 0.003 mm².
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DramTiming:
    """Core DRAM timing parameters in nanoseconds."""

    tCL: float = 13.75
    tRCD: float = 13.75
    tRP: float = 13.75
    tRAS: float = 27.5

    def __post_init__(self) -> None:
        for name in ("tCL", "tRCD", "tRP", "tRAS"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def tRC(self) -> float:
        """Row cycle time: activate-to-activate on one bank."""
        return self.tRAS + self.tRP

    def read_hit_latency(self) -> float:
        """Column access on an already-open row."""
        return self.tCL

    def read_miss_latency(self) -> float:
        """Precharge + activate + column access (row-buffer conflict)."""
        return self.tRP + self.tRCD + self.tCL

    def read_closed_latency(self) -> float:
        """Activate + column access (closed row)."""
        return self.tRCD + self.tCL


@dataclass(frozen=True)
class HmcConfig:
    """Geometry, link, and capacity parameters of an HMC cube."""

    name: str
    capacity_gb: int
    num_vaults: int
    num_dram_dies: int
    banks_per_vault: int
    num_links: int
    link_bandwidth_gbs: float          # aggregate (headers included), per link
    link_data_bandwidth_gbs: float     # usable data payload, per link
    die_area_mm2: float = 68.0
    fu_area_mm2: float = 0.003
    dram_access_granularity_bytes: int = 32   # per-access burst on the TSVs
    pim_operand_bytes: int = 16               # 128-bit FU operand width
    timing: DramTiming = field(default_factory=DramTiming)
    supports_pim: bool = False

    def __post_init__(self) -> None:
        if self.num_vaults <= 0 or self.banks_per_vault <= 0:
            raise ValueError("vault/bank counts must be positive")
        if self.link_data_bandwidth_gbs > self.link_bandwidth_gbs:
            raise ValueError("data bandwidth cannot exceed raw link bandwidth")

    @property
    def total_banks(self) -> int:
        return self.num_vaults * self.banks_per_vault

    @property
    def peak_link_bandwidth_gbs(self) -> float:
        """Aggregate raw link bandwidth (headers included), GB/s."""
        return self.num_links * self.link_bandwidth_gbs

    @property
    def peak_data_bandwidth_gbs(self) -> float:
        """Peak payload (data) bandwidth over all links, GB/s."""
        return self.num_links * self.link_data_bandwidth_gbs

    @property
    def vault_area_mm2(self) -> float:
        return self.die_area_mm2 / self.num_vaults

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_gb * (1 << 30)


#: HMC 1.1 prototype (AC-510 module): 4 GB, two half-width links, 60 GB/s.
HMC_1_1 = HmcConfig(
    name="HMC-1.1",
    capacity_gb=4,
    num_vaults=16,
    num_dram_dies=4,
    banks_per_vault=16,
    num_links=2,
    link_bandwidth_gbs=40.0,
    link_data_bandwidth_gbs=30.0,
    supports_pim=False,
)

#: HMC 2.0 per Table IV: 8 GB, 32 vaults, 512 banks, 4 links,
#: 120 GB/s/link aggregate, 80 GB/s/link data → 320 GB/s peak data.
HMC_2_0 = HmcConfig(
    name="HMC-2.0",
    capacity_gb=8,
    num_vaults=32,
    num_dram_dies=8,
    banks_per_vault=16,
    num_links=4,
    link_bandwidth_gbs=120.0,
    link_data_bandwidth_gbs=80.0,
    supports_pim=True,
)
