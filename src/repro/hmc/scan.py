"""Exact vectorized scans for serial-FIFO resources.

Every timed resource in the event-level cube — link request/response
lanes, crossbar vault ports, DRAM banks — is a *serial FIFO*: a request
arriving at time ``a`` starts at ``max(a, ready)`` and occupies the
resource for a duration ``d``, leaving ``ready`` at its finish time.
The batched engine (:mod:`repro.hmc.batch`) therefore reduces to running
this recurrence over whole arrays at once:

    finish[i] = max(arrivals[i], finish[i-1]) + durations[i]

The catch is *bit-exactness*: the batched engine is pinned to the scalar
oracle by equivalence tests that compare floating-point completion times
with ``==``, so the scan must reproduce the scalar loop's operation
order, not merely its algebra. A prefix-sum reformulation
(``cumsum(d) + running_max(arr - cumsum_prev(d))``) is algebraically
equal but reassociates the additions, drifting by ulps. Instead we
exploit two facts:

1. ``np.cumsum`` on float64 is a strict sequential left fold, so a
   cumulative sum whose first element is seeded with ``start + d[0]``
   reproduces the scalar chain ``((start + d0) + d1) + ...`` bitwise.
2. The recurrence only deviates from a pure cumulative sum at *reset
   points* — arrivals that find the queue idle (``arr[i] > finish[i-1]``)
   and restart the chain at ``arr[i]``.

So the solver computes an approximate prefix-scan first (reassociated,
cheap, vectorized) purely to *guess* the reset points, then replays the
recurrence as one exact seeded ``cumsum`` per busy run, verifying each
guess against the exact values and splitting where the approximation was
wrong. Guessed resets that turn out false are harmless (cutting a
cumsum at a chained element reproduces the same floats because the seed
is the exact previous finish); missed resets are detected and fixed.
Long stretches of idle singleton runs (every arrival finds the queue
empty) are committed in one vectorized step as ``arr + d``.

:func:`seeded_fold` applies the same trick to statistics accumulators
(``busy_ns += d`` per event must fold in event order to match the scalar
path bitwise).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def seeded_fold(seed: float, values: np.ndarray) -> float:
    """Exact sequential left fold: ``((seed + v0) + v1) + ...``.

    Bit-identical to a Python ``for v in values: seed += v`` loop.
    """
    if values.size == 0:
        return seed
    if values.size <= 64:
        acc = float(seed)
        for v in values.tolist():
            acc += v
        return acc
    block = np.array(values, dtype=np.float64, copy=True)
    block[0] = seed + block[0]
    return float(np.cumsum(block)[-1])


def _python_fifo(
    arrivals: np.ndarray, durations: np.ndarray, ready: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Direct Python evaluation of the recurrence (exact by definition)."""
    prev = float(ready)
    starts_l = arrivals.tolist()
    fin_l = durations.tolist()
    for i, d in enumerate(fin_l):
        a = starts_l[i]
        start = a if a > prev else prev
        starts_l[i] = start
        prev = start + d
        fin_l[i] = prev
    return np.array(starts_l), np.array(fin_l)


def _run_matrix(
    arrivals: np.ndarray,
    durations: np.ndarray,
    ready: float,
    bounds: np.ndarray,
    n: int,
):
    """Evaluate many short runs at once via a padded 2-D cumsum.

    Each candidate run becomes one row of a ``(runs, max_len)`` matrix;
    ``np.cumsum(axis=1)`` folds every row sequentially (the same op
    order as the scalar chain, so bit-exact), with rows seeded at their
    run-head arrival. The result is only valid if every candidate
    boundary is a true reset and no reset was missed inside a row —
    both are verified against the computed finishes, and ``None`` is
    returned on any violation (caller falls back to the exact
    run-by-run path). Padding rides along as ``+0.0`` and is masked out.
    """
    lengths = np.diff(np.concatenate((bounds, [n])))
    max_len = int(lengths.max())
    runs = bounds.shape[0]
    if runs * max_len > 8 * n:
        return None  # too ragged: padding would dominate

    pos = np.arange(max_len)
    idx = bounds[:, None] + pos[None, :]
    mask = pos[None, :] < lengths[:, None]
    idx_c = np.where(mask, idx, 0)
    block = np.where(mask, durations[idx_c], 0.0)
    arr_m = np.where(mask, arrivals[idx_c], -np.inf)

    seeds = arrivals[bounds].astype(np.float64)
    a0 = float(arrivals[0])
    seeds[0] = a0 if a0 > ready else ready
    block[:, 0] = seeds + block[:, 0]
    fin = np.cumsum(block, axis=1)

    # Missed reset inside a row (arrival beats the previous finish)?
    if np.any(arr_m[:, 1:] > fin[:, :-1]):
        return None
    # False boundary (run head arrives before the previous run drains)?
    last_fin = fin[np.arange(runs), lengths - 1]
    if np.any(seeds[1:] < last_fin[:-1]):
        return None

    sta = np.empty_like(fin)
    sta[:, 0] = seeds
    sta[:, 1:] = fin[:, :-1]
    flat = idx[mask]
    starts = np.empty(n)
    finishes = np.empty(n)
    starts[flat] = sta[mask]
    finishes[flat] = fin[mask]
    return starts, finishes


def _approx_resets(arrivals: np.ndarray, durations: np.ndarray, ready: float) -> np.ndarray:
    """Guess reset points via the reassociated prefix-scan formulation.

    Returns a sorted array of candidate run-start indices (always
    including 0). The guesses only steer where the exact pass cuts its
    cumulative sums; correctness never depends on them.
    """
    dc = np.cumsum(durations)
    adj = arrivals - (dc - durations)
    adj0 = arrivals[0] if arrivals[0] > ready else ready
    if adj.shape[0]:
        adj = adj.copy()
        adj[0] = adj0
    approx_finish = np.maximum.accumulate(adj) + dc
    starts = np.flatnonzero(arrivals[1:] > approx_finish[:-1]) + 1
    return np.concatenate(([0], starts))


def serial_fifo(
    arrivals: np.ndarray, durations: np.ndarray, ready: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the serial-FIFO recurrence exactly over a whole segment.

    Parameters
    ----------
    arrivals:
        Arrival times in service (stream) order.
    durations:
        Occupancy durations, same length.
    ready:
        The resource's ready time before the first arrival.

    Returns
    -------
    (starts, finishes):
        ``starts[i] = max(arrivals[i], finish[i-1])`` and
        ``finishes[i] = starts[i] + durations[i]``, bit-identical to the
        scalar loop evaluating those expressions sequentially.
    """
    n = arrivals.shape[0]
    if n == 0:
        return np.empty(0), np.empty(0)

    if n <= 256:
        # Short segments: the fixed cost of the vectorized machinery
        # (~10 numpy ops plus the reset-guessing pass) exceeds a direct
        # evaluation of the recurrence until roughly n ≈ 400 (same float
        # ops either way, so still bit-identical to the scalar oracle).
        return _python_fifo(arrivals, durations, ready)

    starts = np.empty(n, dtype=np.float64)
    finishes = np.empty(n, dtype=np.float64)

    bounds = _approx_resets(arrivals, durations, ready)
    if n < 12 * bounds.shape[0]:
        # Mean busy-run length under ~12: the per-run fixed costs of the
        # generic loop below would dominate, so batch all runs through
        # one padded 2-D cumsum (or replay in Python if the candidate
        # boundaries fail verification — the bound guesses only ever
        # steer strategy, never correctness).
        res = _run_matrix(arrivals, durations, float(ready), bounds, n)
        if res is not None:
            return res
        return _python_fifo(arrivals, durations, ready)
    # Append sentinel so bounds[bi] is always the next candidate cut.
    bounds = np.concatenate((bounds, [n]))

    prev = float(ready)
    i = 0
    bi = 1  # bounds[0] == 0 == i
    while i < n:
        while bounds[bi] <= i:
            bi += 1
        j = int(bounds[bi])

        if j == i + 1:
            # Coalesce a stretch of consecutive singleton candidate runs
            # (idle queue: every arrival restarts the chain) into one
            # vectorized commit of arr + d, verified exactly.
            k = bi
            while k + 1 < bounds.shape[0] and bounds[k + 1] == bounds[k] + 1:
                k += 1
            span_end = int(bounds[k])
            cand = arrivals[i:span_end] + durations[i:span_end]
            chained = np.flatnonzero(arrivals[i + 1 : span_end] <= cand[:-1])
            first_arr = arrivals[i]
            if first_arr > prev:
                limit = span_end if chained.size == 0 else i + 1 + int(chained[0])
                starts[i:limit] = arrivals[i:limit]
                finishes[i:limit] = cand[: limit - i]
                prev = float(finishes[limit - 1])
                i = limit
                continue
            # First element is actually chained onto ``prev``; fall
            # through to the generic run handling below with j = i + 1.

        # Exact seeded cumsum over [i, j), split at any missed reset.
        a0 = float(arrivals[i])
        start0 = a0 if a0 > prev else prev
        block = np.array(durations[i:j], dtype=np.float64, copy=True)
        block[0] = start0 + block[0]
        np.cumsum(block, out=block)
        viol = np.flatnonzero(arrivals[i + 1 : j] > block[:-1])
        limit = j if viol.size == 0 else i + 1 + int(viol[0])
        finishes[i:limit] = block[: limit - i]
        starts[i] = start0
        starts[i + 1 : limit] = block[: limit - i - 1]
        prev = float(finishes[limit - 1])
        i = limit

    return starts, finishes


def segment_slices(sorted_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Segment boundaries of a sorted key array.

    Returns ``(unique_keys, offsets)`` where segment ``k`` spans
    ``[offsets[k], offsets[k + 1])``; ``offsets`` has one trailing
    entry equal to ``len(sorted_keys)``.
    """
    n = sorted_keys.shape[0]
    if n == 0:
        return sorted_keys[:0], np.zeros(1, dtype=np.int64)
    change = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    offsets = np.concatenate(([0], change, [n]))
    return sorted_keys[offsets[:-1]], offsets
