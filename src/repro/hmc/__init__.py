"""Hybrid Memory Cube (HMC) device models.

Two models of the same device, per DESIGN.md §2:

- :class:`~repro.hmc.cube.HmcCube` — an event-level simulator with vaults,
  DRAM banks (tCL/tRCD/tRP/tRAS state machines), per-vault PIM functional
  units with atomic read-modify-write bank locking, a crossbar, and
  FLIT-accounted serial links. Used for microbenchmarks and protocol-level
  tests.
- :class:`~repro.hmc.flow.HmcFlowModel` — a fast flow-level model (effective
  bandwidth, FLIT accounting, temperature-phase derating) used by the
  full-system co-simulation in :mod:`repro.gpu.simulator`.

Shared pieces: :mod:`~repro.hmc.config` (HMC 1.1/2.0 geometry and timing),
:mod:`~repro.hmc.packet` (Table I FLIT costs and ERRSTAT thermal warnings),
:mod:`~repro.hmc.isa` (the HMC 2.0 PIM instruction set plus the GraphPIM
floating-point extensions), and :mod:`~repro.hmc.dram_timing`
(temperature-phase frequency/refresh derating).
"""

from repro.hmc.config import HMC_1_1, HMC_2_0, HmcConfig
from repro.hmc.cube import HmcCube
from repro.hmc.dram_timing import TemperaturePhase, TemperaturePhasePolicy
from repro.hmc.flow import HmcFlowModel
from repro.hmc.isa import PimInstruction, PimOpClass, PimOpcode
from repro.hmc.packet import (
    ERRSTAT_OK,
    ERRSTAT_THERMAL_WARNING,
    FLIT_BYTES,
    PacketType,
    Request,
    Response,
    flit_cost,
)

__all__ = [
    "ERRSTAT_OK",
    "ERRSTAT_THERMAL_WARNING",
    "FLIT_BYTES",
    "HMC_1_1",
    "HMC_2_0",
    "HmcConfig",
    "HmcCube",
    "HmcFlowModel",
    "PacketType",
    "PimInstruction",
    "PimOpClass",
    "PimOpcode",
    "Request",
    "Response",
    "TemperaturePhase",
    "TemperaturePhasePolicy",
    "flit_cost",
]
