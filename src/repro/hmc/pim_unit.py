"""Per-vault PIM functional unit.

Each vault's logic layer hosts one 128-bit fixed-point functional unit
(Sec. V-A: synthesized in 28 nm, 0.003 mm², placed with the vault controller
at the vault centre). The FU executes the atomic's compute step between the
bank read and write-back and accounts the energy that feeds the thermal
model (E_fu Joules/bit × 128 bit per op).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hmc.isa import PimInstruction, PimOpClass
from repro.hmc.memory import BackingStore
from repro.hmc.scan import seeded_fold

#: FU datapath width in bits (HMC 2.0 spec).
FU_WIDTH_BITS = 128


@dataclass
class PimUnitStats:
    ops: int = 0
    ops_with_return: int = 0
    failed_atomics: int = 0
    energy_j: float = 0.0


class PimUnit:
    """Functional-unit model: latency, energy, and functional execution."""

    #: FU latency by op class, in ns (integer ALU ops are single-cycle at
    #: the ~1 GHz logic-layer clock; FP takes a few cycles).
    _LATENCY_NS = {
        PimOpClass.ARITHMETIC: 1.0,
        PimOpClass.BITWISE: 1.0,
        PimOpClass.BOOLEAN: 1.0,
        PimOpClass.COMPARISON: 1.0,
        PimOpClass.FLOATING: 3.0,
    }

    def __init__(self, energy_per_bit_j: float = 6.0e-12, vault_id: int = 0) -> None:
        if energy_per_bit_j < 0:
            raise ValueError(f"negative FU energy: {energy_per_bit_j}")
        self.energy_per_bit_j = energy_per_bit_j
        self.vault_id = vault_id
        self.stats = PimUnitStats()

    def latency_ns(self, inst: PimInstruction) -> float:
        """Compute latency of the FU stage for ``inst``."""
        return self._LATENCY_NS[inst.op_class]

    @classmethod
    def latency_ns_for(cls, op_class: PimOpClass) -> float:
        """FU latency for an op class (batched-engine table lookup)."""
        return cls._LATENCY_NS[op_class]

    def energy_j_per_op(self) -> float:
        """Energy of one FU operation (E × FU width)."""
        return self.energy_per_bit_j * FU_WIDTH_BITS

    def record_batch(self, ops: int, ops_with_return: int, failed: int) -> None:
        """Account ``ops`` already-executed operations in one step.

        Energy is folded one op at a time (in stream order) so the float
        accumulator matches ``ops`` scalar :meth:`execute` calls bitwise.
        """
        if ops == 0:
            return
        self.stats.ops += ops
        self.stats.ops_with_return += ops_with_return
        self.stats.failed_atomics += failed
        self.stats.energy_j = seeded_fold(
            self.stats.energy_j, np.full(ops, self.energy_j_per_op())
        )

    def execute(self, inst: PimInstruction, store: BackingStore) -> tuple[bytes, bool]:
        """Apply ``inst`` to the backing store; returns (old data, flag)."""
        old, flag = store.execute_pim(inst)
        self.stats.ops += 1
        if inst.has_return:
            self.stats.ops_with_return += 1
        if not flag:
            self.stats.failed_atomics += 1
        self.stats.energy_j += self.energy_j_per_op()
        return old, flag
