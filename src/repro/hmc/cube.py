"""Event-level HMC cube simulator.

Assembles links → crossbar → vault controllers → banks/FUs into a single
device with a transaction-level API:

    cube = HmcCube(HMC_2_0)
    rsp = cube.submit(Request(PacketType.READ64, address=0x1000), now=0.0)

Each :meth:`submit` returns the completed :class:`Response` with its
end-to-end latency; internally the request is serialized on a link,
traverses the crossbar, occupies a DRAM bank (locking it for RMWs), and the
response serializes back. A thermal-warning flag, set by the thermal sensor
via :meth:`set_thermal_warning`, is stamped into every response's ERRSTAT
field (Sec. II-A: ERRSTAT[6:0] = 0x01).

This model is used for protocol/micro-level validation and the bank-level
benchmarks; the full-system co-simulation uses the flow model
(:mod:`repro.hmc.flow`) for speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.hmc.config import HMC_2_0, HmcConfig
from repro.hmc.crossbar import Crossbar
from repro.hmc.link import LinkGroup
from repro.hmc.memory import BackingStore
from repro.hmc.packet import (
    ERRSTAT_OK,
    ERRSTAT_THERMAL_WARNING,
    PacketType,
    Request,
    Response,
)
from repro.hmc.batch import BatchEngine, BatchResponse
from repro.hmc.vault import AddressMap, VaultController
from repro.obs.tracer import get_tracer


@dataclass
class CubeStats:
    transactions: int = 0
    pim_ops: int = 0
    thermal_warnings_sent: int = 0


class HmcCube:
    """Transaction-level HMC device model."""

    def __init__(
        self,
        config: HmcConfig = HMC_2_0,
        fu_energy_per_bit_j: float = 6.0e-12,
    ) -> None:
        self.config = config
        self.store = BackingStore(config.capacity_bytes)
        self.addr_map = AddressMap(config)
        self.vaults: List[VaultController] = [
            VaultController(v, config, self.store, fu_energy_per_bit_j)
            for v in range(config.num_vaults)
        ]
        self.links = LinkGroup(config.num_links, config.link_bandwidth_gbs)
        self.crossbar = Crossbar()
        self.stats = CubeStats()
        self._thermal_warning = False
        self._shutdown = False
        self._next_tag = 0
        self._batch_engine: Optional[BatchEngine] = None

    # -- thermal / management ------------------------------------------------

    def set_thermal_warning(self, active: bool) -> None:
        """Raise/clear the thermal warning carried in response ERRSTAT."""
        self._thermal_warning = active

    @property
    def thermal_warning(self) -> bool:
        return self._thermal_warning

    def shutdown(self) -> None:
        """Conservative overheat policy observed on the HMC 1.1 prototype:
        stop completely; contents are lost."""
        self._shutdown = True
        self.store = BackingStore(self.config.capacity_bytes)
        for vault in self.vaults:
            vault.store = self.store

    def recover(self) -> None:
        """Re-enable after cooling (recovery takes tens of seconds of wall
        time on the prototype; the caller accounts that delay)."""
        self._shutdown = False

    @property
    def is_shutdown(self) -> bool:
        return self._shutdown

    def set_frequency_scale(self, scale: float) -> None:
        """Temperature-phase DRAM derating across all vaults."""
        for vault in self.vaults:
            vault.set_frequency_scale(scale)

    def set_refresh_multiplier(self, multiplier: int) -> None:
        """Hot-phase refresh doubling across all vaults (JEDEC extended
        temperature range)."""
        for vault in self.vaults:
            vault.set_refresh_multiplier(multiplier)

    def apply_temperature_phase(self, phase) -> None:
        """Configure frequency and refresh for a temperature phase."""
        from repro.hmc.dram_timing import TemperaturePhase, TemperaturePhasePolicy

        policy = TemperaturePhasePolicy()
        scale = policy.frequency_scale(phase)
        if scale == 0.0:
            self.shutdown()
            return
        self.set_frequency_scale(scale)
        self.set_refresh_multiplier(2 ** int(phase))

    # -- functional access (no timing) ----------------------------------------

    def mem_write(self, address: int, data: bytes) -> None:
        """Functional backdoor write (test setup / host stores payloads)."""
        self.store.write(address, data)

    def mem_read(self, address: int, length: int) -> bytes:
        """Functional backdoor read."""
        return self.store.read(address, length)

    # -- transaction API -------------------------------------------------------

    def allocate_tag(self) -> int:
        """Next device tag; :meth:`submit` and :meth:`submit_batch` stamp
        these into requests/responses in submission order, so every
        transaction in a cube's lifetime carries a unique tag."""
        tag = self._next_tag
        self._next_tag += 1
        return tag

    def submit(self, req: Request, now: float, payload: Optional[bytes] = None) -> Response:
        """Run one transaction to completion; returns the response.

        ``payload`` supplies write data for WRITE64 requests (64 bytes).
        The request's ``tag`` is overwritten with a device-allocated tag
        (monotonic across both submit paths) and echoed in the response.
        """
        if self._shutdown:
            raise RuntimeError("HMC is shut down (overheated); call recover() first")

        req.tag = self.allocate_tag()
        link = self.links.pick()
        at_cube = link.send_request(req.ptype, now)

        vault_id, bank_id, local = self.addr_map.decode(req.address)
        at_vault = self.crossbar.forward_to_vault(
            vault_id, req.request_flits, at_cube
        )
        vault = self.vaults[vault_id]

        if req.ptype is PacketType.WRITE64:
            if payload is not None:
                if len(payload) != 64:
                    raise ValueError(f"WRITE64 payload must be 64 B, got {len(payload)}")
                self.store.write(req.address, payload)

        rsp = vault.service(req, bank_id, local, at_vault)

        back_at_switch = self.crossbar.forward(rsp.complete_time_ns)
        at_host = link.send_response(req.ptype, back_at_switch)
        rsp.complete_time_ns = at_host
        rsp.latency_ns = at_host - now
        rsp.errstat = (
            ERRSTAT_THERMAL_WARNING if self._thermal_warning else ERRSTAT_OK
        )

        self.stats.transactions += 1
        if req.ptype in (PacketType.PIM, PacketType.PIM_RET):
            self.stats.pim_ops += 1
        if rsp.thermal_warning:
            self.stats.thermal_warnings_sent += 1
        return rsp

    def _engine(self) -> "BatchEngine":
        if self._batch_engine is None:
            self._batch_engine = BatchEngine(self)
        return self._batch_engine

    def submit_batch(
        self,
        requests: Sequence[Request],
        now: float,
        payloads: Optional[Sequence[Optional[bytes]]] = None,
    ) -> "BatchResponse":
        """Run a whole stream of transactions at once (vectorized).

        Bit-identical to calling :meth:`submit` on each request in order
        at the same ``now`` — completion times, latencies, tags, ERRSTAT,
        all stats/ledgers, and memory contents match the scalar loop
        exactly — but ~10-100× faster for large batches. Response *data*
        payloads are not materialized; use :meth:`submit` when read data
        matters. See :mod:`repro.hmc.batch`.
        """
        with get_tracer().span(
            "cube.submit_batch", cat="hmc", sim_time_ns=now, n=len(requests)
        ):
            return self._engine().submit_requests(requests, now, payloads)

    def submit_batch_arrays(
        self,
        codes: "np.ndarray",
        addresses: "np.ndarray",
        now: float,
        *,
        pim_template=None,
        pim_insts=None,
        payloads: Optional[Sequence[Optional[bytes]]] = None,
    ) -> "BatchResponse":
        """Struct-of-arrays fast path of :meth:`submit_batch` — parallel
        ``codes`` (:data:`repro.hmc.packet.PTYPE_CODES`) and ``addresses``
        arrays, avoiding per-request object construction entirely."""
        with get_tracer().span(
            "cube.submit_batch", cat="hmc", sim_time_ns=now, n=int(codes.shape[0])
        ):
            return self._engine().submit(
                codes,
                addresses,
                now,
                pim_template=pim_template,
                pim_insts=pim_insts,
                payloads=payloads,
            )

    # -- derived metrics ---------------------------------------------------------

    def total_fu_energy_j(self) -> float:
        return sum(v.pim_unit.stats.energy_j for v in self.vaults)

    def total_pim_ops(self) -> int:
        return sum(v.pim_unit.stats.ops for v in self.vaults)

    def link_data_bytes(self) -> int:
        return self.links.merged_ledger().data_payload_bytes()
