"""HMC packet protocol: FLIT accounting and thermal-warning error status.

Table I of the paper (FLIT size 128 bits = 16 bytes):

========================  ========  =========
Type                      Request   Response
========================  ========  =========
64-byte READ              1 FLIT    5 FLITs
64-byte WRITE             5 FLITs   1 FLIT
PIM inst. without return  2 FLITs   1 FLIT
PIM inst. with return     2 FLITs   2 FLITs
========================  ========  =========

Each response packet tail carries a 7-bit error status ERRSTAT[6:0]; the
device sets it to ``0x01`` when the operational temperature limit is
exceeded (Sec. II-A) — that bit is the input to CoolPIM's feedback loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.hmc.isa import PimInstruction

#: FLIT size in bytes (128 bits).
FLIT_BYTES = 16

#: ERRSTAT[6:0] values.
ERRSTAT_OK = 0x00
ERRSTAT_THERMAL_WARNING = 0x01


class PacketType(enum.Enum):
    READ64 = "read64"
    WRITE64 = "write64"
    PIM = "pim"
    PIM_RET = "pim-ret"


#: Table I — (request FLITs, response FLITs) per transaction type.
_FLIT_TABLE: Dict[PacketType, Tuple[int, int]] = {
    PacketType.READ64: (1, 5),
    PacketType.WRITE64: (5, 1),
    PacketType.PIM: (2, 1),
    PacketType.PIM_RET: (2, 2),
}


#: Dense integer codes for :class:`PacketType`, used by the batched
#: engine's struct-of-arrays representation (:mod:`repro.hmc.batch`).
PTYPE_CODES: Dict[PacketType, int] = {t: i for i, t in enumerate(PacketType)}
PTYPES_BY_CODE: Tuple[PacketType, ...] = tuple(PacketType)

#: Table I as arrays indexed by packet-type code.
REQUEST_FLITS_BY_CODE = np.array(
    [_FLIT_TABLE[t][0] for t in PTYPES_BY_CODE], dtype=np.int64
)
RESPONSE_FLITS_BY_CODE = np.array(
    [_FLIT_TABLE[t][1] for t in PTYPES_BY_CODE], dtype=np.int64
)


def flit_cost(ptype: PacketType) -> Tuple[int, int]:
    """(request FLITs, response FLITs) for a transaction type (Table I)."""
    return _FLIT_TABLE[ptype]


def round_trip_flits(ptype: PacketType) -> int:
    """Total FLITs on the link for one transaction."""
    req, rsp = _FLIT_TABLE[ptype]
    return req + rsp


def bandwidth_saving_fraction() -> float:
    """Upper bound on link-bandwidth saving of PIM vs READ+WRITE.

    A 64-byte read-modify-write done by the host costs a READ (6 FLITs
    round trip) plus a WRITE (6 FLITs) = 12 FLITs; offloaded as a PIM
    instruction without return it costs 3 FLITs — but the paper quotes the
    per-request comparison: 6 FLITs for one host request vs 3 for a PIM op,
    i.e. "up to 50 %" (Sec. II-B).
    """
    read_rt = round_trip_flits(PacketType.READ64)
    pim_rt = round_trip_flits(PacketType.PIM)
    return 1.0 - pim_rt / read_rt


@dataclass
class Request:
    """A request packet entering the cube through a link.

    ``pim`` is set for PIM transactions; ``address`` addresses the target
    for reads/writes. ``tag`` correlates responses with requests.
    """

    ptype: PacketType
    address: int
    tag: int = 0
    pim: Optional[PimInstruction] = None
    issue_time_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"negative address: {self.address}")
        if self.ptype in (PacketType.PIM, PacketType.PIM_RET) and self.pim is None:
            raise ValueError(f"{self.ptype} request requires a PimInstruction payload")
        if self.ptype in (PacketType.READ64, PacketType.WRITE64) and self.pim is not None:
            raise ValueError(f"{self.ptype} request must not carry a PimInstruction")

    @property
    def request_flits(self) -> int:
        return _FLIT_TABLE[self.ptype][0]

    @property
    def response_flits(self) -> int:
        return _FLIT_TABLE[self.ptype][1]


@dataclass
class Response:
    """A response packet leaving the cube.

    Attributes
    ----------
    errstat:
        7-bit error status; ``0x01`` signals a thermal warning.
    atomic_flag:
        For conditional PIM ops — whether the atomic succeeded.
    data:
        Returned payload bytes (reads and PIM-with-return).
    """

    tag: int
    ptype: PacketType
    errstat: int = ERRSTAT_OK
    atomic_flag: bool = True
    data: bytes = b""
    complete_time_ns: float = 0.0
    latency_ns: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.errstat <= 0x7F:
            raise ValueError(f"ERRSTAT must fit in 7 bits, got {self.errstat:#x}")

    @property
    def thermal_warning(self) -> bool:
        """True when ERRSTAT[6:0] == 0x01 (temperature limit exceeded)."""
        return self.errstat == ERRSTAT_THERMAL_WARNING


@dataclass
class FlitLedger:
    """Accumulates FLIT traffic; converts to bytes/bandwidth.

    Used by both the event-level link model and the flow model so that
    Table I economics are enforced by exactly one piece of code.
    """

    request_flits: int = 0
    response_flits: int = 0
    transactions: Dict[PacketType, int] = field(
        default_factory=lambda: {t: 0 for t in PacketType}
    )

    def record(self, ptype: PacketType, count: int = 1) -> None:
        if count < 0:
            raise ValueError(f"negative transaction count: {count}")
        req, rsp = _FLIT_TABLE[ptype]
        self.request_flits += req * count
        self.response_flits += rsp * count
        self.transactions[ptype] += count

    def record_batch(self, counts_by_code: np.ndarray) -> None:
        """Record many transactions at once from per-type-code counts.

        ``counts_by_code[c]`` is the number of transactions of the type
        with code ``c`` (see :data:`PTYPE_CODES`); shorter arrays (from
        ``np.bincount``) are accepted.
        """
        for code, count in enumerate(counts_by_code.tolist()):
            if count:
                self.record(PTYPES_BY_CODE[code], int(count))

    @property
    def total_flits(self) -> int:
        return self.request_flits + self.response_flits

    @property
    def total_bytes(self) -> int:
        return self.total_flits * FLIT_BYTES

    def data_payload_bytes(self) -> int:
        """Useful data moved (64 B per read/write, operand per PIM-ret)."""
        return (
            64 * self.transactions[PacketType.READ64]
            + 64 * self.transactions[PacketType.WRITE64]
            + 16 * self.transactions[PacketType.PIM_RET]
        )

    def merge(self, other: "FlitLedger") -> None:
        self.request_flits += other.request_flits
        self.response_flits += other.response_flits
        for t, c in other.transactions.items():
            self.transactions[t] += c
