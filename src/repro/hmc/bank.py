"""DRAM bank state machine with row-buffer timing and RMW locking.

Each bank tracks its open row and the earliest time it can accept the next
command, derived from tCL/tRCD/tRP/tRAS (Table IV). PIM read-modify-write
operations lock the bank for the whole RMW (Sec. II-B: "the corresponding
DRAM bank is locked during an RMW operation, so any other memory requests
to the same bank cannot be serviced").

Timing is simplified to a per-bank serial resource: a request arriving at
time ``t`` starts at ``max(t, bank_ready)`` and occupies the bank for the
access latency. A temperature-phase frequency scale stretches all timing
(20 % frequency loss → ×1.25 latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.hmc.config import DramTiming
from repro.hmc.scan import seeded_fold

#: DRAM row (page) size used for row-buffer hit detection.
ROW_BYTES = 2048

#: Distributed-refresh parameters: one refresh command per tREFI, each
#: occupying the bank for tRFC. 8192 rows per 64 ms window → tREFI
#: 7.8 µs; doubling the refresh rate (above 85 °C) halves tREFI.
BASE_TREFI_NS = 64e6 / 8192
TRFC_NS = 350.0


@dataclass
class BankStats:
    reads: int = 0
    writes: int = 0
    pim_ops: int = 0
    row_hits: int = 0
    row_misses: int = 0
    busy_ns: float = 0.0
    refreshes: int = 0
    refresh_ns: float = 0.0


class DramBank:
    """One DRAM bank: open-row policy, serial occupancy, RMW locking."""

    def __init__(self, timing: DramTiming, bank_id: int = 0) -> None:
        self.timing = timing
        self.bank_id = bank_id
        self.open_row: Optional[int] = None
        self.ready_at = 0.0          # earliest start for the next command
        self.freq_scale = 1.0        # temperature derating (1.0 = nominal)
        self.refresh_multiplier = 1  # 2x per phase above 85 C (JEDEC)
        self._next_refresh_ns = BASE_TREFI_NS
        self.stats = BankStats()

    def set_frequency_scale(self, scale: float) -> None:
        """Apply temperature-phase derating; latencies scale by 1/scale."""
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"frequency scale must be in (0,1], got {scale}")
        self.freq_scale = scale

    def set_refresh_multiplier(self, multiplier: int) -> None:
        """Refresh-rate multiplier (1 = normal; 2/4 in hot phases)."""
        if multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        self.refresh_multiplier = multiplier

    @property
    def trefi_ns(self) -> float:
        return BASE_TREFI_NS / self.refresh_multiplier

    def _catch_up_refreshes(self, now: float) -> None:
        """Execute any refresh commands due before ``now`` (or pending at
        the bank's ready time) — each occupies the bank for tRFC and
        closes the open row."""
        # Long-idle fast path: refreshes during idle time don't delay
        # anything — account them in bulk and only loop near the horizon.
        idle_gap = now - max(self.ready_at, self._next_refresh_ns)
        if idle_gap > 100 * self.trefi_ns:
            bulk = int(idle_gap // self.trefi_ns) - 1
            duration = TRFC_NS / self.freq_scale
            self.stats.refreshes += bulk
            self.stats.refresh_ns += bulk * duration
            self.stats.busy_ns += bulk * duration
            self.open_row = None
            self._next_refresh_ns += bulk * self.trefi_ns

        horizon = max(now, self.ready_at)
        while self._next_refresh_ns <= horizon:
            start = max(self._next_refresh_ns, self.ready_at)
            duration = TRFC_NS / self.freq_scale
            self.ready_at = start + duration
            self.open_row = None
            self.stats.refreshes += 1
            self.stats.refresh_ns += duration
            self.stats.busy_ns += duration
            self._next_refresh_ns += self.trefi_ns
            horizon = max(now, self.ready_at)

    def _row_of(self, address: int) -> int:
        return address // ROW_BYTES

    def _access_latency(self, address: int) -> float:
        """Column access latency given row-buffer state; updates open row."""
        row = self._row_of(address)
        t = self.timing
        if self.open_row is None:
            lat = t.read_closed_latency()
            self.stats.row_misses += 1
        elif self.open_row == row:
            lat = t.read_hit_latency()
            self.stats.row_hits += 1
        else:
            lat = t.read_miss_latency()
            self.stats.row_misses += 1
        self.open_row = row
        return lat / self.freq_scale

    def _occupy(self, start: float, duration: float) -> float:
        """Reserve the bank for [start, start+duration); return finish time."""
        finish = start + duration
        self.ready_at = finish
        self.stats.busy_ns += duration
        return finish

    def access_read(self, address: int, now: float) -> float:
        """Schedule a 64 B read; returns data-available time (ns)."""
        self._catch_up_refreshes(now)
        start = max(now, self.ready_at)
        lat = self._access_latency(address)
        self.stats.reads += 1
        return self._occupy(start, lat)

    def access_write(self, address: int, now: float) -> float:
        """Schedule a 64 B write; returns write-complete time (ns)."""
        self._catch_up_refreshes(now)
        start = max(now, self.ready_at)
        lat = self._access_latency(address)
        self.stats.writes += 1
        return self._occupy(start, lat)

    def access_pim_rmw(self, address: int, fu_latency_ns: float, now: float) -> float:
        """Schedule an atomic read-modify-write.

        The bank is locked for read + FU op + write back (two internal DRAM
        accesses per PIM instruction, Sec. III-C). Returns completion time.
        """
        if fu_latency_ns < 0:
            raise ValueError(f"negative FU latency: {fu_latency_ns}")
        self._catch_up_refreshes(now)
        start = max(now, self.ready_at)
        read_lat = self._access_latency(address)
        # Write-back hits the row the read just opened.
        write_lat = self.timing.read_hit_latency() / self.freq_scale
        self.stats.pim_ops += 1
        self.stats.row_hits += 1
        return self._occupy(start, read_lat + fu_latency_ns + write_lat)

    # -- batched-engine hooks --------------------------------------------------

    def catch_up_refreshes(self, now: float) -> None:
        """Public entry for the batched engine: drain refreshes due by
        ``now`` exactly as the scalar access path would."""
        self._catch_up_refreshes(now)

    def scaled_latencies(self) -> Tuple[float, float, float]:
        """(hit, miss, closed) column latencies at the current derating.

        Computed with the same float expressions (``lat / freq_scale``)
        as :meth:`_access_latency`, so batched lookups are bit-identical
        to per-access scalar evaluation.
        """
        t = self.timing
        return (
            t.read_hit_latency() / self.freq_scale,
            t.read_miss_latency() / self.freq_scale,
            t.read_closed_latency() / self.freq_scale,
        )

    def commit_batch(
        self,
        durations: np.ndarray,
        reads: int,
        writes: int,
        pim_ops: int,
        row_hits: int,
        row_misses: int,
        last_row: int,
        ready_at: float,
    ) -> None:
        """Apply a refresh-free run of already-timed accesses.

        The batched engine computes start/finish times itself (exact
        segmented scan); this commits the side effects — stats folded in
        stream order, the open row, and the bank ready time — so that
        bank state after the run matches the scalar loop bitwise.
        """
        self.stats.reads += reads
        self.stats.writes += writes
        self.stats.pim_ops += pim_ops
        self.stats.row_hits += row_hits
        self.stats.row_misses += row_misses
        self.stats.busy_ns = seeded_fold(self.stats.busy_ns, durations)
        self.open_row = last_row
        self.ready_at = ready_at

    def utilization(self, elapsed_ns: float) -> float:
        """Fraction of elapsed time the bank was busy."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.stats.busy_ns / elapsed_ns)
