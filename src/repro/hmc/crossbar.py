"""Crossbar switch between links and vault controllers.

The HMC crossbar connects all vault controllers and external I/O links
(Sec. II-A). Beyond a fixed traversal latency, each vault-side output
port is a serial resource: packets to the same vault serialize at the
port's FLIT bandwidth, so a burst aimed at one vault backs up at the
switch even when the links and other vaults are idle. Port bandwidth is
provisioned well above a single link's share (the internal TSV bus is
wide), so the crossbar only matters under heavy single-vault skew.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.hmc.packet import FLIT_BYTES, REQUEST_FLITS_BY_CODE
from repro.hmc.scan import seeded_fold, serial_fifo


@dataclass
class Crossbar:
    """Switch with fixed traversal latency + per-vault port serialization.

    Parameters
    ----------
    traversal_ns:
        Pipeline latency through the switch fabric.
    port_bandwidth_gbs:
        Per-vault-port FLIT bandwidth (GB/s). The default (32 GB/s per
        vault × 32 vaults = 1 TB/s aggregate) keeps the switch
        non-blocking for balanced traffic, matching the paper's implicit
        assumption that links and banks are the bottlenecks.
    """

    traversal_ns: float = 1.5
    port_bandwidth_gbs: float = 32.0
    _port_ready: Dict[int, float] = field(default_factory=dict)
    _port_busy_ns: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.traversal_ns < 0:
            raise ValueError(f"negative traversal latency: {self.traversal_ns}")
        if self.port_bandwidth_gbs <= 0:
            raise ValueError(
                f"port bandwidth must be positive: {self.port_bandwidth_gbs}"
            )
        # Per-type-code serialization durations, same float expression as
        # the scalar path (flits * FLIT_BYTES / bandwidth).
        self._req_durs = np.array(
            [
                flits * FLIT_BYTES / self.port_bandwidth_gbs
                for flits in REQUEST_FLITS_BY_CODE.tolist()
            ]
        )

    def forward(self, now: float) -> float:
        """Latency-only traversal (used for responses heading back to the
        link side, which the links themselves serialize)."""
        return now + self.traversal_ns

    def forward_to_vault(self, vault_id: int, flits: int, now: float) -> float:
        """Traverse toward a vault, serializing on its ingress port.

        Returns the time the packet has fully arrived at the vault.
        """
        if flits <= 0:
            raise ValueError(f"packet must carry at least one FLIT: {flits}")
        ready = self._port_ready.get(vault_id, 0.0)
        start = max(now + self.traversal_ns, ready)
        duration = flits * FLIT_BYTES / self.port_bandwidth_gbs
        finish = start + duration
        self._port_ready[vault_id] = finish
        self._port_busy_ns[vault_id] = (
            self._port_busy_ns.get(vault_id, 0.0) + duration
        )
        return finish

    def forward_to_vault_batch(
        self, vault_id: int, codes: np.ndarray, arrivals: np.ndarray
    ) -> np.ndarray:
        """Batched :meth:`forward_to_vault` for one vault's stream-ordered
        packets; bit-identical to the scalar call sequence."""
        d = self._req_durs[codes]
        ready = self._port_ready.get(vault_id, 0.0)
        _, finishes = serial_fifo(arrivals + self.traversal_ns, d, ready)
        if finishes.size:
            self._port_ready[vault_id] = float(finishes[-1])
            self._port_busy_ns[vault_id] = seeded_fold(
                self._port_busy_ns.get(vault_id, 0.0), d
            )
        return finishes

    def port_utilization(self, vault_id: int, elapsed_ns: float) -> float:
        """Busy fraction of one vault's ingress port."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self._port_busy_ns.get(vault_id, 0.0) / elapsed_ns)
