"""Flow-level HMC model for the full-system co-simulation.

Instead of simulating individual packets, this model converts an interval's
*traffic demand* into service time using the first-order bottlenecks the
paper's evaluation turns on:

1. **Off-chip link capacity** — per-direction FLIT accounting (Table I).
   The request and response lanes are independent; a balanced read/write
   mix reaches the 320 GB/s peak data bandwidth of HMC 2.0, a read-only mix
   is response-lane bound.
2. **DRAM service capacity** — the memory dies sustain a finite internal
   bandwidth that scales with the temperature-phase frequency derating
   (20 % per phase, Table IV) and shrinks with refresh overhead (doubled
   refresh above 85 °C). Every external byte and every PIM
   read-modify-write (2 × 16 B internal accesses, Sec. III-C) consumes it.
3. **PIM FU throughput** — one FU per vault; rarely binding but modelled.

The GPU simulator calls :meth:`service_time_ns` per epoch and
:meth:`traffic_rates` to hand the thermal model its power inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hmc.config import HMC_2_0, HmcConfig
from repro.hmc.dram_timing import TemperaturePhase, TemperaturePhasePolicy
from repro.hmc.packet import FLIT_BYTES, FlitLedger, PacketType, flit_cost


@dataclass(frozen=True)
class TrafficDemand:
    """Transaction counts offered to the cube in one epoch.

    ``host_atomics`` are atomics executed by the host (non-offloaded): each
    costs a 64 B READ plus a 64 B WRITE externally and the same internally.
    ``pim_ops`` / ``pim_ops_ret`` are offloaded atomics (Table I PIM
    packets; 32 B internal DRAM traffic each).
    """

    reads: int = 0
    writes: int = 0
    host_atomics: int = 0
    pim_ops: int = 0
    pim_ops_ret: int = 0

    def __post_init__(self) -> None:
        if min(self.reads, self.writes, self.host_atomics, self.pim_ops,
               self.pim_ops_ret) < 0:
            raise ValueError(f"negative demand: {self}")

    @property
    def total_pim(self) -> int:
        return self.pim_ops + self.pim_ops_ret

    def request_flits(self) -> int:
        r, w = flit_cost(PacketType.READ64)[0], flit_cost(PacketType.WRITE64)[0]
        p, pr = flit_cost(PacketType.PIM)[0], flit_cost(PacketType.PIM_RET)[0]
        return (
            (self.reads + self.host_atomics) * r
            + (self.writes + self.host_atomics) * w
            + self.pim_ops * p
            + self.pim_ops_ret * pr
        )

    def response_flits(self) -> int:
        r, w = flit_cost(PacketType.READ64)[1], flit_cost(PacketType.WRITE64)[1]
        p, pr = flit_cost(PacketType.PIM)[1], flit_cost(PacketType.PIM_RET)[1]
        return (
            (self.reads + self.host_atomics) * r
            + (self.writes + self.host_atomics) * w
            + self.pim_ops * p
            + self.pim_ops_ret * pr
        )

    def link_bytes(self) -> int:
        """Total FLIT bytes crossing the links (both directions)."""
        return (self.request_flits() + self.response_flits()) * FLIT_BYTES

    def external_data_bytes(self) -> int:
        """Useful payload bytes moved off-chip."""
        return (
            64 * (self.reads + self.writes + 2 * self.host_atomics)
            + 16 * self.pim_ops_ret
        )

    def internal_dram_bytes(self, pim_internal_bytes: int = 32) -> int:
        """Bytes the DRAM dies move internally (TSV traffic)."""
        return (
            64 * (self.reads + self.writes + 2 * self.host_atomics)
            + pim_internal_bytes * self.total_pim
        )


@dataclass
class FlowStats:
    busy_ns: float = 0.0
    pim_ops: int = 0
    host_atomics: int = 0
    ledger: FlitLedger = field(default_factory=FlitLedger)


class HmcFlowModel:
    """Bottleneck-based service-time model with thermal derating.

    Parameters
    ----------
    config:
        Cube geometry/link parameters.
    phase_policy:
        Temperature-phase derating rules.
    internal_peak_gbs:
        Nominal internal DRAM bandwidth at full frequency. Above the
        320 GB/s link ceiling so links bound performance in the NORMAL
        phase (Sec. III-B observes exactly that), but close enough that
        frequency derating makes DRAM the bottleneck in hotter phases.
    fu_rate_per_vault_gops:
        PIM ops/ns each vault FU sustains.
    """

    def __init__(
        self,
        config: HmcConfig = HMC_2_0,
        phase_policy: TemperaturePhasePolicy | None = None,
        internal_peak_gbs: float = 400.0,
        fu_rate_per_vault_gops: float = 1.0,
    ) -> None:
        if internal_peak_gbs <= 0:
            raise ValueError(f"internal bandwidth must be positive: {internal_peak_gbs}")
        if fu_rate_per_vault_gops <= 0:
            raise ValueError(
                f"FU rate must be positive: {fu_rate_per_vault_gops}"
            )
        self.config = config
        self.policy = phase_policy or TemperaturePhasePolicy()
        self.internal_peak_gbs = internal_peak_gbs
        self.fu_rate_per_vault_gops = fu_rate_per_vault_gops
        self.phase = TemperaturePhase.NORMAL
        self.stats = FlowStats()
        self._thermal_warning = False
        #: Scenario-injection knob: fraction of nominal vault service
        #: capacity available (per-vault derating — failed/slowed vaults
        #: shrink both internal DRAM bandwidth and the FU pool). 1.0 is
        #: bit-exact nominal (×1.0 is an IEEE identity).
        self.vault_capacity_scale = 1.0

    # -- thermal coupling -----------------------------------------------------

    def update_phase(self, peak_dram_temp_c: float) -> TemperaturePhase:
        """Set the operating phase from the current peak DRAM temperature."""
        self.phase = self.policy.phase(peak_dram_temp_c)
        return self.phase

    def set_thermal_warning(self, active: bool) -> None:
        """Warning bit stamped into responses (drives CoolPIM feedback)."""
        self._thermal_warning = active

    @property
    def thermal_warning(self) -> bool:
        return self._thermal_warning

    @property
    def is_shutdown(self) -> bool:
        return self.phase is TemperaturePhase.SHUTDOWN

    # -- capacities -------------------------------------------------------------

    def derating(self) -> float:
        """Combined service derating at the current phase.

        The DRAM frequency reduction slows the whole memory pipeline — the
        vault controllers and TSV interfaces run on the derated clock, so
        the links cannot be fed faster than the dies produce data. Refresh
        overhead (doubled per phase above NORMAL) is applied relative to
        the NORMAL-phase baseline, which the nominal ratings absorb.
        """
        freq = self.policy.frequency_scale(self.phase)
        if freq == 0.0:
            return 0.0
        base_overhead = self.policy.refresh_overhead_fraction(TemperaturePhase.NORMAL)
        overhead = self.policy.refresh_overhead_fraction(self.phase)
        refresh_factor = (1.0 - overhead) / (1.0 - base_overhead)
        return freq * max(0.0, refresh_factor)

    @property
    def per_direction_link_gbs(self) -> float:
        """Aggregate one-direction raw link bandwidth (GB/s), at nominal."""
        return self.config.peak_link_bandwidth_gbs / 2.0

    def effective_link_gbs(self) -> float:
        """Per-direction link service bandwidth at the current phase."""
        return self.per_direction_link_gbs * self.derating()

    def dram_capacity_gbs(self) -> float:
        """Internal DRAM service bandwidth at the current phase."""
        return self.internal_peak_gbs * self.derating() * self.vault_capacity_scale

    def fu_capacity_ops_per_ns(self) -> float:
        return (
            self.config.num_vaults
            * self.fu_rate_per_vault_gops
            * self.vault_capacity_scale
        )

    # -- service --------------------------------------------------------------

    def service_time_ns(self, demand: TrafficDemand) -> float:
        """Time to serve ``demand`` at the current phase (ns).

        The maximum over the three bottlenecks; an idle/empty demand takes
        zero time. Raises if the device is shut down.
        """
        if self.is_shutdown:
            raise RuntimeError("HMC is in thermal shutdown")
        req_b = demand.request_flits() * FLIT_BYTES
        rsp_b = demand.response_flits() * FLIT_BYTES
        link_gbs = self.effective_link_gbs()
        t_link = max(req_b, rsp_b) / link_gbs  # bytes / (GB/s) == ns

        dram_gbs = self.dram_capacity_gbs()
        t_dram = demand.internal_dram_bytes() / dram_gbs if dram_gbs > 0 else float("inf")

        pim = demand.total_pim
        t_fu = pim / self.fu_capacity_ops_per_ns() if pim else 0.0

        return max(t_link, t_dram, t_fu)

    def record(self, demand: TrafficDemand, elapsed_ns: float) -> None:
        """Account served traffic for statistics and power integration."""
        s = self.stats
        s.busy_ns += elapsed_ns
        s.pim_ops += demand.total_pim
        s.host_atomics += demand.host_atomics
        s.ledger.record(PacketType.READ64, demand.reads + demand.host_atomics)
        s.ledger.record(PacketType.WRITE64, demand.writes + demand.host_atomics)
        s.ledger.record(PacketType.PIM, demand.pim_ops)
        s.ledger.record(PacketType.PIM_RET, demand.pim_ops_ret)

    #: Raw-FLIT → payload-equivalent factor for logic-layer power. The
    #: power model's "external bandwidth" axis is calibrated on payload at
    #: a balanced mix (320 GB/s payload = 480 GB/s of FLITs), but SerDes
    #: switching tracks raw FLIT traffic — so raw bytes are converted at
    #: the balanced-mix ratio.
    LINK_POWER_PAYLOAD_EQUIV = 320.0 / 480.0

    def traffic_rates(
        self, demand: TrafficDemand, elapsed_ns: float
    ) -> tuple[float, float, float]:
        """(external GB/s, internal GB/s, PIM op/ns) over the interval.

        These are the thermal model's power inputs (Sec. III-C:
        Power = energy/bit × bandwidth; Power(FU) = E × width × PIM rate).
        """
        if elapsed_ns <= 0:
            return 0.0, 0.0, 0.0
        ext = demand.link_bytes() * self.LINK_POWER_PAYLOAD_EQUIV / elapsed_ns
        internal = demand.internal_dram_bytes() / elapsed_ns
        pim_rate = demand.total_pim / elapsed_ns
        return ext, internal, pim_rate
