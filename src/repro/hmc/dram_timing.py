"""Temperature-phase DRAM management (Table IV).

The paper partitions HMC operating temperature into three phases —
0–85 °C (normal), 85–95 °C (extended), 95–105 °C (critical) — and assumes a
20 % DRAM frequency reduction when switching to each higher phase, plus the
JEDEC doubled refresh rate above 85 °C. Above 105 °C the device must shut
down (the HMC 1.1 prototype's conservative policy: complete stop, data
loss, tens-of-seconds recovery).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence


class TemperaturePhase(enum.IntEnum):
    """Operating phases, ordered from coolest to hottest."""

    NORMAL = 0        # 0-85 C
    EXTENDED = 1      # 85-95 C, doubled refresh
    CRITICAL = 2      # 95-105 C, doubled refresh again
    SHUTDOWN = 3      # >105 C


@dataclass(frozen=True)
class TemperaturePhasePolicy:
    """Maps die temperature to phase, frequency derating, and refresh rate.

    Parameters
    ----------
    thresholds_c:
        Ascending phase boundaries, default (85, 95, 105).
    freq_reduction_per_phase:
        Fractional frequency loss per phase step (paper: 0.20).
    base_refresh_interval_ms:
        tREFW at normal temperature (JEDEC 64 ms window).
    """

    thresholds_c: Sequence[float] = (85.0, 95.0, 105.0)
    freq_reduction_per_phase: float = 0.20
    base_refresh_interval_ms: float = 64.0
    #: Conservative overheat management (Sec. III-C / the HMC 1.1
    #: prototype): no dynamic frequency/refresh management — the device
    #: runs at full speed until the die hits the shutdown threshold
    #: (95 °C on the prototype), then stops completely, losing contents
    #: and stalling tens of seconds. The alternative the paper argues
    #: against by comparison.
    conservative_shutdown: bool = False
    conservative_shutdown_c: float = 95.0

    def __post_init__(self) -> None:
        t = tuple(self.thresholds_c)
        if len(t) != 3 or not (t[0] < t[1] < t[2]):
            raise ValueError(f"thresholds must be 3 ascending values, got {t}")
        if not 0.0 <= self.freq_reduction_per_phase < 1.0:
            raise ValueError(
                f"freq reduction must be in [0,1): {self.freq_reduction_per_phase}"
            )

    def phase(self, temp_c: float) -> TemperaturePhase:
        """Phase for a peak DRAM die temperature."""
        if self.conservative_shutdown:
            # All-or-nothing: full speed below the kill switch.
            if temp_c < self.conservative_shutdown_c:
                return TemperaturePhase.NORMAL
            return TemperaturePhase.SHUTDOWN
        t0, t1, t2 = self.thresholds_c
        if temp_c < t0:
            return TemperaturePhase.NORMAL
        if temp_c < t1:
            return TemperaturePhase.EXTENDED
        if temp_c < t2:
            return TemperaturePhase.CRITICAL
        return TemperaturePhase.SHUTDOWN

    def frequency_scale(self, phase: TemperaturePhase) -> float:
        """Effective DRAM frequency multiplier for ``phase``.

        20 % reduction per phase step: NORMAL → 1.0, EXTENDED → 0.8,
        CRITICAL → 0.64 (a further 20 % off). SHUTDOWN → 0.
        """
        if phase is TemperaturePhase.SHUTDOWN:
            return 0.0
        return (1.0 - self.freq_reduction_per_phase) ** int(phase)

    def bandwidth_scale(self, temp_c: float) -> float:
        """Convenience: frequency scale straight from a temperature."""
        return self.frequency_scale(self.phase(temp_c))

    def refresh_interval_ms(self, phase: TemperaturePhase) -> float:
        """Refresh window: halves per phase above NORMAL (JEDEC extended
        temperature range doubles the refresh rate)."""
        if phase is TemperaturePhase.SHUTDOWN:
            return 0.0
        return self.base_refresh_interval_ms / (2 ** int(phase))

    def refresh_overhead_fraction(self, phase: TemperaturePhase) -> float:
        """Fraction of DRAM time spent refreshing.

        Roughly 8192 refreshes per window at ~350 ns each for an 8 Gb die;
        doubling the rate doubles the overhead.
        """
        if phase is TemperaturePhase.SHUTDOWN:
            return 1.0
        window_ns = self.refresh_interval_ms(phase) * 1e6
        refresh_time_ns = 8192 * 350.0
        return min(1.0, refresh_time_ns / window_ns)

    def dram_energy_scale(self, phase: TemperaturePhase) -> float:
        """DRAM energy-per-bit multiplier in hot phases.

        Operating in the extended temperature range "incurs higher energy
        consumption" (Sec. I): refresh rate doubles per phase, cell leakage
        grows super-linearly, and the derated frequency spreads the same
        access over more wall-clock leakage time. The multiplier applies
        to DRAM dynamic/static power and to the DRAM-access share of PIM
        ops; it is what keeps a naïvely-offloading workload hot even after
        frequency derating cuts its throughput (Fig. 13's >90 °C peaks).
        """
        if phase is TemperaturePhase.SHUTDOWN:
            return 0.0
        return (1.0, 1.6, 2.2)[int(phase)]

    def warning_threshold_c(self) -> float:
        """Temperature at which the device raises ERRSTAT thermal warnings.

        CoolPIM's goal is to stay in the NORMAL phase, so the warning fires
        at the first boundary (85 °C).
        """
        return self.thresholds_c[0]
