"""Vault controller: address mapping, bank dispatch, PIM execution.

A vault is functionally independent (Sec. II-A): its controller owns the
banks of the memory partitions stacked above it and, in HMC 2.0, the PIM
functional unit placed beside it. The controller here is a simple in-order
per-bank scheduler — requests to different banks proceed in parallel;
requests to the same bank serialize (and PIM RMWs lock the bank for their
full read-modify-write).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.hmc.bank import DramBank
from repro.hmc.config import HmcConfig
from repro.hmc.memory import BackingStore
from repro.hmc.packet import PacketType, Request, Response
from repro.hmc.pim_unit import PimUnit


@dataclass
class VaultStats:
    requests: int = 0
    reads: int = 0
    writes: int = 0
    pim_ops: int = 0


class AddressMap:
    """Physical address → (vault, bank, bank-local address).

    Low-order interleaving at 32-byte granularity (the TSV access
    granularity) spreads sequential addresses across vaults, then banks —
    the standard HMC mapping that maximizes vault-level parallelism.
    """

    def __init__(self, config: HmcConfig) -> None:
        self.config = config
        self.granularity = config.dram_access_granularity_bytes

    def decode(self, address: int) -> tuple[int, int, int]:
        """Return (vault_id, bank_id, local_address)."""
        if not 0 <= address < self.config.capacity_bytes:
            raise ValueError(
                f"address {address:#x} outside capacity {self.config.capacity_bytes:#x}"
            )
        block = address // self.granularity
        offset = address % self.granularity
        vault = block % self.config.num_vaults
        block //= self.config.num_vaults
        bank = block % self.config.banks_per_vault
        block //= self.config.banks_per_vault
        local = block * self.granularity + offset
        return vault, bank, local

    def decode_batch(
        self, addresses: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`decode` over an int64 address array.

        Returns ``(vault_ids, bank_ids, local_addresses)``. Raises on the
        first out-of-range address (before any decoding), so a batched
        submit is all-or-nothing.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.size:
            lo = int(addresses.min())
            hi = int(addresses.max())
            if lo < 0 or hi >= self.config.capacity_bytes:
                bad = lo if lo < 0 else hi
                raise ValueError(
                    f"address {bad:#x} outside capacity "
                    f"{self.config.capacity_bytes:#x}"
                )
        block = addresses // self.granularity
        offset = addresses % self.granularity
        vault = block % self.config.num_vaults
        block = block // self.config.num_vaults
        bank = block % self.config.banks_per_vault
        block = block // self.config.banks_per_vault
        local = block * self.granularity + offset
        return vault, bank, local


class VaultController:
    """One vault: banks + FU + in-order-per-bank scheduling."""

    def __init__(
        self,
        vault_id: int,
        config: HmcConfig,
        store: BackingStore,
        fu_energy_per_bit_j: float = 6.0e-12,
    ) -> None:
        self.vault_id = vault_id
        self.config = config
        self.store = store
        self.banks: List[DramBank] = [
            DramBank(config.timing, bank_id=b) for b in range(config.banks_per_vault)
        ]
        self.pim_unit = PimUnit(fu_energy_per_bit_j, vault_id=vault_id)
        self.stats = VaultStats()

    def set_frequency_scale(self, scale: float) -> None:
        """Propagate temperature derating to all banks."""
        for bank in self.banks:
            bank.set_frequency_scale(scale)

    def set_refresh_multiplier(self, multiplier: int) -> None:
        """Propagate hot-phase refresh-rate multiplier to all banks."""
        for bank in self.banks:
            bank.set_refresh_multiplier(multiplier)

    def service(self, req: Request, bank_id: int, local_addr: int, now: float) -> Response:
        """Service one request; returns the response with completion time.

        ``now`` is the time the request reaches the vault controller. The
        returned :class:`Response` carries ``complete_time_ns`` — when the
        vault finishes the DRAM access (link serialization is added by the
        cube model).
        """
        if not 0 <= bank_id < len(self.banks):
            raise ValueError(f"bank {bank_id} out of range for vault {self.vault_id}")
        bank = self.banks[bank_id]
        self.stats.requests += 1

        if req.ptype is PacketType.READ64:
            done = bank.access_read(local_addr, now)
            data = self.store.read(req.address, 64)
            self.stats.reads += 1
            return Response(
                tag=req.tag, ptype=req.ptype, data=data, complete_time_ns=done
            )

        if req.ptype is PacketType.WRITE64:
            done = bank.access_write(local_addr, now)
            # Functional write of a 64-byte line of zeros placeholder is
            # wrong; writes carry no payload in our Request, so the cube
            # level performs functional writes. Timing only here.
            self.stats.writes += 1
            return Response(tag=req.tag, ptype=req.ptype, complete_time_ns=done)

        if req.ptype in (PacketType.PIM, PacketType.PIM_RET):
            if not self.config.supports_pim:
                raise ValueError(f"{self.config.name} does not support PIM")
            inst = req.pim
            assert inst is not None  # validated by Request.__post_init__
            fu_lat = self.pim_unit.latency_ns(inst)
            done = bank.access_pim_rmw(local_addr, fu_lat, now)
            old, flag = self.pim_unit.execute(inst, self.store)
            self.stats.pim_ops += 1
            data = old if req.ptype is PacketType.PIM_RET else b""
            return Response(
                tag=req.tag,
                ptype=req.ptype,
                atomic_flag=flag,
                data=data,
                complete_time_ns=done,
            )

        raise ValueError(f"unhandled packet type {req.ptype}")

    def record_batch(self, reads: int, writes: int, pim_ops: int) -> None:
        """Bulk stats update from the batched engine (one ``service``
        equivalent per transaction)."""
        self.stats.requests += reads + writes + pim_ops
        self.stats.reads += reads
        self.stats.writes += writes
        self.stats.pim_ops += pim_ops

    def busiest_bank_ready(self) -> float:
        """Latest ready-time across banks (drain horizon)."""
        return max(bank.ready_at for bank in self.banks)
