"""PIM instruction set (HMC 2.0 atomics + GraphPIM extensions).

HMC 2.0 PIM instructions are atomic read-modify-write operations with one
memory operand and one immediate, executed by the functional unit in the
vault's logic layer (Sec. II-B). Classes: arithmetic, bitwise, boolean,
comparison. GraphPIM [23] adds floating-point arithmetic; CoolPIM's
evaluation uses those for pagerank/sssp, so they are included here.

Table III of the paper maps each class to a CUDA atomic; that mapping
lives in :mod:`repro.core.translation` and is keyed by these opcodes.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Callable, Dict, Tuple


class PimOpClass(enum.Enum):
    """Instruction classes from the HMC 2.0 spec (Sec. II-B)."""

    ARITHMETIC = "arithmetic"
    BITWISE = "bitwise"
    BOOLEAN = "boolean"
    COMPARISON = "comparison"
    FLOATING = "floating"  # GraphPIM extension


class PimOpcode(enum.Enum):
    """Concrete PIM opcodes.

    ``*_RET`` variants return the original data with the response
    (2 response FLITs instead of 1, Table I).
    """

    ADD_IMM = "add-imm"                 # signed add
    ADD_IMM_RET = "add-imm-ret"
    SWAP = "swap"                       # bitwise swap (exchange)
    BIT_WRITE = "bit-write"             # masked bit write
    AND_IMM = "and-imm"
    OR_IMM = "or-imm"
    CAS_EQUAL = "cas-equal"             # compare-and-swap if equal
    CAS_GREATER = "cas-greater"         # swap if immediate greater (atomicMax)
    CAS_LESS = "cas-less"               # swap if immediate less (atomicMin)
    FP_ADD_IMM = "fp-add-imm"           # GraphPIM float extension
    FP_MIN = "fp-min"


#: Opcode → (class, has_return) metadata.
OPCODE_INFO: Dict[PimOpcode, Tuple[PimOpClass, bool]] = {
    PimOpcode.ADD_IMM: (PimOpClass.ARITHMETIC, False),
    PimOpcode.ADD_IMM_RET: (PimOpClass.ARITHMETIC, True),
    PimOpcode.SWAP: (PimOpClass.BITWISE, True),
    PimOpcode.BIT_WRITE: (PimOpClass.BITWISE, False),
    PimOpcode.AND_IMM: (PimOpClass.BOOLEAN, False),
    PimOpcode.OR_IMM: (PimOpClass.BOOLEAN, False),
    PimOpcode.CAS_EQUAL: (PimOpClass.COMPARISON, True),
    PimOpcode.CAS_GREATER: (PimOpClass.COMPARISON, True),
    PimOpcode.CAS_LESS: (PimOpClass.COMPARISON, True),
    PimOpcode.FP_ADD_IMM: (PimOpClass.FLOATING, False),
    PimOpcode.FP_MIN: (PimOpClass.FLOATING, True),
}


@dataclass(frozen=True)
class PimInstruction:
    """A PIM request payload: one memory operand + one immediate.

    Attributes
    ----------
    opcode:
        Which atomic operation to perform.
    address:
        Byte address of the memory operand (16-byte aligned region holds
        the operand; the FU is 128 bits wide).
    immediate:
        The immediate value (int for integer ops, float for FP ops).
    operand_bytes:
        Width of the memory operand (4 or 8).
    """

    opcode: PimOpcode
    address: int
    immediate: float
    operand_bytes: int = 4
    compare: float = 0.0  # CAS-equal compare value (16 B payload carries both)

    def __post_init__(self) -> None:
        if self.operand_bytes not in (4, 8):
            raise ValueError(f"operand width must be 4 or 8, got {self.operand_bytes}")
        if self.address < 0:
            raise ValueError(f"negative address: {self.address}")

    @property
    def op_class(self) -> PimOpClass:
        return OPCODE_INFO[self.opcode][0]

    @property
    def has_return(self) -> bool:
        return OPCODE_INFO[self.opcode][1]


def _int_wrap(value: int, nbytes: int) -> int:
    """Wrap to two's-complement signed range of the operand width."""
    bits = nbytes * 8
    mask = (1 << bits) - 1
    v = value & mask
    if v >= 1 << (bits - 1):
        v -= 1 << bits
    return v


# Semantics: (old_value, inst) -> (new_value, atomic_flag).
# atomic_flag mirrors the HMC response field indicating whether the
# conditional operation succeeded.
_SEMANTICS: Dict[PimOpcode, Callable[[float, "PimInstruction"], Tuple[float, bool]]] = {
    PimOpcode.ADD_IMM: lambda old, i: (
        _int_wrap(int(old) + int(i.immediate), i.operand_bytes), True
    ),
    PimOpcode.ADD_IMM_RET: lambda old, i: (
        _int_wrap(int(old) + int(i.immediate), i.operand_bytes), True
    ),
    PimOpcode.SWAP: lambda old, i: (_int_wrap(int(i.immediate), i.operand_bytes), True),
    PimOpcode.BIT_WRITE: lambda old, i: (
        _int_wrap(int(old) | int(i.immediate), i.operand_bytes), True
    ),
    PimOpcode.AND_IMM: lambda old, i: (
        _int_wrap(int(old) & int(i.immediate), i.operand_bytes), True
    ),
    PimOpcode.OR_IMM: lambda old, i: (
        _int_wrap(int(old) | int(i.immediate), i.operand_bytes), True
    ),
    PimOpcode.CAS_EQUAL: lambda old, i: (
        (_int_wrap(int(i.immediate), i.operand_bytes), True)
        if int(old) == int(i.compare)
        else (int(old), False)
    ),
    PimOpcode.CAS_GREATER: lambda old, i: (
        (_int_wrap(int(i.immediate), i.operand_bytes), True)
        if int(i.immediate) > int(old)
        else (int(old), False)
    ),
    PimOpcode.CAS_LESS: lambda old, i: (
        (_int_wrap(int(i.immediate), i.operand_bytes), True)
        if int(i.immediate) < int(old)
        else (int(old), False)
    ),
    PimOpcode.FP_ADD_IMM: lambda old, i: (old + i.immediate, True),
    PimOpcode.FP_MIN: lambda old, i: (
        (i.immediate, True) if i.immediate < old else (old, False)
    ),
}


def execute_semantics(old_value: float, inst: "PimInstruction") -> Tuple[float, bool]:
    """Pure functional semantics of one PIM op.

    Returns ``(new_value, atomic_flag)``. Integer ops wrap at the operand
    width (two's complement), matching hardware behaviour.
    """
    try:
        fn = _SEMANTICS[inst.opcode]
    except KeyError:
        raise ValueError(f"no semantics registered for {inst.opcode}") from None
    return fn(old_value, inst)


def is_float_op(opcode: PimOpcode) -> bool:
    return OPCODE_INFO[opcode][0] is PimOpClass.FLOATING


def encode_operand(value: float, opcode: PimOpcode, nbytes: int) -> bytes:
    """Pack an operand value as raw little-endian bytes."""
    if is_float_op(opcode):
        return struct.pack("<d" if nbytes == 8 else "<f", float(value))
    fmt = "<q" if nbytes == 8 else "<i"
    return struct.pack(fmt, _int_wrap(int(value), nbytes))


def decode_operand(raw: bytes, opcode: PimOpcode, nbytes: int) -> float:
    """Unpack raw little-endian bytes into an operand value."""
    if len(raw) != nbytes:
        raise ValueError(f"expected {nbytes} bytes, got {len(raw)}")
    if is_float_op(opcode):
        return struct.unpack("<d" if nbytes == 8 else "<f", raw)[0]
    fmt = "<q" if nbytes == 8 else "<i"
    return struct.unpack(fmt, raw)[0]
