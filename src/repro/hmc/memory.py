"""Functional byte-addressable backing store.

The event-level cube executes PIM semantics against real memory contents so
that protocol tests can check *values*, not just timing. A sparse page map
keeps an 8 GB cube cheap to instantiate.
"""

from __future__ import annotations

import sys
from typing import Dict

import numpy as np

from repro.hmc.isa import (
    PimInstruction,
    decode_operand,
    encode_operand,
    execute_semantics,
)

_PAGE_BITS = 12
_PAGE_SIZE = 1 << _PAGE_BITS


class BackingStore:
    """Sparse byte-addressable memory; unwritten bytes read as zero."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._pages: Dict[int, bytearray] = {}

    def _check(self, address: int, length: int) -> None:
        if address < 0 or length < 0 or address + length > self.capacity_bytes:
            raise ValueError(
                f"access [{address}, {address + length}) outside capacity "
                f"{self.capacity_bytes}"
            )

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``address``."""
        self._check(address, length)
        out = bytearray(length)
        pos = 0
        while pos < length:
            a = address + pos
            page, off = a >> _PAGE_BITS, a & (_PAGE_SIZE - 1)
            chunk = min(length - pos, _PAGE_SIZE - off)
            buf = self._pages.get(page)
            if buf is not None:
                out[pos : pos + chunk] = buf[off : off + chunk]
            pos += chunk
        return bytes(out)

    def write(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address``."""
        self._check(address, len(data))
        pos = 0
        while pos < len(data):
            a = address + pos
            page, off = a >> _PAGE_BITS, a & (_PAGE_SIZE - 1)
            chunk = min(len(data) - pos, _PAGE_SIZE - off)
            buf = self._pages.get(page)
            if buf is None:
                # Unallocated pages already read as zero, so an all-zero
                # write is a no-op — streaming-write-heavy simulations
                # would otherwise densify the sparse store.
                if data.count(0, pos, pos + chunk) == chunk:
                    pos += chunk
                    continue
                buf = bytearray(_PAGE_SIZE)
                self._pages[page] = buf
            buf[off : off + chunk] = data[pos : pos + chunk]
            pos += chunk

    def bulk_int_add(self, addresses, deltas, nbytes: int) -> None:
        """Apply wrapping signed integer adds to many operands at once.

        The batched engine's fold of uniform ``ADD_IMM`` streams: each
        operand at ``addresses[i]`` (already range-checked, aligned to
        ``nbytes``, so never straddling a page) gets ``deltas[i]`` added
        with two's-complement wrap at the operand width — byte-for-byte
        what per-op :meth:`execute_pim` chains would leave behind.
        """
        if nbytes not in (4, 8):
            raise ValueError(f"operand width must be 4 or 8, got {nbytes}")
        bits = nbytes * 8
        full = 1 << bits
        pages = self._pages
        if sys.byteorder != "little":
            # Rare big-endian host: scalar reference path.
            half = 1 << (bits - 1)
            for addr, delta in zip(addresses, deltas):
                page, off = addr >> _PAGE_BITS, addr & (_PAGE_SIZE - 1)
                buf = pages.get(page)
                if buf is None:
                    buf = bytearray(_PAGE_SIZE)
                    pages[page] = buf
                old = int.from_bytes(buf[off : off + nbytes], "little", signed=True)
                v = (old + delta) & (full - 1)
                if v >= half:
                    v -= full
                buf[off : off + nbytes] = v.to_bytes(nbytes, "little", signed=True)
            return
        # Two's-complement add == unsigned add mod 2**bits, and pages are
        # stored little-endian, so an unsigned numpy view of each page
        # buffer produces byte-identical results to the scalar path.
        # Deltas are masked through Python ints first (they may exceed
        # the operand range, e.g. folded immediate * count).
        count = len(addresses)
        udtype = np.uint32 if nbytes == 4 else np.uint64
        if isinstance(addresses, np.ndarray) and isinstance(deltas, np.ndarray):
            addrs = addresses.astype(np.int64, copy=False)
            # A .view() reinterprets int64 bits, i.e. reduces mod 2**64;
            # the extra uint64 mask then wraps to the operand width.
            dl = (deltas.astype(np.int64, copy=False).view(np.uint64)
                  & np.uint64(full - 1)).astype(udtype, copy=False)
        else:
            addrs = np.fromiter((int(a) for a in addresses), dtype=np.int64,
                                count=count)
            dl = np.fromiter((int(d) & (full - 1) for d in deltas),
                             dtype=np.uint64, count=count).astype(udtype)
        page_ids = addrs >> _PAGE_BITS
        order = np.argsort(page_ids, kind="stable")
        page_s = page_ids[order]
        cut = np.flatnonzero(page_s[1:] != page_s[:-1]) + 1
        offsets = np.concatenate(([0], cut, [count]))
        shift = 2 if nbytes == 4 else 3
        word_offs = ((addrs[order] & (_PAGE_SIZE - 1)) >> shift).astype(np.intp)
        for k in range(offsets.size - 1):
            lo, hi = int(offsets[k]), int(offsets[k + 1])
            page = int(page_s[lo])
            buf = pages.get(page)
            if buf is None:
                buf = bytearray(_PAGE_SIZE)
                pages[page] = buf
            view = np.frombuffer(buf, dtype=udtype)
            np.add.at(view, word_offs[lo:hi], dl[lo:hi])

    def execute_pim(self, inst: PimInstruction) -> tuple[bytes, bool]:
        """Atomically apply ``inst``; returns (old raw operand, atomic_flag).

        This is the read-modify-write of Sec. II-B steps (1)-(3); the
        *timing* of the RMW (bank locking) is modelled by the bank/vault
        layers — here we apply only the functional effect.
        """
        nb = inst.operand_bytes
        raw_old = self.read(inst.address, nb)
        old = decode_operand(raw_old, inst.opcode, nb)
        new, flag = execute_semantics(old, inst)
        self.write(inst.address, encode_operand(new, inst.opcode, nb))
        return raw_old, flag

    @property
    def resident_bytes(self) -> int:
        """Bytes actually allocated (diagnostic)."""
        return len(self._pages) * _PAGE_SIZE
