"""Functional byte-addressable backing store.

The event-level cube executes PIM semantics against real memory contents so
that protocol tests can check *values*, not just timing. A sparse page map
keeps an 8 GB cube cheap to instantiate.
"""

from __future__ import annotations

from typing import Dict

from repro.hmc.isa import (
    PimInstruction,
    decode_operand,
    encode_operand,
    execute_semantics,
)

_PAGE_BITS = 12
_PAGE_SIZE = 1 << _PAGE_BITS


class BackingStore:
    """Sparse byte-addressable memory; unwritten bytes read as zero."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._pages: Dict[int, bytearray] = {}

    def _check(self, address: int, length: int) -> None:
        if address < 0 or length < 0 or address + length > self.capacity_bytes:
            raise ValueError(
                f"access [{address}, {address + length}) outside capacity "
                f"{self.capacity_bytes}"
            )

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``address``."""
        self._check(address, length)
        out = bytearray(length)
        pos = 0
        while pos < length:
            a = address + pos
            page, off = a >> _PAGE_BITS, a & (_PAGE_SIZE - 1)
            chunk = min(length - pos, _PAGE_SIZE - off)
            buf = self._pages.get(page)
            if buf is not None:
                out[pos : pos + chunk] = buf[off : off + chunk]
            pos += chunk
        return bytes(out)

    def write(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address``."""
        self._check(address, len(data))
        pos = 0
        while pos < len(data):
            a = address + pos
            page, off = a >> _PAGE_BITS, a & (_PAGE_SIZE - 1)
            chunk = min(len(data) - pos, _PAGE_SIZE - off)
            buf = self._pages.get(page)
            if buf is None:
                buf = bytearray(_PAGE_SIZE)
                self._pages[page] = buf
            buf[off : off + chunk] = data[pos : pos + chunk]
            pos += chunk

    def execute_pim(self, inst: PimInstruction) -> tuple[bytes, bool]:
        """Atomically apply ``inst``; returns (old raw operand, atomic_flag).

        This is the read-modify-write of Sec. II-B steps (1)-(3); the
        *timing* of the RMW (bank locking) is modelled by the bank/vault
        layers — here we apply only the functional effect.
        """
        nb = inst.operand_bytes
        raw_old = self.read(inst.address, nb)
        old = decode_operand(raw_old, inst.opcode, nb)
        new, flag = execute_semantics(old, inst)
        self.write(inst.address, encode_operand(new, inst.opcode, nb))
        return raw_old, flag

    @property
    def resident_bytes(self) -> int:
        """Bytes actually allocated (diagnostic)."""
        return len(self._pages) * _PAGE_SIZE
