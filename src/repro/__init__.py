"""CoolPIM reproduction: thermal-aware source throttling for PIM offloading.

A full-system Python model of the GPU + HMC 2.0 platform from
*CoolPIM: Thermal-Aware Source Throttling for Efficient PIM Instruction
Offloading* (IPDPS 2018), with the paper's evaluation regenerable end to
end. Top-level entry points:

>>> from repro import CoolPimSystem, get_dataset, get_workload
>>> system = CoolPimSystem()
>>> result = system.run(get_workload("pagerank"), get_dataset("ldbc-small"),
...                     policy="coolpim-hw")

Subpackages: :mod:`repro.hmc` (device models), :mod:`repro.thermal`
(RC-network thermal model), :mod:`repro.gpu` (host + co-simulation),
:mod:`repro.workloads` (GraphBIG kernels), :mod:`repro.graph` (CSR +
generators), :mod:`repro.core` (CoolPIM policies),
:mod:`repro.experiments` (table/figure regenerators),
:mod:`repro.service` (parallel job scheduler + content-addressed
result cache).
"""

from repro.core.coolpim import CoolPimSystem
from repro.core.policies import make_policy
from repro.graph.datasets import get_dataset, list_datasets
from repro.workloads.registry import get_workload, list_workloads

__version__ = "1.0.0"

__all__ = [
    "CoolPimSystem",
    "__version__",
    "get_dataset",
    "get_workload",
    "list_datasets",
    "list_workloads",
    "make_policy",
]
