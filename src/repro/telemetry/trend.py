"""Performance-trend gate: compare ``BENCH_*.json`` against baselines.

The benchmark suite emits machine-readable artifacts (e.g.
``BENCH_simulator.json`` from :mod:`benchmarks.test_simulator_bench`);
``benchmarks/baselines.json`` commits the expected numbers with
per-metric tolerance bands. ``repro bench-trend`` joins the two,
renders a trend report, and — with ``--check`` — exits non-zero on
regression, making CI the first consumer of the bench trajectory
instead of a human reading artifact diffs.

Baselines schema (``repro.bench-baselines/1``)::

    {
      "schema": "repro.bench-baselines/1",
      "benchmarks": {
        "<benchmark name>": {
          "source": "BENCH_simulator.json",
          "metrics": {
            "aggregate_speedup": {"baseline": 9.33, "min_ratio": 0.4},
            "policies.coolpim-hw.macro_s":
                {"baseline": 0.085, "max_ratio": 3.0}
          }
        }
      }
    }

Metric paths are dotted lookups into the bench document. Tolerance is a
ratio band around the baseline: ``min_ratio`` guards higher-is-better
metrics (fail when ``current < baseline * min_ratio``), ``max_ratio``
guards lower-is-better ones (fail when ``current > baseline *
max_ratio``); a metric may declare both. Bands are deliberately wide —
CI machines vary — so only real regressions (an engine falling off its
fast path) trip the gate, not scheduler noise.

Exit codes: 0 all within band, 1 regression (or missing bench source),
2 structural error (missing/invalid baselines or bench JSON).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

BASELINES_SCHEMA_ID = "repro.bench-baselines/1"

#: Default committed baselines location, relative to the repo root.
DEFAULT_BASELINES = Path("benchmarks") / "baselines.json"


@dataclass
class TrendRow:
    """One (benchmark, metric) comparison."""

    benchmark: str
    metric: str
    baseline: float
    current: Optional[float]
    #: "ok" | "regression" | "missing"
    status: str
    note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.current is None or self.baseline == 0:
            return None
        return self.current / self.baseline


class TrendError(ValueError):
    """Structural problem: unreadable/invalid baselines or bench file."""


def load_baselines(path: Path) -> Dict[str, Any]:
    """Read + validate the committed baselines document."""
    try:
        doc = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise TrendError(f"baselines file not found: {path}")
    except json.JSONDecodeError as exc:
        raise TrendError(f"baselines file is not valid JSON: {exc}")
    if doc.get("schema") != BASELINES_SCHEMA_ID:
        raise TrendError(
            f"unsupported baselines schema: {doc.get('schema')!r} "
            f"(expected {BASELINES_SCHEMA_ID})"
        )
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        raise TrendError("baselines must define a non-empty 'benchmarks' map")
    for name, entry in benchmarks.items():
        if "source" not in entry or not isinstance(entry.get("metrics"), dict):
            raise TrendError(
                f"benchmark {name!r} needs 'source' and a 'metrics' map"
            )
        for metric, spec in entry["metrics"].items():
            if "baseline" not in spec:
                raise TrendError(
                    f"{name}.{metric} is missing its 'baseline' value"
                )
            if "min_ratio" not in spec and "max_ratio" not in spec:
                raise TrendError(
                    f"{name}.{metric} needs min_ratio and/or max_ratio"
                )
    return doc


def resolve_metric(doc: Mapping[str, Any], path: str) -> Optional[float]:
    """Dotted lookup into a bench document; None when absent/non-numeric."""
    node: Any = doc
    for part in path.split("."):
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def _compare(
    benchmark: str, metric: str, spec: Mapping[str, Any],
    current: Optional[float],
) -> TrendRow:
    baseline = float(spec["baseline"])
    if current is None:
        return TrendRow(benchmark, metric, baseline, None, "missing",
                        "metric absent from bench document")
    min_ratio = spec.get("min_ratio")
    max_ratio = spec.get("max_ratio")
    if min_ratio is not None and current < baseline * float(min_ratio):
        return TrendRow(
            benchmark, metric, baseline, current, "regression",
            f"below {float(min_ratio):g}x baseline floor",
        )
    if max_ratio is not None and current > baseline * float(max_ratio):
        return TrendRow(
            benchmark, metric, baseline, current, "regression",
            f"above {float(max_ratio):g}x baseline ceiling",
        )
    return TrendRow(benchmark, metric, baseline, current, "ok")


def evaluate(
    baselines: Mapping[str, Any], bench_dir: Path
) -> List[TrendRow]:
    """Compare every baselined metric against its bench artifact."""
    rows: List[TrendRow] = []
    for name, entry in baselines["benchmarks"].items():
        source = Path(bench_dir) / entry["source"]
        try:
            doc = json.loads(source.read_text())
        except FileNotFoundError:
            for metric, spec in entry["metrics"].items():
                rows.append(TrendRow(
                    name, metric, float(spec["baseline"]), None, "missing",
                    f"bench artifact not found: {source}",
                ))
            continue
        except json.JSONDecodeError as exc:
            raise TrendError(f"bench artifact {source} is not valid JSON: {exc}")
        for metric, spec in entry["metrics"].items():
            rows.append(_compare(name, metric, spec,
                                 resolve_metric(doc, metric)))
    return rows


def render_trend_report(rows: List[TrendRow]) -> str:
    """Aligned text table plus a one-line verdict."""
    header = ("benchmark", "metric", "baseline", "current", "ratio", "status")
    table: List[Tuple[str, ...]] = [header]
    for row in rows:
        current = "-" if row.current is None else f"{row.current:.4g}"
        ratio = "-" if row.ratio is None else f"{row.ratio:.2f}x"
        status = row.status + (f" ({row.note})" if row.note else "")
        table.append((row.benchmark, row.metric, f"{row.baseline:.4g}",
                      current, ratio, status))
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)).rstrip()
        for r in table
    ]
    lines.insert(1, "  ".join("-" * w for w in widths))
    bad = sum(1 for r in rows if r.status != "ok")
    verdict = (
        f"{len(rows)} metric(s) checked, all within tolerance"
        if bad == 0
        else f"{bad} of {len(rows)} metric(s) out of tolerance"
    )
    return "\n".join(lines) + f"\n\n{verdict}\n"


def run_trend(
    bench_dir: Path,
    baselines_path: Path,
    report_path: Optional[Path] = None,
    check: bool = False,
) -> Tuple[int, str]:
    """Full harness run → (exit code, rendered report).

    Exit code 0 when every metric is in band, 1 on any regression or
    missing metric/artifact, 2 on structural errors. Without ``check``
    the report is still rendered but regressions do not gate (code 0) —
    the informational mode for local trend watching.
    """
    try:
        baselines = load_baselines(baselines_path)
        rows = evaluate(baselines, bench_dir)
    except TrendError as exc:
        return 2, f"bench-trend error: {exc}\n"
    report = render_trend_report(rows)
    if report_path is not None:
        Path(report_path).parent.mkdir(parents=True, exist_ok=True)
        Path(report_path).write_text(report)
    failed = any(r.status != "ok" for r in rows)
    return (1 if failed and check else 0), report
