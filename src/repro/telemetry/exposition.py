"""Prometheus text exposition (format 0.0.4) encode + validate.

:func:`render_exposition` turns a :class:`~repro.telemetry.registry.
TelemetryRegistry` into the plain-text scrape format every Prometheus-
compatible collector understands — no client library dependency, just
the spec: ``# HELP``/``# TYPE`` headers, label escaping, histogram
``_bucket{le=...}``/``_sum``/``_count`` expansion with cumulative
buckets ending at ``+Inf``.

:func:`parse_exposition` is the matching validator (used by the
telemetry smoke script and the test suite): it re-reads an exposition
body into structured samples and enforces the invariants a scraper
relies on — metric-name syntax, types declared before samples, bucket
counts monotonically non-decreasing, ``_count`` equal to the ``+Inf``
bucket.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.telemetry.registry import TelemetryRegistry

#: Prometheus content type for the text format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<val>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


_UNESCAPE_RE = re.compile(r"\\(.)")
_UNESCAPE_MAP = {"n": "\n", '"': '"', "\\": "\\"}


def _unescape_label(value: str) -> str:
    # Single pass: sequential str.replace would corrupt an escaped
    # backslash followed by a literal 'n' (``\\n`` is "\" + "n", not a
    # newline).
    return _UNESCAPE_RE.sub(
        lambda m: _UNESCAPE_MAP.get(m.group(1), m.group(0)), value
    )


def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_labels(items: Tuple[Tuple[str, str], ...]) -> str:
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in items)
    return "{" + body + "}"


def render_exposition(registry: TelemetryRegistry) -> str:
    """Render every series of ``registry`` as Prometheus text format."""
    lines: List[str] = []
    for fam in registry.families():
        if not _NAME_RE.match(fam.name):
            raise ValueError(f"invalid metric name: {fam.name!r}")
        if fam.help:
            help_text = fam.help.replace("\\", r"\\").replace("\n", r"\n")
            lines.append(f"# HELP {fam.name} {help_text}")
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        for child in fam.children():
            labels = child.labels
            if fam.kind == "histogram":
                cumulative = child.cumulative_counts()
                edges = [*child.bounds, math.inf]
                for bound, count in zip(edges, cumulative):
                    le = ("+Inf" if bound == math.inf
                          else _fmt_value(bound))
                    items = labels + (("le", le),)
                    lines.append(
                        f"{fam.name}_bucket{_fmt_labels(items)} {count}"
                    )
                lines.append(
                    f"{fam.name}_sum{_fmt_labels(labels)} "
                    f"{_fmt_value(child.sum)}"
                )
                lines.append(
                    f"{fam.name}_count{_fmt_labels(labels)} {child.count}"
                )
            else:
                lines.append(
                    f"{fam.name}{_fmt_labels(labels)} "
                    f"{_fmt_value(child.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


class ExpositionError(ValueError):
    """The text body is not valid Prometheus exposition."""


def _parse_labels(body: Optional[str]) -> Dict[str, str]:
    if not body:
        return {}
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(body):
        m = _LABEL_PAIR_RE.match(body, pos)
        if m is None:
            raise ExpositionError(f"malformed label body: {body!r}")
        labels[m.group("key")] = _unescape_label(m.group("val"))
        pos = m.end()
    return labels


def _base_name(sample_name: str, types: Mapping[str, str]) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return sample_name


def parse_exposition(text: str) -> Dict[str, Any]:
    """Parse + validate an exposition body.

    Returns ``{"types": {name: kind}, "samples": [(name, labels, value)]}``
    with histogram sample names left expanded (``*_bucket`` etc.).
    Raises :class:`ExpositionError` on any violation of the format.
    """
    types: Dict[str, str] = {}
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ExpositionError(f"line {lineno}: bad TYPE line: {line!r}")
            if not _NAME_RE.match(parts[2]):
                raise ExpositionError(
                    f"line {lineno}: bad metric name in TYPE: {parts[2]!r}"
                )
            if parts[2] in types:
                raise ExpositionError(
                    f"line {lineno}: duplicate TYPE for {parts[2]!r}"
                )
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP / comments
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ExpositionError(f"line {lineno}: unparsable sample: {line!r}")
        name = m.group("name")
        labels = _parse_labels(m.group("labels"))
        for key in labels:
            if not _LABEL_RE.match(key):
                raise ExpositionError(
                    f"line {lineno}: bad label name {key!r}"
                )
        value_text = m.group("value")
        try:
            value = float(value_text.replace("+Inf", "inf").replace(
                "-Inf", "-inf"))
        except ValueError:
            raise ExpositionError(
                f"line {lineno}: bad sample value {value_text!r}"
            )
        base = _base_name(name, types)
        if base not in types:
            raise ExpositionError(
                f"line {lineno}: sample {name!r} has no TYPE declaration"
            )
        samples.append((name, labels, value))

    _validate_histograms(types, samples)
    return {"types": types, "samples": samples}


def _validate_histograms(
    types: Mapping[str, str],
    samples: List[Tuple[str, Dict[str, str], float]],
) -> None:
    buckets: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for name, labels, value in samples:
        base = _base_name(name, types)
        if types.get(base) != "histogram":
            continue
        key_labels = tuple(sorted(
            (k, v) for k, v in labels.items() if k != "le"
        ))
        if name.endswith("_bucket"):
            if "le" not in labels:
                raise ExpositionError(f"bucket sample missing le: {name}")
            le = float(labels["le"].replace("+Inf", "inf"))
            buckets.setdefault((base, key_labels), []).append((le, value))
        elif name.endswith("_count"):
            counts[(base, key_labels)] = value
    for (base, key_labels), entries in buckets.items():
        entries.sort(key=lambda e: e[0])
        last = -math.inf
        running = -1.0
        for le, value in entries:
            if le <= last:
                raise ExpositionError(f"duplicate le bucket in {base}")
            if value < running:
                raise ExpositionError(
                    f"histogram {base} bucket counts decrease at le={le}"
                )
            last, running = le, value
        if entries[-1][0] != math.inf:
            raise ExpositionError(f"histogram {base} missing +Inf bucket")
        total = counts.get((base, key_labels))
        if total is not None and total != entries[-1][1]:
            raise ExpositionError(
                f"histogram {base} _count {total} != +Inf bucket "
                f"{entries[-1][1]}"
            )
