"""Live per-run telemetry: bounded in-flight samples from the engines.

CoolPIM's story is a time series — DRAM temperature marching toward the
85 °C line while throttling trades bandwidth for headroom — so a
follower of ``GET /runs/{id}/events`` should watch thermals move
*in-flight*, not learn everything from the terminal snapshot. Both
engines emit through one :class:`RunTelemetrySink`:

- the **stepped** engine checks the sink every control step,
- the **macro** engine checks it only at burst-commit boundaries (and
  scalar fallback steps) — committed state only, so the speculative
  arithmetic and the bit-equality contract are untouched.

The engine-facing contract mirrors the tracer's NULL_SPAN discipline:
the sink is resolved **once** per run (:func:`get_run_sink`); when none
is installed the per-step cost is a single ``is not None`` test. When
one is installed, the engine compares ``now_s`` against the sink's
``next_due_s`` attribute inline and only builds a sample dict when one
is actually due.

Sample flow control (the downsampling budget):

- ``interval_s`` — sim-time spacing between samples (the engine-side
  gate via ``next_due_s``).
- ``min_wall_interval_s`` — wall-clock coalescing: samples arriving
  faster than this are held back, **last value wins**.
- ``max_samples`` — hard budget per run; once spent, later samples only
  replace the pending one, so the event log stays bounded at
  ``max_samples + 1`` (``close()`` flushes the final pending sample).

Sinks are installed **thread-local** (:func:`run_telemetry`): the API
service executes each job in its own executor thread, so concurrent
runs never cross streams, and code that never installs a sink pays
nothing.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Callable, Dict, Iterator, Optional
from contextlib import contextmanager

#: Default per-run sample budget (the service event-log bound).
DEFAULT_MAX_SAMPLES = 64

#: Default sim-time spacing between samples (the timeline grid).
DEFAULT_INTERVAL_S = 250e-6


class RunTelemetrySink:
    """Bounded collector for one run's in-flight telemetry samples."""

    def __init__(
        self,
        emit: Callable[[Dict[str, Any]], None],
        max_samples: int = DEFAULT_MAX_SAMPLES,
        interval_s: float = DEFAULT_INTERVAL_S,
        min_wall_interval_s: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1: {max_samples}")
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive: {interval_s}")
        self._emit = emit
        self.max_samples = max_samples
        self.interval_s = interval_s
        self.min_wall_interval_s = min_wall_interval_s
        self._clock = clock
        #: Sim-time the engines compare against inline; the first sample
        #: is due immediately so even sub-millisecond runs emit one.
        self.next_due_s = 0.0
        self.emitted = 0
        self.coalesced = 0
        self._pending: Optional[Dict[str, Any]] = None
        self._last_wall = -math.inf
        self._closed = False

    def emit_sample(self, sample: Dict[str, Any]) -> None:
        """Offer one sample (engine-side, sim-time gated by the caller)."""
        if self._closed:
            return
        self.next_due_s = float(sample.get("t_s", 0.0)) + self.interval_s
        if self.emitted >= self.max_samples:
            # Budget spent: keep the freshest sample, drop the rest.
            self._pending = sample
            self.coalesced += 1
            return
        now = self._clock()
        if now - self._last_wall < self.min_wall_interval_s:
            self._pending = sample
            self.coalesced += 1
            return
        self._pending = None
        self._last_wall = now
        self.emitted += 1
        self._emit(sample)

    def close(self) -> None:
        """Flush the pending (coalesced) sample, if any, and seal."""
        if self._closed:
            return
        self._closed = True
        self.next_due_s = math.inf
        if self._pending is not None:
            sample = self._pending
            self._pending = None
            self.emitted += 1
            self._emit(sample)


_STATE = threading.local()


def get_run_sink() -> Optional[RunTelemetrySink]:
    """The sink installed on this thread, or None (the fast path)."""
    return getattr(_STATE, "sink", None)


def set_run_sink(
    sink: Optional[RunTelemetrySink],
) -> Optional[RunTelemetrySink]:
    """Install ``sink`` thread-local; returns the previous one."""
    previous = getattr(_STATE, "sink", None)
    _STATE.sink = sink
    return previous


@contextmanager
def run_telemetry(sink: RunTelemetrySink) -> Iterator[RunTelemetrySink]:
    """Install ``sink`` for the duration of a run; close it on exit."""
    previous = set_run_sink(sink)
    try:
        yield sink
    finally:
        set_run_sink(previous)
        sink.close()
