"""Label-aware time-series metric registry.

The fleet-level counterpart of :class:`repro.sim.stats.StatRegistry`:
where the sim registry describes *one run* and is reset per run, this
registry accumulates **process-wide** series — submissions per tenant,
job latency histograms, simulator run counters — and renders them in
Prometheus text exposition (:mod:`repro.telemetry.exposition`) for the
``GET /metrics`` scrape surface.

Design constraints, in the spirit of the tracer's NULL_SPAN fast path
(:mod:`repro.obs.tracer`):

- **Lock-light.** A single registry lock guards family/child *creation*
  only; recording (``inc``/``set``/``observe``) touches plain attributes
  under the GIL. Metrics are recorded at run/job boundaries — never
  inside the control loop — so contention is negligible by construction.
- **Near-zero when unobserved.** Handles are resolved once and cached by
  callers (``family.labels(...)`` memoizes children); recording is a few
  attribute writes. Nothing is formatted, serialized, or copied until a
  collector actually scrapes.
- **Delta-flushable.** Forked pool workers accumulate into their own
  (inherited) registry and ship compact deltas back through the job
  result pipe (:meth:`TelemetryRegistry.flush_deltas`); the parent folds
  them into its own series (:meth:`TelemetryRegistry.merge`), so
  ``/metrics`` covers the whole worker fleet.

Histograms keep both Prometheus-style cumulative bucket counts *and* a
bounded ring buffer of recent raw samples, so quantile estimates
(:meth:`Histogram.percentile`) stay sharp without unbounded memory.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Mapping, Optional, Tuple

#: Schema identifier stamped on flushed delta documents.
DELTA_SCHEMA_ID = "repro.telemetry-delta/1"

#: Default histogram bucket upper bounds (seconds-flavoured, like
#: Prometheus' own defaults; callers override for other units).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Bound on the raw-sample ring buffer per histogram child.
DEFAULT_SAMPLE_WINDOW = 256


def _label_items(
    labelnames: Tuple[str, ...], labels: Mapping[str, Any]
) -> Tuple[Tuple[str, str], ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared "
            f"labelnames {sorted(labelnames)}"
        )
    return tuple((name, str(labels[name])) for name in labelnames)


class Counter:
    """Monotonic counter (one labelled child)."""

    kind = "counter"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._flushed = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0: {amount}")
        self.value += amount

    def _delta(self) -> float:
        delta = self.value - self._flushed
        self._flushed = self.value
        return delta


class Gauge:
    """Last-value-wins instantaneous measurement."""

    kind = "gauge"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram plus a bounded sample ring.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit ``+Inf`` bucket catches the overflow. ``percentile`` is
    estimated from the raw-sample ring (the most recent
    ``sample_window`` observations) and returns ``None`` on an empty
    histogram — degenerate series render as ``n=0``, they never raise.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...] = (),
        bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
        sample_window: int = DEFAULT_SAMPLE_WINDOW,
    ):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"bucket bounds must be sorted and non-empty: {bounds}")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        # Per-bucket (non-cumulative) counts; exposition cumulates them.
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.samples: Deque[float] = deque(maxlen=sample_window)
        self._flushed_counts = [0] * (len(self.bounds) + 1)
        self._flushed_sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.sum += value
        self.count += 1
        self.samples.append(value)

    def percentile(self, q: float) -> Optional[float]:
        """q-th percentile (0..100) of the ring samples; None when empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100]: {q}")
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = q / 100.0 * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def cumulative_counts(self) -> List[int]:
        """Prometheus ``le`` buckets: running totals incl. ``+Inf``."""
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def _delta(self) -> Optional[Dict[str, Any]]:
        counts = [c - f for c, f in zip(self.counts, self._flushed_counts)]
        if not any(counts):
            return None
        delta = {
            "bounds": list(self.bounds),
            "counts": counts,
            "sum": self.sum - self._flushed_sum,
            "samples": list(self.samples)[-sum(counts):],
        }
        self._flushed_counts = list(self.counts)
        self._flushed_sum = self.sum
        return delta

    def _merge(self, delta: Mapping[str, Any]) -> None:
        if tuple(delta["bounds"]) != self.bounds:
            raise ValueError(
                f"histogram {self.name!r} bucket bounds mismatch on merge"
            )
        for i, c in enumerate(delta["counts"]):
            self.counts[i] += int(c)
        self.sum += float(delta["sum"])
        self.count += int(sum(delta["counts"]))
        for s in delta.get("samples", ()):
            self.samples.append(float(s))


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric and its per-label-set children."""

    def __init__(
        self,
        registry: "TelemetryRegistry",
        kind: str,
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
        **child_kwargs: Any,
    ):
        self.registry = registry
        self.kind = kind
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._child_kwargs = child_kwargs
        self._children: Dict[Tuple[Tuple[str, str], ...], Any] = {}
        self._default = None if labelnames else self._make(())

    def _make(self, items: Tuple[Tuple[str, str], ...]):
        child = _CHILD_TYPES[self.kind](self.name, items, **self._child_kwargs)
        self._children[items] = child
        return child

    def labels(self, **labels: Any):
        """The child bound to this label set (created on first use)."""
        items = _label_items(self.labelnames, labels)
        child = self._children.get(items)
        if child is None:
            with self.registry._lock:
                child = self._children.get(items) or self._make(items)
        return child

    def children(self) -> List[Any]:
        return list(self._children.values())

    # Unlabelled families act as their own single child.
    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def set(self, value: float) -> None:
        self._default.set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    def percentile(self, q: float) -> Optional[float]:
        return self._default.percentile(q)

    @property
    def value(self) -> float:
        return self._default.value


class TelemetryRegistry:
    """Process-wide collection of metric families."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, MetricFamily] = {}

    def _family(self, kind: str, name: str, help: str,
                labelnames: Iterable[str], **kwargs: Any) -> MetricFamily:
        labelnames = tuple(labelnames)
        with self._lock:
            fam = self._families.get(name)
            if fam is not None:
                if fam.kind != kind or fam.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as {fam.kind} "
                        f"with labels {fam.labelnames}"
                    )
                return fam
            fam = MetricFamily(self, kind, name, help, labelnames, **kwargs)
            self._families[name] = fam
            return fam

    def counter(self, name: str, help: str = "",
                labelnames: Iterable[str] = ()) -> MetricFamily:
        return self._family("counter", name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Iterable[str] = ()) -> MetricFamily:
        return self._family("gauge", name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        sample_window: int = DEFAULT_SAMPLE_WINDOW,
    ) -> MetricFamily:
        return self._family(
            "histogram", name, help, labelnames,
            bounds=tuple(buckets), sample_window=sample_window,
        )

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return list(self._families.values())

    def clear(self) -> None:
        """Drop every family (test isolation)."""
        with self._lock:
            self._families.clear()

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly dump of every series (admin/debug surface)."""
        out: Dict[str, Any] = {}
        for fam in self.families():
            series = []
            for child in fam.children():
                entry: Dict[str, Any] = {"labels": dict(child.labels)}
                if fam.kind == "histogram":
                    entry.update(
                        count=child.count, sum=child.sum,
                        p50=child.percentile(50), p99=child.percentile(99),
                    )
                else:
                    entry["value"] = child.value
                series.append(entry)
            out[fam.name] = {"type": fam.kind, "help": fam.help,
                             "series": series}
        return out

    # -- worker → parent delta pipe ---------------------------------------

    def flush_deltas(self) -> Optional[Dict[str, Any]]:
        """Changes since the previous flush, or None when quiescent.

        Counters/histograms ship increments (mergeable), gauges ship
        their current value (last-writer-wins). Advances the per-child
        flush watermarks, so repeated flushes never double-count.
        """
        counters: List[List[Any]] = []
        gauges: List[List[Any]] = []
        histograms: List[List[Any]] = []
        for fam in self.families():
            for child in fam.children():
                items = [list(kv) for kv in child.labels]
                if fam.kind == "counter":
                    delta = child._delta()
                    if delta:
                        counters.append([fam.name, items, delta])
                elif fam.kind == "gauge":
                    gauges.append([fam.name, items, child.value])
                else:
                    delta = child._delta()
                    if delta is not None:
                        histograms.append([fam.name, items, delta])
        if not (counters or gauges or histograms):
            return None
        return {
            "schema": DELTA_SCHEMA_ID,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge(self, deltas: Mapping[str, Any]) -> None:
        """Fold a :meth:`flush_deltas` document into this registry."""
        if deltas.get("schema") != DELTA_SCHEMA_ID:
            raise ValueError(
                f"unsupported telemetry delta schema: {deltas.get('schema')!r}"
            )
        for name, items, delta in deltas.get("counters", ()):
            labelnames = tuple(k for k, _ in items)
            fam = self.counter(name, labelnames=labelnames)
            child = fam.labels(**dict(items)) if items else fam._default
            child.value += float(delta)
            child._flushed += float(delta)
        for name, items, value in deltas.get("gauges", ()):
            labelnames = tuple(k for k, _ in items)
            fam = self.gauge(name, labelnames=labelnames)
            child = fam.labels(**dict(items)) if items else fam._default
            child.set(float(value))
        for name, items, delta in deltas.get("histograms", ()):
            labelnames = tuple(k for k, _ in items)
            fam = self.histogram(
                name, labelnames=labelnames, buckets=tuple(delta["bounds"])
            )
            child = fam.labels(**dict(items)) if items else fam._default
            child._merge(delta)
            child._flushed_counts = list(child.counts)
            child._flushed_sum = child.sum


#: Process-wide default registry (the one ``GET /metrics`` renders).
_DEFAULT_REGISTRY = TelemetryRegistry()


def get_registry() -> TelemetryRegistry:
    """The process-wide default registry."""
    return _DEFAULT_REGISTRY


def set_registry(registry: TelemetryRegistry) -> TelemetryRegistry:
    """Swap the default registry (tests); returns the previous one."""
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous
