"""repro.telemetry — the live telemetry plane.

Three layers, one package:

- :mod:`repro.telemetry.registry` — label-aware process-wide time-series
  metrics (counters, gauges, histograms with bounded sample rings) with
  a worker→parent delta pipe for forked job pools.
- :mod:`repro.telemetry.exposition` — Prometheus text exposition
  encoder + validating parser (the ``GET /metrics`` scrape format).
- :mod:`repro.telemetry.live` — bounded in-flight run telemetry: the
  engines emit periodic samples through a thread-local
  :class:`RunTelemetrySink` into the API service's per-run event log.
- :mod:`repro.telemetry.trend` — the perf-regression gate behind
  ``repro bench-trend``.
"""

from repro.telemetry.exposition import (
    CONTENT_TYPE,
    ExpositionError,
    parse_exposition,
    render_exposition,
)
from repro.telemetry.live import (
    RunTelemetrySink,
    get_run_sink,
    run_telemetry,
    set_run_sink,
)
from repro.telemetry.registry import (
    DELTA_SCHEMA_ID,
    TelemetryRegistry,
    get_registry,
    set_registry,
)

__all__ = [
    "CONTENT_TYPE",
    "DELTA_SCHEMA_ID",
    "ExpositionError",
    "RunTelemetrySink",
    "TelemetryRegistry",
    "get_registry",
    "get_run_sink",
    "parse_exposition",
    "render_exposition",
    "run_telemetry",
    "set_registry",
    "set_run_sink",
]
