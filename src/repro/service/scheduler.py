"""Process-pool job scheduler with caching, retries, and graceful failure.

The :class:`JobScheduler` turns a list of :class:`~repro.service.jobs.JobSpec`
into a :class:`SweepReport`:

1. **Cache check** — specs whose content key is already in the
   :class:`~repro.service.store.ResultStore` (with a matching code
   fingerprint) are served without running anything; a killed sweep
   therefore resumes exactly where it stopped.
2. **Execution** — remaining jobs run on a ``concurrent.futures``
   process pool (fork start method where available, so runtime-registered
   job kinds work in workers). Per-job timeouts are enforced *inside* the
   worker via ``SIGALRM``, which frees the pool slot immediately and
   never breaks the pool.
3. **Degradation** — a handler exception or timeout consumes one attempt
   and is retried with exponential backoff up to ``spec.max_retries``;
   a worker process that dies outright (segfault, ``os._exit``) breaks
   the pool, which the scheduler rebuilds. Every terminal failure becomes
   a structured :class:`~repro.service.jobs.JobFailure` record — one bad
   job never kills the sweep.

Crash attribution: ``concurrent.futures`` cannot say *which* job killed
a broken pool, so workers touch a ``<key>.a<attempt>.started`` marker in
a per-run scratch directory on entry. After a break, jobs that never
started are simply re-queued (no attempt consumed), while every
started-but-unresolved job is **quarantined**: re-run alone in a
single-worker pool, where a repeat crash is unambiguously its own doing
(→ ``JobFailure(reason="crash")`` once retries are exhausted) and an
innocent bystander of someone else's crash completes normally.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import shutil
import signal
import tempfile
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.tracer import get_tracer
from repro.service.jobs import (
    JobFailure,
    JobResult,
    JobSpec,
    JobTimeoutError,
    resolve_handler,
)
from repro.service.journal import JobJournal
from repro.service.singleflight import Flight, SingleFlight
from repro.service.store import ResultStore

#: Process-wide single-flight group: concurrent schedulers (threads of the
#: HTTP service, parallel batch invocations) coalesce identical specs on
#: their content key, so a job racing its twin executes exactly once.
_SINGLE_FLIGHT = SingleFlight()

#: First-retry backoff; attempt ``n`` waits ``backoff * 2**(n-1)`` seconds.
DEFAULT_BACKOFF_S = 0.05

#: Poll interval of the dispatch loop (s).
_TICK_S = 0.02


def _worker_run(
    spec_dict: Dict[str, Any],
    attempt: int = 1,
    scratch_dir: Optional[str] = None,
    collect_telemetry: bool = False,
) -> Dict[str, Any]:
    """Execute one job attempt (module-level: must be picklable).

    Runs in a pool worker (or inline in serial mode). Arms a ``SIGALRM``
    timer for the spec's timeout so a hung job raises
    :class:`JobTimeoutError` instead of wedging its pool slot forever.

    ``collect_telemetry`` is set on *pooled* attempts only: the worker
    flushes its process-local telemetry registry deltas into the result
    dict, and the parent merges them into its own series — the
    worker→parent half of the ``GET /metrics`` pipe. Serial attempts
    record straight into the parent registry, so flushing there would
    double-count.
    """
    spec = JobSpec.from_dict(spec_dict)
    if scratch_dir:
        # Start marker: lets the parent attribute pool breakage to jobs
        # that actually began executing.
        marker = Path(scratch_dir) / f"{spec.key}.a{attempt}.started"
        try:
            marker.touch()
        except OSError:
            pass

    handler = resolve_handler(spec.kind)
    use_alarm = (
        spec.timeout_s is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    previous = None
    if use_alarm:
        def _on_alarm(_signum, _frame):
            raise JobTimeoutError(
                f"job {spec.name!r} exceeded its {spec.timeout_s:g}s timeout"
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, float(spec.timeout_s))
    start = time.perf_counter()
    try:
        payload = handler(spec)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
    if payload is None:
        payload = {}
    if not isinstance(payload, dict):
        raise TypeError(
            f"job handler for kind {spec.kind!r} must return a dict, "
            f"got {type(payload).__name__}"
        )
    out = {
        "payload": payload,
        "elapsed_s": time.perf_counter() - start,
        "pid": os.getpid(),
    }
    if collect_telemetry:
        from repro.telemetry import get_registry

        deltas = get_registry().flush_deltas()
        if deltas is not None:
            out["telemetry"] = deltas
    return out


@dataclass
class SweepReport:
    """Outcome of one :meth:`JobScheduler.run` call."""

    results: Dict[str, JobResult] = field(default_factory=dict)
    failures: Dict[str, JobFailure] = field(default_factory=dict)
    elapsed_s: float = 0.0
    cache_hits: int = 0
    executed: int = 0
    #: Jobs served by a concurrent execution in another scheduler
    #: (single-flight followers) — counted in neither ``cache_hits``
    #: nor ``executed``.
    coalesced: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def result_for(self, spec: JobSpec) -> Optional[JobResult]:
        return self.results.get(spec.key)

    def failure_for(self, spec: JobSpec) -> Optional[JobFailure]:
        return self.failures.get(spec.key)

    def summary_line(self) -> str:
        coalesced = f", {self.coalesced} coalesced" if self.coalesced else ""
        return (
            f"{len(self.results)} ok ({self.cache_hits} cached, "
            f"{self.executed} executed{coalesced}), "
            f"{len(self.failures)} failed in {self.elapsed_s:.1f} s"
        )


class JobScheduler:
    """Runs job specs over a process pool with caching and retries.

    Parameters
    ----------
    store:
        Result cache; ``None`` disables caching entirely.
    journal:
        Lifecycle event log; ``None`` disables journaling.
    max_workers:
        Pool size (default: ``min(os.cpu_count(), job count)``).
    serial:
        Execute in-process instead of a pool (deterministic ordering,
        easier debugging; timeouts still enforced via ``SIGALRM``).
    use_cache:
        Set ``False`` to force re-execution while still writing fresh
        results back to the store.
    backoff_s:
        Base of the exponential retry backoff.
    worker_initializer:
        Optional zero-argument callable run once in every pool worker
        (and, under a fork start method, once in the parent before the
        pool is created, so forked workers inherit any warmed
        process-level caches — e.g.
        :func:`repro.service.handlers.prewarm_worker`, which assembles
        the shared thermal operators). Must be picklable
        (module-level) for spawn-based pools.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        journal: Optional[JobJournal] = None,
        max_workers: Optional[int] = None,
        serial: bool = False,
        use_cache: bool = True,
        backoff_s: float = DEFAULT_BACKOFF_S,
        mp_start_method: Optional[str] = None,
        worker_initializer: Optional[Any] = None,
        single_flight: bool = True,
    ) -> None:
        self.store = store
        self.journal = journal
        self.max_workers = max_workers
        self.serial = serial
        self.use_cache = use_cache
        self.backoff_s = backoff_s
        self.mp_start_method = mp_start_method
        self.worker_initializer = worker_initializer
        self.single_flight = single_flight
        # queued_at[key] = perf_counter at submission; lets completion
        # spans cover the full queue→start→done lifecycle.
        self._queued_at: Dict[str, float] = {}
        # Keys this run leads in the process-wide single-flight group;
        # each must be published exactly once (outcome or abort).
        self._claimed: set = set()

    # -- journal helper ---------------------------------------------------

    def _log(self, event: str, **fields: Any) -> None:
        if self.journal is not None:
            self.journal.append(event, **fields)

    # -- fleet metrics -----------------------------------------------------

    @staticmethod
    def _job_metric(
        status: str, spec: JobSpec, elapsed_s: Optional[float] = None
    ) -> None:
        """One bump per job outcome into the process-wide registry."""
        from repro.telemetry import get_registry

        reg = get_registry()
        reg.counter(
            "repro_jobs_total", "Job outcomes by kind and status",
            ("kind", "status"),
        ).labels(kind=spec.kind, status=status).inc()
        if elapsed_s is not None:
            reg.histogram(
                "repro_job_seconds", "Job handler latency", ("kind",),
            ).labels(kind=spec.kind).observe(elapsed_s)

    # -- public API -------------------------------------------------------

    def run(self, specs: Sequence[JobSpec]) -> SweepReport:
        """Execute ``specs`` (deduplicated by content key) to completion."""
        t0 = time.perf_counter()
        tracer = get_tracer()
        report = SweepReport()

        unique: List[JobSpec] = []
        seen: set = set()
        for spec in specs:
            if spec.key in seen:
                continue
            seen.add(spec.key)
            unique.append(spec)

        self._log(
            "sweep_start",
            jobs=len(unique),
            serial=self.serial,
            max_workers=self.max_workers,
        )

        pending: List[JobSpec] = []
        for spec in unique:
            hit = self.store.get(spec) if (self.store and self.use_cache) else None
            if hit is not None:
                report.results[spec.key] = JobResult(
                    key=spec.key,
                    name=spec.name,
                    payload=hit.payload,
                    elapsed_s=hit.elapsed_s,
                    attempts=0,
                    cached=True,
                )
                report.cache_hits += 1
                self._job_metric("cache_hit", spec)
                self._log("cache_hit", key=spec.key, name=spec.name)
                tracer.instant(
                    "scheduler.cache_hit", cat="scheduler", job=spec.name
                )
            else:
                pending.append(spec)
                self._queued_at[spec.key] = time.perf_counter()
                self._log("submitted", key=spec.key, name=spec.name)

        if pending:
            leaders: List[JobSpec] = []
            followers: List[Tuple[JobSpec, Flight]] = []
            if self.single_flight:
                for spec in pending:
                    flight = _SINGLE_FLIGHT.claim(spec.key)
                    if flight is None:
                        self._claimed.add(spec.key)
                        leaders.append(spec)
                    else:
                        followers.append((spec, flight))
                        self._job_metric("coalesced", spec)
                        self._log("coalesced", key=spec.key, name=spec.name)
                        tracer.instant(
                            "scheduler.coalesced", cat="scheduler", job=spec.name
                        )
            else:
                leaders = list(pending)
            try:
                if leaders:
                    if self.serial:
                        self._run_serial(leaders, report)
                    else:
                        self._run_pool(leaders, report)
            finally:
                # A leader key still claimed here means we aborted before
                # recording an outcome (interrupt, internal error): wake
                # followers with an abort signal so they re-claim instead
                # of hanging on a flight nobody will resolve.
                for key in list(self._claimed):
                    _SINGLE_FLIGHT.publish(key, None)
                    self._claimed.discard(key)
            self._resolve_followers(followers, report)

        report.elapsed_s = time.perf_counter() - t0
        self._log(
            "sweep_end",
            ok=len(report.results),
            cached=report.cache_hits,
            executed=report.executed,
            failed=len(report.failures),
            elapsed_s=report.elapsed_s,
        )
        tracer.complete(
            "scheduler.sweep", t0, time.perf_counter(), cat="scheduler",
            jobs=len(unique), cached=report.cache_hits,
            executed=report.executed, failed=len(report.failures),
        )
        return report

    # -- single-flight ----------------------------------------------------

    def _publish(self, key: str, outcome: Any) -> None:
        """Resolve our single-flight claim on ``key`` (idempotent)."""
        if key in self._claimed:
            _SINGLE_FLIGHT.publish(key, outcome)
            self._claimed.discard(key)

    def _resolve_followers(
        self,
        followers: Sequence[Tuple[JobSpec, Flight]],
        report: SweepReport,
    ) -> None:
        """Adopt each concurrent leader's outcome (or run ourselves if it
        aborted without one)."""
        from dataclasses import replace

        for spec, flight in followers:
            while True:
                outcome = flight.wait()
                if isinstance(outcome, JobResult):
                    report.results[spec.key] = replace(outcome, coalesced=True)
                    report.coalesced += 1
                    break
                if isinstance(outcome, JobFailure):
                    report.failures[spec.key] = outcome
                    report.coalesced += 1
                    break
                # Leader aborted: try to take over; if yet another thread
                # beat us to the claim, wait on its flight instead.
                flight = _SINGLE_FLIGHT.claim(spec.key)
                if flight is None:
                    self._claimed.add(spec.key)
                    try:
                        self._run_serial([spec], report)
                    finally:
                        self._publish(spec.key, None)
                    break

    # -- shared bookkeeping -----------------------------------------------

    def _fanout_members(self, spec: JobSpec, result: JobResult) -> None:
        """Write a gang sweep's member results under their own keys.

        A ``gang_sweep`` payload carries one entry per member
        configuration, each tagged with the ``simulation`` spec identity
        a per-run execution of that configuration would have had. Storing
        them individually keeps the per-config cache contract: a later
        per-run submission of any member is a plain cache hit, and
        store-derived views (leaderboard, ``repro cache ls``) see the
        same records a per-run sweep would have produced.
        """
        if spec.kind != "gang_sweep":
            return
        members = result.payload.get("members") or ()
        per_member_s = result.elapsed_s / max(1, len(members))
        for member in members:
            try:
                member_spec = JobSpec.from_dict(member["spec"])
                payload = member["payload"]
            except (KeyError, TypeError):
                continue
            self.store.put(member_spec, payload, elapsed_s=per_member_s)
            self._log(
                "member_cached",
                key=member_spec.key,
                name=member_spec.name,
                gang=spec.key,
            )

    def _record_success(
        self, report: SweepReport, spec: JobSpec, out: Dict[str, Any], attempt: int
    ) -> None:
        result = JobResult(
            key=spec.key,
            name=spec.name,
            payload=out["payload"],
            elapsed_s=out["elapsed_s"],
            attempts=attempt,
            cached=False,
            worker_pid=out.get("pid"),
        )
        report.results[spec.key] = result
        report.executed += 1
        deltas = out.get("telemetry")
        if deltas is not None:
            # Worker→parent pipe: fold the worker's registry deltas into
            # the parent's process-wide series and journal the flush.
            from repro.telemetry import get_registry

            try:
                get_registry().merge(deltas)
                self._log(
                    "telemetry_flush",
                    key=spec.key,
                    pid=result.worker_pid,
                    counters=len(deltas.get("counters", ())),
                    gauges=len(deltas.get("gauges", ())),
                    histograms=len(deltas.get("histograms", ())),
                )
            except ValueError as exc:
                self._log("telemetry_flush_error", key=spec.key,
                          message=str(exc))
        self._job_metric("completed", spec, result.elapsed_s)
        if self.store is not None:
            self.store.put(spec, result.payload, elapsed_s=result.elapsed_s)
            self._fanout_members(spec, result)
        # Store write precedes the publish: a woken follower (or anyone
        # racing the cache) already sees the persisted record.
        self._publish(spec.key, result)
        self._log(
            "completed",
            key=spec.key,
            name=spec.name,
            elapsed_s=result.elapsed_s,
            attempts=attempt,
            duration_s=result.elapsed_s,
            attempt=attempt,
            pid=result.worker_pid,
        )
        tracer = get_tracer()
        if tracer.enabled:
            done = time.perf_counter()
            queued = self._queued_at.get(spec.key, done - result.elapsed_s)
            # Two nested spans: full queue→done lifecycle, and the handler
            # execution reconstructed from the worker-reported elapsed time.
            tracer.complete(
                "scheduler.job", queued, done, cat="scheduler",
                job=spec.name, kind=spec.kind, attempts=attempt,
                queue_s=max(0.0, done - result.elapsed_s - queued),
            )
            tracer.complete(
                "scheduler.job.run", done - result.elapsed_s, done,
                cat="scheduler", job=spec.name, pid=result.worker_pid,
            )

    def _record_failure(
        self,
        report: SweepReport,
        spec: JobSpec,
        reason: str,
        message: str,
        attempts: int,
    ) -> None:
        failure = JobFailure(
            key=spec.key,
            name=spec.name,
            reason=reason,
            message=message,
            attempts=attempts,
        )
        report.failures[spec.key] = failure
        self._job_metric("failed", spec)
        self._publish(spec.key, failure)
        self._log(
            "failed",
            key=spec.key,
            name=spec.name,
            reason=reason,
            message=message,
            attempts=attempts,
            attempt=attempts,
        )
        get_tracer().instant(
            "scheduler.job_failed", cat="scheduler",
            job=spec.name, reason=reason, attempts=attempts,
        )

    def _backoff_delay(self, attempt: int) -> float:
        return self.backoff_s * (2 ** (attempt - 1))

    def _note_retry(
        self, spec: JobSpec, attempt: int, reason: str, delay: float
    ) -> None:
        self._log(
            "retrying",
            key=spec.key,
            name=spec.name,
            attempt=attempt,
            reason=reason,
            backoff_s=delay,
        )
        get_tracer().instant(
            "scheduler.retry", cat="scheduler",
            job=spec.name, attempt=attempt, reason=reason,
        )

    # -- serial execution -------------------------------------------------

    def _run_serial(self, pending: Sequence[JobSpec], report: SweepReport) -> None:
        for spec in pending:
            attempt = 1
            while True:
                try:
                    out = _worker_run(spec.to_dict(), attempt)
                except JobTimeoutError as exc:
                    reason, message = "timeout", str(exc)
                except Exception as exc:  # noqa: BLE001 — degrade, don't die
                    reason, message = "error", f"{type(exc).__name__}: {exc}"
                else:
                    self._record_success(report, spec, out, attempt)
                    break
                if attempt <= spec.max_retries:
                    delay = self._backoff_delay(attempt)
                    self._note_retry(spec, attempt, reason, delay)
                    time.sleep(delay)
                    attempt += 1
                    continue
                self._record_failure(report, spec, reason, message, attempt)
                break

    # -- pooled execution -------------------------------------------------

    def _mp_context(self):
        method = self.mp_start_method
        if method is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else None
        return multiprocessing.get_context(method) if method else None

    def _new_executor(self, ctx, n_jobs: int) -> ProcessPoolExecutor:
        workers = self.max_workers or min(os.cpu_count() or 2, max(n_jobs, 1))
        if self.worker_initializer is not None:
            # Under fork, warm process-level caches (shared thermal
            # operators etc.) in the parent first: every worker then
            # inherits the warmed state instead of rebuilding it.
            method = ctx.get_start_method() if ctx else multiprocessing.get_start_method()
            if method == "fork":
                self.worker_initializer()
            return ProcessPoolExecutor(
                max_workers=workers, mp_context=ctx,
                initializer=self.worker_initializer,
            )
        return ProcessPoolExecutor(max_workers=workers, mp_context=ctx)

    def _run_pool(self, pending: Sequence[JobSpec], report: SweepReport) -> None:
        ctx = self._mp_context()
        scratch = tempfile.mkdtemp(prefix="repro-jobs-")

        # (not_before, tiebreak, spec, attempt)
        waiting: List[Tuple[float, int, JobSpec, int]] = []
        tiebreak = 0

        def requeue(spec: JobSpec, attempt: int, delay: float) -> None:
            nonlocal tiebreak
            heapq.heappush(
                waiting, (time.monotonic() + delay, tiebreak, spec, attempt)
            )
            tiebreak += 1

        for spec in pending:
            requeue(spec, 1, 0.0)

        in_flight: Dict[Any, Tuple[JobSpec, int]] = {}
        executor = self._new_executor(ctx, len(pending))

        def started(spec: JobSpec, attempt: int) -> bool:
            return (Path(scratch) / f"{spec.key}.a{attempt}.started").exists()

        def handle_attempt_error(
            spec: JobSpec, attempt: int, reason: str, message: str
        ) -> bool:
            """Retry if budget remains; else record the failure. Returns
            whether a retry was queued."""
            if attempt <= spec.max_retries:
                delay = self._backoff_delay(attempt)
                self._note_retry(spec, attempt, reason, delay)
                requeue(spec, attempt + 1, delay)
                return True
            self._record_failure(report, spec, reason, message, attempt)
            return False

        def run_quarantined(spec: JobSpec, attempt: int) -> None:
            """Re-run a crash suspect alone in a one-worker pool.

            In isolation a repeat pool break is unambiguously this job's
            own crash; anything else resolves normally.
            """
            self._log(
                "quarantined", key=spec.key, name=spec.name, attempt=attempt
            )
            get_tracer().instant(
                "scheduler.quarantined", cat="scheduler",
                job=spec.name, attempt=attempt,
            )
            while True:
                qexec = ProcessPoolExecutor(max_workers=1, mp_context=ctx)
                try:
                    fut = qexec.submit(
                        _worker_run, spec.to_dict(), attempt, scratch,
                        True,
                    )
                    try:
                        out = fut.result()
                    except BrokenProcessPool:
                        reason, message = (
                            "crash",
                            f"worker process died (attempt {attempt})",
                        )
                    except JobTimeoutError as exc:
                        reason, message = "timeout", str(exc)
                    except Exception as exc:  # noqa: BLE001
                        reason, message = (
                            "error",
                            f"{type(exc).__name__}: {exc}",
                        )
                    else:
                        self._record_success(report, spec, out, attempt)
                        return
                finally:
                    qexec.shutdown(wait=False, cancel_futures=True)
                if attempt <= spec.max_retries:
                    delay = self._backoff_delay(attempt)
                    self._note_retry(spec, attempt, reason, delay)
                    time.sleep(delay)
                    attempt += 1
                    continue
                self._record_failure(report, spec, reason, message, attempt)
                return

        try:
            while waiting or in_flight:
                now = time.monotonic()
                while waiting and waiting[0][0] <= now:
                    _, _, spec, attempt = heapq.heappop(waiting)
                    fut = executor.submit(
                        _worker_run, spec.to_dict(), attempt, scratch,
                        True,
                    )
                    in_flight[fut] = (spec, attempt)

                if not in_flight:
                    # Only backed-off retries remain; sleep until the first
                    # one is due.
                    time.sleep(max(min(waiting[0][0] - now, 0.25), 0.001))
                    continue

                done, _ = futures_wait(
                    list(in_flight), timeout=_TICK_S, return_when=FIRST_COMPLETED
                )
                pool_broken = False
                quarantine: List[Tuple[JobSpec, int]] = []
                for fut in done:
                    spec, attempt = in_flight.pop(fut)
                    try:
                        out = fut.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        if started(spec, attempt):
                            quarantine.append((spec, attempt))
                        else:
                            requeue(spec, attempt, 0.0)
                    except JobTimeoutError as exc:
                        handle_attempt_error(spec, attempt, "timeout", str(exc))
                    except Exception as exc:  # noqa: BLE001
                        handle_attempt_error(
                            spec, attempt, "error",
                            f"{type(exc).__name__}: {exc}",
                        )
                    else:
                        self._record_success(report, spec, out, attempt)

                if pool_broken:
                    # Everything still in flight is doomed with the pool:
                    # sort it into crash suspects (started) and innocents
                    # (queued only), rebuild the executor, and resolve the
                    # suspects in isolation.
                    executor.shutdown(wait=False, cancel_futures=True)
                    for fut, (spec, attempt) in list(in_flight.items()):
                        if started(spec, attempt):
                            quarantine.append((spec, attempt))
                        else:
                            requeue(spec, attempt, 0.0)
                    in_flight.clear()
                    self._log("pool_rebuilt", pending=len(waiting))
                    get_tracer().instant(
                        "scheduler.pool_rebuilt", cat="scheduler",
                        pending=len(waiting),
                    )
                    executor = self._new_executor(ctx, len(waiting) or 1)
                    for spec, attempt in quarantine:
                        run_quarantined(spec, attempt)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
            shutil.rmtree(scratch, ignore_errors=True)


def run_jobs(
    specs: Sequence[JobSpec],
    store: Optional[Union[ResultStore, str, Path]] = None,
    journal: Optional[Union[JobJournal, str, Path]] = None,
    **scheduler_kwargs: Any,
) -> SweepReport:
    """One-call convenience wrapper around :class:`JobScheduler`.

    ``store``/``journal`` accept ready-made objects or bare paths.
    """
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(root=store)
    own_journal = False
    if journal is not None and not isinstance(journal, JobJournal):
        journal = JobJournal(journal)
        own_journal = True
    try:
        return JobScheduler(
            store=store, journal=journal, **scheduler_kwargs
        ).run(specs)
    finally:
        if own_journal and journal is not None:
            journal.close()
