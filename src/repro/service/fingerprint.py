"""Code fingerprinting for cache invalidation.

A cached job result is only as trustworthy as the code that produced it.
The result store stamps every record with a fingerprint of the ``repro``
package source; when any ``.py`` file changes, the fingerprint changes and
every previously cached payload silently becomes a miss. This is the same
content-hash discipline the cache keys use, applied to the code axis.

The fingerprint hashes file *contents* (not mtimes), so reinstalling or
re-checking-out identical code keeps the cache warm.
"""

from __future__ import annotations

import hashlib
import os
from functools import lru_cache
from pathlib import Path
from typing import Iterable, Optional

#: Environment override — set to any string to pin the fingerprint
#: (useful for cache-sharing across installs, or for tests that need to
#: simulate a code change without touching files).
FINGERPRINT_ENV = "REPRO_CODE_FINGERPRINT"


def _package_root() -> Path:
    """Directory of the installed ``repro`` package."""
    return Path(__file__).resolve().parent.parent


def iter_source_files(root: Path) -> Iterable[Path]:
    """All ``.py`` files under ``root``, in a deterministic order."""
    return sorted(p for p in root.rglob("*.py") if p.is_file())


def file_digest(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 16), b""):
            h.update(chunk)
    return h.hexdigest()


@lru_cache(maxsize=8)
def _fingerprint_of(root: str) -> str:
    h = hashlib.sha256()
    root_path = Path(root)
    for path in iter_source_files(root_path):
        rel = path.relative_to(root_path).as_posix()
        h.update(rel.encode("utf-8"))
        h.update(b"\0")
        h.update(file_digest(path).encode("ascii"))
        h.update(b"\n")
    return h.hexdigest()


def code_fingerprint(root: Optional[Path] = None) -> str:
    """Fingerprint of the source tree that executes jobs.

    Defaults to the ``repro`` package directory; pass ``root`` to
    fingerprint an arbitrary tree (tests use a tmp dir). The
    ``REPRO_CODE_FINGERPRINT`` environment variable overrides both.
    """
    env = os.environ.get(FINGERPRINT_ENV)
    if env:
        return env
    return _fingerprint_of(str((root or _package_root()).resolve()))


def clear_fingerprint_cache() -> None:
    """Drop memoized fingerprints (after editing files mid-process)."""
    _fingerprint_of.cache_clear()
