"""Declarative simulation jobs with content-addressed identity.

Every unit of work the job service runs — a figure experiment, a single
(workload, policy, dataset, cooling) simulation, a test fixture — is
described by an immutable :class:`JobSpec`. The spec's *identity fields*
(kind, name, params, seed) are hashed into a canonical content key, which
is the job's address in the on-disk :class:`~repro.service.store.ResultStore`
and in the :class:`~repro.service.journal.JobJournal`. Execution knobs
(timeout, retry budget) deliberately do **not** enter the key: changing
how patiently we run a job must not invalidate its cached result.

Outcomes are plain dataclasses (:class:`JobResult` / :class:`JobFailure`)
whose payloads are JSON-serializable dictionaries, so they cross process
boundaries and land in the cache without custom pickling.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

#: Bumped when job execution semantics change incompatibly; part of every
#: cache key so stale payload layouts never resurface from the store.
SPEC_VERSION = 1

JobHandler = Callable[["JobSpec"], Dict[str, Any]]


class JobTimeoutError(Exception):
    """Raised inside a worker when a job exceeds its per-job timeout."""


class UnknownJobKindError(KeyError):
    """Raised when a spec's ``kind`` cannot be resolved to a handler."""


#: Handler kinds registered at runtime (tests, plugins). Worker processes
#: inherit this registry through fork-start process pools; spawn-start
#: workers only see the built-in and ``module:function`` kinds.
_HANDLER_REGISTRY: Dict[str, JobHandler] = {}

#: Built-in kinds resolve lazily to keep import cycles out of this module.
_BUILTIN_KINDS: Dict[str, str] = {
    "experiment": "repro.service.handlers:run_experiment_job",
    "simulation": "repro.service.handlers:run_simulation_job",
    "gang_sweep": "repro.service.handlers:run_gang_sweep_job",
}


def register_handler(kind: str, handler: JobHandler) -> None:
    """Register (or replace) a job kind. Later registrations win."""
    _HANDLER_REGISTRY[kind] = handler


def unregister_handler(kind: str) -> None:
    _HANDLER_REGISTRY.pop(kind, None)


def resolve_handler(kind: str) -> JobHandler:
    """Map a spec kind to its executable handler.

    Resolution order: runtime registry, built-in kinds, then a
    ``"module:function"`` import path (the fully picklable spelling that
    works under any multiprocessing start method).
    """
    if kind in _HANDLER_REGISTRY:
        return _HANDLER_REGISTRY[kind]
    path = _BUILTIN_KINDS.get(kind, kind)
    if ":" in path:
        mod_name, _, func_name = path.partition(":")
        try:
            module = importlib.import_module(mod_name)
            return getattr(module, func_name)
        except (ImportError, AttributeError) as exc:
            raise UnknownJobKindError(
                f"cannot import handler {path!r} for job kind {kind!r}: {exc}"
            ) from exc
    raise UnknownJobKindError(
        f"unknown job kind {kind!r} (registered: "
        f"{sorted(_HANDLER_REGISTRY) + sorted(_BUILTIN_KINDS)})"
    )


def _canonical(obj: Any) -> Any:
    """Recursively normalize ``obj`` for stable JSON hashing."""
    if isinstance(obj, Mapping):
        return {str(k): _canonical(obj[k]) for k in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "to_dict"):
        return _canonical(obj.to_dict())
    raise TypeError(f"job params must be JSON-like, got {type(obj).__name__}")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class JobSpec:
    """One declarative unit of work.

    Identity = (kind, name, params, seed); execution knobs (timeout,
    retries) are carried along but excluded from :attr:`key`.
    """

    kind: str
    name: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    timeout_s: Optional[float] = None
    max_retries: int = 0
    tags: Tuple[str, ...] = ()

    def identity(self) -> Dict[str, Any]:
        """The hashed portion of the spec."""
        return {
            "version": SPEC_VERSION,
            "kind": self.kind,
            "name": self.name,
            "params": _canonical(self.params),
            "seed": self.seed,
        }

    @property
    def key(self) -> str:
        """Canonical content hash — the job's cache/journal address."""
        blob = canonical_json(self.identity()).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "params": _canonical(self.params),
            "seed": self.seed,
            "timeout_s": self.timeout_s,
            "max_retries": self.max_retries,
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "JobSpec":
        return cls(
            kind=d["kind"],
            name=d["name"],
            params=dict(d.get("params", {})),
            seed=d.get("seed", 0),
            timeout_s=d.get("timeout_s"),
            max_retries=d.get("max_retries", 0),
            tags=tuple(d.get("tags", ())),
        )


@dataclass
class JobResult:
    """A completed job: its payload plus execution provenance."""

    key: str
    name: str
    payload: Dict[str, Any]
    elapsed_s: float
    attempts: int = 1
    cached: bool = False
    #: Served by another concurrent execution of the same key (see
    #: :mod:`repro.service.singleflight`) — this submission never ran.
    coalesced: bool = False
    worker_pid: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "name": self.name,
            "payload": self.payload,
            "elapsed_s": self.elapsed_s,
            "attempts": self.attempts,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "worker_pid": self.worker_pid,
        }


@dataclass
class JobFailure:
    """A job that exhausted its retry budget.

    ``reason`` is one of ``"error"`` (handler raised), ``"timeout"``
    (per-job deadline fired), or ``"crash"`` (the worker process died).
    A failure is a *record*, not an exception: one bad job never kills
    the surrounding sweep.
    """

    key: str
    name: str
    reason: str
    message: str
    attempts: int
    elapsed_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "name": self.name,
            "reason": self.reason,
            "message": self.message,
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
        }
