"""Built-in job handlers: figure experiments and single simulations.

These are the two production job kinds the CLI and the experiment runner
submit. Handlers are plain module-level functions (picklable under any
multiprocessing start method) that take a :class:`JobSpec` and return a
JSON-serializable payload dict.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.experiments.common import RunScale
from repro.service.jobs import JobSpec


def prewarm_worker() -> None:
    """Warm process-level caches a sweep worker will need.

    Assembles the shared thermal operators (RC network + steady LU +
    control-quantum step LU, :mod:`repro.thermal.operators`) for the
    default HMC 2.0 package under every Table II cooling solution, so
    the first job on each worker skips network assembly and
    factorization entirely. Passed to
    :class:`~repro.service.scheduler.JobScheduler` as
    ``worker_initializer``; under a fork start method the scheduler runs
    it once in the parent and workers inherit the warm cache.
    """
    from repro.hmc.config import HMC_2_0
    from repro.thermal.cooling import COOLING_SOLUTIONS
    from repro.thermal.operators import prewarm

    for cooling in COOLING_SOLUTIONS.values():
        prewarm(HMC_2_0, cooling)


def experiment_spec(
    name: str,
    scale: Optional[RunScale] = None,
    quick: bool = False,
    seed: int = 0,
    timeout_s: Optional[float] = None,
    max_retries: int = 0,
) -> JobSpec:
    """Spec for one figure/table experiment (see ``repro.experiments``).

    The full :class:`RunScale` enters the params (and therefore the cache
    key), so sweeps at different datasets, scales, or seeds never collide
    in the result store.
    """
    if scale is None:
        scale = RunScale.quick(seed=seed) if quick else RunScale.full(seed=seed)
    return JobSpec(
        kind="experiment",
        name=name,
        params={"experiment": name, "scale": scale.to_dict()},
        seed=scale.seed,
        timeout_s=timeout_s,
        max_retries=max_retries,
        tags=("experiment",),
    )


def simulation_spec(
    workload: str,
    dataset: str = "ldbc",
    policy: str = "coolpim-hw",
    cooling: str = "commodity",
    seed: int = 0,
    workload_scale: float = 1.0,
    engine: str = "macro",
    trace: bool = False,
    scenario: Optional[str] = None,
    scenario_seed: int = 0,
    timeout_s: Optional[float] = None,
    max_retries: int = 0,
) -> JobSpec:
    """Spec for one (workload × policy × dataset × cooling) simulation.

    ``workload_scale`` shrinks the run length (``repro trace --quick``
    and smoke runs); it only enters the params — and therefore the cache
    key — when it differs from 1.0, so existing full-scale cache entries
    keep their keys. Likewise ``engine`` enters the params only for
    engines outside the bit-equal family (``macro`` and ``gang`` produce
    identical results by the gang-engine correctness contract, so runs
    under either share one cache entry; the stepped oracle reproduces
    the same aggregates but keys separately for A/B auditing), and
    ``trace`` — which makes the payload carry the sampled timeline so
    trace artifacts can be rendered later — only when set. A fault
    injection ``scenario`` (preset name + ``scenario_seed``, see
    :mod:`repro.scenarios`) follows the same rule: clean runs keep
    their existing keys, injected runs dedupe on the (name, seed) pair
    that fully determines the event stream.
    """
    params = {
        "workload": workload,
        "dataset": dataset,
        "policy": policy,
        "cooling": cooling,
    }
    if workload_scale != 1.0:
        params["workload_scale"] = workload_scale
    if engine not in ("macro", "gang"):
        params["engine"] = engine
    if trace:
        params["trace"] = True
    if scenario:
        params["scenario"] = scenario
        if scenario_seed != 0:
            params["scenario_seed"] = scenario_seed
    return JobSpec(
        kind="simulation",
        name=f"{workload}/{policy}@{dataset}",
        params=params,
        seed=seed,
        timeout_s=timeout_s,
        max_retries=max_retries,
        tags=("simulation",),
    )


def run_experiment_job(spec: JobSpec) -> Dict[str, Any]:
    """Execute one experiment module and return its formatted output."""
    from repro.experiments import runner

    scale = RunScale.from_dict(spec.params["scale"])
    name = spec.params["experiment"]
    text = runner.run_experiment(name, scale)
    return {"experiment": name, "scale": scale.to_dict(), "text": text}


def run_simulation_job(spec: JobSpec) -> Dict[str, Any]:
    """Execute one CoolPIM system run and return its aggregate metrics.

    Alongside the result aggregates the payload carries a structured
    metrics snapshot (``sim.*`` counters/histograms, see
    :mod:`repro.obs.metrics`); when tracing is enabled the sampled
    timeline rides along too, so ``repro trace`` can replay it through
    the event engine.
    """
    from repro.core.coolpim import CoolPimSystem
    from repro.experiments.common import apply_workload_scale
    from repro.graph.datasets import get_dataset
    from repro.obs.tracer import get_tracer
    from repro.thermal.cooling import COOLING_SOLUTIONS
    from repro.workloads.registry import get_workload

    params = spec.params
    system = CoolPimSystem(
        cooling=COOLING_SOLUTIONS[params.get("cooling", "commodity")],
        engine=params.get("engine", "macro"),
    )
    graph = get_dataset(params.get("dataset", "ldbc"))
    workload = get_workload(params["workload"], seed=spec.seed)
    apply_workload_scale(workload, params.get("workload_scale", 1.0))
    scenario = None
    if params.get("scenario"):
        from repro.scenarios import make_scenario

        scenario = make_scenario(
            params["scenario"], seed=int(params.get("scenario_seed", 0))
        )
    result = system.run(
        workload, graph, params.get("policy", "coolpim-hw"), scenario=scenario
    )
    payload = {
        "workload": params["workload"],
        "dataset": params.get("dataset", "ldbc"),
        "policy": params.get("policy", "coolpim-hw"),
        "cooling": params.get("cooling", "commodity"),
        "seed": spec.seed,
        "result": result.to_dict(
            include_timeline=get_tracer().enabled or bool(params.get("trace"))
        ),
    }
    if scenario is not None:
        payload["scenario"] = scenario.name
        payload["scenario_seed"] = scenario.seed
    if system.last_stats is not None:
        payload["metrics"] = system.last_stats.snapshot(structured=True)
    return payload


def gang_sweep_spec(
    workload: str,
    policies: list,
    dataset: str = "ldbc",
    cooling: str = "commodity",
    seed: int = 0,
    workload_scale: float = 1.0,
    trace: bool = False,
    timeout_s: Optional[float] = None,
    max_retries: int = 0,
) -> JobSpec:
    """Spec for one workload ganged across several policy configurations.

    The eligible sweep shape (see :mod:`repro.gpu.gang`): one workload ×
    dataset × scale × cooling, varying policy (including ``static-<f>``
    offload fractions), no fault scenario. One gang ships to one worker
    instead of ``len(policies)`` independent runs, so the epoch trace is
    generated once and the lanes' thermal marches fuse.

    The spec keys on the full member list; the *member* results fan out
    to the result store under their individual ``simulation`` keys (see
    ``JobScheduler``), which are the same keys a per-run macro sweep
    would have written — the gang is a throughput optimization, not a
    new cache namespace.
    """
    params = {
        "workload": workload,
        "dataset": dataset,
        "policies": list(policies),
        "cooling": cooling,
    }
    if workload_scale != 1.0:
        params["workload_scale"] = workload_scale
    if trace:
        params["trace"] = True
    return JobSpec(
        kind="gang_sweep",
        name=f"{workload}/gang[{len(policies)}]@{dataset}",
        params=params,
        seed=seed,
        timeout_s=timeout_s,
        max_retries=max_retries,
        tags=("simulation", "gang"),
    )


def run_gang_sweep_job(spec: JobSpec) -> Dict[str, Any]:
    """Execute one gang sweep; payload carries one result per member.

    Each member entry holds the member's own ``simulation`` spec (the
    cache identity a per-run execution would have) next to a payload
    bit-identical in shape *and floats* to what
    :func:`run_simulation_job` would have produced for it.
    """
    from repro.core.coolpim import CoolPimSystem
    from repro.experiments.common import apply_workload_scale
    from repro.graph.datasets import get_dataset
    from repro.obs.tracer import get_tracer
    from repro.thermal.cooling import COOLING_SOLUTIONS
    from repro.workloads.registry import get_workload

    params = spec.params
    dataset = params.get("dataset", "ldbc")
    cooling = params.get("cooling", "commodity")
    policies = list(params["policies"])
    workload_scale = params.get("workload_scale", 1.0)
    trace = bool(params.get("trace"))
    system = CoolPimSystem(
        cooling=COOLING_SOLUTIONS[cooling], engine="gang"
    )
    graph = get_dataset(dataset)
    workload = get_workload(params["workload"], seed=spec.seed)
    apply_workload_scale(workload, workload_scale)
    stats: list = []
    results = system.run_gang(workload, graph, policies, stats=stats)
    include_timeline = get_tracer().enabled or trace
    members = []
    for policy, result, member_stats in zip(policies, results, stats):
        member_spec = simulation_spec(
            workload=params["workload"],
            dataset=dataset,
            policy=policy,
            cooling=cooling,
            seed=spec.seed,
            workload_scale=workload_scale,
            engine="gang",
            trace=trace,
        )
        member_payload = {
            "workload": params["workload"],
            "dataset": dataset,
            "policy": policy,
            "cooling": cooling,
            "seed": spec.seed,
            "result": result.to_dict(include_timeline=include_timeline),
            "metrics": member_stats.snapshot(structured=True),
        }
        members.append(
            {"spec": member_spec.to_dict(), "payload": member_payload}
        )
    return {
        "workload": params["workload"],
        "dataset": dataset,
        "cooling": cooling,
        "seed": spec.seed,
        "engine": "gang",
        "policies": policies,
        "members": members,
    }
