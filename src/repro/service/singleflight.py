"""Single-flight execution groups: coalesce concurrent identical jobs.

The :class:`~repro.service.store.ResultStore` already dedupes *sequential*
submissions — the second run of a spec is a cache hit. But two identical
submissions racing *before the first result lands* (two API clients, two
``repro batch`` invocations in threads) would both execute. A
:class:`SingleFlight` group closes that window: the first claimant of a
content key becomes the **leader** and executes; everyone else becomes a
**follower**, blocks on the leader's flight, and shares its outcome
without running anything.

The protocol is deliberately crash-safe: a leader that aborts without
publishing (``KeyboardInterrupt``, a scheduler bug) publishes ``None``
from its ``finally`` block, which tells followers to re-claim the key and
execute themselves rather than hang forever.

Scope: one process. Cross-process dedupe remains the store's job (an
atomically-written record is visible the moment it lands); single-flight
covers the in-process concurrency the HTTP service and threaded batch
runs create.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional


class Flight:
    """One in-progress execution of a content key.

    Followers hold a reference (handed out by :meth:`SingleFlight.claim`)
    and block in :meth:`wait`; the leader resolves it exactly once via
    :meth:`SingleFlight.publish`.
    """

    __slots__ = ("outcome", "_done")

    def __init__(self) -> None:
        self.outcome: Optional[Any] = None
        self._done = threading.Event()

    def wait(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Block until the leader publishes; ``None`` means it aborted
        (or ``timeout`` elapsed) and the caller should claim + execute."""
        self._done.wait(timeout)
        return self.outcome

    def _resolve(self, outcome: Optional[Any]) -> None:
        self.outcome = outcome
        self._done.set()


class SingleFlight:
    """Registry of in-flight executions keyed by content key."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[str, Flight] = {}

    def claim(self, key: str) -> Optional[Flight]:
        """Try to become the leader for ``key``.

        Returns ``None`` when the caller is now the leader (it **must**
        eventually :meth:`publish`, even on failure), or the existing
        :class:`Flight` to wait on when someone else already leads.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                return flight
            self._flights[key] = Flight()
            return None

    def publish(self, key: str, outcome: Optional[Any]) -> None:
        """Resolve ``key``'s flight and wake every follower.

        ``outcome=None`` signals an aborted execution: followers retry
        via :meth:`claim` instead of consuming a result.
        """
        with self._lock:
            flight = self._flights.pop(key, None)
        if flight is not None:
            flight._resolve(outcome)

    def in_flight(self, key: str) -> bool:
        with self._lock:
            return key in self._flights

    def __len__(self) -> int:
        with self._lock:
            return len(self._flights)
