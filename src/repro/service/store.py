"""On-disk content-addressed result cache.

Layout (all JSON, human-inspectable)::

    <root>/
      objects/<key[:2]>/<key>.json   one record per completed job

Each record carries the full spec, the code fingerprint that produced it,
the payload, and timing provenance. Lookup is by the spec's content key;
a record whose fingerprint no longer matches the current code is treated
as a miss (and counted as *stale*), which is how a code change invalidates
the whole cache without a sweep ever reading a wrong result.

Writes are atomic (tmp file + ``os.replace``) so a killed sweep never
leaves a truncated record — that is what makes sweeps resumable: the next
invocation simply gets cache hits for everything that finished.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.service.fingerprint import code_fingerprint
from repro.service.jobs import JobSpec

#: Environment override for the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``results/cache`` under the cwd."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.cwd() / "results" / "cache"


@dataclass
class CachedResult:
    """A cache hit: the stored payload plus its provenance."""

    key: str
    payload: Dict[str, Any]
    fingerprint: str
    created_unix: float
    elapsed_s: float
    spec: Dict[str, Any]


@dataclass
class StoreStats:
    entries: int
    stale_entries: int
    total_bytes: int


class ResultStore:
    """Content-addressed JSON store for completed job payloads."""

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        fingerprint: Optional[str] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.fingerprint = fingerprint or code_fingerprint()

    # -- paths ------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def path_for(self, key: str) -> Path:
        return self.objects_dir / key[:2] / f"{key}.json"

    @staticmethod
    def _key_of(spec_or_key: Union[JobSpec, str]) -> str:
        return spec_or_key.key if isinstance(spec_or_key, JobSpec) else spec_or_key

    # -- read path --------------------------------------------------------

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as f:
                return json.load(f)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # A corrupt record is worthless; drop it so it re-runs.
            path.unlink(missing_ok=True)
            return None

    def get(
        self, spec_or_key: Union[JobSpec, str], check_fingerprint: bool = True
    ) -> Optional[CachedResult]:
        """The cached result for a spec, or ``None`` on miss/stale."""
        key = self._key_of(spec_or_key)
        record = self._load(key)
        if record is None:
            return None
        if check_fingerprint and record.get("fingerprint") != self.fingerprint:
            return None
        return CachedResult(
            key=key,
            payload=record.get("payload", {}),
            fingerprint=record.get("fingerprint", ""),
            created_unix=record.get("created_unix", 0.0),
            elapsed_s=record.get("elapsed_s", 0.0),
            spec=record.get("spec", {}),
        )

    def contains(
        self, spec_or_key: Union[JobSpec, str], check_fingerprint: bool = True
    ) -> bool:
        return self.get(spec_or_key, check_fingerprint=check_fingerprint) is not None

    # -- write path -------------------------------------------------------

    def put(
        self,
        spec: JobSpec,
        payload: Dict[str, Any],
        elapsed_s: float = 0.0,
    ) -> Path:
        """Atomically persist a completed job's payload."""
        key = spec.key
        record = {
            "key": key,
            "spec": spec.to_dict(),
            "fingerprint": self.fingerprint,
            "created_unix": time.time(),
            "elapsed_s": elapsed_s,
            "payload": payload,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(record, f, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # -- maintenance ------------------------------------------------------

    def invalidate(self, spec_or_key: Union[JobSpec, str]) -> bool:
        """Drop one record. Returns whether anything was deleted."""
        path = self.path_for(self._key_of(spec_or_key))
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> int:
        """Drop every record. Returns the number deleted."""
        count = 0
        for path in self._record_paths():
            path.unlink(missing_ok=True)
            count += 1
        return count

    def prune_stale(self) -> int:
        """Drop records written by a different code fingerprint."""
        count = 0
        for path in self._record_paths():
            try:
                with open(path, "r", encoding="utf-8") as f:
                    record = json.load(f)
            except (json.JSONDecodeError, OSError):
                record = {}
            if record.get("fingerprint") != self.fingerprint:
                path.unlink(missing_ok=True)
                count += 1
        return count

    def _record_paths(self) -> Iterator[Path]:
        if not self.objects_dir.is_dir():
            return iter(())
        return self.objects_dir.glob("*/*.json")

    def entries(self) -> Iterator[Dict[str, Any]]:
        """Every readable record (fresh and stale alike)."""
        for path in self._record_paths():
            record = self._load(path.stem)
            if record is not None:
                yield record

    def stats(self) -> StoreStats:
        entries = stale = total = 0
        for path in self._record_paths():
            try:
                total += path.stat().st_size
                with open(path, "r", encoding="utf-8") as f:
                    record = json.load(f)
            except (json.JSONDecodeError, OSError):
                continue
            entries += 1
            if record.get("fingerprint") != self.fingerprint:
                stale += 1
        return StoreStats(entries=entries, stale_entries=stale, total_bytes=total)


def store_stats_payload(
    store: ResultStore, journal_path: Optional[Union[str, Path]] = None
) -> Dict[str, Any]:
    """Machine-readable cache/journal stats.

    One JSON-ready dict shared by ``repro cache --json`` and the HTTP
    service's ``GET /admin/cache`` endpoint, so scripts and dashboards
    read the same shape from both.
    """
    from repro.service.journal import JobJournal

    stats = store.stats()
    payload: Dict[str, Any] = {
        "cache_dir": str(store.root),
        "fingerprint": store.fingerprint,
        "entries": stats.entries,
        "stale_entries": stats.stale_entries,
        "total_bytes": stats.total_bytes,
    }
    if journal_path is None:
        journal_path = store.root / "journal.jsonl"
    counts = JobJournal.summary(journal_path)
    payload["journal"] = {
        "path": str(journal_path),
        "events": dict(sorted(counts.items())),
    }
    return payload
