"""Append-only JSONL journal — the job service's observability layer.

Every lifecycle transition (submitted, cache hit, completed, retrying,
failed, sweep start/end) is one JSON line with a wall-clock timestamp.
The journal is append-only across invocations, so it doubles as the audit
trail for resumability: after a killed sweep, the second run's
``cache_hit`` entries prove which jobs were served from the store.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import Counter
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union


class JobJournal:
    """Line-buffered JSONL event log.

    Usable as a context manager; safe to leave open for the lifetime of a
    scheduler (each event is flushed to disk immediately, so a killed
    sweep keeps every event up to the kill). Appends are serialized with
    a lock, so one journal may be shared by the HTTP service loop and its
    executor threads.

    With ``max_bytes`` set, the journal is size-bounded: when an append
    would push the current file past the limit, the file rotates to
    ``<name>.1`` (shifting ``.1 → .2`` … up to ``keep`` generations, the
    oldest dropped) and a fresh file starts. Readers see the current
    generation by default; :meth:`iter_events` with
    ``include_rotated=True`` walks oldest → newest.
    """

    def __init__(
        self,
        path: Union[str, Path],
        max_bytes: Optional[int] = None,
        keep: int = 3,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.keep = keep
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, event: str, **fields: Any) -> Dict[str, Any]:
        record: Dict[str, Any] = {"ts": time.time(), "event": event}
        record.update(fields)
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            if (
                self.max_bytes is not None
                and self._fh.tell() > 0
                and self._fh.tell() + len(line) > self.max_bytes
            ):
                self._rotate_locked()
            self._fh.write(line)
            self._fh.flush()
            os.fsync(self._fh.fileno())
        return record

    def _rotate_locked(self) -> None:
        """Shift generations and reopen a fresh current file."""
        self._fh.close()
        self.rotated_path(self.keep).unlink(missing_ok=True)
        for i in range(self.keep - 1, 0, -1):
            src = self.rotated_path(i)
            if src.exists():
                os.replace(src, self.rotated_path(i + 1))
        if self.path.exists():
            os.replace(self.path, self.rotated_path(1))
        self._fh = open(self.path, "a", encoding="utf-8")

    def rotated_path(self, generation: int) -> Path:
        """Path of the ``generation``-th rotated file (1 = newest)."""
        return self.path.with_name(f"{self.path.name}.{generation}")

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading ----------------------------------------------------------

    @staticmethod
    def read(
        path: Union[str, Path], include_rotated: bool = False
    ) -> List[Dict[str, Any]]:
        """All parseable events in ``path`` (missing file → empty list)."""
        return list(JobJournal.iter_events(path, include_rotated=include_rotated))

    @staticmethod
    def iter_events(
        path: Union[str, Path], include_rotated: bool = False
    ) -> Iterator[Dict[str, Any]]:
        path = Path(path)
        files: List[Path] = []
        if include_rotated:
            # Rotated generations, oldest first (.N ... .1), then current.
            rotated = sorted(
                (
                    p
                    for p in path.parent.glob(f"{path.name}.*")
                    if p.suffix.lstrip(".").isdigit()
                ),
                key=lambda p: int(p.suffix.lstrip(".")),
                reverse=True,
            )
            files.extend(rotated)
        files.append(path)
        for file in files:
            try:
                fh = open(file, "r", encoding="utf-8")
            except FileNotFoundError:
                continue
            with fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        yield json.loads(line)
                    except json.JSONDecodeError:
                        continue  # a torn final line from a killed process

    @staticmethod
    def summary(
        path: Union[str, Path], since_ts: Optional[float] = None
    ) -> Counter:
        """Event-type counts, optionally restricted to ``ts >= since_ts``."""
        counts: Counter = Counter()
        for record in JobJournal.iter_events(path):
            if since_ts is not None and record.get("ts", 0.0) < since_ts:
                continue
            counts[record.get("event", "?")] += 1
        return counts

    @staticmethod
    def time_report(path: Union[str, Path]) -> Dict[str, Dict[str, Any]]:
        """Where the sweep's time went, per job name.

        Aggregates ``completed``/``failed`` events into
        ``{name: {"duration_s": total, "attempts": n, "runs": k}}``.
        Journals written before the ``duration_s``/``attempt`` fields
        existed are handled via the legacy ``elapsed_s``/``attempts``
        keys, so old journals still load.
        """
        report: Dict[str, Dict[str, Any]] = {}
        for record in JobJournal.iter_events(path):
            event = record.get("event")
            if event not in ("completed", "failed"):
                continue
            name = record.get("name", "?")
            row = report.setdefault(
                name, {"duration_s": 0.0, "attempts": 0, "runs": 0, "failed": 0}
            )
            duration = record.get("duration_s", record.get("elapsed_s", 0.0))
            row["duration_s"] += float(duration or 0.0)
            row["attempts"] += int(
                record.get("attempt", record.get("attempts", 1)) or 1
            )
            row["runs"] += 1
            if event == "failed":
                row["failed"] += 1
        return report
