"""Append-only JSONL journal — the job service's observability layer.

Every lifecycle transition (submitted, cache hit, completed, retrying,
failed, sweep start/end) is one JSON line with a wall-clock timestamp.
The journal is append-only across invocations, so it doubles as the audit
trail for resumability: after a killed sweep, the second run's
``cache_hit`` entries prove which jobs were served from the store.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union


class JobJournal:
    """Line-buffered JSONL event log.

    Usable as a context manager; safe to leave open for the lifetime of a
    scheduler (each event is flushed to disk immediately, so a killed
    sweep keeps every event up to the kill).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, event: str, **fields: Any) -> Dict[str, Any]:
        record: Dict[str, Any] = {"ts": time.time(), "event": event}
        record.update(fields)
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        return record

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading ----------------------------------------------------------

    @staticmethod
    def read(path: Union[str, Path]) -> List[Dict[str, Any]]:
        """All parseable events in ``path`` (missing file → empty list)."""
        return list(JobJournal.iter_events(path))

    @staticmethod
    def iter_events(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
        try:
            fh = open(path, "r", encoding="utf-8")
        except FileNotFoundError:
            return
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    continue  # a torn final line from a killed process

    @staticmethod
    def summary(
        path: Union[str, Path], since_ts: Optional[float] = None
    ) -> Counter:
        """Event-type counts, optionally restricted to ``ts >= since_ts``."""
        counts: Counter = Counter()
        for record in JobJournal.iter_events(path):
            if since_ts is not None and record.get("ts", 0.0) < since_ts:
                continue
            counts[record.get("event", "?")] += 1
        return counts

    @staticmethod
    def time_report(path: Union[str, Path]) -> Dict[str, Dict[str, Any]]:
        """Where the sweep's time went, per job name.

        Aggregates ``completed``/``failed`` events into
        ``{name: {"duration_s": total, "attempts": n, "runs": k}}``.
        Journals written before the ``duration_s``/``attempt`` fields
        existed are handled via the legacy ``elapsed_s``/``attempts``
        keys, so old journals still load.
        """
        report: Dict[str, Dict[str, Any]] = {}
        for record in JobJournal.iter_events(path):
            event = record.get("event")
            if event not in ("completed", "failed"):
                continue
            name = record.get("name", "?")
            row = report.setdefault(
                name, {"duration_s": 0.0, "attempts": 0, "runs": 0, "failed": 0}
            )
            duration = record.get("duration_s", record.get("elapsed_s", 0.0))
            row["duration_s"] += float(duration or 0.0)
            row["attempts"] += int(
                record.get("attempt", record.get("attempts", 1)) or 1
            )
            row["runs"] += 1
            if event == "failed":
                row["failed"] += 1
        return report
