"""Parallel simulation job service.

Turns every simulation and figure experiment into a declarative,
content-addressed job:

- :mod:`repro.service.jobs` — :class:`JobSpec` (identity + content hash),
  :class:`JobResult` / :class:`JobFailure` outcome records, job-kind
  handler registry.
- :mod:`repro.service.scheduler` — :class:`JobScheduler`: process-pool
  execution with per-job timeouts, retry-with-backoff, and crash-tolerant
  pool rebuilds.
- :mod:`repro.service.store` — :class:`ResultStore`: on-disk JSON cache
  keyed by content hash, invalidated by code fingerprint.
- :mod:`repro.service.journal` — :class:`JobJournal`: append-only JSONL
  lifecycle log (the observability/resume audit trail).
- :mod:`repro.service.fingerprint` — source-tree hashing for cache
  invalidation.
- :mod:`repro.service.handlers` — the built-in ``experiment`` and
  ``simulation`` job kinds.

Quickstart::

    from repro.service import JobScheduler, ResultStore, experiment_spec

    specs = [experiment_spec(n, quick=True) for n in ("fig5", "fig10")]
    report = JobScheduler(store=ResultStore()).run(specs)
    print(report.summary_line())
"""

from repro.service.fingerprint import code_fingerprint
from repro.service.handlers import (
    experiment_spec,
    gang_sweep_spec,
    prewarm_worker,
    run_experiment_job,
    run_gang_sweep_job,
    run_simulation_job,
    simulation_spec,
)
from repro.service.jobs import (
    SPEC_VERSION,
    JobFailure,
    JobResult,
    JobSpec,
    JobTimeoutError,
    UnknownJobKindError,
    register_handler,
    resolve_handler,
    unregister_handler,
)
from repro.service.journal import JobJournal
from repro.service.scheduler import JobScheduler, SweepReport, run_jobs
from repro.service.singleflight import Flight, SingleFlight
from repro.service.store import (
    CachedResult,
    ResultStore,
    StoreStats,
    default_cache_dir,
    store_stats_payload,
)

__all__ = [
    "SPEC_VERSION",
    "CachedResult",
    "Flight",
    "JobFailure",
    "JobJournal",
    "JobResult",
    "JobScheduler",
    "JobSpec",
    "JobTimeoutError",
    "ResultStore",
    "SingleFlight",
    "StoreStats",
    "SweepReport",
    "UnknownJobKindError",
    "code_fingerprint",
    "default_cache_dir",
    "experiment_spec",
    "gang_sweep_spec",
    "prewarm_worker",
    "register_handler",
    "resolve_handler",
    "run_experiment_job",
    "run_gang_sweep_job",
    "run_jobs",
    "run_simulation_job",
    "simulation_spec",
    "store_stats_payload",
    "unregister_handler",
]
