"""Run manifests: provenance written next to every experiment output.

A manifest answers "what exactly produced this file?": the code
fingerprint (reusing :func:`repro.service.fingerprint.code_fingerprint`,
so a manifest matches the job-cache invalidation key), package version,
seed and config, wall/sim durations, and host info. Schema is versioned
(:data:`MANIFEST_SCHEMA_ID`) so later readers can evolve.

Imports from the rest of ``repro`` happen lazily inside
:meth:`RunManifest.collect` — this module stays stdlib-only at import
time (``repro.obs`` is imported by low-level sim modules).
"""

from __future__ import annotations

import dataclasses
import json
import platform
import socket
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

MANIFEST_SCHEMA_ID = "repro.manifest/1"


@dataclass
class RunManifest:
    """Provenance record for one run (experiment, trace, or sweep)."""

    command: str
    config: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    code_fingerprint: str = ""
    package_version: str = ""
    wall_duration_s: Optional[float] = None
    sim_duration_s: Optional[float] = None
    created_unix: float = 0.0
    host: Dict[str, Any] = field(default_factory=dict)
    outputs: List[str] = field(default_factory=list)
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        command: str,
        config: Optional[Dict[str, Any]] = None,
        seed: Optional[int] = None,
        wall_duration_s: Optional[float] = None,
        sim_duration_s: Optional[float] = None,
        outputs: Optional[List[Union[str, Path]]] = None,
        **extra: Any,
    ) -> "RunManifest":
        """Build a manifest, filling fingerprint/version/host automatically."""
        import repro
        from repro.service.fingerprint import code_fingerprint

        return cls(
            command=command,
            config=dict(config or {}),
            seed=seed,
            code_fingerprint=code_fingerprint(),
            package_version=getattr(repro, "__version__", "unknown"),
            wall_duration_s=wall_duration_s,
            sim_duration_s=sim_duration_s,
            created_unix=time.time(),
            host={
                "hostname": socket.gethostname(),
                "platform": platform.platform(),
                "python": sys.version.split()[0],
            },
            outputs=[str(o) for o in (outputs or [])],
            extra=dict(extra),
        )

    def to_dict(self) -> Dict[str, Any]:
        doc = {"schema": MANIFEST_SCHEMA_ID}
        doc.update(dataclasses.asdict(self))
        return doc

    def write(self, path: Union[str, Path]) -> Path:
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True), encoding="utf-8"
        )
        return p

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
        if doc.get("schema") != MANIFEST_SCHEMA_ID:
            raise ValueError(
                f"{path}: not a manifest (schema={doc.get('schema')!r})"
            )
        doc.pop("schema")
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in known})


def format_report(manifest: RunManifest) -> str:
    """Human-readable one-screen summary of a manifest."""
    lines = [
        f"run manifest ({MANIFEST_SCHEMA_ID})",
        f"  command:     {manifest.command}",
        f"  created:     {time.strftime('%Y-%m-%d %H:%M:%S', time.gmtime(manifest.created_unix))} UTC",
        f"  version:     {manifest.package_version}",
        f"  fingerprint: {manifest.code_fingerprint[:16]}…"
        if manifest.code_fingerprint
        else "  fingerprint: -",
        f"  seed:        {manifest.seed if manifest.seed is not None else '-'}",
    ]
    if manifest.wall_duration_s is not None:
        lines.append(f"  wall time:   {manifest.wall_duration_s:.3f} s")
    if manifest.sim_duration_s is not None:
        lines.append(f"  sim time:    {manifest.sim_duration_s:.6f} s")
    host = manifest.host or {}
    if host:
        lines.append(
            f"  host:        {host.get('hostname', '?')} "
            f"({host.get('platform', '?')}, python {host.get('python', '?')})"
        )
    if manifest.config:
        lines.append("  config:")
        for key in sorted(manifest.config):
            lines.append(f"    {key}: {manifest.config[key]}")
    if manifest.outputs:
        lines.append("  outputs:")
        for out in manifest.outputs:
            lines.append(f"    {out}")
    for key in sorted(manifest.extra):
        lines.append(f"  {key}: {manifest.extra[key]}")
    return "\n".join(lines) + "\n"
