"""Metrics export: stable JSON schema + diffable text reports.

The exporter is deliberately decoupled from :mod:`repro.sim.stats`: it
consumes the *structured snapshot* dictionaries that
``StatRegistry.snapshot(structured=True)`` produces (each stat rendered
as ``{"type": ..., ...scalar fields...}``), so this module stays
stdlib-only and importable from anywhere without circular-import risk.

Document schema (``schema`` = :data:`METRICS_SCHEMA_ID`)::

    {
      "schema": "repro.metrics/1",
      "meta":   {...free-form provenance...},
      "stats":  {"<name>": {"type": "counter", "value": 12}, ...}
    }

The text report renders one line per scalar in sorted order with fixed
number formatting, so two reports diff cleanly with plain ``diff``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

METRICS_SCHEMA_ID = "repro.metrics/1"


def export_metrics(
    stats: Dict[str, Dict[str, Any]],
    path: Optional[Union[str, Path]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Wrap a structured stat snapshot in the versioned document."""
    doc: Dict[str, Any] = {
        "schema": METRICS_SCHEMA_ID,
        "meta": dict(meta or {}),
        "stats": {name: dict(stat) for name, stat in sorted(stats.items())},
    }
    if path is not None:
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(json.dumps(doc, indent=2, sort_keys=True), encoding="utf-8")
    return doc


def load_metrics(path: Union[str, Path]) -> Dict[str, Any]:
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("schema") != METRICS_SCHEMA_ID:
        raise ValueError(
            f"{path}: not a metrics document "
            f"(schema={doc.get('schema')!r}, want {METRICS_SCHEMA_ID!r})"
        )
    return doc


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.6g}"
    return str(value)


def flatten_stats(stats: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """``{name: {field: value}}`` → ``{"name.field": value}`` scalars."""
    flat: Dict[str, Any] = {}
    for name in sorted(stats):
        stat = stats[name]
        for field in sorted(stat):
            if field == "type":
                continue
            flat[f"{name}.{field}"] = stat[field]
    return flat


def render_report(doc: Dict[str, Any]) -> str:
    """Deterministic, line-per-scalar text rendering of a metrics doc.

    Degenerate histograms (zero observations) render ``count 0`` and
    null quantiles as ``-`` — a report never raises on an empty series.
    """
    lines: List[str] = [f"# metrics ({doc.get('schema', '?')})"]
    meta = doc.get("meta") or {}
    for key in sorted(meta):
        lines.append(f"# {key}: {_fmt(meta[key])}")
    flat = flatten_stats(doc.get("stats") or {})
    width = max((len(k) for k in flat), default=0)
    for key in sorted(flat):
        lines.append(f"{key.ljust(width)}  {_fmt(flat[key])}")
    return "\n".join(lines) + "\n"


def diff_metrics(a: Dict[str, Any], b: Dict[str, Any]) -> str:
    """Line-oriented diff of two metrics docs (``a`` → ``b``).

    Reports added/removed scalars and value changes; empty string means
    the stat contents are identical (meta is ignored).
    """
    fa = flatten_stats(a.get("stats") or {})
    fb = flatten_stats(b.get("stats") or {})
    lines: List[str] = []
    for key in sorted(set(fa) | set(fb)):
        if key not in fb:
            lines.append(f"- {key}  {_fmt(fa[key])}")
        elif key not in fa:
            lines.append(f"+ {key}  {_fmt(fb[key])}")
        elif fa[key] != fb[key]:
            lines.append(f"~ {key}  {_fmt(fa[key])} -> {_fmt(fb[key])}")
    return "\n".join(lines) + ("\n" if lines else "")
