"""Replay a simulation timeline through the discrete-event engine.

The production cube/flow simulators advance time with closed-form
arithmetic rather than the :class:`repro.sim.engine.EventEngine`, so a
traced run would otherwise contain no engine-layer spans. ``repro
trace`` closes that gap: after the simulation finishes, its sampled
timeline (``SimulationResult.timeline`` — ``(time_s, temp_c, pim_rate,
pim_fraction)`` tuples) is replayed as real scheduled events through an
``EventEngine`` with tracing live. This exercises the instrumented
``engine.run`` loop (producing the ``engine`` span + queue-depth
counters on the wall clock) and emits the temperature / PIM-rate /
offload-fraction tracks on the **sim clock** lane, timestamped in
simulated microseconds.

The engine import is deferred to call time: ``repro.obs`` is imported by
``repro.sim.engine`` itself, so a module-level import would be circular.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.obs.tracer import Tracer, get_tracer

TimelineRow = Tuple[float, float, float, float]


def replay_timeline(
    timeline: Sequence[TimelineRow],
    tracer: Optional[Tracer] = None,
) -> Dict[str, float]:
    """Schedule each timeline sample as an engine event and run it.

    Returns ``{"events": n, "sim_span_s": t}``. With tracing enabled,
    the run leaves behind one ``engine.run`` span plus per-sample
    sim-clock counter tracks (``sim.temp_c``, ``sim.pim_rate``,
    ``sim.pim_fraction``).
    """
    from repro.sim.engine import EventEngine

    # Explicit None check: Tracer defines __len__, so an empty tracer is
    # falsy and ``tracer or get_tracer()`` would silently drop it.
    tr = tracer if tracer is not None else get_tracer()
    engine = EventEngine()
    if tracer is not None:
        engine.set_tracer(tracer)

    def emit(row: TimelineRow) -> None:
        time_s, temp_c, pim_rate, fraction = row
        sim_ns = time_s * 1e9
        tr.counter("sim.temp_c", temp_c, cat="sim", sim_time_ns=sim_ns, clock="sim")
        tr.counter(
            "sim.pim_rate_ops_ns", pim_rate, cat="sim", sim_time_ns=sim_ns, clock="sim"
        )
        tr.counter(
            "sim.pim_fraction", fraction, cat="sim", sim_time_ns=sim_ns, clock="sim"
        )

    last_ns = 0.0
    for row in timeline:
        t_ns = max(0.0, row[0] * 1e9)
        last_ns = max(last_ns, t_ns)
        engine.schedule(t_ns, lambda r=row: emit(r))
    processed = engine.run(until=last_ns)
    return {"events": float(processed), "sim_span_s": last_ns / 1e9}
