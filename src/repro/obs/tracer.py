"""Low-overhead span tracer with wall/sim dual clocks.

The tracer records three event kinds — **spans** (a named duration),
**instants** (a point event), and **counter samples** (a named value over
time) — into an in-memory buffer and, optionally, a streaming JSONL sink.
Records use Chrome-trace-event vocabulary (``ph`` = ``"X"``/``"i"``/``"C"``,
timestamps in microseconds) so :mod:`repro.obs.chrome` can export them to a
``chrome://tracing`` / Perfetto-loadable file almost verbatim.

Design constraints, in order:

1. **Disabled must cost ~nothing.** The global tracer defaults to
   disabled; every emit method begins with a single ``self.enabled``
   check, and :meth:`Tracer.span` returns a shared no-op context-manager
   singleton, so instrumented hot paths pay one attribute test.
   ``benchmarks/test_obs_bench.py`` pins the overhead on the
   :class:`~repro.sim.engine.EventEngine` loop below 5 %.
2. **Dual clocks.** Every record carries a wall timestamp on the
   process-monotonic clock (``time.perf_counter`` relative to the tracer
   epoch). Callers inside a simulation additionally pass
   ``sim_time_ns``; records emitted with ``clock="sim"`` are *timed on
   the simulated clock* and are grouped by the Chrome exporter into a
   dedicated virtual process lane, giving Perfetto a sim-time axis for
   temperature / PIM-rate / token-pool tracks.
3. **Thread/process safety.** Buffer and sink writes are serialized by a
   lock; each record carries ``pid``/``tid``. A fork is detected by pid
   change: the child drops the inherited buffer and re-opens the JSONL
   sink in append mode (whole-line ``O_APPEND`` writes interleave safely),
   so worker-process records survive in the sink even though the parent's
   in-memory buffer never sees them.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union


class _NullSpan:
    """Shared no-op span returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **args: Any) -> None:
        """Ignore late-bound span arguments."""


NULL_SPAN = _NullSpan()


class Span:
    """Context manager measuring one wall-clock duration.

    Extra ``args`` ride into the record; :meth:`set` attaches results
    discovered mid-span (e.g. iteration counts).
    """

    __slots__ = ("_tracer", "name", "cat", "args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._t0 = 0.0

    def set(self, **args: Any) -> None:
        self.args.update(args)

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        self._tracer.complete_raw(
            self.name, self._t0, time.perf_counter(), self.cat, self.args
        )
        return False


class Tracer:
    """Span/instant/counter recorder with an optional JSONL sink.

    Parameters
    ----------
    enabled:
        Master switch. A disabled tracer's emit methods return
        immediately (and :meth:`span` returns a shared no-op singleton).
    sink:
        Optional path; every record is also appended as one JSON line,
        flushed immediately (kill-safe, fork-safe).
    """

    def __init__(
        self, enabled: bool = False, sink: Optional[Union[str, Path]] = None
    ) -> None:
        self.enabled = enabled
        self._records: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._pid = os.getpid()
        self._sink_path = Path(sink) if sink is not None else None
        self._sink = None

    # -- record plumbing ---------------------------------------------------

    @property
    def epoch(self) -> float:
        """``time.perf_counter`` origin of this tracer's wall timestamps."""
        return self._epoch

    def _ts_us(self, t_perf: float) -> float:
        return (t_perf - self._epoch) * 1e6

    def _emit(self, rec: Dict[str, Any]) -> None:
        with self._lock:
            pid = os.getpid()
            if pid != self._pid:
                # Forked child: the inherited buffer belongs to the
                # parent's story; keep only our own records and re-open
                # the sink so appends target a private file handle.
                self._pid = pid
                self._records = []
                self._sink = None
            rec["pid"] = pid
            self._records.append(rec)
            if self._sink_path is not None:
                if self._sink is None:
                    self._sink_path.parent.mkdir(parents=True, exist_ok=True)
                    self._sink = open(self._sink_path, "a", encoding="utf-8")
                self._sink.write(json.dumps(rec, separators=(",", ":")) + "\n")
                self._sink.flush()

    def _base(
        self,
        ph: str,
        name: str,
        cat: str,
        ts_us: float,
        sim_time_ns: Optional[float],
        clock: str,
    ) -> Dict[str, Any]:
        rec: Dict[str, Any] = {
            "ph": ph,
            "name": name,
            "cat": cat or "repro",
            "ts": ts_us,
            "tid": threading.get_ident(),
        }
        if clock != "wall":
            rec["clock"] = clock
        if sim_time_ns is not None:
            rec["sim_ns"] = float(sim_time_ns)
        return rec

    # -- emit API ----------------------------------------------------------

    def span(
        self,
        name: str,
        cat: str = "",
        sim_time_ns: Optional[float] = None,
        **args: Any,
    ) -> Union[Span, _NullSpan]:
        """Context manager recording a complete ("X") event on exit."""
        if not self.enabled:
            return NULL_SPAN
        if sim_time_ns is not None:
            args["sim_ns"] = float(sim_time_ns)
        return Span(self, name, cat, args)

    def complete_raw(
        self,
        name: str,
        start_perf: float,
        end_perf: float,
        cat: str = "",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a span from explicit ``time.perf_counter`` stamps.

        This is how callers that already know both endpoints (the job
        scheduler's queue→done spans, the engine's run loop) record
        without a context manager.
        """
        if not self.enabled:
            return
        sim_ns = (args or {}).pop("sim_ns", None) if args else None
        rec = self._base("X", name, cat, self._ts_us(start_perf), sim_ns, "wall")
        rec["dur"] = max(0.0, (end_perf - start_perf) * 1e6)
        if args:
            rec["args"] = args
        self._emit(rec)

    def complete(
        self,
        name: str,
        start_perf: float,
        end_perf: float,
        cat: str = "",
        sim_time_ns: Optional[float] = None,
        **args: Any,
    ) -> None:
        """Keyword-args convenience wrapper over :meth:`complete_raw`."""
        if not self.enabled:
            return
        if sim_time_ns is not None:
            args["sim_ns"] = float(sim_time_ns)
        self.complete_raw(name, start_perf, end_perf, cat, args)

    def instant(
        self,
        name: str,
        cat: str = "",
        sim_time_ns: Optional[float] = None,
        clock: str = "wall",
        **args: Any,
    ) -> None:
        """Record a point event ("i")."""
        if not self.enabled:
            return
        if clock == "sim" and sim_time_ns is not None:
            ts = sim_time_ns / 1e3  # sim-ns → sim-µs axis
        else:
            ts = self._ts_us(time.perf_counter())
        rec = self._base("i", name, cat, ts, sim_time_ns, clock)
        rec["s"] = "t"  # thread-scoped instant
        if args:
            rec["args"] = args
        self._emit(rec)

    def counter(
        self,
        name: str,
        value: float,
        cat: str = "",
        sim_time_ns: Optional[float] = None,
        clock: str = "wall",
    ) -> None:
        """Record one sample of a counter track ("C")."""
        if not self.enabled:
            return
        if clock == "sim" and sim_time_ns is not None:
            ts = sim_time_ns / 1e3
        else:
            ts = self._ts_us(time.perf_counter())
        rec = self._base("C", name, cat, ts, sim_time_ns, clock)
        rec["args"] = {"value": float(value)}
        self._emit(rec)

    # -- buffer access -----------------------------------------------------

    @property
    def records(self) -> List[Dict[str, Any]]:
        """Snapshot copy of the in-memory record buffer."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records = []

    def flush(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.flush()

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def traced(
    name: Optional[str] = None, cat: str = ""
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator: wrap a function call in a span on the *global* tracer.

    Resolves the tracer at call time (not decoration time), so enabling
    tracing later still captures decorated functions. Disabled tracing
    costs one global read + one bool test per call.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            tr = _TRACER
            if not tr.enabled:
                return fn(*args, **kwargs)
            with tr.span(label, cat=cat):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


#: Process-global tracer. Disabled by default; the ``repro trace`` CLI and
#: :func:`tracing` swap in an enabled instance.
_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer (disabled unless explicitly enabled)."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the global tracer; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


@contextmanager
def tracing(
    sink: Optional[Union[str, Path]] = None,
) -> Iterator[Tracer]:
    """Enable tracing for a ``with`` block; restores the old tracer after.

    >>> from repro.obs.tracer import tracing
    >>> with tracing() as tr:
    ...     with tr.span("work", cat="demo"):
    ...         pass
    >>> any(r["name"] == "work" for r in tr.records)
    True
    """
    tracer = Tracer(enabled=True, sink=sink)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        tracer.close()
