"""Chrome trace-event export and validation.

Converts :class:`repro.obs.tracer.Tracer` records into the JSON object
format understood by ``chrome://tracing`` and Perfetto
(https://ui.perfetto.dev — *Open trace file*):

``{"traceEvents": [...], "displayTimeUnit": "ms", ...}``

Wall-clock records keep their real ``pid``/``tid``. Records stamped on
the **simulated clock** (``clock == "sim"``) are rehomed into a virtual
process lane (:data:`SIM_PID`) whose timestamps are sim-microseconds, so
Perfetto renders a second timeline where 1 "µs" of track time equals 1 µs
of simulated time — temperature, token-pool, and queue-depth tracks line
up against simulated seconds instead of host wall time.

Validation is a hand-rolled structural check against
:data:`CHROME_TRACE_SCHEMA` (a JSON-Schema-shaped document kept for
reference/docs); the repo deliberately takes no ``jsonschema`` dependency.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

#: Virtual pid hosting all sim-clock tracks in the exported trace.
SIM_PID = 999_999
#: Single virtual tid within the sim-clock process.
SIM_TID = 1

#: Phases the exporter can produce: complete, instant, counter, metadata.
VALID_PHASES = ("X", "i", "C", "M")

#: Reference schema for the exported document (JSON-Schema draft-7 shape).
#: :func:`validate_chrome_trace` implements exactly these constraints.
CHROME_TRACE_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro Chrome trace-event document",
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["ph", "name", "pid", "tid"],
                "properties": {
                    "ph": {"enum": list(VALID_PHASES)},
                    "name": {"type": "string"},
                    "cat": {"type": "string"},
                    "ts": {"type": "number"},
                    "dur": {"type": "number", "minimum": 0},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "args": {"type": "object"},
                },
            },
        },
        "displayTimeUnit": {"enum": ["ms", "ns"]},
        "otherData": {"type": "object"},
    },
}


def _metadata_event(
    name: str, pid: int, tid: int, value: str
) -> Dict[str, Any]:
    key = "process_name" if name == "process_name" else "thread_name"
    return {
        "ph": "M",
        "name": key,
        "pid": pid,
        "tid": tid,
        "cat": "__metadata",
        "args": {"name": value},
    }


def to_chrome_events(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Convert tracer records to trace events, rehoming sim-clock rows."""
    events: List[Dict[str, Any]] = []
    wall_pids = set()
    saw_sim = False
    for rec in records:
        ev: Dict[str, Any] = {
            "ph": rec["ph"],
            "name": rec["name"],
            "cat": rec.get("cat", "repro"),
            "ts": float(rec.get("ts", 0.0)),
        }
        if rec.get("clock") == "sim":
            saw_sim = True
            ev["pid"] = SIM_PID
            ev["tid"] = SIM_TID
        else:
            pid = int(rec.get("pid", 0))
            wall_pids.add(pid)
            ev["pid"] = pid
            ev["tid"] = int(rec.get("tid", 0))
        if rec["ph"] == "X":
            ev["dur"] = float(rec.get("dur", 0.0))
        if rec["ph"] == "i":
            ev["s"] = rec.get("s", "t")
        args = dict(rec.get("args") or {})
        if "sim_ns" in rec:
            args.setdefault("sim_ns", rec["sim_ns"])
        if args:
            ev["args"] = args
        events.append(ev)
    for pid in sorted(wall_pids):
        events.append(
            _metadata_event("process_name", pid, 0, f"repro pid {pid} (wall clock)")
        )
    if saw_sim:
        events.append(
            _metadata_event("process_name", SIM_PID, 0, "simulated clock (1 ts = 1 sim-µs)")
        )
        events.append(_metadata_event("thread_name", SIM_PID, SIM_TID, "sim tracks"))
    return events


def export_chrome_trace(
    records: Iterable[Dict[str, Any]],
    path: Optional[Union[str, Path]] = None,
    other_data: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build (and optionally write) the Chrome trace document."""
    doc: Dict[str, Any] = {
        "traceEvents": to_chrome_events(records),
        "displayTimeUnit": "ms",
    }
    if other_data:
        doc["otherData"] = dict(other_data)
    if path is not None:
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(json.dumps(doc, indent=1), encoding="utf-8")
    return doc


class TraceValidationError(ValueError):
    """Raised when a document violates :data:`CHROME_TRACE_SCHEMA`."""


def validate_chrome_trace(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Structurally validate a trace document; return a summary.

    Returns ``{"events": n, "phases": {...}, "categories": {...},
    "pids": [...]}`` on success; raises :class:`TraceValidationError`
    naming the first offending event otherwise.
    """
    if not isinstance(doc, dict):
        raise TraceValidationError("trace document must be a JSON object")
    if "traceEvents" not in doc:
        raise TraceValidationError("missing required key 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise TraceValidationError("'traceEvents' must be an array")
    if "displayTimeUnit" in doc and doc["displayTimeUnit"] not in ("ms", "ns"):
        raise TraceValidationError(
            f"displayTimeUnit must be 'ms' or 'ns', got {doc['displayTimeUnit']!r}"
        )
    phases: Dict[str, int] = {}
    categories: Dict[str, int] = {}
    pids = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise TraceValidationError(f"{where}: event must be an object")
        for key in ("ph", "name", "pid", "tid"):
            if key not in ev:
                raise TraceValidationError(f"{where}: missing required key {key!r}")
        if ev["ph"] not in VALID_PHASES:
            raise TraceValidationError(
                f"{where}: invalid phase {ev['ph']!r} (allowed: {VALID_PHASES})"
            )
        if not isinstance(ev["name"], str):
            raise TraceValidationError(f"{where}: 'name' must be a string")
        for key in ("pid", "tid"):
            if not isinstance(ev[key], int):
                raise TraceValidationError(f"{where}: {key!r} must be an integer")
        if "ts" in ev and not isinstance(ev["ts"], (int, float)):
            raise TraceValidationError(f"{where}: 'ts' must be a number")
        if ev["ph"] == "X":
            if "ts" not in ev or "dur" not in ev:
                raise TraceValidationError(
                    f"{where}: complete event requires 'ts' and 'dur'"
                )
            if not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0:
                raise TraceValidationError(
                    f"{where}: 'dur' must be a non-negative number"
                )
        if "args" in ev and not isinstance(ev["args"], dict):
            raise TraceValidationError(f"{where}: 'args' must be an object")
        phases[ev["ph"]] = phases.get(ev["ph"], 0) + 1
        cat = ev.get("cat", "")
        if cat != "__metadata":
            categories[cat] = categories.get(cat, 0) + 1
        pids.add(ev["pid"])
    return {
        "events": len(events),
        "phases": phases,
        "categories": categories,
        "pids": sorted(pids),
    }
