"""Observability layer: tracing, metrics export, run provenance.

Three independent pieces, all importable with zero non-stdlib cost:

- :mod:`repro.obs.tracer` — span/instant/counter recorder with wall- and
  sim-clock timestamps; disabled by default and ~free when disabled.
- :mod:`repro.obs.chrome` — Chrome trace-event export (Perfetto-loadable)
  and a structural validator.
- :mod:`repro.obs.metrics` — stable JSON metrics documents and diffable
  text reports from ``StatRegistry`` snapshots.
- :mod:`repro.obs.manifest` — run provenance manifests (fingerprint,
  seed, versions, durations, host).

Entry points: ``repro trace <run-args> -o trace.json`` captures one
instrumented run; ``repro report <file>`` renders/validates any of the
three artifact kinds. See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.chrome import (
    CHROME_TRACE_SCHEMA,
    SIM_PID,
    TraceValidationError,
    export_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.manifest import MANIFEST_SCHEMA_ID, RunManifest, format_report
from repro.obs.metrics import (
    METRICS_SCHEMA_ID,
    diff_metrics,
    export_metrics,
    flatten_stats,
    load_metrics,
    render_report,
)
from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    traced,
    tracing,
)

__all__ = [
    "CHROME_TRACE_SCHEMA",
    "MANIFEST_SCHEMA_ID",
    "METRICS_SCHEMA_ID",
    "NULL_SPAN",
    "RunManifest",
    "SIM_PID",
    "Span",
    "TraceValidationError",
    "Tracer",
    "diff_metrics",
    "export_chrome_trace",
    "export_metrics",
    "flatten_stats",
    "format_report",
    "get_tracer",
    "load_metrics",
    "render_report",
    "set_tracer",
    "traced",
    "tracing",
    "validate_chrome_trace",
]
