"""CoolPIM: thermal-aware source throttling (the paper's contribution).

- :mod:`~repro.core.policies` — the offloading policies evaluated in
  Sec. V: non-offloading, naïve offloading, CoolPIM (SW), CoolPIM (HW),
  and the ideal-thermal upper bound.
- :mod:`~repro.core.sw_dynt` — software dynamic throttling: the GPU
  runtime's PIM token pool, Eq. (1) initialization, and interrupt-driven
  pool reduction.
- :mod:`~repro.core.hw_dynt` — hardware dynamic throttling: per-SM PIM
  Control Units with warp-granular control and delayed updates.
- :mod:`~repro.core.translation` — PIM ⇄ CUDA atomic mapping (Table III).
- :mod:`~repro.core.coolpim` — the :class:`CoolPimSystem` facade that
  wires GPU + HMC + thermal model + policy into one runnable system.
"""

from repro.core.coolpim import CoolPimSystem
from repro.core.feedback import FeedbackDelays
from repro.core.hw_dynt import HwDynT
from repro.core.initialization import PtpInitializer
from repro.core.policies import (
    IdealThermal,
    NaiveOffloading,
    NonOffloading,
    OffloadPolicy,
    make_policy,
)
from repro.core.sw_dynt import SwDynT
from repro.core.token_pool import PimTokenPool
from repro.core.translation import cuda_atomic_for, pim_opcode_for_cuda

__all__ = [
    "CoolPimSystem",
    "FeedbackDelays",
    "HwDynT",
    "IdealThermal",
    "NaiveOffloading",
    "NonOffloading",
    "OffloadPolicy",
    "PimTokenPool",
    "PtpInitializer",
    "SwDynT",
    "cuda_atomic_for",
    "make_policy",
    "pim_opcode_for_cuda",
]
