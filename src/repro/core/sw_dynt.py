"""SW-DynT: software-based dynamic throttling (Sec. IV-B).

The GPU runtime's offloading controller maintains a PIM token pool (PTP).
Launching blocks request tokens FCFS; token-less blocks run the shadow
non-PIM kernel. The PTP is statically initialized from Eq. (1) (plus a
4-block margin) and shrunk by the thermal-interrupt handler:

    PTP = min(PTP − CF, #issuedTokens)

Throttling takes effect after Tthrottle ≈ 0.1 ms (interrupt handling plus
draining in-flight PIM blocks), and the loop cannot usefully act more
often than Tthrottle + Tthermal.
"""

from __future__ import annotations

from typing import Optional

from repro.core.feedback import FeedbackDelays
from repro.core.initialization import PtpInitializer
from repro.core.policies import OffloadPolicy
from repro.core.token_pool import PimTokenPool
from repro.obs.tracer import get_tracer
from repro.gpu.config import GPU_DEFAULT, GpuConfig
from repro.gpu.kernel import KernelLaunch

#: Default thermal-interrupt reduction step, in thread blocks. A larger CF
#: cools faster but risks under-tuning the pool (Sec. IV-B).
DEFAULT_CONTROL_FACTOR_BLOCKS = 8


class SwDynT(OffloadPolicy):
    """CoolPIM (SW): PIM-token-pool throttling at CUDA-block granularity."""

    name = "coolpim-sw"

    def __init__(
        self,
        control_factor: int = DEFAULT_CONTROL_FACTOR_BLOCKS,
        initializer: Optional[PtpInitializer] = None,
        delays: Optional[FeedbackDelays] = None,
        gpu: GpuConfig = GPU_DEFAULT,
    ) -> None:
        super().__init__()
        if control_factor <= 0:
            raise ValueError(f"control factor must be positive: {control_factor}")
        self.control_factor = control_factor
        self.initializer = initializer or PtpInitializer(gpu=gpu)
        self.delays = delays or FeedbackDelays.software()
        self.gpu = gpu
        self.pool: Optional[PimTokenPool] = None
        self._active_blocks = 0
        self._pending_size: Optional[int] = None
        self._pending_apply_at = 0.0
        self._last_action_s = float("-inf")
        self._effective_fraction = 0.0

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        super().reset()
        self.pool = None
        self._active_blocks = 0
        self._pending_size = None
        self._pending_apply_at = 0.0
        self._last_action_s = float("-inf")
        self._effective_fraction = 0.0

    def begin(self, launch: KernelLaunch, now_s: float = 0.0) -> None:
        super().begin(launch, now_s)
        size = self.initializer.initial_size(launch)
        # Concurrent blocks resident on the GPU: grid size may be smaller
        # than what the hardware can host.
        self._active_blocks = min(launch.num_blocks, self.gpu.max_concurrent_blocks)
        self.pool = PimTokenPool(size=size)
        # At steady state, min(PTP, active) blocks hold tokens.
        self.pool.issued = min(size, self._active_blocks)
        self._pending_size = None
        self._last_action_s = float("-inf")
        self._effective_fraction = self._fraction_from_pool()
        self.record_fraction(now_s, self._effective_fraction)
        get_tracer().counter(
            "core.ptp_size", self.pool.size, cat="core",
            sim_time_ns=now_s * 1e9, clock="sim",
        )

    def _fraction_from_pool(self) -> float:
        if self.pool is None or self._active_blocks == 0:
            return 0.0
        return min(1.0, self.pool.size / self._active_blocks)

    # -- control --------------------------------------------------------------

    def pim_fraction(self, now_s: float) -> float:
        if self._pending_size is not None and now_s >= self._pending_apply_at:
            # In-flight PIM blocks have drained; the smaller pool is now
            # the effective offloading intensity.
            self._effective_fraction = self._fraction_from_pool()
            self._pending_size = None
            self.record_fraction(now_s, self._effective_fraction)
        return self._effective_fraction

    def on_thermal_warning(self, now_s: float, temp_c=None) -> None:
        """Thermal interrupt → PTP reduction (rate-limited by the loop
        delay so in-flight reductions settle before acting again)."""
        if self.pool is None:
            return
        if now_s - self._last_action_s < self.delays.control_step_s:
            return
        self._last_action_s = now_s
        self.pool.reduce(self.control_factor, now_s)
        # Token drain: blocks finishing return tokens; issued converges to
        # the new size as the pool caps re-issue.
        self.pool.issued = min(self.pool.issued, max(self.pool.size, 0))
        self._pending_size = self.pool.size
        self._pending_apply_at = now_s + self.delays.throttle_s
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "core.ptp_reduce", cat="core",
                sim_time_ns=now_s * 1e9, clock="sim",
                ptp_size=self.pool.size, temp_c=temp_c,
            )
            tracer.counter(
                "core.ptp_size", self.pool.size, cat="core",
                sim_time_ns=now_s * 1e9, clock="sim",
            )

    # -- macro-engine horizon hints --------------------------------------------

    def fraction_horizon(self, now_s: float) -> float:
        """Next scheduled fraction change: the pending pool application."""
        if self._pending_size is not None and now_s < self._pending_apply_at:
            return self._pending_apply_at
        return float("inf")

    def warning_noop_until(self, now_s: float, temp_c=None) -> float:
        """Warnings are pure no-ops inside the rate-limit window.

        :meth:`on_thermal_warning` returns before touching any state while
        ``now_s - _last_action_s < control_step_s`` (and SW-DynT ignores
        ``temp_c`` entirely), so bulk delivery is safe until the window
        closes.
        """
        if self.pool is None:
            return float("inf")
        return self._last_action_s + self.delays.control_step_s

    @property
    def ptp_size(self) -> int:
        return self.pool.size if self.pool is not None else 0
