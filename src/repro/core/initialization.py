"""Static PTP initialization — Eq. (1) of the paper.

    PIMRate = PIMPeakRate × PIMIntensity × (PTP_Size / MaxBlk#)
              × (1 − Ratio_DivergentWarp)

Inverting for the pool size that keeps the estimated offloading rate at or
below the thermal threshold (1.3 op/ns for 85 °C with commodity cooling,
Fig. 5), plus a small margin because the feedback loop only down-tunes:

    PTP_Initial = PTP_Calculated + margin          (margin = 4 blocks)

``PIMPeakRate`` and ``MaxBlk#`` are hardware-dependent (measured with a
trial run or taken from the spec); ``PIMIntensity`` comes from compile-
time static analysis; the divergent-warp ratio is estimated from
algorithm knowledge (topology-driven kernels high, warp-centric low).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpu.config import GPU_DEFAULT, GpuConfig
from repro.gpu.kernel import KernelLaunch

#: Thermal PIM-rate threshold for 85 °C at full bandwidth with a
#: commodity-server heat sink (Fig. 5).
PIM_RATE_THRESHOLD_OPS_NS = 1.3

#: Default hardware peak PIM issue rate (op/ns) — the rate if every
#: memory operation were a PIM op at peak bandwidth (320 GB/s over 32 B
#: round-trip FLIT cost). Refined by a trial run when available.
PIM_PEAK_RATE_DEFAULT = 10.0

#: Eq. (1) margin, in thread blocks.
PTP_MARGIN_BLOCKS = 4


@dataclass(frozen=True)
class PtpInitializer:
    """Computes the initial PTP size for a kernel launch."""

    pim_peak_rate_ops_ns: float = PIM_PEAK_RATE_DEFAULT
    rate_threshold_ops_ns: float = PIM_RATE_THRESHOLD_OPS_NS
    margin_blocks: int = PTP_MARGIN_BLOCKS
    gpu: GpuConfig = GPU_DEFAULT

    def __post_init__(self) -> None:
        if self.pim_peak_rate_ops_ns <= 0:
            raise ValueError(f"peak rate must be positive: {self.pim_peak_rate_ops_ns}")
        if self.rate_threshold_ops_ns <= 0:
            raise ValueError(f"threshold must be positive: {self.rate_threshold_ops_ns}")
        if self.margin_blocks < 0:
            raise ValueError(f"margin cannot be negative: {self.margin_blocks}")

    def estimated_rate(self, ptp_size: int, intensity: float, divergence: float) -> float:
        """Forward Eq. (1): estimated PIM rate for a pool size."""
        max_blk = self.gpu.max_concurrent_blocks
        share = min(1.0, ptp_size / max_blk) if max_blk else 0.0
        return (
            self.pim_peak_rate_ops_ns * intensity * share * (1.0 - divergence)
        )

    def calculated_size(self, intensity: float, divergence: float) -> int:
        """Pool size whose estimated rate equals the threshold."""
        if not 0.0 <= intensity <= 1.0:
            raise ValueError(f"intensity must be in [0,1]: {intensity}")
        if not 0.0 <= divergence <= 1.0:
            raise ValueError(f"divergence must be in [0,1]: {divergence}")
        max_blk = self.gpu.max_concurrent_blocks
        denom = self.pim_peak_rate_ops_ns * intensity * (1.0 - divergence)
        if denom <= 0.0:
            # No offloadable work (or fully divergent) — no constraint.
            return max_blk
        size = math.floor(self.rate_threshold_ops_ns / denom * max_blk)
        return min(size, max_blk)

    def initial_size(self, launch: KernelLaunch) -> int:
        """PTP_Initial = PTP_Calculated + margin, clamped to MaxBlk#."""
        size = self.calculated_size(
            launch.pim_intensity(), launch.divergent_warp_ratio()
        )
        return min(size + self.margin_blocks, self.gpu.max_concurrent_blocks)
