"""CoolPIM system facade.

Wires a GPU config, an HMC 2.0 flow model, the thermal model, a workload's
cache profile, and an offloading policy into one runnable system — the
full Fig. 6 loop. This is the primary public API:

    from repro.core import CoolPimSystem
    from repro.graph import get_dataset
    from repro.workloads import get_workload

    system = CoolPimSystem()
    result = system.run(get_workload("pagerank"), get_dataset("ldbc-small"),
                        policy="coolpim-hw")
    print(result.runtime_s, result.peak_dram_temp_c)
"""

from __future__ import annotations

import time as _time
from typing import Dict, Iterable, Optional, Union

from repro.core.policies import POLICY_NAMES, OffloadPolicy, make_policy
from repro.obs.tracer import get_tracer
from repro.sim.stats import StatRegistry
from repro.gpu.config import GPU_DEFAULT, GpuConfig
from repro.gpu.simulator import SimulationResult, SystemSimulator
from repro.graph.csr import CSRGraph
from repro.hmc.config import HMC_2_0, HmcConfig
from repro.hmc.flow import HmcFlowModel
from repro.thermal.cooling import COMMODITY_SERVER, CoolingSolution
from repro.thermal.model import HmcThermalModel
from repro.thermal.sensor import ThermalSensor
from repro.workloads.base import GraphWorkload


class CoolPimSystem:
    """One GPU + one HMC 2.0 cube under a cooling solution.

    The thermal model (the expensive part) is built once and shared across
    runs; each :meth:`run` builds a fresh flow model and sensor so policy
    runs are independent.
    """

    def __init__(
        self,
        gpu: GpuConfig = GPU_DEFAULT,
        hmc: HmcConfig = HMC_2_0,
        cooling: CoolingSolution = COMMODITY_SERVER,
        ambient_c: float = 25.0,
        control_dt_s: float = 25e-6,
        phase_policy=None,
        engine: str = "macro",
    ) -> None:
        self.gpu = gpu
        self.hmc = hmc
        self.cooling = cooling
        self.ambient_c = ambient_c
        self.thermal = HmcThermalModel(hmc, cooling=cooling, ambient_c=ambient_c)
        self.control_dt_s = control_dt_s
        #: Simulation engine: ``"macro"`` (vectorized burst fast path) or
        #: ``"stepped"`` (the scalar reference loop).
        self.engine = engine
        #: Overheat-management rules (None → the paper's three-phase
        #: derating; pass a conservative_shutdown policy for the Sec. III-C
        #: all-or-nothing prototype behaviour).
        self.phase_policy = phase_policy
        self._launch_cache: Dict[tuple, object] = {}
        #: Stat registry of the most recent :meth:`run` (``sim.*`` scope),
        #: exportable via ``StatRegistry.snapshot(structured=True)``.
        self.last_stats: Optional[StatRegistry] = None

    def _launch_for(self, workload: GraphWorkload, graph: CSRGraph):
        key = (workload.name, workload.seed, id(graph))
        if key not in self._launch_cache:
            self._launch_cache[key] = workload.launch(graph, self.gpu)
        return self._launch_cache[key]

    def run(
        self,
        workload: GraphWorkload,
        graph: CSRGraph,
        policy: Union[str, OffloadPolicy] = "coolpim-hw",
        scenario=None,
    ) -> SimulationResult:
        """Simulate one (workload, policy) run and return its aggregates.

        ``policy`` also accepts an :class:`~repro.agents.Agent` (wrapped
        via :func:`repro.agents.as_policy`); ``scenario`` an optional
        :class:`~repro.scenarios.Scenario` (or preset name) injecting
        seeded faults into the run.
        """
        if isinstance(policy, str):
            policy = make_policy(policy)
        elif not isinstance(policy, OffloadPolicy):
            from repro.agents import as_policy

            policy = as_policy(policy)
        if isinstance(scenario, str):
            from repro.scenarios import make_scenario

            scenario = make_scenario(scenario)
        launch = self._launch_for(workload, graph)
        sim = SystemSimulator(
            gpu=self.gpu,
            hmc_config=self.hmc,
            cache=workload.cache_model(self.gpu),
            flow=HmcFlowModel(self.hmc, phase_policy=self.phase_policy),
            thermal=self.thermal,
            sensor=ThermalSensor(),
            control_dt_s=self.control_dt_s,
            engine=self.engine,
            scenario=scenario,
        )
        tracer = get_tracer()
        t0 = _time.perf_counter()
        result = sim.run(launch, policy)
        tracer.complete(
            "core.run", t0, _time.perf_counter(), cat="core",
            workload=workload.name, policy=policy.name,
            runtime_s=result.runtime_s,
            thermal_warnings=result.thermal_warnings,
            peak_dram_temp_c=result.peak_dram_temp_c,
        )
        self.last_stats = sim.stats
        return result

    def run_gang(
        self,
        workload: GraphWorkload,
        graph: CSRGraph,
        members: Iterable,
        stats: Optional[list] = None,
    ) -> list:
        """Run one workload under several configurations in lockstep.

        ``members`` entries are policies (names or instances) or
        ``(policy, cooling)`` pairs; see :func:`repro.gpu.gang.run_gang`.
        Results come back in member order, bit-equal to what per-run
        :meth:`run` calls would produce. ``last_stats`` holds the final
        member's registry, matching the sequential path; pass a list as
        ``stats`` to collect every member's registry in member order.
        """
        from repro.gpu.gang import run_gang

        members = list(members)
        tracer = get_tracer()
        t0 = _time.perf_counter()
        if stats is None:
            stats = []
        results = run_gang(
            workload,
            graph,
            members,
            gpu=self.gpu,
            hmc=self.hmc,
            cooling=self.cooling,
            ambient_c=self.ambient_c,
            control_dt_s=self.control_dt_s,
            phase_policy=self.phase_policy,
            launch=self._launch_for(workload, graph),
            stats=stats,
        )
        self.last_stats = stats[-1] if stats else None
        tracer.complete(
            "core.run_gang", t0, _time.perf_counter(), cat="core",
            workload=workload.name, lanes=len(members),
        )
        return results

    def run_all_policies(
        self,
        workload: GraphWorkload,
        graph: CSRGraph,
        policies: Optional[Iterable[str]] = None,
        scenario=None,
    ) -> Dict[str, SimulationResult]:
        """Run the standard evaluation matrix for one workload.

        Returns ``{policy_name: result}`` in evaluation order; the epoch
        trace is generated once and replayed for every policy. Under
        ``engine="gang"`` the policies run as one lockstep gang (see
        :mod:`repro.gpu.gang`) — same results, one shared thermal march.
        """
        names = list(policies) if policies is not None else list(POLICY_NAMES)
        if self.engine == "gang" and scenario is None and len(names) > 1:
            return dict(zip(names, self.run_gang(workload, graph, names)))
        return {
            name: self.run(workload, graph, name, scenario=scenario)
            for name in names
        }
