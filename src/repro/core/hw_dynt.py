"""HW-DynT: hardware-based dynamic throttling (Sec. IV-C).

Each GPU core carries a PIM Control Unit (PCU). On a thermal warning the
PCU reduces the number of PIM-enabled warps by a control factor; disabled
warps execute with PIM instructions dynamically translated to regular
CUDA atomics in the decode frontend (Table III). Because the reaction is
fast (tens of cycles), no careful initialization is needed — all warps
start PIM-enabled — but updates are intentionally *delayed* so the HMC
temperature settles between steps (otherwise the controller over-reduces
during the ~1 ms thermal lag).
"""

from __future__ import annotations

from typing import Optional

from repro.core.feedback import FeedbackDelays
from repro.core.policies import OffloadPolicy
from repro.gpu.config import GPU_DEFAULT, GpuConfig
from repro.gpu.kernel import KernelLaunch
from repro.obs.tracer import get_tracer

#: Default warning-driven reduction, in warps across the GPU. Warp
#: granularity is finer than SW-DynT's block granularity (a block is
#: warps_per_block warps), enabling a closer approach to the thermal
#: threshold.
DEFAULT_CONTROL_FACTOR_WARPS = 20

#: Settling detection (Sec. IV-C "Delayed Control Updates"): a reduction
#: whose thermal effect is still playing out shows as a *falling*
#: temperature — acting then would over-reduce, so the PCU waits. A
#: *rising* temperature means the previous reduction was insufficient and
#: the PCU may act again immediately (its own Tthrottle is only ~0.1 µs);
#: a temperature that has settled while the warning persists earns one
#: further fine step per Tthermal.
SETTLE_EPSILON_C = 0.05


class HwDynT(OffloadPolicy):
    """CoolPIM (HW): PCU-based throttling at warp granularity."""

    name = "coolpim-hw"

    def __init__(
        self,
        control_factor: int = DEFAULT_CONTROL_FACTOR_WARPS,
        delays: Optional[FeedbackDelays] = None,
        gpu: GpuConfig = GPU_DEFAULT,
    ) -> None:
        super().__init__()
        if control_factor <= 0:
            raise ValueError(f"control factor must be positive: {control_factor}")
        self.control_factor = control_factor
        self.delays = delays or FeedbackDelays.hardware()
        self.gpu = gpu
        self._active_warps = 0
        self._enabled_warps = 0
        self._effective_enabled = 0
        self._pending_apply_at: Optional[float] = None
        self._last_update_s = float("-inf")
        self._last_temp_c: Optional[float] = None

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        super().reset()
        self._active_warps = 0
        self._enabled_warps = 0
        self._effective_enabled = 0
        self._pending_apply_at = None
        self._last_update_s = float("-inf")
        self._last_temp_c = None

    def begin(self, launch: KernelLaunch, now_s: float = 0.0) -> None:
        super().begin(launch, now_s)
        # No initialization analysis needed: start fully enabled
        # (Sec. IV-C) and let the fast feedback find the level.
        self._active_warps = min(launch.num_warps, self.gpu.max_concurrent_warps)
        self._enabled_warps = self._active_warps
        self._effective_enabled = self._active_warps
        self._pending_apply_at = None
        self._last_update_s = float("-inf")
        self._last_temp_c = None
        self.record_fraction(now_s, 1.0)
        get_tracer().counter(
            "core.enabled_warps", self._enabled_warps, cat="core",
            sim_time_ns=now_s * 1e9, clock="sim",
        )

    # -- control --------------------------------------------------------------

    def pim_fraction(self, now_s: float) -> float:
        if self._pending_apply_at is not None and now_s >= self._pending_apply_at:
            self._effective_enabled = self._enabled_warps
            self._pending_apply_at = None
            self.record_fraction(now_s, self.pim_fraction(now_s))
        if self._active_warps == 0:
            return 0.0
        return min(1.0, self._effective_enabled / self._active_warps)

    def on_thermal_warning(self, now_s: float, temp_c: Optional[float] = None) -> None:
        """PCU update with delayed-control settling (Sec. IV-C).

        Two suppression rules implement "Delayed Control Updates": at
        least Tthermal must elapse between actions, *and* the sensed
        temperature must have stopped falling — a falling temperature
        means the previous reduction is still taking effect and acting
        again would over-reduce. Far above the threshold the PCU applies
        the severity-scaled reduction (multi-level ERRSTAT, footnote 4).
        """
        if temp_c is None or self._last_temp_c is None:
            # No trend yet: take one step, start tracking.
            act = now_s - self._last_update_s >= self.delays.thermal_s
            self._last_temp_c = temp_c
        else:
            rising = temp_c > self._last_temp_c + SETTLE_EPSILON_C
            falling = temp_c < self._last_temp_c - SETTLE_EPSILON_C
            self._last_temp_c = temp_c
            if rising:
                act = True  # previous step insufficient, keep throttling
            elif falling:
                act = False  # previous step still taking effect
            else:
                # Settled but the warning persists: one fine step per
                # thermal time constant.
                act = now_s - self._last_update_s >= self.delays.thermal_s
        if not act:
            return
        self._last_update_s = now_s
        self._enabled_warps = max(0, self._enabled_warps - self.control_factor)
        self._pending_apply_at = now_s + self.delays.throttle_s
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "core.pcu_reduce", cat="core",
                sim_time_ns=now_s * 1e9, clock="sim",
                enabled_warps=self._enabled_warps, temp_c=temp_c,
            )
            tracer.counter(
                "core.enabled_warps", self._enabled_warps, cat="core",
                sim_time_ns=now_s * 1e9, clock="sim",
            )

    # -- macro-engine horizon hints --------------------------------------------

    def fraction_horizon(self, now_s: float) -> float:
        """Next scheduled fraction change: the pending warp-count apply."""
        if self._pending_apply_at is not None and now_s < self._pending_apply_at:
            return self._pending_apply_at
        return float("inf")

    def warning_noop_until(self, now_s: float, temp_c: Optional[float] = None) -> float:
        """Idempotency window for repeated warnings at a constant ``temp_c``.

        The handler always stores ``temp_c`` as the settling baseline, so a
        call is a no-op only once the baseline already equals ``temp_c``
        exactly (then the settled branch is taken and nothing mutates until
        Tthermal elapses). Any trend change — including the very first call
        after a sensor sample moved the temperature — must go through the
        real handler, so this returns ``now_s`` in that case.
        """
        if temp_c is None or self._last_temp_c is None or temp_c != self._last_temp_c:
            return now_s
        return self._last_update_s + self.delays.thermal_s

    @property
    def enabled_warps(self) -> int:
        return self._enabled_warps
