"""Offloading policies evaluated in Sec. V.

A policy answers one question each control step: *what fraction of the
kernel's offloadable atomics issue as PIM instructions right now?* The
four configurations of the paper:

- :class:`NonOffloading` — baseline; every atomic runs on the host.
- :class:`NaiveOffloading` — PEI-style [2]; everything offloads, no
  thermal control.
- CoolPIM SW/HW — :mod:`repro.core.sw_dynt` / :mod:`repro.core.hw_dynt`.
- :class:`IdealThermal` — full offloading with unlimited cooling.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.gpu.kernel import KernelLaunch


class OffloadPolicy:
    """Base policy: full offloading, no reaction to warnings."""

    #: Display name used in result tables.
    name: str = "policy"
    #: Ideal-thermal flag: the simulator skips derating/warnings entirely.
    thermal_exempt: bool = False

    def __init__(self) -> None:
        self.fraction_history: List[Tuple[float, float]] = []

    def bind(self, sim) -> None:
        """Attach the running simulator before :meth:`begin`.

        The paper policies ignore it; agent adapters
        (:mod:`repro.agents`) use the handle to build observations
        (sensor warning bit, sensed temperature, flow counters) without
        the simulator having to know about the agent interface.
        """

    def reset(self) -> None:
        """Clear per-launch state so a policy object can be reused.

        Called from :meth:`begin`; subclasses that keep extra control
        state must extend this (and call ``super().reset()``) rather
        than relying on ``__init__``-time initialization, otherwise a
        second launch inherits the previous run's history.
        """
        self.fraction_history.clear()

    def begin(self, launch: KernelLaunch, now_s: float = 0.0) -> None:
        """Called once when the kernel launches."""
        self.reset()

    def pim_fraction(self, now_s: float) -> float:
        """Share of atomics offloaded at time ``now_s`` (0..1)."""
        return 1.0

    def on_thermal_warning(self, now_s: float, temp_c: Optional[float] = None) -> None:
        """Called when a thermal-warning response reaches the host.

        ``temp_c`` is the sensed peak DRAM temperature when available
        (HW-DynT uses it for severity scaling and settling detection;
        SW-DynT only sees the warning bit).
        """

    def record_fraction(self, now_s: float, fraction: float) -> None:
        self.fraction_history.append((now_s, fraction))

    # -- macro-engine horizon hints ----------------------------------------

    def fraction_horizon(self, now_s: float) -> float:
        """Earliest future time ``pim_fraction`` could change absent new
        warnings — "constant forever" for open-loop policies.

        The macro-step engine uses this to size vectorized bursts: calls
        to :meth:`pim_fraction` strictly before the horizon are guaranteed
        pure (no state change, same return value). Feedback policies
        override it with their next scheduled token/warp update.
        """
        return float("inf")

    def warning_noop_until(self, now_s: float, temp_c: Optional[float] = None) -> float:
        """Earliest time a repeated :meth:`on_thermal_warning` call with
        this same ``temp_c`` could have any effect.

        The base handler is a pure no-op, so warnings can be delivered in
        bulk forever. Feedback policies return the end of their
        rate-limit/settling window — or ``now_s`` itself when a call right
        now would mutate state (the engine then falls back to a scalar
        step so the warning fires at exactly the oracle instant).
        """
        return float("inf")


class NonOffloading(OffloadPolicy):
    """Baseline: HMC as plain GPU memory, no PIM."""

    name = "non-offloading"

    def pim_fraction(self, now_s: float) -> float:
        return 0.0


class NaiveOffloading(OffloadPolicy):
    """PEI-style offloading of every PIM-capable atomic, no throttling.

    The HMC still derates/warns — this policy simply ignores it, which is
    what produces the Fig. 10 slowdowns on hot workloads.
    """

    name = "naive-offloading"

    def pim_fraction(self, now_s: float) -> float:
        return 1.0


class StaticFraction(OffloadPolicy):
    """Fixed offloading fraction, no feedback — an open-loop ablation
    point between non-offloading (0.0) and naïve offloading (1.0)."""

    name = "static-fraction"

    def __init__(self, fraction: float) -> None:
        super().__init__()
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0,1], got {fraction}")
        self.fraction = fraction
        self.name = f"static-{fraction:.2f}"

    def pim_fraction(self, now_s: float) -> float:
        return self.fraction


class IdealThermal(OffloadPolicy):
    """Unlimited cooling: full offloading with the HMC pinned cold.

    An unrealizable upper bound (Sec. V-B: the required cooling power and
    space are impractical); used to size the headroom CoolPIM captures.
    """

    name = "ideal-thermal"
    thermal_exempt = True

    def pim_fraction(self, now_s: float) -> float:
        return 1.0


#: ``static-<fraction>`` policy names, e.g. ``static-0.25``.
_STATIC_RE = re.compile(r"^static-(\d+(?:\.\d+)?)$")


def parse_static_fraction(name: str) -> Optional[float]:
    """``static-0.25`` → ``0.25``; ``None`` when ``name`` is not a
    static-fraction policy name (fractions outside [0, 1] raise)."""
    m = _STATIC_RE.match(name)
    if m is None:
        return None
    fraction = float(m.group(1))
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"static fraction must be in [0,1], got {fraction}")
    return fraction


def is_policy_name(name: str) -> bool:
    """True for registered names plus the ``static-<fraction>`` family."""
    if name in POLICY_NAMES:
        return True
    try:
        return parse_static_fraction(name) is not None
    except ValueError:
        return False


def make_policy(name: str, **kwargs) -> OffloadPolicy:
    """Factory by configuration name used in experiment harnesses.

    Accepts: ``non-offloading``, ``naive-offloading``, ``coolpim-sw``,
    ``coolpim-hw``, ``ideal-thermal``, and the open-loop ablation family
    ``static-<fraction>`` (e.g. ``static-0.25``).
    """
    from repro.core.hw_dynt import HwDynT
    from repro.core.sw_dynt import SwDynT

    table = {
        "non-offloading": NonOffloading,
        "naive-offloading": NaiveOffloading,
        "coolpim-sw": SwDynT,
        "coolpim-hw": HwDynT,
        "ideal-thermal": IdealThermal,
    }
    try:
        cls = table[name]
    except KeyError:
        fraction = parse_static_fraction(name)
        if fraction is not None:
            policy = StaticFraction(fraction, **kwargs)
            policy.name = name  # round-trip the requested spelling
            return policy
        raise KeyError(
            f"unknown policy {name!r}; available: {sorted(table)} "
            "or static-<fraction> (e.g. static-0.25)"
        ) from None
    return cls(**kwargs)


#: Evaluation order used by the figures.
POLICY_NAMES = [
    "non-offloading",
    "naive-offloading",
    "coolpim-sw",
    "coolpim-hw",
    "ideal-thermal",
]
