"""PIM instruction ⇄ CUDA atomic mapping (Table III).

Every PIM instruction in HMC 2.0 (and the GraphPIM floating-point
extensions) has a corresponding CUDA atomic, so the compiler can generate
the shadow non-PIM kernel (SW-DynT, Sec. IV-B) and the hardware frontend
can dynamically translate PIM instructions back to regular atomics
(HW-DynT, Sec. IV-C). The mapping is a simple AST/IR-level source-to-
source substitution — represented here as a bidirectional table.
"""

from __future__ import annotations

from typing import Dict

from repro.hmc.isa import PimOpcode

#: Table III (extended to every opcode in our ISA): PIM → CUDA atomic.
PIM_TO_CUDA: Dict[PimOpcode, str] = {
    PimOpcode.ADD_IMM: "atomicAdd",
    PimOpcode.ADD_IMM_RET: "atomicAdd",
    PimOpcode.SWAP: "atomicExch",
    PimOpcode.BIT_WRITE: "atomicExch",
    PimOpcode.AND_IMM: "atomicAnd",
    PimOpcode.OR_IMM: "atomicOr",
    PimOpcode.CAS_EQUAL: "atomicCAS",
    PimOpcode.CAS_GREATER: "atomicMax",
    PimOpcode.CAS_LESS: "atomicMin",
    PimOpcode.FP_ADD_IMM: "atomicAdd",   # float overload
    PimOpcode.FP_MIN: "atomicMin",       # float extension [23]
}

#: Preferred CUDA → PIM direction (used by the offloading compiler pass).
#: Where several opcodes share a CUDA atomic, the non-returning variant is
#: preferred — it costs one fewer response FLIT (Table I).
CUDA_TO_PIM: Dict[str, PimOpcode] = {
    "atomicAdd": PimOpcode.ADD_IMM,
    "atomicExch": PimOpcode.SWAP,
    "atomicAnd": PimOpcode.AND_IMM,
    "atomicOr": PimOpcode.OR_IMM,
    "atomicCAS": PimOpcode.CAS_EQUAL,
    "atomicMax": PimOpcode.CAS_GREATER,
    "atomicMin": PimOpcode.CAS_LESS,
}


def cuda_atomic_for(opcode: PimOpcode) -> str:
    """CUDA atomic that implements ``opcode`` on the host (Table III)."""
    return PIM_TO_CUDA[opcode]


def pim_opcode_for_cuda(cuda_name: str) -> PimOpcode:
    """PIM opcode the compiler offloads a CUDA atomic to.

    Raises :class:`KeyError` for atomics with no PIM equivalent.
    """
    try:
        return CUDA_TO_PIM[cuda_name]
    except KeyError:
        raise KeyError(
            f"no PIM mapping for {cuda_name!r}; offloadable atomics: "
            f"{sorted(CUDA_TO_PIM)}"
        ) from None


def is_offloadable(cuda_name: str) -> bool:
    """Whether a CUDA atomic can be converted into a PIM instruction."""
    return cuda_name in CUDA_TO_PIM


def roundtrip_consistent() -> bool:
    """Every CUDA→PIM choice must map back to the same CUDA atomic."""
    return all(PIM_TO_CUDA[op] == name for name, op in CUDA_TO_PIM.items())
