"""Closed-loop feedback delay model (Fig. 8).

Source throttling does not reduce PIM intensity instantly, and the HMC's
temperature responds even later:

================  ================  ================
Delay             Software-based    Hardware-based
================  ================  ================
Tthrottle         ~0.1 ms           ~0.1 µs
Tthermal          ~1 ms             ~1 ms
================  ================  ================

The control granularity therefore cannot exceed Tthrottle + Tthermal per
step; a controller that reacts faster than the loop delay over-reduces
(Sec. IV-C "Delayed Control Updates").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class FeedbackDelays:
    """Per-mechanism delay constants, in seconds."""

    throttle_s: float
    thermal_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.throttle_s < 0 or self.thermal_s < 0:
            raise ValueError(f"delays cannot be negative: {self}")

    @property
    def control_step_s(self) -> float:
        """Minimum useful interval between control actions."""
        return self.throttle_s + self.thermal_s

    @classmethod
    def software(cls) -> "FeedbackDelays":
        """SW-DynT: interrupt handling + waiting for in-flight blocks."""
        return cls(throttle_s=0.1e-3)

    @classmethod
    def hardware(cls) -> "FeedbackDelays":
        """HW-DynT: PCU update takes tens of cycles."""
        return cls(throttle_s=0.1e-6)


class DelayLine:
    """Delivers events after a fixed delay (in-order).

    Models the path from the HMC raising ERRSTAT to the throttle actually
    taking effect at the source.
    """

    def __init__(self, delay_s: float) -> None:
        if delay_s < 0:
            raise ValueError(f"delay cannot be negative: {delay_s}")
        self.delay_s = delay_s
        self._pending: List[Tuple[float, object]] = []

    def push(self, now_s: float, event: object) -> None:
        """Enqueue an event observed at ``now_s``."""
        self._pending.append((now_s + self.delay_s, event))

    def pop_ready(self, now_s: float) -> List[object]:
        """Events whose delay has elapsed by ``now_s``."""
        ready = [e for t, e in self._pending if t <= now_s]
        self._pending = [(t, e) for t, e in self._pending if t > now_s]
        return ready

    def __len__(self) -> int:
        return len(self._pending)
