"""PIM token pool (PTP) — the SW-DynT control variable.

The GPU runtime's offloading controller maintains a pool whose size is the
maximum number of thread blocks allowed to run PIM-enabled code
(Sec. IV-B). Blocks request a token at launch (FCFS); with a token they
run the original PIM kernel, without one the shadow non-PIM kernel. The
thermal interrupt handler shrinks the pool:

    PTP_size = min(PTP_size − CF, #issuedTokens)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class PimTokenPool:
    """FCFS token pool with interrupt-driven down-tuning."""

    size: int
    issued: int = 0
    grants: int = field(default=0, init=False)
    denials: int = field(default=0, init=False)
    resize_history: List[Tuple[float, int]] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"pool size cannot be negative: {self.size}")
        if not 0 <= self.issued <= self.size:
            raise ValueError(
                f"issued ({self.issued}) must be within [0, size={self.size}]"
            )

    @property
    def available(self) -> int:
        return max(0, self.size - self.issued)

    def request(self) -> bool:
        """A launching block asks for a token; True → run PIM code."""
        if self.issued < self.size:
            self.issued += 1
            self.grants += 1
            return True
        self.denials += 1
        return False

    def release(self) -> None:
        """A PIM-enabled block finished; its token returns to the pool."""
        if self.issued <= 0:
            raise ValueError("release without an outstanding token")
        self.issued -= 1

    def reduce(self, control_factor: int, now_s: float = 0.0) -> int:
        """Thermal-interrupt reduction (Sec. IV-B).

        ``PTP = min(PTP − CF, #issuedToken)`` — never below zero. Returns
        the new size. Already-issued tokens above the new size are not
        revoked; they drain as blocks complete.
        """
        if control_factor < 0:
            raise ValueError(f"control factor cannot be negative: {control_factor}")
        new_size = max(0, min(self.size - control_factor, self.issued))
        self.size = new_size
        self.resize_history.append((now_s, new_size))
        return new_size
