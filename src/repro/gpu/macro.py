"""Macro-stepping fast path for :class:`~repro.gpu.simulator.SystemSimulator`.

The scalar reference engine advances one 25 µs control quantum per Python
iteration, paying a full sparse thermal solve (~0.5 ms) plus the
interval-model arithmetic every step. Between *horizon events* nothing in
the loop actually branches: the policy's offloading fraction is constant
(policies publish a :meth:`~repro.core.policies.OffloadPolicy.fraction_horizon`),
the temperature phase holds, and the sensor only matters at its 100 µs
sample points. This engine exploits that:

1. **Speculate** — run a tight pure-Python replica of the control loop for
   up to a few thousand quanta, recording every per-step quantity. The
   replica performs *bit-identical arithmetic* (same operations, same
   order, same rounding) as the scalar loop, so committed integers and
   times are exactly what the reference engine would produce. Epoch
   boundaries are crossed freely; the trace cursor is restored with
   :meth:`~repro.sim.trace.TraceCursor.seek` on abort.
2. **March** — advance the thermal state for all speculated quanta at once
   in the reduced eigenbasis (:mod:`repro.thermal.propagator`): one small
   dense recurrence plus one GEMM for per-quantum peak DRAM temperatures,
   instead of one sparse solve per quantum.
3. **Validate** — check the marched temperatures keep the temperature
   phase, sensor thresholds, and warning state unchanged, with a
   ``MARGIN_C`` guard band (the reduced trajectory is accurate to ~1e-9 °C,
   the margin is 1e-6 °C). The first violating quantum truncates the burst.
4. **Commit** — apply the validated prefix: bulk integer aggregates,
   pre-accumulated float totals (energy, busy time, phase time — simulated
   with the same sequential adds the scalar loop performs), the rare
   events (sensor samples, timeline points, warning instants), and one
   reconstructed thermal state.

Steps the burst cannot prove safe — phase/threshold crossings, thermal
shutdowns, warning deliveries the policy may act on, pending-fraction
applications — fall back to the scalar step, which is a verbatim replica
of the reference loop body. Temperatures are reproduced to ~1e-9 °C
(within the documented 1e-6 °C tolerance); every integer aggregate, event
count, event instant, and timeline/fraction value is exact.
"""

from __future__ import annotations

import math
import time as _time
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:
    from repro.core.policies import OffloadPolicy
    from repro.gpu.simulator import SystemSimulator

from repro.gpu.kernel import KernelLaunch
from repro.gpu.sm import DIVERGENCE_SERIALIZATION
from repro.hmc.dram_timing import TemperaturePhase
from repro.hmc.flow import TrafficDemand
from repro.hmc.packet import FLIT_BYTES, PacketType, flit_cost
from repro.obs.tracer import get_tracer
from repro.sim.trace import OpBatch
from repro.thermal.power import FU_WIDTH_BITS, TrafficPoint

#: Minimum quanta worth committing as a burst; a zero-length validated
#: prefix (the very next quantum crosses a threshold) falls back to the
#: scalar step, which decides with the exact solver.
MIN_BURST = 1

#: Speculation window bounds (quanta). The window starts small, grows
#: geometrically on fully-committed bursts, and collapses after a
#: validation truncation (the trajectory is near a threshold).
SPEC_CAP_MIN = 64
SPEC_CAP_MAX = 4096

#: Guard band (°C) between a marched temperature and any decision
#: threshold (phase boundary, sensor warn/clear). The reduced trajectory
#: tracks the exact solver to ~1e-9 °C, so a quantum within the band is
#: simply re-run exactly rather than risking a flipped decision.
MARGIN_C = 1e-6

#: Floor of the speculation window after a validation truncation: near a
#: threshold the window tracks ~2× the last committed length, so failed
#: speculation work stays proportional to committed work.
SPEC_CAP_NEAR = 8

#: Cap on scalar steps forced after a validation failure (exponential
#: backoff while the trajectory hugs a threshold).
MAX_BACKOFF_STEPS = 8


class MacroEngine:
    """One-shot macro-step executor bound to a :class:`SystemSimulator`.

    Constructed per :meth:`SystemSimulator.run` call; holds the run's
    mutable state as attributes so the burst/scalar paths share it.
    """

    #: Engine name stamped on traces and live-telemetry samples.
    engine_label = "macro"

    def __init__(self, sim: "SystemSimulator") -> None:
        self.sim = sim
        # Interval-model constants hoisted for the speculation loop. Each
        # is the same expression the scalar loop evaluates per step, so
        # the hoisted value is bit-identical.
        self.rq_r, self.rs_r = flit_cost(PacketType.READ64)
        self.rq_w, self.rs_w = flit_cost(PacketType.WRITE64)
        self.rq_p, self.rs_p = flit_cost(PacketType.PIM)
        self.rq_pr, self.rs_pr = flit_cost(PacketType.PIM_RET)
        self.quantum_ns = sim.control_dt_s * 1e9
        cache = sim.cache
        self.coal = cache.host_atomic_coalescing
        self.writeback = cache.coherence_mode == "writeback"
        self.dirty = cache.pei_dirty_fraction
        self.atomic_rate = sim.gpu.host_atomic_ops_per_ns
        self.peak_ipns = sim.gpu.peak_warp_instructions_per_ns
        self.link_equiv = sim.flow.LINK_POWER_PAYLOAD_EQUIV
        pm = sim.thermal.power
        self.le = pm.logic_energy_per_bit
        self.de = pm.dram_energy_per_bit
        self.fe128 = pm.fu_energy_per_bit * FU_WIDTH_BITS
        self.sl_w = pm.static_logic_w
        self.sd_w = pm.static_dram_total_w

        # Burst machinery.
        self.spec_cap = SPEC_CAP_MIN
        self.skip = 0
        self.fail_streak = 0
        self._prop = None
        self._prop_bad = False
        #: Per-run certified peak readout (created with the propagator).
        #: Per-run on purpose: its mode/candidate state depends on the
        #: burst history, which is the determinism contract that lets a
        #: gang lane reproduce a solo run's floats call for call.
        self._reader = None
        # Reduced-state cache: eigen-coordinates of the thermal state and
        # its peak DRAM temperature, valid while no exact solver step has
        # touched the model since the last burst commit. While valid,
        # bursts skip both the projection and the full-state
        # reconstruction; the node state is materialized lazily.
        self._z = None
        self._z_peak = 0.0
        #: Optional shared ``{id(batch): MemoryTraffic}`` memo. The cache
        #: filter is a pure function of the batch and the (immutable)
        #: cache-model parameters, so gang lanes replaying the same trace
        #: under identical cache configs share one memo — same values,
        #: computed once.
        self._filter_memo = None

    def _filter(self, batch: OpBatch):
        memo = self._filter_memo
        if memo is None:
            return self.sim.cache.filter(batch)
        traffic = memo.get(id(batch))
        if traffic is None:
            traffic = memo[id(batch)] = self.sim.cache.filter(batch)
        return traffic

    # -- epoch bookkeeping -------------------------------------------------

    def _open_epoch(self, batch: OpBatch, sim0: float, traffic=None) -> None:
        sim = self.sim
        self.batch = batch
        self.atomics_total += batch.atomics
        if traffic is None:
            traffic = self._filter(batch)
        from repro.gpu.simulator import _EpochState

        self.state = _EpochState(batch, traffic)
        self.rem_reads = traffic.reads
        self.rem_writes = traffic.writes
        self.rem_atomics = traffic.atomics
        self.epochs += 1
        self.epoch_sim0 = sim0
        self.epoch_wall0 = _time.perf_counter() if self.traced else 0.0
        # Per-epoch hoists (constant across the epoch's control steps).
        self.mlp = min(1.0, self.state.threads / sim.saturation_threads)
        self.inflation = (
            1.0 + (DIVERGENCE_SERIALIZATION - 1.0) * self.state.divergence
        )

    def _close_epoch(self, end_s: float) -> None:
        if self.traced:
            self.tracer.complete(
                "gpu.epoch", self.epoch_wall0, _time.perf_counter(),
                cat="gpu", label=self.batch.label,
                atomics=self.batch.atomics, threads=self.batch.threads,
                sim_start_s=self.epoch_sim0, sim_end_s=end_s,
            )
        self.state = None

    def _epoch_pending(self) -> bool:
        s = self.state
        return (
            not s.drained
            or self.rem_atomics > 0
            or self.rem_reads > 0
            or self.rem_writes > 0
        )

    def _materialize(self) -> None:
        """Install the cached reduced state into the thermal model.

        Called before anything reads or advances the node-temperature
        state directly (scalar steps, end of run). Afterwards the cache is
        dropped: the exact solver is about to evolve the state, so the
        next burst re-projects.
        """
        if self._z is not None:
            self.sim.thermal.set_transient_state(
                self._prop.reconstruct(self._z)
            )
            self._z = None

    def _phase_band(self, phase: TemperaturePhase) -> Tuple[Optional[float], float]:
        """(lower, upper) temperature bounds within which ``phase`` holds.

        ``None`` lower bound means unbounded below. The burst validator
        requires every marched temperature to stay inside the band (with
        margin) so the phase — and with it every hoisted capacity and the
        energy scale — provably never changes mid-burst.
        """
        pol = self.sim.flow.policy
        if pol.conservative_shutdown:
            return None, pol.conservative_shutdown_c
        t0, t1, t2 = pol.thresholds_c
        if phase is TemperaturePhase.NORMAL:
            return None, t0
        if phase is TemperaturePhase.EXTENDED:
            return t0, t1
        return t1, t2

    # -- main entry --------------------------------------------------------
    #
    # The run is split into begin / round / finish so the gang engine can
    # drive many engines in lockstep: each round advances one engine by
    # one burst attempt (or one scalar step). ``run`` itself is just the
    # solo driver — one engine, rounds back to back — so the solo and
    # gang paths execute the identical per-run code.

    def run(self, launch: KernelLaunch, policy: "OffloadPolicy"):
        self._run_begin(launch, policy)
        while self._round_open():
            if self.skip > 0:
                self.skip -= 1
                self._scalar_step()
            elif self._try_burst() == 0:
                self._scalar_step()
            self._sink_sample()
        return self._run_finish()

    def _run_begin(self, launch: KernelLaunch, policy: "OffloadPolicy") -> None:
        sim = self.sim
        launch.trace.rewind()
        sim.sensor.reset()
        # Scenario injection mirrors the stepped loop exactly: one driver
        # per run, events applied at control-step granularity, and (see
        # _try_burst) every injection instant a hard commit boundary.
        scen = sim._scenario_driver()
        self.scen = scen
        if scen is not None:
            scen.begin()
        self.policy = policy
        self.exempt = policy.thermal_exempt

        if not self.exempt:
            sim.thermal.warm_start(sim.warm_start)
        sim.flow.phase = TemperaturePhase.NORMAL
        sim.flow.set_thermal_warning(False)

        policy.bind(sim)
        policy.begin(launch, now_s=0.0)

        self.tracer = get_tracer()
        self.traced = self.tracer.enabled
        wall_t0 = _time.perf_counter()
        stats = sim.stats.scoped("sim")
        self.dt_hist = stats.histogram(
            "control_dt_ns", 0.0, sim.control_dt_s * 1e9 * 1.01, 64
        )
        self.dt_hist.reset()
        self.burst_hist = stats.histogram(
            "macro_burst_steps", 0.0, SPEC_CAP_MAX * 1.01, 64
        )
        self.burst_hist.reset()
        self.frac_tw = stats.time_weighted("pim_fraction")
        self.frac_tw.reset(initial=0.0, start_time=0.0)
        for name in (
            "epochs", "control_steps", "thermal_solver_steps",
            "thermal_warnings", "shutdowns", "pim_ops", "host_atomics",
            "host_atomics_assigned",
        ):
            stats.counter(name).reset()

        self.epochs = 0
        self.control_steps = 0
        self.thermal_steps = 0
        self.now_s = 0.0
        self.link_bytes = 0
        self.data_bytes = 0
        self.pim_ops_total = 0
        self.host_atomics_total = 0
        self.host_assigned_total = 0
        self.atomics_total = 0
        self.warnings = 0
        self.shutdowns = 0
        self.peak_temp = (
            sim.thermal.peak_dram_c() if not self.exempt
            else sim.thermal.ambient_c
        )
        #: Last *committed* DRAM peak (°C) — the live-telemetry readout.
        #: Updated only at scalar steps and burst commits, so emission
        #: never observes speculative state.
        self.last_temp_c = self.peak_temp
        self.phase_time = {p.name: 0.0 for p in TemperaturePhase}
        self.timeline: List[Tuple[float, float, float, float]] = []
        self.next_sample = 0.0
        self.thermal_debt_s = 0.0
        self.package_energy_j = 0.0
        fan_power_w = (
            sim.thermal.cooling.fan_power_w() if not self.exempt else 0.0
        )

        self.state = None
        trace = launch.trace
        self.launch_trace = trace
        # Live telemetry: sampled only between committed steps or
        # bursts — the speculative march never emits, so attaching a
        # sink cannot perturb the bit-equality contract.
        from repro.telemetry.live import get_run_sink

        self._sink = get_run_sink()
        self._total_epochs = max(1, len(trace))
        self._launch = launch
        self._wall_t0 = wall_t0
        self._stats_scope = stats
        self._fan_power_w = fan_power_w

    def _round_open(self) -> bool:
        """Advance the trace to a runnable epoch; False when the run is done.

        One call per round: opens (and skips empty) epochs, then applies
        any scenario events due at the current instant — exactly the top
        of the reference loop's iteration.
        """
        scen = self.scen
        trace = self.launch_trace
        while self.state is None:
            batch = trace.next()
            if batch is None:
                return False
            if scen is not None:
                batch = scen.transform_batch(batch)
            self._open_epoch(batch, self.now_s)
            if not self._epoch_pending():
                self._close_epoch(self.now_s)
        if scen is not None:
            # Stepped applies due events at the top of every control
            # step — i.e. after the epoch open at the same instant.
            scen.apply_due(self.now_s)
        return True

    def _sink_sample(self) -> None:
        sink = self._sink
        if sink is not None and self.now_s >= sink.next_due_s:
            policy = self.policy
            pool = getattr(policy, "pool", None)
            sink.emit_sample({
                "t_s": self.now_s,
                "progress": self.launch_trace.position / self._total_epochs,
                "dram_c": self.last_temp_c,
                "pim_fraction": self.frac_tw.value,
                "tokens": pool.size if pool is not None else None,
                "warnings": self.warnings,
                "shutdowns": self.shutdowns,
                "avg_link_gbs": (
                    self.link_bytes / self.now_s / 1e9
                    if self.now_s > 0 else 0.0
                ),
                "phase": self.sim.flow.phase.name,
                "engine": self.engine_label,
            })

    def _run_finish(self):
        from repro.gpu.simulator import SimulationResult

        sim = self.sim
        scen = self.scen
        launch = self._launch
        policy = self.policy
        stats = self._stats_scope
        self._materialize()
        if scen is not None:
            # Restore the shared thermal/flow/sensor models to nominal:
            # CoolPimSystem reuses them across runs.
            scen.finish()
        if self.now_s > 0.0:
            self.frac_tw.update(self.frac_tw.value, self.now_s)
        stats.counter("epochs").add(self.epochs)
        stats.counter("control_steps").add(self.control_steps)
        stats.counter("thermal_solver_steps").add(self.thermal_steps)
        stats.counter("thermal_warnings").add(self.warnings)
        stats.counter("shutdowns").add(self.shutdowns)
        stats.counter("pim_ops").add(self.pim_ops_total)
        stats.counter("host_atomics").add(self.host_atomics_total)
        stats.counter("host_atomics_assigned").add(self.host_assigned_total)
        if self.traced:
            self.tracer.complete(
                "sim.run", self._wall_t0, _time.perf_counter(), cat="sim",
                workload=launch.name, policy=policy.name,
                epochs=self.epochs, control_steps=self.control_steps,
                warnings=self.warnings, shutdowns=self.shutdowns,
                sim_runtime_s=self.now_s, engine=self.engine_label,
            )

        return SimulationResult(
            workload=launch.name,
            policy=policy.name,
            runtime_s=self.now_s,
            link_bytes=self.link_bytes,
            data_bytes=self.data_bytes,
            pim_ops=self.pim_ops_total,
            host_atomics=self.host_atomics_total,
            total_atomics=self.atomics_total,
            peak_dram_temp_c=self.peak_temp,
            thermal_warnings=self.warnings,
            shutdowns=self.shutdowns,
            phase_time_s=self.phase_time,
            package_energy_j=self.package_energy_j,
            fan_energy_j=self._fan_power_w * self.now_s,
            timeline=self.timeline,
        )

    # -- scalar fallback ---------------------------------------------------

    def _scalar_step(self) -> None:
        """One control quantum, verbatim reference-loop semantics."""
        sim = self.sim
        state = self.state
        policy = self.policy
        exempt = self.exempt
        traced = self.traced
        from repro.gpu.simulator import SHUTDOWN_RECOVERY_S

        if not exempt:
            self._materialize()
        fraction = policy.pim_fraction(self.now_s)
        if fraction != self.frac_tw.value:
            self.frac_tw.update(fraction, self.now_s)
        demand, atomics_dem = sim._mem_demand(state, fraction)
        t_mem_ns = sim.flow.service_time_ns(demand)
        mlp = min(1.0, state.threads / sim.saturation_threads)
        if mlp > 0.0:
            t_mem_ns /= mlp
        t_cmp_ns = sim.sm.compute_time_ns(state.as_batch())
        t_atm_ns = demand.host_atomics / sim.gpu.host_atomic_ops_per_ns
        t_total_ns = max(t_mem_ns, t_cmp_ns, t_atm_ns, 1.0)

        dt_ns = min(sim.control_dt_s * 1e9, t_total_ns)
        share = dt_ns / t_total_ns
        final_step = share >= 1.0
        served_reads = min(int(round(demand.reads * share)), self.rem_reads)
        served_writes = min(int(round(demand.writes * share)), self.rem_writes)
        served_host = int(round(demand.host_atomics * share))
        served_pim = int(round(demand.pim_ops * share))
        served_pim_ret = int(round(demand.pim_ops_ret * share))
        host_raw = int(round((atomics_dem - demand.total_pim) * share))
        over = served_pim + served_pim_ret + host_raw - self.rem_atomics
        if over > 0:
            cut = min(over, host_raw)
            host_raw -= cut
            over -= cut
            cut = min(over, served_pim)
            served_pim -= cut
            served_pim_ret -= over - cut
        if final_step:
            served_reads = self.rem_reads
            served_writes = self.rem_writes
            leftover = self.rem_atomics - (served_pim + served_pim_ret
                                           + host_raw)
            extra_pim = min(leftover, int(round(leftover * fraction)))
            extra_host = leftover - extra_pim
            served_pim += extra_pim
            host_raw += extra_host
            served_host += int(round(
                extra_host * sim.cache.host_atomic_coalescing
            ))
        self.rem_reads -= served_reads
        self.rem_writes -= served_writes
        self.rem_atomics -= served_pim + served_pim_ret + host_raw
        self.host_assigned_total += host_raw
        served = TrafficDemand(
            reads=served_reads,
            writes=served_writes,
            host_atomics=served_host,
            pim_ops=served_pim,
            pim_ops_ret=served_pim_ret,
        )
        state.drain(share)

        ext_gbs, int_gbs, pim_rate = sim.flow.traffic_rates(served, dt_ns)
        if not exempt:
            traffic_point = TrafficPoint(
                external_gbs=ext_gbs,
                internal_dram_gbs=int_gbs,
                pim_rate_ops_ns=pim_rate,
            )
            self.thermal_debt_s += dt_ns * 1e-9
            temp_c = sim.thermal.peak_dram_c()
            energy_scale = sim.flow.policy.dram_energy_scale(sim.flow.phase)
            while self.thermal_debt_s >= sim.control_dt_s:
                temp_c = sim.thermal.step(
                    traffic_point,
                    sim.control_dt_s,
                    dram_energy_scale=energy_scale,
                )
                self.thermal_debt_s -= sim.control_dt_s
                self.thermal_steps += 1
                self._z = None
            self.peak_temp = max(self.peak_temp, temp_c)
            phase = sim.flow.update_phase(temp_c)
            warning = sim.sensor.observe(temp_c, self.now_s)
            sim.flow.set_thermal_warning(warning)
            if warning:
                self.warnings += 1
                if traced:
                    self.tracer.instant(
                        "sim.thermal_warning", cat="sim",
                        sim_time_ns=self.now_s * 1e9, clock="sim",
                        temp_c=sim.sensor.last_temp_c,
                    )
                policy.on_thermal_warning(self.now_s, sim.sensor.last_temp_c)
            if phase is TemperaturePhase.SHUTDOWN:
                self.shutdowns += 1
                if traced:
                    self.tracer.instant(
                        "sim.shutdown", cat="sim",
                        sim_time_ns=self.now_s * 1e9, clock="sim",
                        temp_c=temp_c,
                    )
                self.now_s += SHUTDOWN_RECOVERY_S
                self.phase_time[TemperaturePhase.SHUTDOWN.name] += (
                    SHUTDOWN_RECOVERY_S
                )
                sim.thermal.warm_start(TrafficPoint.idle())
                self._z = None
                sim.flow.phase = TemperaturePhase.NORMAL
                sim.sensor.reset()
                sim.flow.set_thermal_warning(False)
            self.last_temp_c = temp_c
        else:
            phase = TemperaturePhase.NORMAL
            temp_c = sim.thermal.ambient_c
            traffic_point = TrafficPoint(
                external_gbs=ext_gbs,
                internal_dram_gbs=int_gbs,
                pim_rate_ops_ns=pim_rate,
            )
            energy_scale = 1.0

        self.package_energy_j += (
            sim.thermal.power.package_total_w(traffic_point, energy_scale)
            * dt_ns * 1e-9
        )
        sim.flow.record(served, dt_ns)
        self.link_bytes += served.link_bytes()
        self.data_bytes += served.external_data_bytes()
        self.pim_ops_total += served.total_pim
        self.host_atomics_total += served.host_atomics
        self.phase_time[phase.name] += dt_ns * 1e-9
        self.now_s += dt_ns * 1e-9
        self.control_steps += 1
        self.dt_hist.add(dt_ns)

        if self.now_s >= self.next_sample:
            self.timeline.append((self.now_s, temp_c, pim_rate, fraction))
            self.next_sample = (
                math.floor(self.now_s / sim.timeline_dt_s) + 1.0
            ) * sim.timeline_dt_s

        if not self._epoch_pending():
            self._close_epoch(self.now_s)

    # -- burst path --------------------------------------------------------
    #
    # One burst = begin → speculate → march → validate → commit. Each
    # stage is a method so the gang engine can reuse the pipeline: lanes
    # inherit begin/validate/commit verbatim (bit-identical semantics),
    # override ``_speculate`` with a vectorized equivalent, and let the
    # gang driver batch the march across lanes. ``_Burst`` carries one
    # burst's inputs and outputs between the stages.

    def _spec_begin(self) -> "Optional[_Burst]":
        """Resolve burst preconditions and hoist the burst-scoped inputs.

        Returns ``None`` when no burst may start here: unhealthy reduced
        basis, shutdown recovery, a perturbed sensor window (scalar
        oracle path), or a warning the policy may act on this very step.
        """
        sim = self.sim
        exempt = self.exempt
        policy = self.policy
        flow = sim.flow
        if not exempt:
            if self._prop_bad:
                return None
            if self._prop is None:
                self._prop = sim.thermal.propagator(sim.control_dt_s)
                self._reader = self._prop.peak_reader()
            if not self._prop.healthy:
                self._prop_bad = True
                return None
        if flow.is_shutdown:
            return None
        scen = self.scen
        if scen is not None and scen.sensor_perturbed():
            # Sensor-fault windows (noise/dropout) run on the scalar
            # oracle path: each sample must pass through the real,
            # perturbed sensor at its exact instant so both engines draw
            # the same noise variates in the same order.
            return None

        b = _Burst()
        b.wall_b0 = _time.perf_counter() if self.traced else 0.0
        b.t0 = t0 = self.now_s
        # The burst's first quantum makes the real policy call (it may
        # apply a pending change); subsequent quanta reuse the value under
        # the fraction_horizon purity contract.
        b.fraction = policy.pim_fraction(t0)
        end_t = policy.fraction_horizon(t0)
        if scen is not None:
            # Extended horizon contract: an injection instant is a hard
            # commit boundary — a burst may not speculate across it.
            nxt = scen.next_event_s()
            if nxt < end_t:
                end_t = nxt
        b.warning = warning = sim.sensor.warning
        b.samples_safe = True
        if warning:
            wn_cur = policy.warning_noop_until(t0, sim.sensor.last_temp_c)
            if wn_cur <= t0:
                return None  # the policy may act this very step
            if wn_cur < end_t:
                end_t = wn_cur
            # A sensor sample inside the burst replaces the temperature the
            # per-step warning callbacks would carry; that is only safe if
            # the callbacks are no-ops for *any* temperature to burst end.
            # Otherwise the burst may still *end on* a sample step: the
            # commit delivers that one callback for real, with the marched
            # temperature, reproducing the scalar loop's policy state.
            b.samples_safe = policy.warning_noop_until(t0, None) >= end_t
        b.end_t = end_t
        b.phase0 = flow.phase
        b.link_gbs = flow.effective_link_gbs()
        b.dram_gbs = flow.dram_capacity_gbs()
        b.fu_cap = flow.fu_capacity_ops_per_ns()
        b.es = 1.0 if exempt else flow.policy.dram_energy_scale(b.phase0)
        # Boundary forcing for the marched thermal states: scenario
        # ambient/cooling offsets enter here (and only here) — identical
        # to the exact solver's `B * ambient_c` term, and equal to
        # the ambient when no offset is active.
        b.amb_forcing = sim.thermal.effective_ambient_c
        b.cap = self.spec_cap
        b.pos0 = self.launch_trace.position
        b.pt0 = self.phase_time[b.phase0.name]
        b.steps = []
        b.entries = []
        b.cum_sub = 0
        b.sample_stop = False
        return b

    def _speculate(self, b: "_Burst") -> None:
        """Scalar speculation: replay the control loop into ``b.steps``.

        Pure-Python, bit-identical arithmetic to the reference loop —
        the per-step 31-tuples are the contract every other stage (and
        the gang engine's vectorized override) builds on.
        """
        sim = self.sim
        exempt = self.exempt
        scen = self.scen
        fraction = b.fraction
        end_t = b.end_t
        warning = b.warning
        samples_safe = b.samples_safe
        control_dt_s = sim.control_dt_s
        quantum_ns = self.quantum_ns
        period = sim.sensor.sample_period_s
        tl_dt = sim.timeline_dt_s
        sat_threads = sim.saturation_threads
        link_gbs = b.link_gbs
        dram_gbs = b.dram_gbs
        fu_cap = b.fu_cap
        es = b.es
        coal = self.coal
        writeback = self.writeback
        dirty = self.dirty
        atomic_rate = self.atomic_rate
        peak_ipns = self.peak_ipns
        eq = self.link_equiv
        le, de, fe128 = self.le, self.de, self.fe128
        sl_w, sd_w = self.sl_w, self.sd_w
        rq_r, rs_r = self.rq_r, self.rs_r
        rq_w, rs_w = self.rq_w, self.rs_w
        rq_p, rs_p = self.rq_p, self.rs_p
        rq_pr, rs_pr = self.rq_pr, self.rs_pr
        fb = FLIT_BYTES

        # Epoch-local speculation state (copies; committed on success).
        st = self.state
        sr, sw_, sa = st.reads, st.writes, st.atomics
        sar, scc = st.atomics_ret, st.compute_cycles
        rr, rw, ra = self.rem_reads, self.rem_writes, self.rem_atomics
        mlp, infl = self.mlp, self.inflation
        tnow = b.t0
        debt = self.thermal_debt_s
        # Replicates the sensor's own `now - last >= period` comparison.
        nsamp = sim.sensor._last_sample_time
        next_tl = self.next_sample
        pkg_acc = self.package_energy_j
        busy_acc = sim.flow.stats.busy_ns
        pt_acc = b.pt0
        cap = b.cap
        trace = self.launch_trace
        entries = b.entries
        steps = b.steps
        cum_sub = 0
        # Set when the burst's final step is a sample whose warning
        # callback the policy may act on; the commit invokes it for real.
        sample_stop = False

        while True:
            if len(steps) >= cap:
                break
            if steps and tnow >= end_t:
                break
            if not (sr >= 0.5 or sw_ >= 0.5 or sa >= 0.5 or scc >= 1.0
                    or ra > 0 or rr > 0 or rw > 0):
                nb = trace.next()
                if nb is None:
                    break
                if scen is not None:
                    nb = scen.transform_batch(nb)
                ntraffic = self._filter(nb)
                entries.append((len(steps), nb, ntraffic))
                sr = float(ntraffic.reads)
                sw_ = float(ntraffic.writes)
                sa = float(ntraffic.atomics)
                sar = float(ntraffic.atomics_with_return)
                scc = float(nb.compute_cycles)
                rr, rw, ra = ntraffic.reads, ntraffic.writes, ntraffic.atomics
                mlp = min(1.0, nb.threads / sat_threads)
                infl = (
                    1.0 + (DIVERGENCE_SERIALIZATION - 1.0)
                    * nb.divergent_warp_ratio
                )
                continue

            # ---- demand (cache filter + PIM split), exact arithmetic ----
            atomics_dem = max(0, int(round(sa)))
            d_reads = max(0, int(round(sr)))
            d_writes = max(0, int(round(sw_)))
            awr = min(int(round(sar)), int(round(sa)))
            pim_total = int(round(atomics_dem * fraction))
            pim_ret = min(pim_total, int(round(awr * fraction)))
            pim_plain = pim_total - pim_ret
            host = atomics_dem - pim_total
            host_eff = int(round(host * coal))
            writes_d = d_writes
            if writeback:
                writes_d += int(round(pim_total * dirty))

            # ---- bottleneck service time --------------------------------
            rf = ((d_reads + host_eff) * rq_r + (writes_d + host_eff) * rq_w
                  + pim_plain * rq_p + pim_ret * rq_pr)
            sf = ((d_reads + host_eff) * rs_r + (writes_d + host_eff) * rs_w
                  + pim_plain * rs_p + pim_ret * rs_pr)
            t_link = max(rf * fb, sf * fb) / link_gbs
            idb = (64 * (d_reads + writes_d + 2 * host_eff)
                   + 32 * (pim_plain + pim_ret))
            t_dram = idb / dram_gbs
            tp = pim_plain + pim_ret
            t_fu = tp / fu_cap if tp else 0.0
            t_mem = max(t_link, t_dram, t_fu)
            if mlp > 0.0:
                t_mem /= mlp
            cc_i = int(scc)
            t_cmp = (cc_i * infl) / peak_ipns if cc_i > 0 else 0.0
            t_atm = host_eff / atomic_rate
            t_total = max(t_mem, t_cmp, t_atm, 1.0)

            # ---- serve the quantum --------------------------------------
            dt_ns = min(quantum_ns, t_total)
            share = dt_ns / t_total
            final_step = share >= 1.0
            s_reads = min(int(round(d_reads * share)), rr)
            s_writes = min(int(round(writes_d * share)), rw)
            s_host = int(round(host_eff * share))
            s_pim = int(round(pim_plain * share))
            s_pimr = int(round(pim_ret * share))
            h_raw = int(round((atomics_dem - tp) * share))
            over = s_pim + s_pimr + h_raw - ra
            if over > 0:
                cut = min(over, h_raw)
                h_raw -= cut
                over -= cut
                cut = min(over, s_pim)
                s_pim -= cut
                s_pimr -= over - cut
            if final_step:
                s_reads = rr
                s_writes = rw
                leftover = ra - (s_pim + s_pimr + h_raw)
                extra_pim = min(leftover, int(round(leftover * fraction)))
                extra_host = leftover - extra_pim
                s_pim += extra_pim
                h_raw += extra_host
                s_host += int(round(extra_host * coal))
            rr -= s_reads
            rw -= s_writes
            ra -= s_pim + s_pimr + h_raw
            keep = 1.0 - share
            sr *= keep
            sw_ *= keep
            sa *= keep
            sar *= keep
            scc *= keep

            # ---- served traffic, rates, power ---------------------------
            srf = ((s_reads + s_host) * rq_r + (s_writes + s_host) * rq_w
                   + s_pim * rq_p + s_pimr * rq_pr)
            ssf = ((s_reads + s_host) * rs_r + (s_writes + s_host) * rs_w
                   + s_pim * rs_p + s_pimr * rs_pr)
            lb = (srf + ssf) * fb
            db = 64 * (s_reads + s_writes + 2 * s_host) + 16 * s_pimr
            s_idb = (64 * (s_reads + s_writes + 2 * s_host)
                     + 32 * (s_pim + s_pimr))
            ext = lb * eq / dt_ns
            intr = s_idb / dt_ns
            pim_rate = (s_pim + s_pimr) / dt_ns

            if not exempt:
                sflag = tnow - nsamp >= period
                if sflag:
                    if warning and not samples_safe:
                        sample_stop = True
                    nsamp = tnow
                debt += dt_ns * 1e-9
                nsub = 0
                while debt >= control_dt_s:
                    debt -= control_dt_s
                    nsub += 1
                cum_sub += nsub
                tidx = cum_sub - 1
            else:
                nsub = 0
                tidx = -1
                sflag = False

            pkg = ((sl_w + le * ext * 1e9 * 8)
                   + es * (fe128 * pim_rate * 1e9
                           + (sd_w + de * intr * 1e9 * 8)))
            pkg_acc += pkg * dt_ns * 1e-9
            busy_acc += dt_ns
            pt_acc += dt_ns * 1e-9
            t_start = tnow
            tnow = tnow + dt_ns * 1e-9
            tlf = tnow >= next_tl
            if tlf:
                next_tl = (math.floor(tnow / tl_dt) + 1.0) * tl_dt

            steps.append((
                dt_ns, t_start, tnow,
                s_reads, s_writes, s_host, s_pim, s_pimr, h_raw,
                lb, db, nsub, tidx, sflag, tlf,
                ext, intr, pim_rate,
                pkg_acc, busy_acc, pt_acc, debt, next_tl,
                sr, sw_, sa, sar, scc, rr, rw, ra,
            ))
            if sample_stop:
                break

        b.cum_sub = cum_sub
        b.sample_stop = sample_stop

    def _march_coeffs(self, b: "_Burst", cols) -> Optional[tuple]:
        """Thermal-march inputs: ``(z0, t0_peak, coeffs)``.

        ``coeffs`` is the (6, cum_sub) power-basis weight matrix of the
        burst's thermal substeps (``None`` when the burst spans none).
        Returns ``None`` when the thermal state cannot be represented in
        the reduced basis — the caller reverts to exact stepping.
        """
        sim = self.sim
        if self._z is not None:
            z0 = self._z
            t0_peak = self._z_peak
        else:
            t0_peak = sim.thermal.peak_dram_c()
            z0, _resid = self._prop.project(sim.thermal.state)
            if z0 is None:
                return None
        if b.cum_sub == 0:
            return z0, t0_peak, None
        es = b.es
        nsub_arr = np.asarray(cols[11], dtype=np.int64)
        coeffs = np.empty((6, b.cum_sub))
        coeffs[0] = 1.0
        coeffs[1] = es
        coeffs[2] = np.repeat(np.asarray(cols[15]), nsub_arr)
        coeffs[3] = es * np.repeat(np.asarray(cols[16]), nsub_arr)
        coeffs[4] = es * np.repeat(np.asarray(cols[17]), nsub_arr)
        coeffs[5] = b.amb_forcing
        return z0, t0_peak, coeffs

    def _temps_of(self, b: "_Burst", cols, peaks, t0_peak) -> np.ndarray:
        """Per-step decision temperatures from the marched peaks.

        A step with no thermal substep sees the temperature left by the
        last substep before it (or the burst-entry peak).
        """
        tidx_arr = np.asarray(cols[12], dtype=np.int64)
        return np.concatenate(([t0_peak], peaks))[tidx_arr + 1]

    def _validate(self, b: "_Burst", temps) -> tuple:
        """Longest provable prefix: ``(j, flip_stop, phase_stop)``.

        ``j`` is the committed length; ``flip_stop`` marks a decisive
        sensor-hysteresis flip on the final step, ``phase_stop`` a
        decisive temperature-phase crossing (the new phase).
        """
        sim = self.sim
        flow = sim.flow
        K = len(b.steps)
        warning = b.warning
        lo, hi = self._phase_band(b.phase0)
        # Quanta inside the band continue the burst. A quantum
        # decisively *outside* it may end the burst instead of
        # failing it: the oracle applies the phase change after the
        # step's thermal solve, so the crossing step itself runs
        # entirely under the old phase and only later quanta see the
        # new capacities. Anything within MARGIN_C of a boundary is
        # ambiguous and falls back to the exact solver.
        bad = (temps >= hi - MARGIN_C) & (temps < hi + MARGIN_C)
        stop = temps >= hi + MARGIN_C
        if lo is not None:
            bad |= (temps >= lo - MARGIN_C) & (temps < lo + MARGIN_C)
            stop |= temps < lo - MARGIN_C
        sflag_arr = np.fromiter(
            (s[13] for s in b.steps), dtype=bool, count=K
        )
        # Sensor hysteresis: a sample decisively across the warn or
        # clear threshold flips the warning state — again only later
        # quanta (plus the flip step's own callback, delivered at
        # commit) observe it, so the flip step can be the burst's
        # last.
        if warning:
            thr = sim.sensor.clear_threshold_c
            flips = sflag_arr & (temps < thr - MARGIN_C)
        else:
            thr = sim.sensor.warn_threshold_c
            flips = sflag_arr & (temps >= thr + MARGIN_C)
        bad |= (
            sflag_arr
            & (temps >= thr - MARGIN_C)
            & (temps < thr + MARGIN_C)
        )
        stop |= flips
        viol = np.nonzero(bad)[0]
        j = int(viol[0]) if viol.size else K
        flip_stop = False
        phase_stop: Optional[TemperaturePhase] = None
        cand = np.nonzero(stop[:j])[0]
        if cand.size:
            f = int(cand[0])
            t_f = float(temps[f])
            pol = flow.policy
            new_phase = pol.phase(t_f)
            # A shutdown crossing needs the scalar step's recovery
            # branch; and a multi-band jump may land inside another
            # threshold's margin — guard every decision threshold.
            decisive = new_phase is not TemperaturePhase.SHUTDOWN
            if decisive and not pol.conservative_shutdown:
                decisive = all(
                    abs(t_f - t) >= MARGIN_C for t in pol.thresholds_c
                )
            if decisive:
                j = f + 1
                flip_stop = bool(flips[f])
                if new_phase is not b.phase0:
                    phase_stop = new_phase
            else:
                j = min(j, f)
        return j, flip_stop, phase_stop

    def _commit(
        self, b: "_Burst", cols, j: int, flip_stop: bool,
        phase_stop, Z, peaks, temps,
    ) -> int:
        """Apply the validated prefix of ``j`` quanta; returns ``j``."""
        sim = self.sim
        flow = sim.flow
        exempt = self.exempt
        policy = self.policy
        warning = b.warning
        fraction = b.fraction
        steps = b.steps
        K = len(steps)
        full = j == K
        if not exempt:
            committed_sub = sum(cols[11][:j])
            if committed_sub > 0:
                # Keep the state in reduced coordinates; it is
                # materialized lazily before the next exact solver use.
                self._z = Z[:, committed_sub - 1]
                self._z_peak = float(peaks[committed_sub - 1])
        else:
            committed_sub = 0

        end_now = cols[2][j - 1]
        committed_entries = [
            e for e in b.entries if e[0] < j or (full and e[0] <= j)
        ]
        self.launch_trace.seek(b.pos0 + len(committed_entries))
        for idx, nb, ntraffic in committed_entries:
            t_at = cols[1][idx] if idx < j else end_now
            self._close_epoch(t_at)
            self._open_epoch(nb, t_at, traffic=ntraffic)

        # Fluid remainder and integer ledgers after the last committed
        # quantum (the sequence of float ops matches the scalar loop).
        # When the burst ended right after an epoch advance (a committed
        # entry starting at step j), the open epoch is fresh and has no
        # recorded post-state to restore — leave it untouched.
        if not (committed_entries and committed_entries[-1][0] == j):
            st = self.state
            st.reads = cols[23][j - 1]
            st.writes = cols[24][j - 1]
            st.atomics = cols[25][j - 1]
            st.atomics_ret = cols[26][j - 1]
            st.compute_cycles = cols[27][j - 1]
            self.rem_reads = cols[28][j - 1]
            self.rem_writes = cols[29][j - 1]
            self.rem_atomics = cols[30][j - 1]

        self.now_s = end_now
        self.package_energy_j = cols[18][j - 1]
        flow.stats.busy_ns = cols[19][j - 1]
        if phase_stop is not None:
            # The crossing step's dt accrues to the *new* phase (the
            # oracle bills phase time after updating the phase).
            self.phase_time[b.phase0.name] = (
                cols[20][j - 2] if j > 1 else b.pt0
            )
        else:
            self.phase_time[b.phase0.name] = cols[20][j - 1]
        self.thermal_debt_s = cols[21][j - 1]
        self.next_sample = cols[22][j - 1]

        sh_sum = sum(cols[5][:j])
        sp_sum = sum(cols[6][:j])
        spr_sum = sum(cols[7][:j])
        self.link_bytes += sum(cols[9][:j])
        self.data_bytes += sum(cols[10][:j])
        self.pim_ops_total += sp_sum + spr_sum
        self.host_atomics_total += sh_sum
        self.host_assigned_total += sum(cols[8][:j])
        self.control_steps += j
        self.thermal_steps += committed_sub
        if flip_stop:
            # The final step's sample flipped the warning: the oracle
            # counts that step under the *new* state.
            self.warnings += (j - 1) if warning else 1
        elif warning:
            self.warnings += j
        self.peak_temp = max(self.peak_temp, float(temps[:j].max()))
        self.last_temp_c = float(temps[j - 1])
        if fraction != self.frac_tw.value:
            self.frac_tw.update(fraction, b.t0)
        self.dt_hist.add_many(np.asarray(cols[0][:j]))

        fs = flow.stats
        fs.pim_ops += sp_sum + spr_sum
        fs.host_atomics += sh_sum
        ledger = fs.ledger
        ledger.record(PacketType.READ64, sum(cols[3][:j]) + sh_sum)
        ledger.record(PacketType.WRITE64, sum(cols[4][:j]) + sh_sum)
        ledger.record(PacketType.PIM, sp_sum)
        ledger.record(PacketType.PIM_RET, spr_sum)

        # Rare per-quantum events: sensor samples, warning instants,
        # timeline points.
        sensor = sim.sensor
        traced = self.traced
        for k in range(j):
            stp = steps[k]
            if stp[13]:
                sensor.observe(float(temps[k]), stp[1])
            if traced and (warning != (flip_stop and k == j - 1)):
                self.tracer.instant(
                    "sim.thermal_warning", cat="sim",
                    sim_time_ns=stp[1] * 1e9, clock="sim",
                    temp_c=sensor.last_temp_c,
                )
            if stp[14]:
                self.timeline.append(
                    (stp[2], float(temps[k]), stp[17], fraction)
                )
        if phase_stop is not None:
            flow.phase = phase_stop
            self.phase_time[phase_stop.name] += cols[0][j - 1] * 1e-9
        if flip_stop:
            flow.set_thermal_warning(not warning)
            if not warning:
                # Newly-set warning: deliver the flip step's callback (the
                # observe above updated the sensor), exactly as the scalar
                # loop would at that step.
                policy.on_thermal_warning(steps[j - 1][1], sensor.last_temp_c)
        elif b.sample_stop and full:
            # The burst ended on a sample whose callback may act: deliver
            # it now, after the observe above updated the sensor, exactly
            # as the scalar loop would at that step.
            policy.on_thermal_warning(steps[j - 1][1], sensor.last_temp_c)

        if not self._epoch_pending():
            self._close_epoch(self.now_s)

        self.burst_hist.add(float(j))
        if traced:
            self.tracer.complete(
                "sim.macro_burst", b.wall_b0, _time.perf_counter(),
                cat="sim", steps=j, speculated=K,
                thermal_substeps=committed_sub,
                sim_start_s=b.t0, sim_end_s=end_now,
            )

        if full and K == b.cap:
            self.spec_cap = min(b.cap * 4, SPEC_CAP_MAX)
        elif not full:
            if flip_stop or phase_stop is not None:
                # Decisive boundary stop: a successful commit up to a real
                # event, not a misprediction. Reuse the window across the
                # boundary, sized to ~2× what this burst committed, instead
                # of collapsing to SPEC_CAP_NEAR and re-growing 4×-per-burst
                # from scratch (the regrowth stalls a policy that keeps
                # crossing thresholds — HW-DynT's warning churn).
                self.spec_cap = max(SPEC_CAP_NEAR, min(b.cap, 2 * j))
            else:
                # Truncated by validation: the trajectory is riding a
                # threshold ambiguously — keep the next attempt's wasted
                # speculation proportional to what it commits.
                self.spec_cap = max(SPEC_CAP_NEAR, min(SPEC_CAP_MIN, 2 * j))
        return j

    def _burst_prepare(self) -> Optional[tuple]:
        """Begin + speculate + assemble march inputs; ``None`` → no burst.

        Returns ``(b, cols, z0, t0_peak, coeffs)`` ready for the thermal
        march. The gang engine collects these across lanes and batches
        the march; the solo path marches immediately.
        """
        b = self._spec_begin()
        if b is None:
            return None
        self._speculate(b)
        if not b.steps:
            self.launch_trace.seek(b.pos0)
            return None
        cols = list(zip(*b.steps))
        if self.exempt:
            return b, cols, None, None, None
        mc = self._march_coeffs(b, cols)
        if mc is None:
            self._prop_bad = True
            self.launch_trace.seek(b.pos0)
            return None
        z0, t0_peak, coeffs = mc
        return b, cols, z0, t0_peak, coeffs

    def _burst_finish(self, pending: tuple, Z, peaks) -> int:
        """Validate the marched burst and commit its provable prefix."""
        b, cols, _z0, t0_peak, _coeffs = pending
        K = len(b.steps)
        if not self.exempt:
            temps = self._temps_of(b, cols, peaks, t0_peak)
            j, flip_stop, phase_stop = self._validate(b, temps)
        else:
            temps = np.full(K, self.sim.thermal.ambient_c)
            j = K
            flip_stop = False
            phase_stop = None

        if j < MIN_BURST:
            self.launch_trace.seek(b.pos0)
            if j < K:
                # Validation truncation: the trajectory is riding a
                # threshold — stop re-speculating every scalar step.
                self.fail_streak += 1
                self.skip = min(MAX_BACKOFF_STEPS, 2 ** self.fail_streak)
                self.spec_cap = SPEC_CAP_NEAR
            return 0
        self.fail_streak = 0
        return self._commit(
            b, cols, j, flip_stop, phase_stop, Z, peaks, temps
        )

    def _march(self, pending: tuple):
        """Solo thermal march for one prepared burst: ``(Z, peaks)``."""
        _b, _cols, z0, _t0_peak, coeffs = pending
        if coeffs is None:
            return None, np.empty(0)
        Z = self._prop.march(z0, coeffs)
        return Z, self._reader.peaks(Z)

    def _try_burst(self) -> int:
        """Speculate/validate/commit one burst; returns committed quanta."""
        pending = self._burst_prepare()
        if pending is None:
            return 0
        Z, peaks = self._march(pending)
        return self._burst_finish(pending, Z, peaks)


class _Burst:
    """One burst's stage-to-stage carrier (see the burst path above)."""

    __slots__ = (
        "t0", "fraction", "end_t", "warning", "samples_safe", "phase0",
        "es", "amb_forcing", "link_gbs", "dram_gbs", "fu_cap", "cap",
        "pos0", "pt0", "wall_b0", "steps", "entries", "cum_sub",
        "sample_stop",
    )
