"""Discrete GPU-runtime semantics: thread-block manager + interrupts.

The fluid co-simulation (:mod:`repro.gpu.simulator`) models offloading
intensity as a fraction; this module models the *discrete* runtime
behaviour of SW-DynT (Fig. 7) — individual CUDA blocks requesting PIM
tokens at launch, running the PIM or shadow non-PIM kernel entry point,
and returning tokens at completion — so protocol-level tests can check
the exact FCFS token semantics the paper describes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.token_pool import PimTokenPool
from repro.gpu.config import GPU_DEFAULT, GpuConfig


class CodeVersion(enum.Enum):
    """Which kernel entry point a block was launched with."""

    PIM = "pim"            # original kernel, atomics offloaded
    NON_PIM = "non-pim"    # shadow kernel (cuda_kernel_np), host atomics


@dataclass
class BlockRecord:
    block_id: int
    version: CodeVersion
    launched_at: float
    completed_at: Optional[float] = None


@dataclass
class ThreadBlockManager:
    """Launches blocks against a PIM token pool (FCFS).

    Mirrors Fig. 7: the manager requests a token before each launch; on
    success the block uses the PIM entry point, otherwise the shadow
    non-PIM entry point. Tokens return at block completion.
    """

    pool: PimTokenPool
    gpu: GpuConfig = GPU_DEFAULT
    _next_id: int = field(default=0, init=False)
    _in_flight: Dict[int, BlockRecord] = field(default_factory=dict, init=False)
    log: List[BlockRecord] = field(default_factory=list, init=False)

    def launch_block(self, now_s: float = 0.0) -> BlockRecord:
        """Launch the next block; the pool decides its code version."""
        version = CodeVersion.PIM if self.pool.request() else CodeVersion.NON_PIM
        rec = BlockRecord(self._next_id, version, launched_at=now_s)
        self._next_id += 1
        self._in_flight[rec.block_id] = rec
        self.log.append(rec)
        return rec

    def complete_block(self, block_id: int, now_s: float = 0.0) -> None:
        """Block finished; PIM blocks return their token."""
        rec = self._in_flight.pop(block_id, None)
        if rec is None:
            raise KeyError(f"block {block_id} is not in flight")
        rec.completed_at = now_s
        if rec.version is CodeVersion.PIM:
            self.pool.release()

    @property
    def in_flight_pim_blocks(self) -> int:
        return sum(
            1 for r in self._in_flight.values() if r.version is CodeVersion.PIM
        )

    @property
    def in_flight_blocks(self) -> int:
        return len(self._in_flight)


@dataclass
class GpuRuntime:
    """Host-side runtime: block manager + thermal interrupt handler.

    Receiving a thermal-warning response triggers a thermal interrupt; the
    handler reduces the PTP by the control factor (Sec. IV-B). The actual
    rate limiting/delay modelling lives in :class:`repro.core.sw_dynt.SwDynT`;
    this class provides the discrete mechanism.
    """

    manager: ThreadBlockManager
    control_factor: int = 8
    interrupts_handled: int = field(default=0, init=False)

    def on_response_errstat(self, errstat: int, now_s: float = 0.0) -> bool:
        """Inspect a response's ERRSTAT; handle thermal interrupts.

        Returns True when a thermal interrupt fired.
        """
        from repro.hmc.packet import ERRSTAT_THERMAL_WARNING

        if errstat != ERRSTAT_THERMAL_WARNING:
            return False
        self.interrupts_handled += 1
        self.manager.pool.reduce(self.control_factor, now_s)
        return True
