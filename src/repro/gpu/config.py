"""GPU configuration (Table IV).

Host GPU per the paper's evaluation: 16 PTX SMs, 32 threads per warp,
1.4 GHz, 16 KB private L1D per SM, 1 MB 16-way shared L2.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuConfig:
    """Host GPU geometry and clocks."""

    num_sms: int = 16
    threads_per_warp: int = 32
    freq_ghz: float = 1.4
    l1d_kb: int = 16
    l2_kb: int = 1024
    l2_ways: int = 16
    max_warps_per_sm: int = 48
    max_blocks_per_sm: int = 8
    threads_per_block: int = 256
    #: Per-SM issue throughput in warp-instructions per cycle.
    issue_width: int = 2
    #: Aggregate host-atomic throughput (ops/ns) at the L2 ROP units.
    #: Same-address atomics serialize there; on power-law graphs (hub
    #: contention) the sustained rate is well below the link bandwidth,
    #: which is why offloading atomics to PIM relieves a real bottleneck
    #: even before any bandwidth is saved.
    host_atomic_ops_per_ns: float = 0.8

    def __post_init__(self) -> None:
        if min(self.num_sms, self.threads_per_warp, self.max_warps_per_sm,
               self.max_blocks_per_sm, self.threads_per_block,
               self.issue_width) <= 0:
            raise ValueError(f"GPU geometry must be positive: {self}")
        if self.freq_ghz <= 0:
            raise ValueError(f"frequency must be positive: {self.freq_ghz}")
        if self.host_atomic_ops_per_ns <= 0:
            raise ValueError(
                f"atomic throughput must be positive: {self.host_atomic_ops_per_ns}"
            )
        if self.threads_per_block % self.threads_per_warp != 0:
            raise ValueError(
                f"block size {self.threads_per_block} must be a multiple of "
                f"warp size {self.threads_per_warp}"
            )

    @property
    def warps_per_block(self) -> int:
        return self.threads_per_block // self.threads_per_warp

    @property
    def max_concurrent_blocks(self) -> int:
        """Blocks resident across the GPU (MaxBlk# of Eq. (1))."""
        per_sm = min(
            self.max_blocks_per_sm, self.max_warps_per_sm // self.warps_per_block
        )
        return per_sm * self.num_sms

    @property
    def max_concurrent_warps(self) -> int:
        return self.max_concurrent_blocks * self.warps_per_block

    @property
    def peak_warp_instructions_per_ns(self) -> float:
        """Aggregate issue rate, warp-instructions per ns."""
        return self.num_sms * self.issue_width * self.freq_ghz


#: Table IV configuration.
GPU_DEFAULT = GpuConfig()
