"""Gang engine: march an entire sweep's control loops in lockstep.

A sweep over one workload — the Fig. 10/13 grids, a ``POST /sweeps``
cross-product, a cooling study — is N near-identical control loops
replaying the *same* epoch trace under different policies, coolings, or
offload fractions. Run per-run, each loop pays its own speculation,
thermal march, and peak readout. The gang engine runs K such
configurations ("lanes") in lockstep rounds:

1. **Round** — every active lane advances by one burst attempt (or one
   scalar step), exactly the :class:`~repro.gpu.macro.MacroEngine` loop
   body. Lanes are full ``MacroEngine`` instances; begin, speculate,
   validate, and commit are the inherited per-run code, so each lane's
   arithmetic is *bit-identical* to a solo macro run (itself bit-equal
   to the stepped reference).
2. **Batched march** — the prepared bursts of all lanes sharing a
   reduced-propagator basis (same package + cooling) are marched
   together: :meth:`~repro.thermal.propagator.ReducedPropagator.march_many`
   stacks the per-lane reduced states into one ``(lanes, rank)``
   recurrence, one fused update per quantum instead of K separate
   marches. Peak readouts stay per-lane (each lane owns a
   :class:`~repro.thermal.propagator.PeakReader` whose certified state
   is part of the per-run determinism contract).
3. **Divergence** — a lane whose round cannot burst (sensor hysteresis
   flip pending, phase crossing, warning the policy may act on, scenario
   event window, shutdown recovery) simply takes the scalar path for
   that round: it is masked out of the batched march and rejoins the
   gang next round. A lane whose reduced basis goes unhealthy
   (``_prop_bad``) can never burst again and is *permanently* detached:
   it finishes immediately on the per-run macro path, preserving its
   solo-run float sequence.

Shared state between lanes is restricted to provably bit-safe reuse:
the process-cached thermal operators/propagator (immutable), a
cache-filter memo (the filter is a pure function of the batch, shared
only between lanes with identical cache parameters), and the epoch
trace's batch objects (lanes hold independent cursors). Everything
mutable — flow model, sensor, thermal transient state, policy, stats —
is per-lane.
"""

from __future__ import annotations

import time as _time
from dataclasses import replace as _dc_replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.gpu.config import GPU_DEFAULT, GpuConfig
from repro.gpu.kernel import KernelLaunch
from repro.gpu.macro import MacroEngine
from repro.hmc.config import HMC_2_0, HmcConfig
from repro.sim.trace import TraceCursor
from repro.thermal.cooling import COMMODITY_SERVER, CoolingSolution

if TYPE_CHECKING:
    from repro.core.policies import OffloadPolicy
    from repro.gpu.simulator import SimulationResult, SystemSimulator
    from repro.graph.csr import CSRGraph
    from repro.workloads.base import GraphWorkload


class GangLane(MacroEngine):
    """One gang member: a macro engine plus its launch/policy binding.

    Everything that decides a float is inherited from
    :class:`MacroEngine`; the subclass only carries gang bookkeeping.
    """

    engine_label = "gang"

    def __init__(
        self, sim: "SystemSimulator", launch: KernelLaunch,
        policy: "OffloadPolicy",
    ) -> None:
        super().__init__(sim)
        self.launch = launch
        self.gang_policy = policy
        self.result: Optional["SimulationResult"] = None
        #: True once the lane permanently left the gang (unhealthy
        #: reduced basis) and completed on the per-run macro path.
        self.detached = False
        self._wall0 = 0.0


class GangEngine:
    """Lockstep driver over a list of :class:`GangLane`.

    Results come back in lane order; each equals what the lane's
    configuration would produce through a solo macro run, bit for bit.
    """

    def __init__(self, lanes: Sequence[GangLane]) -> None:
        if not lanes:
            raise ValueError("a gang needs at least one lane")
        self.lanes = list(lanes)
        self.rounds = 0
        self.batched_marches = 0
        #: Sum over rounds of (active lanes / gang size); divided by
        #: ``rounds`` this is the mean lane occupancy the telemetry
        #: series reports.
        self._occupancy_acc = 0.0

    # -- driver ------------------------------------------------------------

    def run(self) -> List["SimulationResult"]:
        lanes = self.lanes
        n = len(lanes)
        for lane in lanes:
            lane._wall0 = _time.perf_counter()
            lane._run_begin(lane.launch, lane.gang_policy)
        active = list(lanes)
        while active:
            self.rounds += 1
            self._occupancy_acc += len(active) / n
            ready: List[Tuple[GangLane, tuple]] = []
            nxt: List[GangLane] = []
            for lane in active:
                if not lane._round_open():
                    self._finish(lane)
                    continue
                if lane.skip > 0:
                    lane.skip -= 1
                    lane._scalar_step()
                    lane._sink_sample()
                    nxt.append(lane)
                    continue
                pending = lane._burst_prepare()
                if pending is None:
                    if lane._prop_bad:
                        # Reduced basis unhealthy: no burst will ever
                        # succeed again. Detach and finish solo — the
                        # remaining rounds are scalar anyway and batching
                        # has nothing left to offer this lane.
                        self._finish_detached(lane)
                        continue
                    lane._scalar_step()
                    lane._sink_sample()
                    nxt.append(lane)
                    continue
                ready.append((lane, pending))
                nxt.append(lane)
            for lane, pending, Z, peaks in self._march_batched(ready):
                if lane._burst_finish(pending, Z, peaks) == 0:
                    lane._scalar_step()
                lane._sink_sample()
            active = [ln for ln in nxt if ln.result is None]
        self._record_gang_telemetry()
        return [lane.result for lane in lanes]

    def _march_batched(self, ready):
        """March all prepared bursts, fusing lanes that share a basis.

        Lanes are grouped by propagator identity (the process-level
        operator cache hands every same-package/cooling lane the same
        instance); each group runs one ``march_many``. Peak readout is
        per-lane through the lane's own certified reader.
        """
        singles: List[Tuple[GangLane, tuple]] = []
        groups: Dict[tuple, List[Tuple[GangLane, tuple]]] = {}
        out = []
        for lane, pending in ready:
            coeffs = pending[4]
            if coeffs is None:
                # Thermally exempt lane (ideal bound): nothing to march.
                out.append((lane, pending, None, np.empty(0)))
            else:
                # Bucket by burst-length magnitude as well as basis: the
                # fused recurrence is paid to the longest lane, so fusing
                # a 5-quantum burst with a 500-quantum one would cost far
                # more than marching them apart. Same-bucket lanes are
                # within 2× of each other.
                key = (id(lane._prop), (coeffs.shape[1] - 1).bit_length())
                groups.setdefault(key, []).append((lane, pending))
        for members in groups.values():
            if len(members) == 1:
                singles.extend(members)
                continue
            prop = members[0][0]._prop
            Zs = prop.march_many(
                [p[2] for _, p in members],
                [p[4] for _, p in members],
            )
            self.batched_marches += 1
            for (lane, pending), Z in zip(members, Zs):
                out.append((lane, pending, Z, lane._reader.peaks(Z)))
        for lane, pending in singles:
            Z, peaks = lane._march(pending)
            out.append((lane, pending, Z, peaks))
        return out

    def _finish(self, lane: GangLane) -> None:
        lane.result = lane._run_finish()
        lane.sim._record_run_telemetry(
            lane.result, _time.perf_counter() - lane._wall0
        )

    def _finish_detached(self, lane: GangLane) -> None:
        """Complete a permanently-diverged lane on the solo macro path."""
        lane.detached = True
        while lane._round_open():
            if lane.skip > 0:
                lane.skip -= 1
                lane._scalar_step()
            elif lane._try_burst() == 0:
                lane._scalar_step()
            lane._sink_sample()
        self._finish(lane)

    def _record_gang_telemetry(self) -> None:
        """Fold one gang run into the ``repro_gang_*`` telemetry series."""
        from repro.telemetry import get_registry

        reg = get_registry()
        n = len(self.lanes)
        reg.counter(
            "repro_gang_runs_total", "Completed gang-engine sweeps"
        ).inc()
        reg.counter(
            "repro_gang_lanes_total", "Lanes run across all gang sweeps"
        ).inc(n)
        reg.counter(
            "repro_gang_rounds_total", "Lockstep rounds across all gangs"
        ).inc(self.rounds)
        reg.counter(
            "repro_gang_batched_marches_total",
            "Cross-lane fused thermal marches",
        ).inc(self.batched_marches)
        reg.counter(
            "repro_gang_detached_lanes_total",
            "Lanes that diverged permanently and finished solo",
        ).inc(sum(1 for ln in self.lanes if ln.detached))
        reg.histogram(
            "repro_gang_lane_occupancy",
            "Mean fraction of lanes active per lockstep round",
        ).observe(self._occupancy_acc / max(1, self.rounds))


# -- construction ----------------------------------------------------------


def _fork_launch(launch: KernelLaunch) -> KernelLaunch:
    """Per-lane launch with an independent cursor over the shared trace.

    The ``OpBatch`` objects themselves are shared (they are immutable),
    which is what keeps the lanes' cache-filter memo keyable by batch
    identity.
    """
    return _dc_replace(launch, trace=TraceCursor(iter(launch.trace)))


def build_lane(
    launch: KernelLaunch,
    policy: Union[str, "OffloadPolicy"],
    *,
    gpu: GpuConfig = GPU_DEFAULT,
    hmc: HmcConfig = HMC_2_0,
    cooling: CoolingSolution = COMMODITY_SERVER,
    ambient_c: float = 25.0,
    control_dt_s: float = 25e-6,
    phase_policy=None,
    cache=None,
    scenario=None,
) -> GangLane:
    """Assemble one lane: private simulator state over shared operators.

    The thermal model instance is per-lane (its transient state evolves
    with the lane) but the expensive operators behind it come from the
    process-level cache, so same-cooling lanes share one assembly,
    factorization, and reduced basis — which is also what lets the gang
    driver fuse their marches.
    """
    from repro.core.policies import OffloadPolicy, make_policy
    from repro.gpu.simulator import SystemSimulator
    from repro.hmc.flow import HmcFlowModel
    from repro.thermal.model import HmcThermalModel
    from repro.thermal.sensor import ThermalSensor

    if isinstance(policy, str):
        policy = make_policy(policy)
    elif not isinstance(policy, OffloadPolicy):
        from repro.agents import as_policy

        policy = as_policy(policy)
    sim = SystemSimulator(
        gpu=gpu,
        hmc_config=hmc,
        cache=cache,
        flow=HmcFlowModel(hmc, phase_policy=phase_policy),
        thermal=HmcThermalModel(hmc, cooling=cooling, ambient_c=ambient_c),
        sensor=ThermalSensor(),
        control_dt_s=control_dt_s,
        engine="gang",
        scenario=scenario,
    )
    return GangLane(sim, _fork_launch(launch), policy)


def run_gang(
    workload: "GraphWorkload",
    graph: "CSRGraph",
    members: Sequence[Union[str, "OffloadPolicy", tuple]],
    *,
    gpu: GpuConfig = GPU_DEFAULT,
    hmc: HmcConfig = HMC_2_0,
    cooling: CoolingSolution = COMMODITY_SERVER,
    ambient_c: float = 25.0,
    control_dt_s: float = 25e-6,
    phase_policy=None,
    launch: Optional[KernelLaunch] = None,
    stats: Optional[list] = None,
) -> List["SimulationResult"]:
    """Run one workload under K configurations as a gang.

    ``members`` entries are either a policy (name or instance) or a
    ``(policy, cooling)`` pair overriding the gang-default cooling —
    the eligible sweep shape: one workload/dataset/scale, varying
    policy, cooling, or static offload fraction. Results come back in
    member order, bit-equal to per-run macro execution. When ``stats``
    is a list, each lane's ``sim.*`` :class:`~repro.sim.stats.StatRegistry`
    is appended to it in member order.
    """
    if launch is None:
        launch = workload.launch(graph, gpu)
    lanes = []
    for member in members:
        if isinstance(member, tuple):
            policy, member_cooling = member
        else:
            policy, member_cooling = member, cooling
        lanes.append(build_lane(
            launch, policy,
            gpu=gpu, hmc=hmc,
            cooling=member_cooling or cooling,
            ambient_c=ambient_c, control_dt_s=control_dt_s,
            phase_policy=phase_policy,
            cache=workload.cache_model(gpu),
        ))
    # One cache-filter memo across lanes with identical cache models —
    # the filter is pure, so sharing only deduplicates work.
    memo: dict = {}
    sig0 = _cache_sig(lanes[0].sim.cache)
    if all(_cache_sig(ln.sim.cache) == sig0 for ln in lanes):
        for ln in lanes:
            ln._filter_memo = memo
    results = GangEngine(lanes).run()
    if stats is not None:
        stats.extend(ln.sim.stats for ln in lanes)
    return results


def _cache_sig(cache) -> tuple:
    return (
        cache.read_hit_rate, cache.write_hit_rate,
        cache.host_atomic_coalescing, cache.coherence_mode,
        cache.pei_dirty_fraction,
    )
