"""SM compute-time model.

Graph kernels on GPUs are dominated by memory traffic, but the SMs impose
a compute floor: an epoch cannot retire faster than its instructions can
issue. Divergent warps serialize their branch paths, reducing effective
issue throughput — warp-centric kernels keep divergence near zero while
topological thread-centric ones diverge heavily (Sec. IV-B).
"""

from __future__ import annotations

from repro.gpu.config import GpuConfig
from repro.sim.trace import OpBatch

#: Issue-slot cost of one divergent warp relative to a convergent one.
DIVERGENCE_SERIALIZATION = 2.0


class SmArray:
    """Aggregate compute model of all SMs."""

    def __init__(self, config: GpuConfig) -> None:
        self.config = config

    def compute_time_ns(self, batch: OpBatch) -> float:
        """Lower bound on the epoch's duration from instruction issue.

        ``batch.compute_cycles`` counts warp-instructions; divergence
        inflates them by serializing branch paths.
        """
        if batch.compute_cycles <= 0:
            return 0.0
        div = batch.divergent_warp_ratio
        inflation = 1.0 + (DIVERGENCE_SERIALIZATION - 1.0) * div
        instructions = batch.compute_cycles * inflation
        return instructions / self.config.peak_warp_instructions_per_ns

    def occupancy_limit(self, active_blocks: int) -> float:
        """Fraction of peak throughput usable with ``active_blocks``
        resident (fewer blocks than the GPU can host → underutilization)."""
        if active_blocks < 0:
            raise ValueError(f"negative block count: {active_blocks}")
        cap = self.config.max_concurrent_blocks
        return min(1.0, active_blocks / cap) if cap else 0.0
