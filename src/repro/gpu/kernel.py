"""Kernel launch descriptions.

A :class:`KernelLaunch` binds a workload's epoch trace to GPU launch
geometry plus the static properties CoolPIM's Eq. (1) initialization needs
(PIM intensity, divergent-warp ratio). The GPU compiler's PIM/non-PIM dual
code generation (Sec. IV-B) is represented by the fact that every epoch
can execute with any ``pim_fraction`` — the shadow non-PIM code maps each
PIM instruction back to a CUDA atomic (Table III).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.gpu.config import GpuConfig
from repro.sim.trace import OpBatch, TraceCursor


@dataclass
class KernelLaunch:
    """One GPU kernel launch driven by an epoch trace.

    Attributes
    ----------
    name:
        Workload/kernel identifier.
    trace:
        Epoch trace (replayable).
    total_threads:
        Threads across the whole launch (grid size × block size).
    """

    name: str
    trace: TraceCursor
    total_threads: int
    config: GpuConfig = field(default_factory=GpuConfig)

    def __post_init__(self) -> None:
        if self.total_threads <= 0:
            raise ValueError(f"total_threads must be positive: {self.total_threads}")

    @property
    def num_blocks(self) -> int:
        return math.ceil(self.total_threads / self.config.threads_per_block)

    @property
    def num_warps(self) -> int:
        return math.ceil(self.total_threads / self.config.threads_per_warp)

    # -- static analysis (compile-time inputs to Eq. (1)) ----------------------

    def totals(self) -> OpBatch:
        return self.trace.totals()

    def pim_intensity(self) -> float:
        """Fraction of memory operations that are offloadable atomics.

        Computable at compile time from the kernel's instruction mix
        (Sec. IV-B: "we can compute the PIM instruction intensity in the
        compilation stage").
        """
        t = self.totals()
        if t.total_ops == 0:
            return 0.0
        return t.atomics / t.total_ops

    def divergent_warp_ratio(self) -> float:
        """Trace-wide thread-weighted divergence (Eq. (1) input)."""
        return self.totals().divergent_warp_ratio
