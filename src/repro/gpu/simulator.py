"""Full-system co-simulation: GPU + HMC flow model + thermal + policy.

The simulator drains each workload epoch as a fluid: every control quantum
(default 25 µs) it asks the policy for the current PIM offloading
fraction, splits the epoch's remaining atomics between host execution and
PIM packets, computes the served share from the HMC flow model's
bottleneck analysis, integrates the thermal RC network with the interval's
traffic-driven power, updates the temperature phase (DRAM derating), and
delivers thermal warnings to the policy — closing CoolPIM's feedback loop
(Fig. 6).

Timescales follow the paper: DRAM phases derate service by 20 % per phase
above 85 °C, the sensor samples at 100 µs, Tthrottle/Tthermal delays live
inside the policies, and shutdown (>105 °C) costs a tens-of-seconds
recovery stall (Sec. III-A).
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # avoid a circular import; policies live in repro.core
    from repro.core.policies import OffloadPolicy

from repro.gpu.caches import CacheModel, MemoryTraffic
from repro.gpu.config import GPU_DEFAULT, GpuConfig
from repro.gpu.kernel import KernelLaunch
from repro.gpu.sm import SmArray
from repro.hmc.config import HMC_2_0, HmcConfig
from repro.hmc.dram_timing import TemperaturePhase
from repro.hmc.flow import HmcFlowModel, TrafficDemand
from repro.obs.tracer import get_tracer
from repro.sim.stats import StatRegistry
from repro.sim.trace import OpBatch
from repro.thermal.model import HmcThermalModel
from repro.thermal.power import TrafficPoint
from repro.thermal.sensor import ThermalSensor

#: Shutdown recovery stall (s): the prototype needs tens of seconds to
#: re-enable after an overheat stop, and loses its contents (Sec. III-A).
SHUTDOWN_RECOVERY_S = 20.0


@dataclass
class SimulationResult:
    """Aggregates of one (workload, policy) run."""

    workload: str
    policy: str
    runtime_s: float
    link_bytes: int
    data_bytes: int
    pim_ops: int
    host_atomics: int
    total_atomics: int
    peak_dram_temp_c: float
    thermal_warnings: int
    shutdowns: int
    phase_time_s: dict
    #: Package energy over the run (J), including hot-phase DRAM penalty.
    package_energy_j: float = 0.0
    #: Heat-sink fan energy over the run (J).
    fan_energy_j: float = 0.0
    #: (time_s, peak_temp_c, pim_rate_ops_ns, pim_fraction) samples.
    timeline: List[Tuple[float, float, float, float]] = field(default_factory=list)

    @property
    def total_energy_j(self) -> float:
        """Package + cooling energy (J) — the efficiency metric PIM is
        meant to improve."""
        return self.package_energy_j + self.fan_energy_j

    @property
    def avg_power_w(self) -> float:
        return self.total_energy_j / self.runtime_s if self.runtime_s > 0 else 0.0

    def energy_ratio(self, baseline: "SimulationResult") -> float:
        """Total energy normalized to ``baseline``."""
        return (
            self.total_energy_j / baseline.total_energy_j
            if baseline.total_energy_j > 0
            else 0.0
        )

    @property
    def avg_link_bandwidth_gbs(self) -> float:
        return self.link_bytes / self.runtime_s / 1e9 if self.runtime_s > 0 else 0.0

    @property
    def avg_pim_rate_ops_ns(self) -> float:
        """Average PIM offloading rate over the run (Fig. 12 metric)."""
        return self.pim_ops / (self.runtime_s * 1e9) if self.runtime_s > 0 else 0.0

    @property
    def offload_fraction(self) -> float:
        return self.pim_ops / self.total_atomics if self.total_atomics else 0.0

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Speedup of this run relative to ``baseline`` (Fig. 10 metric)."""
        if self.runtime_s <= 0:
            raise ValueError("runtime must be positive for a speedup")
        return baseline.runtime_s / self.runtime_s

    def bandwidth_ratio(self, baseline: "SimulationResult") -> float:
        """Link-traffic bandwidth normalized to ``baseline`` (Fig. 11)."""
        base = baseline.avg_link_bandwidth_gbs
        return self.avg_link_bandwidth_gbs / base if base > 0 else 0.0

    def to_dict(self, include_timeline: bool = False) -> dict:
        """JSON-serializable summary of the run."""
        out = {
            "workload": self.workload,
            "policy": self.policy,
            "runtime_s": self.runtime_s,
            "link_bytes": self.link_bytes,
            "data_bytes": self.data_bytes,
            "pim_ops": self.pim_ops,
            "host_atomics": self.host_atomics,
            "total_atomics": self.total_atomics,
            "offload_fraction": self.offload_fraction,
            "avg_pim_rate_ops_ns": self.avg_pim_rate_ops_ns,
            "avg_link_bandwidth_gbs": self.avg_link_bandwidth_gbs,
            "peak_dram_temp_c": self.peak_dram_temp_c,
            "thermal_warnings": self.thermal_warnings,
            "shutdowns": self.shutdowns,
            "phase_time_s": dict(self.phase_time_s),
            "package_energy_j": self.package_energy_j,
            "fan_energy_j": self.fan_energy_j,
            "total_energy_j": self.total_energy_j,
            "avg_power_w": self.avg_power_w,
        }
        if include_timeline:
            out["timeline"] = [list(p) for p in self.timeline]
        return out


class _EpochState:
    """Mutable fluid remainder of one epoch."""

    def __init__(self, batch: OpBatch, traffic: MemoryTraffic) -> None:
        self.reads = float(traffic.reads)
        self.writes = float(traffic.writes)
        self.atomics = float(traffic.atomics)
        self.atomics_ret = float(traffic.atomics_with_return)
        self.compute_cycles = float(batch.compute_cycles)
        self.divergence = batch.divergent_warp_ratio
        self.threads = batch.threads

    @property
    def drained(self) -> bool:
        return (
            self.reads < 0.5
            and self.writes < 0.5
            and self.atomics < 0.5
            and self.compute_cycles < 1.0
        )

    def as_batch(self) -> OpBatch:
        return OpBatch(
            reads=int(self.reads),
            writes=int(self.writes),
            atomics=int(self.atomics),
            atomics_with_return=min(int(self.atomics_ret), int(self.atomics)),
            compute_cycles=int(self.compute_cycles),
            threads=self.threads,
            divergent_warp_ratio=self.divergence,
        )

    def drain(self, fraction: float) -> None:
        keep = 1.0 - fraction
        self.reads *= keep
        self.writes *= keep
        self.atomics *= keep
        self.atomics_ret *= keep
        self.compute_cycles *= keep


class SystemSimulator:
    """Co-simulation engine for one GPU + one HMC 2.0 cube."""

    def __init__(
        self,
        gpu: GpuConfig = GPU_DEFAULT,
        hmc_config: HmcConfig = HMC_2_0,
        cache: Optional[CacheModel] = None,
        flow: Optional[HmcFlowModel] = None,
        thermal: Optional[HmcThermalModel] = None,
        sensor: Optional[ThermalSensor] = None,
        control_dt_s: float = 25e-6,
        timeline_dt_s: float = 250e-6,
        warm_start: Optional[TrafficPoint] = None,
        saturation_threads: int = 1500,
        stats: Optional[StatRegistry] = None,
        engine: str = "macro",
        scenario=None,
    ) -> None:
        if control_dt_s <= 0:
            raise ValueError(f"control quantum must be positive: {control_dt_s}")
        if engine not in ("macro", "stepped", "gang"):
            raise ValueError(
                f"engine must be 'macro', 'stepped', or 'gang', "
                f"got {engine!r}"
            )
        if saturation_threads <= 0:
            raise ValueError(
                f"saturation_threads must be positive: {saturation_threads}"
            )
        self.gpu = gpu
        self.hmc_config = hmc_config
        self.cache = cache or CacheModel(gpu)
        self.flow = flow or HmcFlowModel(hmc_config)
        self.thermal = thermal or HmcThermalModel(hmc_config)
        self.sensor = sensor or ThermalSensor()
        self.sm = SmArray(gpu)
        self.control_dt_s = control_dt_s
        self.timeline_dt_s = timeline_dt_s
        #: Concurrent memory streams needed to saturate the memory system
        #: (peak bandwidth x memory latency / line size ~ 1500 in-flight
        #: 64 B requests): epochs with smaller frontiers achieve
        #: proportionally less bandwidth. This is what keeps
        #: small-frontier graphs (road networks) thermally benign.
        self.saturation_threads = saturation_threads
        # The evaluation measures kernels from a query stream on a busy
        # device, not a cold one: warm-start at a moderately-loaded steady
        # point (Fig. 14's thermal warning lands ~2.5 ms into the run).
        self.warm_start = warm_start or TrafficPoint.streaming(240.0)
        #: Per-simulator stat registry; each run() resets and refills the
        #: ``sim.*`` stats, so the last run's numbers are always current.
        self.stats = stats if stats is not None else StatRegistry()
        #: Execution engine: ``"macro"`` (vectorized bursts between
        #: horizon events, the default) or ``"stepped"`` (the scalar
        #: reference loop, kept as the equivalence oracle).
        self.engine = engine
        #: Optional :class:`~repro.scenarios.Scenario` fault-injection
        #: stream, applied identically by both engines through one
        #: per-run :class:`~repro.scenarios.ScenarioDriver` (the single
        #: injection hook — nothing else in the loop knows about faults).
        self.scenario = scenario

    def _scenario_driver(self):
        """Fresh per-run driver for the configured scenario (or None)."""
        if self.scenario is None:
            return None
        from repro.scenarios.driver import ScenarioDriver

        return ScenarioDriver(self.scenario, self)

    # -- helpers -----------------------------------------------------------------

    def _mem_demand(
        self, state: _EpochState, pim_fraction: float
    ) -> Tuple[TrafficDemand, int]:
        """Post-cache demand plus the rounded atomic count feeding it.

        The atomic count is returned so the serving loop can keep an
        exact pre-coalescing conservation ledger (assigned = PIM + host).
        """
        atomics = max(0, int(round(state.atomics)))
        traffic = MemoryTraffic(
            reads=max(0, int(round(state.reads))),
            writes=max(0, int(round(state.writes))),
            atomics=atomics,
            atomics_with_return=min(
                int(round(state.atomics_ret)), int(round(state.atomics))
            ),
        )
        return self.cache.demand(traffic, pim_fraction), atomics

    # -- main entry -----------------------------------------------------------------

    def run(self, launch: KernelLaunch, policy: "OffloadPolicy") -> SimulationResult:
        """Execute the launch under ``policy``; returns run aggregates."""
        wall_t0 = _time.perf_counter()
        if self.engine in ("macro", "gang"):
            # A gang of one is exactly the macro engine; the gang driver
            # in :mod:`repro.gpu.gang` only exists for multi-lane sweeps.
            from repro.gpu.macro import MacroEngine

            result = MacroEngine(self).run(launch, policy)
        else:
            result = self._run_stepped(launch, policy)
        self._record_run_telemetry(result, _time.perf_counter() - wall_t0)
        return result

    def _record_run_telemetry(
        self, result: SimulationResult, wall_s: float
    ) -> None:
        """Fold run aggregates into the process-wide telemetry registry.

        One handful of counter bumps per *run* (never per step), so the
        fleet-level series — scraped at ``GET /metrics`` and shipped
        from pool workers through the scheduler's delta pipe — cost
        nothing measurable against the control loop.
        """
        from repro.telemetry import get_registry

        reg = get_registry()
        labels = {"engine": self.engine}
        reg.counter(
            "repro_sim_runs_total", "Completed simulator runs", ("engine",)
        ).labels(**labels).inc()
        reg.counter(
            "repro_sim_control_steps_total",
            "Control quanta executed across all runs", ("engine",),
        ).labels(**labels).inc(
            self.stats.scoped("sim").counter("control_steps").value
        )
        reg.counter(
            "repro_sim_thermal_warnings_total",
            "Thermal warnings delivered across all runs", ("engine",),
        ).labels(**labels).inc(result.thermal_warnings)
        reg.counter(
            "repro_sim_shutdowns_total",
            "Overheat shutdowns across all runs", ("engine",),
        ).labels(**labels).inc(result.shutdowns)
        reg.histogram(
            "repro_sim_run_wall_seconds",
            "Wall-clock duration of simulator runs", ("engine",),
        ).labels(**labels).observe(wall_s)

    def _run_stepped(
        self, launch: KernelLaunch, policy: "OffloadPolicy"
    ) -> SimulationResult:
        """Scalar reference engine: one control quantum per iteration."""
        launch.trace.rewind()
        self.sensor.reset()
        scen = self._scenario_driver()
        if scen is not None:
            scen.begin()
        exempt = policy.thermal_exempt

        # Device state before the kernel launches (ideal-thermal runs pin
        # the cube at ambient, so no warm-up is needed).
        if not exempt:
            self.thermal.warm_start(self.warm_start)
        self.flow.phase = TemperaturePhase.NORMAL
        self.flow.set_thermal_warning(False)

        policy.bind(self)
        policy.begin(launch, now_s=0.0)

        tracer = get_tracer()
        traced = tracer.enabled
        # Live telemetry: resolved once per run; when no sink is
        # installed the per-step cost is a single None test (the same
        # discipline as the tracer's NULL_SPAN fast path).
        from repro.telemetry.live import get_run_sink

        sink = get_run_sink()
        total_epochs = max(1, len(launch.trace))
        wall_t0 = _time.perf_counter()
        stats = self.stats.scoped("sim")
        dt_hist = stats.histogram(
            "control_dt_ns", 0.0, self.control_dt_s * 1e9 * 1.01, 64
        )
        dt_hist.reset()
        frac_tw = stats.time_weighted("pim_fraction")
        frac_tw.reset(initial=0.0, start_time=0.0)
        for name in (
            "epochs", "control_steps", "thermal_solver_steps",
            "thermal_warnings", "shutdowns", "pim_ops", "host_atomics",
            "host_atomics_assigned",
        ):
            stats.counter(name).reset()
        epochs = 0
        control_steps = 0
        thermal_steps = 0

        now_s = 0.0
        link_bytes = 0
        data_bytes = 0
        pim_ops_total = 0
        host_atomics_total = 0
        host_assigned_total = 0
        atomics_total = 0
        warnings = 0
        shutdowns = 0
        peak_temp = (
            self.thermal.peak_dram_c() if not exempt else self.thermal.ambient_c
        )
        phase_time = {p.name: 0.0 for p in TemperaturePhase}
        timeline: List[Tuple[float, float, float, float]] = []
        next_sample = 0.0
        thermal_debt_s = 0.0
        package_energy_j = 0.0
        fan_power_w = (
            self.thermal.cooling.fan_power_w() if not exempt else 0.0
        )

        while True:
            batch = launch.trace.next()
            if batch is None:
                break
            if scen is not None:
                batch = scen.transform_batch(batch)
            atomics_total += batch.atomics
            traffic = self.cache.filter(batch)
            state = _EpochState(batch, traffic)
            epochs += 1
            epoch_t0 = _time.perf_counter() if traced else 0.0
            epoch_sim0 = now_s
            # Integer work ledgers: the fluid drain rounds per step, so
            # its serving sums can drift from the epoch totals; the final
            # control step flushes whatever the ledgers still hold.
            rem_reads = traffic.reads
            rem_writes = traffic.writes
            rem_atomics = traffic.atomics

            while (not state.drained or rem_atomics > 0
                   or rem_reads > 0 or rem_writes > 0):
                if scen is not None:
                    scen.apply_due(now_s)
                fraction = policy.pim_fraction(now_s)
                if fraction != frac_tw.value:
                    frac_tw.update(fraction, now_s)
                demand, atomics_dem = self._mem_demand(state, fraction)
                t_mem_ns = self.flow.service_time_ns(demand)
                # Small frontiers can't keep enough requests in flight to
                # saturate the memory system.
                mlp = min(1.0, state.threads / self.saturation_threads)
                if mlp > 0.0:
                    t_mem_ns /= mlp
                t_cmp_ns = self.sm.compute_time_ns(state.as_batch())
                # Host-executed atomics serialize at the L2 ROP units.
                t_atm_ns = demand.host_atomics / self.gpu.host_atomic_ops_per_ns
                t_total_ns = max(t_mem_ns, t_cmp_ns, t_atm_ns, 1.0)

                dt_ns = min(self.control_dt_s * 1e9, t_total_ns)
                share = dt_ns / t_total_ns
                final_step = share >= 1.0
                served_reads = min(int(round(demand.reads * share)), rem_reads)
                served_writes = min(int(round(demand.writes * share)), rem_writes)
                served_host = int(round(demand.host_atomics * share))
                served_pim = int(round(demand.pim_ops * share))
                served_pim_ret = int(round(demand.pim_ops_ret * share))
                host_raw = int(round((atomics_dem - demand.total_pim) * share))
                # Clamp against the ledger (rounding drift), cutting the
                # host accounting before offloaded traffic.
                over = served_pim + served_pim_ret + host_raw - rem_atomics
                if over > 0:
                    cut = min(over, host_raw)
                    host_raw -= cut
                    over -= cut
                    cut = min(over, served_pim)
                    served_pim -= cut
                    served_pim_ret -= over - cut
                if final_step:
                    # Residual flush: whatever the integer ledgers still
                    # hold is served in this last quantum instead of being
                    # dropped with the sub-0.5 fluid remainder.
                    served_reads = rem_reads
                    served_writes = rem_writes
                    leftover = rem_atomics - (served_pim + served_pim_ret
                                              + host_raw)
                    extra_pim = min(leftover, int(round(leftover * fraction)))
                    extra_host = leftover - extra_pim
                    served_pim += extra_pim
                    host_raw += extra_host
                    served_host += int(round(
                        extra_host * self.cache.host_atomic_coalescing
                    ))
                rem_reads -= served_reads
                rem_writes -= served_writes
                rem_atomics -= served_pim + served_pim_ret + host_raw
                host_assigned_total += host_raw
                served = TrafficDemand(
                    reads=served_reads,
                    writes=served_writes,
                    host_atomics=served_host,
                    pim_ops=served_pim,
                    pim_ops_ret=served_pim_ret,
                )
                state.drain(share)

                # Thermal integration with this interval's traffic power.
                # Steps run on the fixed control quantum (one cached LU);
                # sub-quantum intervals accumulate as debt and are flushed
                # with the current traffic point — at most one quantum of
                # lag versus the 100 µs sensor period.
                ext_gbs, int_gbs, pim_rate = self.flow.traffic_rates(served, dt_ns)
                if not exempt:
                    traffic_point = TrafficPoint(
                        external_gbs=ext_gbs,
                        internal_dram_gbs=int_gbs,
                        pim_rate_ops_ns=pim_rate,
                    )
                    thermal_debt_s += dt_ns * 1e-9
                    temp_c = self.thermal.peak_dram_c()
                    energy_scale = self.flow.policy.dram_energy_scale(self.flow.phase)
                    while thermal_debt_s >= self.control_dt_s:
                        temp_c = self.thermal.step(
                            traffic_point,
                            self.control_dt_s,
                            dram_energy_scale=energy_scale,
                        )
                        thermal_debt_s -= self.control_dt_s
                        thermal_steps += 1
                    peak_temp = max(peak_temp, temp_c)
                    phase = self.flow.update_phase(temp_c)
                    warning = self.sensor.observe(temp_c, now_s)
                    self.flow.set_thermal_warning(warning)
                    if warning:
                        warnings += 1
                        if traced:
                            tracer.instant(
                                "sim.thermal_warning", cat="sim",
                                sim_time_ns=now_s * 1e9, clock="sim",
                                temp_c=self.sensor.last_temp_c,
                            )
                        policy.on_thermal_warning(now_s, self.sensor.last_temp_c)
                    if phase is TemperaturePhase.SHUTDOWN:
                        # Conservative overheat policy: full stop, long
                        # recovery, restart cold (Sec. III-A).
                        shutdowns += 1
                        if traced:
                            tracer.instant(
                                "sim.shutdown", cat="sim",
                                sim_time_ns=now_s * 1e9, clock="sim",
                                temp_c=temp_c,
                            )
                        now_s += SHUTDOWN_RECOVERY_S
                        phase_time[TemperaturePhase.SHUTDOWN.name] += (
                            SHUTDOWN_RECOVERY_S
                        )
                        self.thermal.warm_start(TrafficPoint.idle())
                        self.flow.phase = TemperaturePhase.NORMAL
                        self.sensor.reset()
                        self.flow.set_thermal_warning(False)
                else:
                    phase = TemperaturePhase.NORMAL
                    temp_c = self.thermal.ambient_c
                    traffic_point = TrafficPoint(
                        external_gbs=ext_gbs,
                        internal_dram_gbs=int_gbs,
                        pim_rate_ops_ns=pim_rate,
                    )
                    energy_scale = 1.0

                package_energy_j += (
                    self.thermal.power.package_total_w(traffic_point, energy_scale)
                    * dt_ns * 1e-9
                )
                self.flow.record(served, dt_ns)
                link_bytes += served.link_bytes()
                data_bytes += served.external_data_bytes()
                pim_ops_total += served.total_pim
                host_atomics_total += served.host_atomics
                phase_time[phase.name] += dt_ns * 1e-9
                now_s += dt_ns * 1e-9
                control_steps += 1
                dt_hist.add(dt_ns)

                if now_s >= next_sample:
                    timeline.append((now_s, temp_c, pim_rate, fraction))
                    # Snap to the fixed grid: the next sample is due at the
                    # first grid point strictly after now, so sample spacing
                    # does not drift with step size (Fig. 14 comparability).
                    next_sample = (
                        math.floor(now_s / self.timeline_dt_s) + 1.0
                    ) * self.timeline_dt_s

                if sink is not None and now_s >= sink.next_due_s:
                    pool = getattr(policy, "pool", None)
                    sink.emit_sample({
                        "t_s": now_s,
                        "progress": launch.trace.position / total_epochs,
                        "dram_c": temp_c,
                        "pim_fraction": fraction,
                        "tokens": pool.size if pool is not None else None,
                        "warnings": warnings,
                        "shutdowns": shutdowns,
                        "avg_link_gbs": (
                            link_bytes / now_s / 1e9 if now_s > 0 else 0.0
                        ),
                        "phase": phase.name,
                        "engine": "stepped",
                    })

            if traced:
                tracer.complete(
                    "gpu.epoch", epoch_t0, _time.perf_counter(), cat="gpu",
                    label=batch.label, atomics=batch.atomics,
                    threads=batch.threads,
                    sim_start_s=epoch_sim0, sim_end_s=now_s,
                )

        if scen is not None:
            # Restore the shared thermal/flow/sensor models to nominal:
            # CoolPimSystem reuses them across runs.
            scen.finish()
        # Tail of the last fraction level, so the time-weighted mean
        # covers the full run.
        if now_s > 0.0:
            frac_tw.update(frac_tw.value, now_s)
        stats.counter("epochs").add(epochs)
        stats.counter("control_steps").add(control_steps)
        stats.counter("thermal_solver_steps").add(thermal_steps)
        stats.counter("thermal_warnings").add(warnings)
        stats.counter("shutdowns").add(shutdowns)
        stats.counter("pim_ops").add(pim_ops_total)
        stats.counter("host_atomics").add(host_atomics_total)
        stats.counter("host_atomics_assigned").add(host_assigned_total)
        if traced:
            tracer.complete(
                "sim.run", wall_t0, _time.perf_counter(), cat="sim",
                workload=launch.name, policy=policy.name,
                epochs=epochs, control_steps=control_steps,
                warnings=warnings, shutdowns=shutdowns,
                sim_runtime_s=now_s,
            )

        return SimulationResult(
            workload=launch.name,
            policy=policy.name,
            runtime_s=now_s,
            link_bytes=link_bytes,
            data_bytes=data_bytes,
            pim_ops=pim_ops_total,
            host_atomics=host_atomics_total,
            total_atomics=atomics_total,
            peak_dram_temp_c=peak_temp,
            thermal_warnings=warnings,
            shutdowns=shutdowns,
            phase_time_s=phase_time,
            package_energy_j=package_energy_j,
            fan_energy_j=fan_power_w * now_s,
            timeline=timeline,
        )
