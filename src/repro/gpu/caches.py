"""GPU cache model: filters workload traffic into memory traffic.

The interval model needs post-cache traffic, and the paper leans on two
cache-related effects:

1. Offloading-target data lives in an *uncacheable region* (Sec. II-B,
   following GraphPIM), so atomics never hit in cache — whether executed
   by the host or offloaded.
2. Host-executed atomics are processed at the GPU's L2 ROP units, where
   back-to-back atomics to the same cache line coalesce; the effective
   per-atomic DRAM read+write traffic is reduced by a workload-dependent
   coalescing factor.

Hit rates are supplied by the workload (each GraphBIG kernel knows its
locality profile); this module applies them consistently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.config import GpuConfig
from repro.hmc.flow import TrafficDemand
from repro.sim.trace import OpBatch


@dataclass(frozen=True)
class MemoryTraffic:
    """Post-cache transaction counts for one epoch."""

    reads: int
    writes: int
    atomics: int             # offloadable atomics reaching memory
    atomics_with_return: int

    def __post_init__(self) -> None:
        if min(self.reads, self.writes, self.atomics, self.atomics_with_return) < 0:
            raise ValueError(f"negative traffic: {self}")
        if self.atomics_with_return > self.atomics:
            raise ValueError("atomics_with_return exceeds atomics")


class CacheModel:
    """Applies hit rates and atomic coalescing to an :class:`OpBatch`.

    Parameters
    ----------
    read_hit_rate:
        Combined L1+L2 hit fraction for ordinary loads.
    write_hit_rate:
        Combined hit/merge fraction for stores (write-back caches absorb
        and merge most stores).
    host_atomic_coalescing:
        Fraction of host atomics that miss L2's atomic-merge window and
        cost a DRAM read+write (1.0 = every atomic pays full RMW traffic).
    coherence_mode:
        How offloaded PIM data stays coherent with the caches (Sec. II-B):
        ``"bypass"`` (GraphPIM, the paper's choice) keeps offloading
        targets in an uncacheable region — no coherence traffic;
        ``"writeback"`` (PEI) lets the data be cached and invalidates /
        writes back the blocks each PIM instruction touches — every
        offloaded op that hits a dirty line pays a 64 B writeback.
    pei_dirty_fraction:
        In writeback mode: fraction of offloaded ops hitting a dirty
        cached copy.
    """

    def __init__(
        self,
        config: GpuConfig,
        read_hit_rate: float = 0.5,
        write_hit_rate: float = 0.5,
        host_atomic_coalescing: float = 0.6,
        coherence_mode: str = "bypass",
        pei_dirty_fraction: float = 0.3,
    ) -> None:
        for name, v in (
            ("read_hit_rate", read_hit_rate),
            ("write_hit_rate", write_hit_rate),
            ("host_atomic_coalescing", host_atomic_coalescing),
            ("pei_dirty_fraction", pei_dirty_fraction),
        ):
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0,1], got {v}")
        if coherence_mode not in ("bypass", "writeback"):
            raise ValueError(
                f"coherence_mode must be 'bypass' or 'writeback', "
                f"got {coherence_mode!r}"
            )
        self.config = config
        self.read_hit_rate = read_hit_rate
        self.write_hit_rate = write_hit_rate
        self.host_atomic_coalescing = host_atomic_coalescing
        self.coherence_mode = coherence_mode
        self.pei_dirty_fraction = pei_dirty_fraction

    def filter(self, batch: OpBatch) -> MemoryTraffic:
        """Memory-level transactions produced by one epoch's accesses."""
        reads = int(round(batch.reads * (1.0 - self.read_hit_rate)))
        writes = int(round(batch.writes * (1.0 - self.write_hit_rate)))
        return MemoryTraffic(
            reads=reads,
            writes=writes,
            atomics=batch.atomics,
            atomics_with_return=batch.atomics_with_return,
        )

    def demand(self, traffic: MemoryTraffic, pim_fraction: float) -> TrafficDemand:
        """Split atomics between PIM offload and host execution.

        ``pim_fraction`` ∈ [0, 1] is the share of atomics issued as PIM
        instructions (set by the throttling policy). Host-executed atomics
        pay the coalesced read+write cost; offloaded ones pay Table I PIM
        packet costs (cache is bypassed either way — uncacheable region).
        """
        if not 0.0 <= pim_fraction <= 1.0:
            raise ValueError(f"pim_fraction must be in [0,1], got {pim_fraction}")
        pim_total = int(round(traffic.atomics * pim_fraction))
        pim_ret = min(
            pim_total, int(round(traffic.atomics_with_return * pim_fraction))
        )
        pim_plain = pim_total - pim_ret
        host = traffic.atomics - pim_total
        host_effective = int(round(host * self.host_atomic_coalescing))
        writes = traffic.writes
        if self.coherence_mode == "writeback":
            # PEI-style coherence: offloaded ops write back the dirty
            # cached copy before the PIM instruction may execute.
            writes += int(round(pim_total * self.pei_dirty_fraction))
        return TrafficDemand(
            reads=traffic.reads,
            writes=writes,
            host_atomics=host_effective,
            pim_ops=pim_plain,
            pim_ops_ret=pim_ret,
        )
