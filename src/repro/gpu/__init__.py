"""Host GPU model and the full-system co-simulation.

The GPU is modelled at interval granularity (DESIGN.md §2): workloads emit
per-epoch operation batches, the cache model filters them into memory
traffic, the SM model supplies a compute-time floor, and
:class:`~repro.gpu.simulator.SystemSimulator` closes the loop between the
GPU, the HMC flow model, the thermal model, and a CoolPIM offloading
policy.
"""

from repro.gpu.caches import CacheModel
from repro.gpu.config import GPU_DEFAULT, GpuConfig
from repro.gpu.gang import GangEngine, GangLane, run_gang
from repro.gpu.kernel import KernelLaunch
from repro.gpu.simulator import SimulationResult, SystemSimulator

__all__ = [
    "CacheModel",
    "GangEngine",
    "GangLane",
    "GPU_DEFAULT",
    "GpuConfig",
    "KernelLaunch",
    "SimulationResult",
    "SystemSimulator",
    "run_gang",
]
