"""Detailed co-simulation: the event-level cube with the thermal loop.

The fluid simulator (:mod:`repro.gpu.simulator`) models traffic as rates;
this mode expands each epoch's post-cache traffic into *individual
transactions* against :class:`repro.hmc.cube.HmcCube` — real packets on
real links, real bank occupancy, functional PIM execution — while
coupling the same thermal model and temperature-phase management
(frequency derating, refresh doubling, ERRSTAT warnings).

Two interchangeable transaction engines drive the cube:

``engine="batched"`` (default)
    The struct-of-arrays engine (:mod:`repro.hmc.batch`): each thermal
    window's worth of transactions is timestamped in one vectorized
    call. This raises the practical budget to ≥10⁶ transactions
    (≥10× the scalar path, guarded by ``benchmarks/test_detailed_bench``).
``engine="event"``
    The original per-transaction :meth:`HmcCube.submit` loop, kept as
    the reference oracle — both engines consume the same RNG stream and
    produce bit-identical results (pinned by the equivalence tests).

Addresses are synthesized per epoch: streaming reads/writes stride
across vaults; atomics scatter over a property region sized by the
epoch's thread count, reproducing hub-style bank reuse on small regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:
    from repro.core.policies import OffloadPolicy

from repro.gpu.caches import CacheModel
from repro.gpu.config import GPU_DEFAULT, GpuConfig
from repro.gpu.kernel import KernelLaunch
from repro.hmc.config import HMC_2_0, HmcConfig
from repro.hmc.cube import HmcCube
from repro.hmc.dram_timing import TemperaturePhase, TemperaturePhasePolicy
from repro.hmc.isa import PimInstruction, PimOpcode
from repro.hmc.packet import FLIT_BYTES, PTYPE_CODES, PTYPES_BY_CODE, PacketType, Request
from repro.hmc.scan import seeded_fold
from repro.sim.stats import StatRegistry
from repro.thermal.model import HmcThermalModel
from repro.thermal.power import TrafficPoint
from repro.thermal.sensor import ThermalSensor

#: Address-space layout (byte offsets into the cube).
STREAM_REGION = 0
PROPERTY_REGION = 4 << 30  # uncacheable offloading-target data

_CODE_READ = PTYPE_CODES[PacketType.READ64]
_CODE_WRITE = PTYPE_CODES[PacketType.WRITE64]
_CODE_PIM = PTYPE_CODES[PacketType.PIM]

#: Shared all-zero write line (streaming writes carry no modelled data).
_ZERO_LINE = b"\0" * 64

#: The detailed mode's atomic instruction (Sec. VI: graph updates are
#: dominated by integer add atomics).
_PIM_TEMPLATE = PimInstruction(PimOpcode.ADD_IMM, address=0, immediate=1)


@dataclass
class DetailedResult:
    """Aggregates of one detailed run."""

    workload: str
    policy: str
    runtime_s: float
    transactions: int
    pim_ops: int
    host_atomics: int
    peak_dram_temp_c: float
    thermal_warnings: int
    mean_latency_ns: float
    link_flits: int
    #: Which transaction engine produced this result.
    engine: str = "batched"
    #: Achieved external-link bandwidth (all FLITs over the run time).
    ext_bandwidth_gbs: float = 0.0
    #: (time_s, peak_temp_c) thermal samples.
    thermal_trace: List[Tuple[float, float]] = field(default_factory=list)


class DetailedSimulator:
    """Transaction-level co-simulation of one launch."""

    def __init__(
        self,
        gpu: GpuConfig = GPU_DEFAULT,
        hmc_config: HmcConfig = HMC_2_0,
        cache: Optional[CacheModel] = None,
        thermal: Optional[HmcThermalModel] = None,
        sensor: Optional[ThermalSensor] = None,
        phase_policy: Optional[TemperaturePhasePolicy] = None,
        thermal_update_txns: int = 256,
        max_transactions: int = 1_000_000,
        seed: int = 0,
        engine: str = "batched",
        stats: Optional[StatRegistry] = None,
    ) -> None:
        if thermal_update_txns <= 0:
            raise ValueError(f"update interval must be positive: {thermal_update_txns}")
        if engine not in ("batched", "event"):
            raise ValueError(f"engine must be 'batched' or 'event', got {engine!r}")
        self.gpu = gpu
        self.hmc_config = hmc_config
        self.cache = cache or CacheModel(gpu)
        self.thermal = thermal or HmcThermalModel(hmc_config)
        self.sensor = sensor or ThermalSensor()
        self.phase_policy = phase_policy or TemperaturePhasePolicy()
        self.thermal_update_txns = thermal_update_txns
        self.max_transactions = max_transactions
        self.seed = seed
        self.engine = engine
        #: Per-simulator stat registry (``detailed.*`` scope); each run()
        #: resets and refills it.
        self.stats = stats if stats is not None else StatRegistry()

    # -- address synthesis ----------------------------------------------------

    def _addresses(self, rng: np.random.Generator, count: int, region: int,
                   span_bytes: int, stride: int) -> np.ndarray:
        if count == 0:
            return np.empty(0, dtype=np.int64)
        slots = max(1, span_bytes // stride)
        return region + rng.integers(0, slots, size=count) * stride

    def _epoch_stream(
        self, rng: np.random.Generator, demand, threads: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Synthesize one epoch's transaction stream as parallel arrays.

        Returns ``(codes, addresses, is_host_member)`` already shuffled
        into issue order. Host atomics appear as read+write pairs; the
        boolean marker tracks their members through the shuffle so
        truncated epochs can account *submitted* host atomics.
        """
        # 32 B-aligned addresses: the vault interleave granularity is
        # 32 B, so coarser strides would alias onto a subset of vaults.
        span = max(4096, threads * 64)
        reads = self._addresses(rng, demand.reads, STREAM_REGION, 64 << 20, 32)
        writes = self._addresses(rng, demand.writes, STREAM_REGION + (1 << 30),
                                 64 << 20, 32)
        hosts = self._addresses(rng, 2 * demand.host_atomics,
                                PROPERTY_REGION, span, 32)
        pims = self._addresses(rng, demand.total_pim, PROPERTY_REGION,
                               span, 16)

        addrs = np.concatenate((reads, writes, hosts, pims))
        codes = np.concatenate((
            np.full(reads.size, _CODE_READ, dtype=np.int64),
            np.full(writes.size, _CODE_WRITE, dtype=np.int64),
            # host atomic = read + write pair
            np.tile([_CODE_READ, _CODE_WRITE], hosts.size // 2).astype(np.int64),
            np.full(pims.size, _CODE_PIM, dtype=np.int64),
        ))
        is_host = np.zeros(addrs.size, dtype=bool)
        is_host[reads.size + writes.size : reads.size + writes.size + hosts.size] = True

        perm = rng.permutation(addrs.size)  # avoid phase-locking with links
        return codes[perm], addrs[perm], is_host[perm]

    # -- main loop --------------------------------------------------------------

    def run(self, launch: KernelLaunch, policy: "OffloadPolicy") -> DetailedResult:
        """Run the launch transaction-by-transaction."""
        launch.trace.rewind()
        self.sensor.reset()
        rng = np.random.default_rng(self.seed)
        cube = HmcCube(self.hmc_config)
        cube.apply_temperature_phase(TemperaturePhase.NORMAL)
        self.thermal.warm_start(TrafficPoint.streaming(240.0))

        policy.begin(launch, now_s=0.0)
        exempt = policy.thermal_exempt
        batched = self.engine == "batched"

        stats = self.stats.scoped("detailed")
        batch_hist = stats.histogram("epoch_batch_txns", 0.0, 65536.0, 64)
        batch_hist.reset()

        now_ns = 0.0
        txns = 0
        pim_total = 0
        host_members = 0  # submitted host-atomic member transactions
        warnings = 0
        latency_sum = 0.0
        peak_temp = self.thermal.peak_dram_c() if not exempt else self.thermal.ambient_c
        thermal_trace: List[Tuple[float, float]] = []
        last_update_ns = 0.0
        last_flits = 0

        def thermal_update(completed_ns: float) -> None:
            nonlocal last_update_ns, last_flits, peak_temp, warnings
            if exempt:
                return
            dt_ns = completed_ns - last_update_ns
            if dt_ns <= 0:
                return
            flits = cube.links.total_flits()
            ext = (flits - last_flits) * 16 * (2.0 / 3.0) / dt_ns
            internal = ext  # event mode: payload-equivalent approximation
            pim_rate = 0.0  # FU power folded into the internal estimate
            temp = self.thermal.step(
                TrafficPoint(external_gbs=ext, internal_dram_gbs=internal,
                             pim_rate_ops_ns=pim_rate),
                dt_ns * 1e-9,
            )
            peak_temp = max(peak_temp, temp)
            thermal_trace.append((completed_ns * 1e-9, temp))
            phase = self.phase_policy.phase(temp)
            if phase is TemperaturePhase.SHUTDOWN:
                cube.shutdown()
                return
            cube.apply_temperature_phase(phase)
            warning = self.sensor.observe(temp, completed_ns * 1e-9)
            cube.set_thermal_warning(warning)
            if warning:
                warnings += 1
                policy.on_thermal_warning(completed_ns * 1e-9, temp)
            last_update_ns = completed_ns
            last_flits = flits

        while txns < self.max_transactions:
            batch = launch.trace.next()
            if batch is None:
                break
            traffic = self.cache.filter(batch)
            fraction = policy.pim_fraction(now_ns * 1e-9)
            demand = self.cache.demand(traffic, fraction)
            codes, addrs, is_host = self._epoch_stream(rng, demand, batch.threads)
            batch_hist.add(float(codes.size))

            # Open-loop issue: the GPU's memory-level parallelism keeps the
            # links fed, so every transaction of the epoch is offered at
            # the epoch start and the cube's queues provide the backpressure.
            # The stream is consumed in windows that end exactly at the
            # thermal-update counter boundaries, so both engines couple to
            # the thermal model at identical points.
            epoch_start = now_ns
            epoch_end = now_ns
            pos = 0
            # Thermal-exempt policies never feed back into the cube, so the
            # whole epoch can go down in one batch; otherwise windows end
            # at the thermal-update counter boundaries.
            window = self.thermal_update_txns if not exempt else (1 << 62)
            while pos < codes.size and txns < self.max_transactions:
                if cube.is_shutdown:
                    break
                take = min(
                    window - txns % window,
                    codes.size - pos,
                    self.max_transactions - txns,
                )
                sl = slice(pos, pos + take)
                if batched:
                    # Only host-atomic writes carry (zero) payloads: they
                    # must functionally clear property-region operands.
                    # Streaming writes carry no modelled data.
                    payloads: Optional[List[Optional[bytes]]] = None
                    host_writes = is_host[sl] & (codes[sl] == _CODE_WRITE)
                    if np.any(host_writes):
                        payloads = [
                            _ZERO_LINE if h else None
                            for h in host_writes.tolist()
                        ]
                    rsp = cube.submit_batch_arrays(
                        codes[sl], addrs[sl], epoch_start,
                        pim_template=_PIM_TEMPLATE, payloads=payloads,
                    )
                    latency_sum = seeded_fold(latency_sum, rsp.latency_ns)
                    epoch_end = max(epoch_end, float(rsp.complete_time_ns.max()))
                else:
                    for c, a, h in zip(codes[sl].tolist(), addrs[sl].tolist(),
                                       is_host[sl].tolist()):
                        ptype = PTYPES_BY_CODE[c]
                        if c == _CODE_PIM:
                            inst = PimInstruction(PimOpcode.ADD_IMM, address=a,
                                                  immediate=1)
                            rsp1 = cube.submit(
                                Request(ptype, address=a, pim=inst), epoch_start
                            )
                        elif c == _CODE_WRITE:
                            rsp1 = cube.submit(
                                Request(ptype, address=a), epoch_start,
                                payload=_ZERO_LINE if h else None,
                            )
                        else:
                            rsp1 = cube.submit(Request(ptype, address=a),
                                               epoch_start)
                        latency_sum += rsp1.latency_ns
                        epoch_end = max(epoch_end, rsp1.complete_time_ns)
                pim_total += int(np.count_nonzero(codes[sl] == _CODE_PIM))
                host_members += int(np.count_nonzero(is_host[sl]))
                txns += take
                pos += take
                if txns % self.thermal_update_txns == 0:
                    thermal_update(epoch_end)
            now_ns = max(now_ns, epoch_end)
            if cube.is_shutdown:
                break

        thermal_update(now_ns)
        return DetailedResult(
            workload=launch.name,
            policy=policy.name,
            runtime_s=now_ns * 1e-9,
            transactions=txns,
            pim_ops=pim_total,
            # Count whole pairs actually submitted: a cap or shutdown can
            # truncate mid-epoch, so the offered demand overstates them.
            host_atomics=host_members // 2,
            peak_dram_temp_c=peak_temp,
            thermal_warnings=warnings,
            mean_latency_ns=latency_sum / txns if txns else 0.0,
            link_flits=cube.links.total_flits(),
            engine=self.engine,
            ext_bandwidth_gbs=(
                cube.links.total_flits() * FLIT_BYTES / now_ns if now_ns > 0 else 0.0
            ),
            thermal_trace=thermal_trace,
        )
