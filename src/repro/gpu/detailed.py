"""Detailed co-simulation: the event-level cube with the thermal loop.

The fluid simulator (:mod:`repro.gpu.simulator`) models traffic as rates;
this mode expands each epoch's post-cache traffic into *individual
transactions* against :class:`repro.hmc.cube.HmcCube` — real packets on
real links, real bank occupancy, functional PIM execution — while
coupling the same thermal model and temperature-phase management
(frequency derating, refresh doubling, ERRSTAT warnings).

It is a validation microscope, not a throughput engine: wall time is a
few microseconds per transaction, so use it for traces up to ~10⁵
transactions (tests, microstudies, cross-validation against the fluid
model). Addresses are synthesized per epoch: streaming reads/writes
stride across vaults; atomics scatter over a property region sized by the
epoch's thread count, reproducing hub-style bank reuse on small regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:
    from repro.core.policies import OffloadPolicy

from repro.gpu.caches import CacheModel
from repro.gpu.config import GPU_DEFAULT, GpuConfig
from repro.gpu.kernel import KernelLaunch
from repro.hmc.config import HMC_2_0, HmcConfig
from repro.hmc.cube import HmcCube
from repro.hmc.dram_timing import TemperaturePhase, TemperaturePhasePolicy
from repro.hmc.isa import PimInstruction, PimOpcode
from repro.hmc.packet import PacketType, Request
from repro.thermal.model import HmcThermalModel
from repro.thermal.power import TrafficPoint
from repro.thermal.sensor import ThermalSensor

#: Address-space layout (byte offsets into the cube).
STREAM_REGION = 0
PROPERTY_REGION = 4 << 30  # uncacheable offloading-target data


@dataclass
class DetailedResult:
    """Aggregates of one detailed run."""

    workload: str
    policy: str
    runtime_s: float
    transactions: int
    pim_ops: int
    host_atomics: int
    peak_dram_temp_c: float
    thermal_warnings: int
    mean_latency_ns: float
    link_flits: int
    #: (time_s, peak_temp_c) thermal samples.
    thermal_trace: List[Tuple[float, float]] = field(default_factory=list)


class DetailedSimulator:
    """Transaction-level co-simulation of one launch."""

    def __init__(
        self,
        gpu: GpuConfig = GPU_DEFAULT,
        hmc_config: HmcConfig = HMC_2_0,
        cache: Optional[CacheModel] = None,
        thermal: Optional[HmcThermalModel] = None,
        sensor: Optional[ThermalSensor] = None,
        phase_policy: Optional[TemperaturePhasePolicy] = None,
        thermal_update_txns: int = 256,
        max_transactions: int = 200_000,
        seed: int = 0,
    ) -> None:
        if thermal_update_txns <= 0:
            raise ValueError(f"update interval must be positive: {thermal_update_txns}")
        self.gpu = gpu
        self.hmc_config = hmc_config
        self.cache = cache or CacheModel(gpu)
        self.thermal = thermal or HmcThermalModel(hmc_config)
        self.sensor = sensor or ThermalSensor()
        self.phase_policy = phase_policy or TemperaturePhasePolicy()
        self.thermal_update_txns = thermal_update_txns
        self.max_transactions = max_transactions
        self.seed = seed

    # -- address synthesis ----------------------------------------------------

    def _addresses(self, rng: np.random.Generator, count: int, region: int,
                   span_bytes: int, stride: int) -> np.ndarray:
        if count == 0:
            return np.empty(0, dtype=np.int64)
        slots = max(1, span_bytes // stride)
        return region + rng.integers(0, slots, size=count) * stride

    # -- main loop --------------------------------------------------------------

    def run(self, launch: KernelLaunch, policy: "OffloadPolicy") -> DetailedResult:
        """Run the launch transaction-by-transaction."""
        launch.trace.rewind()
        self.sensor.reset()
        rng = np.random.default_rng(self.seed)
        cube = HmcCube(self.hmc_config)
        cube.apply_temperature_phase(TemperaturePhase.NORMAL)
        self.thermal.warm_start(TrafficPoint.streaming(240.0))

        policy.begin(launch, now_s=0.0)
        exempt = policy.thermal_exempt

        now_ns = 0.0
        txns = 0
        pim_total = 0
        host_total = 0
        warnings = 0
        latency_sum = 0.0
        peak_temp = self.thermal.peak_dram_c() if not exempt else self.thermal.ambient_c
        thermal_trace: List[Tuple[float, float]] = []
        last_update_ns = 0.0
        last_flits = 0

        def thermal_update(completed_ns: float) -> None:
            nonlocal last_update_ns, last_flits, peak_temp, warnings
            if exempt:
                return
            dt_ns = completed_ns - last_update_ns
            if dt_ns <= 0:
                return
            flits = cube.links.total_flits()
            ext = (flits - last_flits) * 16 * (2.0 / 3.0) / dt_ns
            internal = ext  # event mode: payload-equivalent approximation
            pim_rate = 0.0  # FU power folded into the internal estimate
            temp = self.thermal.step(
                TrafficPoint(external_gbs=ext, internal_dram_gbs=internal,
                             pim_rate_ops_ns=pim_rate),
                dt_ns * 1e-9,
            )
            peak_temp = max(peak_temp, temp)
            thermal_trace.append((completed_ns * 1e-9, temp))
            phase = self.phase_policy.phase(temp)
            if phase is TemperaturePhase.SHUTDOWN:
                cube.shutdown()
                return
            cube.apply_temperature_phase(phase)
            warning = self.sensor.observe(temp, completed_ns * 1e-9)
            cube.set_thermal_warning(warning)
            if warning:
                warnings += 1
                policy.on_thermal_warning(completed_ns * 1e-9, temp)
            last_update_ns = completed_ns
            last_flits = flits

        while txns < self.max_transactions:
            batch = launch.trace.next()
            if batch is None:
                break
            traffic = self.cache.filter(batch)
            fraction = policy.pim_fraction(now_ns * 1e-9)
            demand = self.cache.demand(traffic, fraction)

            # 32 B-aligned addresses: the vault interleave granularity is
            # 32 B, so coarser strides would alias onto a subset of vaults.
            span = max(4096, batch.threads * 64)
            reads = self._addresses(rng, demand.reads, STREAM_REGION,
                                    64 << 20, 32)
            writes = self._addresses(rng, demand.writes, STREAM_REGION + (1 << 30),
                                     64 << 20, 32)
            hosts = self._addresses(rng, 2 * demand.host_atomics,
                                    PROPERTY_REGION, span, 32)
            pims = self._addresses(rng, demand.total_pim, PROPERTY_REGION,
                                   span, 16)

            stream: List[Tuple[PacketType, int]] = (
                [(PacketType.READ64, int(a)) for a in reads]
                + [(PacketType.WRITE64, int(a)) for a in writes]
                # host atomic = read + write pair
                + [(PacketType.READ64, int(a)) for a in hosts[::2]]
                + [(PacketType.WRITE64, int(a)) for a in hosts[1::2]]
                + [(PacketType.PIM, int(a)) for a in pims]
            )
            rng.shuffle(stream)  # avoid phase-locking with link striping

            # Open-loop issue: the GPU's memory-level parallelism keeps the
            # links fed, so every transaction of the epoch is offered at
            # the epoch start and the cube's queues provide the backpressure.
            epoch_start = now_ns
            epoch_end = now_ns
            for ptype, addr in stream:
                if cube.is_shutdown:
                    break
                if ptype is PacketType.PIM:
                    inst = PimInstruction(PimOpcode.ADD_IMM, address=addr,
                                          immediate=1)
                    rsp = cube.submit(
                        Request(ptype, address=addr, pim=inst), epoch_start
                    )
                    pim_total += 1
                elif ptype is PacketType.WRITE64:
                    rsp = cube.submit(Request(ptype, address=addr), epoch_start,
                                      payload=b"\0" * 64)
                else:
                    rsp = cube.submit(Request(ptype, address=addr), epoch_start)
                latency_sum += rsp.latency_ns
                epoch_end = max(epoch_end, rsp.complete_time_ns)
                txns += 1
                if txns % self.thermal_update_txns == 0:
                    thermal_update(epoch_end)
                if txns >= self.max_transactions:
                    break
            now_ns = max(now_ns, epoch_end)
            host_total += demand.host_atomics
            if cube.is_shutdown:
                break

        thermal_update(now_ns)
        return DetailedResult(
            workload=launch.name,
            policy=policy.name,
            runtime_s=now_ns * 1e-9,
            transactions=txns,
            pim_ops=pim_total,
            host_atomics=host_total,
            peak_dram_temp_c=peak_temp,
            thermal_warnings=warnings,
            mean_latency_ns=latency_sum / txns if txns else 0.0,
            link_flits=cube.links.total_flits(),
            thermal_trace=thermal_trace,
        )
