"""Named scenario generators.

``make_scenario(name, seed)`` deterministically compiles a named preset
into a :class:`~repro.scenarios.events.Scenario`: the same pair always
yields the same event stream, on any host and in any process (the RNG is
``random.Random`` seeded from the pair alone — no wall clock, no salted
hashes), which is what lets the job cache key injected runs by
``(scenario, scenario_seed)``.

Timescales target the co-simulator's regime: kernels run for a few to a
few tens of milliseconds of simulated time, the sensor samples every
100 µs, and the package thermal time constant is ~1 ms. Fault onsets land
shortly after launch and patterns repeat up to a generation horizon of
:data:`HORIZON_S`; runs that outlive the horizon simply stop receiving
new events (the last levels hold).
"""

from __future__ import annotations

import random
import zlib
from typing import Callable, Dict, List

from repro.scenarios.events import EVENT_KINDS, Scenario, ScenarioEvent

#: Event-generation horizon (simulated seconds). Covers the longest
#: kernel runs in the suite; see module docstring.
HORIZON_S = 0.25

#: Lumped reference power for translating sink-resistance degradation
#: into a boundary-temperature penalty (ΔT = ΔR_sink · P_ref), W.
SINK_REFERENCE_POWER_W = 20.0


def _rng(name: str, seed: int, salt: str = "") -> random.Random:
    """Deterministic per-(name, seed, salt) RNG — no process salt."""
    key = zlib.crc32(f"{name}/{salt}".encode("utf-8")) & 0xFFFFFFFF
    return random.Random((int(seed) << 32) ^ key)


def _degraded_cooling(name: str, seed: int) -> List[ScenarioEvent]:
    """Fan/heat-sink degradation: the case-to-ambient resistance ramps
    up after a failure instant. The continuous ramp is compiled into a
    staircase of absolute cooling-offset levels (piecewise-constant
    between events — the macro-engine contract)."""
    rng = _rng(name, seed, "cooling")
    onset = rng.uniform(0.5e-3, 2.0e-3)
    ramp = rng.uniform(1.0e-3, 4.0e-3)
    # ΔR up to ~0.9 °C/W (a badly clogged sink) → up to ~18 °C at P_ref.
    delta_r = rng.uniform(0.4, 0.9)
    final_c = delta_r * SINK_REFERENCE_POWER_W
    steps = 6
    events = [
        ScenarioEvent(
            t_s=onset + ramp * (i + 1) / steps,
            kind="cooling-offset",
            value=final_c * (i + 1) / steps,
        )
        for i in range(steps)
    ]
    return events


def _heatwave(name: str, seed: int) -> List[ScenarioEvent]:
    """Ambient excursions: repeated square-ish pulses with staircase
    edges (machine-room door opens, rack inlet recirculation, ...)."""
    rng = _rng(name, seed, "ambient")
    events: List[ScenarioEvent] = []
    t = rng.uniform(0.5e-3, 2.0e-3)
    while t < HORIZON_S:
        amp = rng.uniform(4.0, 12.0)
        rise = rng.uniform(0.3e-3, 0.8e-3)
        hold = rng.uniform(1.0e-3, 4.0e-3)
        events.append(ScenarioEvent(t, "ambient-offset", amp / 2.0))
        events.append(ScenarioEvent(t + rise, "ambient-offset", amp))
        events.append(ScenarioEvent(t + rise + hold, "ambient-offset", amp / 2.0))
        events.append(ScenarioEvent(t + 2 * rise + hold, "ambient-offset", 0.0))
        t += 2 * rise + hold + rng.uniform(3.0e-3, 8.0e-3)
    return events


def _sensor_noise(name: str, seed: int) -> List[ScenarioEvent]:
    """Windows of Gaussian measurement noise on the thermal sensor.

    Each window carries its own integer sub-seed in ``extra`` so the
    noise stream restarts identically on replay regardless of engine —
    the macro engine runs these windows on the scalar oracle path, so
    both engines draw the same variates at the same sample instants."""
    rng = _rng(name, seed, "noise")
    events: List[ScenarioEvent] = []
    t = rng.uniform(0.5e-3, 2.0e-3)
    while t < HORIZON_S:
        sigma = rng.uniform(0.5, 2.0)
        duration = rng.uniform(1.0e-3, 3.0e-3)
        window_seed = rng.getrandbits(31)
        events.append(ScenarioEvent(t, "sensor-noise", sigma, float(window_seed)))
        events.append(ScenarioEvent(t + duration, "sensor-noise", 0.0))
        t += duration + rng.uniform(2.0e-3, 6.0e-3)
    return events


def _sensor_dropout(name: str, seed: int) -> List[ScenarioEvent]:
    """Windows where sensor readings are lost entirely (the warning bit
    and last_temp_c freeze at their pre-dropout values)."""
    rng = _rng(name, seed, "dropout")
    events: List[ScenarioEvent] = []
    t = rng.uniform(0.5e-3, 2.0e-3)
    while t < HORIZON_S:
        duration = rng.uniform(0.5e-3, 2.0e-3)
        events.append(ScenarioEvent(t, "sensor-dropout", 1.0))
        events.append(ScenarioEvent(t + duration, "sensor-dropout", 0.0))
        t += duration + rng.uniform(2.0e-3, 6.0e-3)
    return events


def _vault_derating(name: str, seed: int) -> List[ScenarioEvent]:
    """Per-vault capacity loss: a fraction of vaults fail or are fenced,
    shrinking internal DRAM bandwidth and the PIM FU pool; partial
    repair may restore some capacity later."""
    rng = _rng(name, seed, "vault")
    onset = rng.uniform(0.5e-3, 2.0e-3)
    degraded = rng.uniform(0.55, 0.85)
    events = [ScenarioEvent(onset, "vault-derating", degraded)]
    if rng.random() < 0.5:
        recover_t = onset + rng.uniform(3.0e-3, 8.0e-3)
        events.append(
            ScenarioEvent(recover_t, "vault-derating", rng.uniform(degraded, 1.0))
        )
    return events


def _phase_shift(name: str, seed: int) -> List[ScenarioEvent]:
    """Mid-run workload phase mixes: alternate memory-heavy and
    compute-heavy scalings of subsequent epochs' op batches."""
    rng = _rng(name, seed, "phase")
    events: List[ScenarioEvent] = []
    t = rng.uniform(0.5e-3, 2.0e-3)
    memory_heavy = True
    while t < HORIZON_S:
        if memory_heavy:
            mem, cmp_ = rng.uniform(1.2, 1.8), rng.uniform(0.6, 0.9)
        else:
            mem, cmp_ = rng.uniform(0.5, 0.8), rng.uniform(1.2, 1.6)
        events.append(ScenarioEvent(t, "phase-mix", mem, cmp_))
        memory_heavy = not memory_heavy
        t += rng.uniform(1.0e-3, 3.0e-3)
    return events


def _chaos(name: str, seed: int) -> List[ScenarioEvent]:
    """Everything at once — the robustness stress suite."""
    events: List[ScenarioEvent] = []
    for gen in (
        _degraded_cooling,
        _heatwave,
        _sensor_noise,
        _sensor_dropout,
        _vault_derating,
        _phase_shift,
    ):
        events.extend(gen(name, seed))
    return events


_PRESETS: Dict[str, Callable[[str, int], List[ScenarioEvent]]] = {
    "degraded-cooling": _degraded_cooling,
    "heatwave": _heatwave,
    "sensor-noise": _sensor_noise,
    "sensor-dropout": _sensor_dropout,
    "vault-derating": _vault_derating,
    "phase-shift": _phase_shift,
    "chaos": _chaos,
}

#: Registry order used by the CLI and the API schema listings.
SCENARIO_NAMES = list(_PRESETS)


def is_scenario_name(name: str) -> bool:
    return name in _PRESETS


def make_scenario(name: str, seed: int = 0) -> Scenario:
    """Compile a named preset into a deterministic event stream."""
    try:
        gen = _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(_PRESETS)}"
        ) from None
    if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
        raise ValueError(f"scenario seed must be a non-negative int, got {seed!r}")
    events = sorted(
        gen(name, seed),
        key=lambda e: (e.t_s, EVENT_KINDS.index(e.kind), e.value, e.extra),
    )
    return Scenario(name=name, seed=seed, events=tuple(events))
