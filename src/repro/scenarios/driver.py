"""Runtime application of a scenario's event stream to a simulator.

One :class:`ScenarioDriver` instance serves one run. Both engines use
the identical protocol, which is what makes injected runs bit-identical
between ``macro`` and ``stepped``:

- ``begin()`` zeroes every injection knob (the thermal model and flow
  model are shared across runs by :class:`~repro.core.coolpim.CoolPimSystem`,
  so stale state from a previous injected run must never leak in);
- ``apply_due(now_s)`` is called at control-step granularity (stepped:
  top of the step loop; macro: main loop, after epoch open) and applies
  every event with ``t_s <= now_s`` in stream order;
- ``next_event_s()`` bounds macro bursts: an injection instant is a
  commit boundary, so a burst may not speculate across it;
- ``sensor_perturbed()`` gates bursts off entirely while the sensor
  channel is noisy or dropped — the scalar oracle path then feeds the
  perturbation through the real :class:`~repro.thermal.sensor.ThermalSensor`
  at exactly the stepped engine's sample instants, keeping the
  per-window noise streams engine-independent;
- ``transform_batch(batch)`` rescales epoch op batches per the current
  phase mix (applied at epoch open, like the engines do);
- ``finish()`` restores every knob so the next run over the shared
  models starts clean.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Optional

from repro.scenarios.events import Scenario, ScenarioEvent
from repro.sim.trace import OpBatch


class ScenarioDriver:
    """Applies one :class:`Scenario` to one simulator run."""

    def __init__(self, scenario: Scenario, sim) -> None:
        self.scenario = scenario
        self.sim = sim
        self._events = scenario.events
        self._idx = 0
        self._cooling_c = 0.0
        self._ambient_c = 0.0
        self._noise_sigma = 0.0
        self._noise_rng: Optional[random.Random] = None
        self._dropout = False
        self._mem_scale = 1.0
        self._compute_scale = 1.0
        #: Number of events applied so far (telemetry / smoke checks).
        self.injected = 0

    # -- lifecycle ----------------------------------------------------------

    def begin(self) -> None:
        """Arm the stream and zero all knobs on the (shared) models."""
        self._idx = 0
        self._cooling_c = 0.0
        self._ambient_c = 0.0
        self._noise_sigma = 0.0
        self._noise_rng = None
        self._dropout = False
        self._mem_scale = 1.0
        self._compute_scale = 1.0
        self.injected = 0
        self._clear_models()

    def finish(self) -> None:
        """Restore nominal state on the shared models."""
        self._clear_models()

    def _clear_models(self) -> None:
        self.sim.thermal.set_ambient_offset(0.0)
        self.sim.flow.vault_capacity_scale = 1.0
        self.sim.sensor.perturb = None

    # -- event delivery ------------------------------------------------------

    def next_event_s(self) -> float:
        """Time of the next undelivered event (inf when drained). The
        macro engine bounds burst speculation by this instant."""
        if self._idx < len(self._events):
            return self._events[self._idx].t_s
        return float("inf")

    def apply_due(self, now_s: float) -> None:
        """Apply every event at or before ``now_s``, in stream order."""
        while self._idx < len(self._events) and self._events[self._idx].t_s <= now_s:
            self._apply(self._events[self._idx])
            self._idx += 1

    def _apply(self, event: ScenarioEvent) -> None:
        kind = event.kind
        if kind == "cooling-offset":
            self._cooling_c = event.value
            self.sim.thermal.set_ambient_offset(self._cooling_c + self._ambient_c)
        elif kind == "ambient-offset":
            self._ambient_c = event.value
            self.sim.thermal.set_ambient_offset(self._cooling_c + self._ambient_c)
        elif kind == "sensor-noise":
            self._noise_sigma = event.value
            self._noise_rng = (
                random.Random(int(event.extra)) if event.value > 0.0 else None
            )
            self._update_sensor()
        elif kind == "sensor-dropout":
            self._dropout = event.value > 0.0
            self._update_sensor()
        elif kind == "vault-derating":
            self.sim.flow.vault_capacity_scale = event.value
        elif kind == "phase-mix":
            self._mem_scale = event.value
            self._compute_scale = event.extra if event.extra > 0.0 else 1.0
        self.injected += 1

    def _update_sensor(self) -> None:
        perturbed = self._dropout or self._noise_sigma > 0.0
        self.sim.sensor.perturb = self._perturb if perturbed else None

    def _perturb(self, temp_c: float, now_s: float) -> Optional[float]:
        if self._dropout:
            return None
        return temp_c + self._noise_rng.gauss(0.0, self._noise_sigma)

    def sensor_perturbed(self) -> bool:
        """True while the sensor channel is faulted. The macro engine
        must not burst through such a window: sampling has to run on
        the scalar path so noise draws land at oracle instants."""
        return self._dropout or self._noise_sigma > 0.0

    # -- workload phase mix ---------------------------------------------------

    def transform_batch(self, batch: OpBatch) -> OpBatch:
        """Rescale an epoch's op batch by the current phase mix."""
        m, c = self._mem_scale, self._compute_scale
        if m == 1.0 and c == 1.0:
            return batch
        return replace(
            batch,
            reads=int(round(batch.reads * m)),
            writes=int(round(batch.writes * m)),
            atomics=int(round(batch.atomics * m)),
            atomics_with_return=int(round(batch.atomics_with_return * m)),
            compute_cycles=int(round(batch.compute_cycles * c)),
        )
