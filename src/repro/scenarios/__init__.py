"""Stochastic scenario / failure injection for the co-simulator.

The paper evaluates the CoolPIM control loop under clean-room
conditions: ideal sensors, nominal cooling, a fixed ambient, healthy
vaults. This package asks the robustness question the paper couldn't —
do SW-DynT/HW-DynT stay stable when the feedback channel itself is
unreliable? — by injecting seeded fault streams into a running
:class:`~repro.gpu.simulator.SystemSimulator`:

- fan / heat-sink degradation (cooling-coefficient ramps),
- ambient temperature excursions,
- sensor dropout and Gaussian measurement noise,
- per-vault capacity derating,
- mid-run workload phase mixes.

Design rule: **everything is an event**. A scenario compiles (from its
name and seed, deterministically) into a sorted stream of discrete
:class:`ScenarioEvent` instants; between instants every injected effect
is piecewise-constant. That is what lets the macro-stepping engine keep
its speculate/validate/commit fast path — each event instant is a hard
commit boundary (a burst may not speculate across it), and sensor-fault
windows force the scalar oracle path so noisy observations happen at
exactly the stepped engine's instants.
"""

from repro.scenarios.events import Scenario, ScenarioEvent
from repro.scenarios.driver import ScenarioDriver
from repro.scenarios.presets import SCENARIO_NAMES, is_scenario_name, make_scenario

__all__ = [
    "Scenario",
    "ScenarioEvent",
    "ScenarioDriver",
    "SCENARIO_NAMES",
    "is_scenario_name",
    "make_scenario",
]
