"""Scenario event model: discrete, seeded, piecewise-constant.

A :class:`Scenario` is an immutable, fully materialized event stream.
Continuous physical processes (a heat sink losing efficiency over a
couple of milliseconds, an ambient excursion rising and falling) are
compiled into staircases of absolute-level events at generation time, so
the runtime driver never interpolates — it only switches state at event
instants. The macro engine treats each instant as a commit boundary,
which keeps injected runs bit-identical between the ``macro`` and
``stepped`` engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

#: Recognized event kinds and their ``value``/``extra`` payloads.
#:
#: - ``cooling-offset``: ``value`` = absolute boundary-temperature
#:   penalty (°C) from sink/fan degradation (0 = healthy).
#: - ``ambient-offset``: ``value`` = absolute ambient excursion (°C,
#:   may be negative; 0 = nominal).
#: - ``sensor-noise``: ``value`` = Gaussian σ in °C (0 = off);
#:   ``extra`` = integer RNG seed for the window's noise stream.
#: - ``sensor-dropout``: ``value`` = 1 while readings are lost, 0 clear.
#: - ``vault-derating``: ``value`` = fraction of nominal vault service
#:   capacity available (1 = healthy).
#: - ``phase-mix``: ``value`` = memory-traffic multiplier,
#:   ``extra`` = compute-cycle multiplier applied to subsequent epochs.
EVENT_KINDS = (
    "cooling-offset",
    "ambient-offset",
    "sensor-noise",
    "sensor-dropout",
    "vault-derating",
    "phase-mix",
)


@dataclass(frozen=True)
class ScenarioEvent:
    """One injection instant. Levels are absolute, not deltas, so replay
    from any prefix of the stream reconstructs the same state."""

    t_s: float
    kind: str
    value: float = 0.0
    extra: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; expected one of {EVENT_KINDS}"
            )
        if self.t_s < 0.0:
            raise ValueError(f"event time must be >= 0, got {self.t_s}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "t_s": self.t_s,
            "kind": self.kind,
            "value": self.value,
            "extra": self.extra,
        }


@dataclass(frozen=True)
class Scenario:
    """A named, seeded, fully compiled injection stream.

    ``events`` is sorted by time; the same ``(name, seed)`` pair always
    compiles to the same stream, which is what makes injected runs cache
    and dedupe like clean runs (the content key stores only the pair).
    """

    name: str
    seed: int
    events: Tuple[ScenarioEvent, ...]

    def __post_init__(self) -> None:
        times = [e.t_s for e in self.events]
        if times != sorted(times):
            raise ValueError("scenario events must be sorted by time")

    @property
    def horizon_s(self) -> float:
        """Time of the last event (0 for an empty stream)."""
        return self.events[-1].t_s if self.events else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "events": [e.to_dict() for e in self.events],
        }
