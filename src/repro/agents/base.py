"""Gym-style agent protocol for the CoolPIM control loop.

The paper's policies are hardwired classes driven by two callbacks
(``pim_fraction`` each control step, ``on_thermal_warning`` when the
ERRSTAT bit arrives). This module opens that loop into an
observe → act interface so scripted, search-based, or learned
controllers plug into the same simulators:

- an :class:`Observation` packages what the GPU runtime can actually
  see at one instant — the clock, the sensed warning bit and last
  temperature reading, the currently effective throttle fraction, the
  SW token pool (when one exists), and the HMC's cumulative flow
  counters;
- an :class:`Action` optionally sets the offloading throttle fraction
  (``None`` = hold).

Agents run *inside* the simulation loop via the
:class:`~repro.agents.adapters.AgentPolicy` adapter, so they work under
both the ``stepped`` oracle and the ``macro`` fast path. The macro
engine's burst speculation relies on the same two purity hints the
hardwired policies provide (:meth:`Agent.fraction_horizon`,
:meth:`Agent.warning_noop_until`); the base defaults are maximally
conservative — correct for any agent, at scalar-path speed. Override
them to get burst speed back (see :class:`~repro.agents.scripted.ScriptedAgent`
and :class:`~repro.agents.search.HillClimbAgent`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.gpu.kernel import KernelLaunch


@dataclass(frozen=True)
class Action:
    """What an agent may do at one observation instant.

    fraction:
        New offloading throttle fraction in [0, 1] (clamped), or
        ``None`` to hold the current fraction.
    """

    fraction: Optional[float] = None


#: Singleton "hold" action.
ACTION_NONE = Action()


@dataclass(frozen=True)
class Observation:
    """One instant of the control loop, as seen from the GPU runtime.

    kind:
        ``"step"`` — a control-step fraction query (the returned
        action's fraction becomes the effective fraction for the step);
        ``"warning"`` — a thermal-warning response reached the host.
    now_s:
        Simulated time.
    warning:
        Sensor warning bit currently latched.
    temp_c:
        Last sensed peak DRAM temperature (``None`` before the first
        sample, or when the simulator is not bound).
    fraction:
        Currently effective throttle fraction.
    token_pool:
        The SW-DynT PIM token pool when the agent manages one, else
        ``None`` (exposed so pool-aware agents can read size/issued).
    bandwidth:
        Cumulative :class:`~repro.hmc.flow.FlowStats` counters of the
        HMC flow model (``None`` when not bound to a simulator).
    """

    kind: str
    now_s: float
    warning: bool = False
    temp_c: Optional[float] = None
    fraction: float = 1.0
    token_pool: Optional[Any] = None
    bandwidth: Optional[Any] = None


class Agent:
    """Base agent: observes everything, does nothing.

    Subclasses override :meth:`observe`; episodic state belongs in
    :meth:`begin` so one agent object can be reused across launches
    (mirroring ``OffloadPolicy.reset``).
    """

    #: Display name used in result tables.
    name: str = "agent"
    #: Ideal-thermal flag forwarded to the simulator (skips derating).
    thermal_exempt: bool = False

    def begin(self, launch: KernelLaunch, now_s: float = 0.0) -> None:
        """Episode reset; called once per kernel launch."""

    def observe(self, obs: Observation) -> Action:
        """Consume one observation, return an action (default: hold)."""
        return ACTION_NONE

    # -- macro-engine purity hints ------------------------------------------
    #
    # Semantics are identical to OffloadPolicy's: ``fraction_horizon`` is
    # the earliest future instant a *step* observation could change the
    # fraction absent new warnings; ``warning_noop_until`` the earliest a
    # repeated *warning* observation at the same temp_c could mutate
    # state. The defaults promise nothing (every instant may act), which
    # forces the macro engine onto single-step bursts / the scalar path —
    # always correct, never fast.

    def fraction_horizon(self, now_s: float) -> float:
        return now_s

    def warning_noop_until(self, now_s: float, temp_c: Optional[float] = None) -> float:
        return now_s
