"""Bidirectional adapters between ``OffloadPolicy`` and ``Agent``.

The equivalence contract (locked by ``tests/agents/``): running any
paper policy through ``AgentPolicy(PolicyAgent(policy))`` produces a
**bit-identical** :class:`~repro.gpu.simulator.SimulationResult` to
running the bare policy, under both engines. The adapters therefore
forward every call exactly once, in the same order, with the same
arguments — no priming calls, no extra queries, no re-quantization of
returned fractions (clamping uses ``min``/``max``, which are exact
identities for in-range values).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.agents.base import ACTION_NONE, Action, Agent, Observation
from repro.core.policies import OffloadPolicy
from repro.gpu.kernel import KernelLaunch


class PolicyAgent(Agent):
    """Wrap an :class:`OffloadPolicy` as an :class:`Agent`.

    A ``"step"`` observation maps to exactly one ``pim_fraction`` call;
    a ``"warning"`` observation to exactly one ``on_thermal_warning``
    call. The macro purity hints pass straight through, so SW-DynT /
    HW-DynT keep their burst speed under the agent interface.
    """

    def __init__(self, policy: OffloadPolicy) -> None:
        self.policy = policy

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.policy.name

    @property
    def thermal_exempt(self) -> bool:  # type: ignore[override]
        return self.policy.thermal_exempt

    @property
    def pool(self):
        """The wrapped policy's token pool, when it has one."""
        return getattr(self.policy, "pool", None)

    def begin(self, launch: KernelLaunch, now_s: float = 0.0) -> None:
        self.policy.begin(launch, now_s)

    def observe(self, obs: Observation) -> Action:
        if obs.kind == "warning":
            self.policy.on_thermal_warning(obs.now_s, obs.temp_c)
            return ACTION_NONE
        return Action(fraction=self.policy.pim_fraction(obs.now_s))

    def fraction_horizon(self, now_s: float) -> float:
        return self.policy.fraction_horizon(now_s)

    def warning_noop_until(self, now_s: float, temp_c: Optional[float] = None) -> float:
        return self.policy.warning_noop_until(now_s, temp_c)


class AgentPolicy(OffloadPolicy):
    """Expose an :class:`Agent` through the policy interface the
    simulators drive.

    The simulator calls :meth:`bind` before :meth:`begin`, giving the
    adapter a live handle to build observations from (sensor warning
    bit and last reading, HMC flow counters). Unbound use (unit tests,
    offline rollouts) degrades gracefully: warnings are inferred from
    the callback kind and telemetry fields are ``None``.
    """

    def __init__(self, agent: Agent) -> None:
        super().__init__()
        self.agent = agent
        self.name = agent.name
        self._sim = None
        self._fraction = 1.0

    @property
    def thermal_exempt(self) -> bool:  # type: ignore[override]
        return self.agent.thermal_exempt

    # -- lifecycle ----------------------------------------------------------

    def bind(self, sim) -> None:
        self._sim = sim

    def reset(self) -> None:
        super().reset()
        self._fraction = 1.0

    def begin(self, launch: KernelLaunch, now_s: float = 0.0) -> None:
        super().begin(launch, now_s)
        self.agent.begin(launch, now_s)

    # -- observation plumbing ------------------------------------------------

    def _observation(self, kind: str, now_s: float, temp_c) -> Observation:
        sim = self._sim
        if sim is not None:
            warning = sim.sensor.warning
            if kind == "step" and temp_c is None:
                # Warning observations forward the engine's temp_c
                # verbatim; step observations read the latest sample.
                temp_c = sim.sensor.last_temp_c
            bandwidth = sim.flow.stats
        else:
            warning = kind == "warning"
            bandwidth = None
        return Observation(
            kind=kind,
            now_s=now_s,
            warning=warning,
            temp_c=temp_c,
            fraction=self._fraction,
            token_pool=getattr(self.agent, "pool", None),
            bandwidth=bandwidth,
        )

    def _take(self, action: Action, now_s: float) -> None:
        fraction = action.fraction
        if fraction is None:
            return
        fraction = min(1.0, max(0.0, fraction))
        if fraction != self._fraction:
            self.record_fraction(now_s, fraction)
        self._fraction = fraction

    # -- policy interface ----------------------------------------------------

    def pim_fraction(self, now_s: float) -> float:
        self._take(self.agent.observe(self._observation("step", now_s, None)), now_s)
        return self._fraction

    def on_thermal_warning(self, now_s: float, temp_c: Optional[float] = None) -> None:
        self._take(
            self.agent.observe(self._observation("warning", now_s, temp_c)), now_s
        )

    def fraction_horizon(self, now_s: float) -> float:
        return self.agent.fraction_horizon(now_s)

    def warning_noop_until(self, now_s: float, temp_c: Optional[float] = None) -> float:
        return self.agent.warning_noop_until(now_s, temp_c)


def as_agent(obj: Union[Agent, OffloadPolicy]) -> Agent:
    """Coerce to the agent interface (policies get wrapped)."""
    if isinstance(obj, Agent):
        return obj
    if isinstance(obj, OffloadPolicy):
        return PolicyAgent(obj)
    raise TypeError(f"expected Agent or OffloadPolicy, got {type(obj).__name__}")


def as_policy(obj: Union[Agent, OffloadPolicy]) -> OffloadPolicy:
    """Coerce to the policy interface the simulators drive."""
    if isinstance(obj, OffloadPolicy):
        return obj
    if isinstance(obj, Agent):
        return AgentPolicy(obj)
    raise TypeError(f"expected Agent or OffloadPolicy, got {type(obj).__name__}")
