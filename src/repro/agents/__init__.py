"""Gym-style agent harness over the CoolPIM control loop.

See :mod:`repro.agents.base` for the protocol, :mod:`repro.agents.adapters`
for the bit-identical policy bridges, and :mod:`repro.scenarios` for the
fault-injection layer agents are evaluated against.
"""

from repro.agents.base import ACTION_NONE, Action, Agent, Observation
from repro.agents.adapters import AgentPolicy, PolicyAgent, as_agent, as_policy
from repro.agents.scripted import ScriptedAgent
from repro.agents.search import HillClimbAgent

__all__ = [
    "ACTION_NONE",
    "Action",
    "Agent",
    "AgentPolicy",
    "HillClimbAgent",
    "Observation",
    "PolicyAgent",
    "ScriptedAgent",
    "as_agent",
    "as_policy",
]
