"""Open-loop scripted agent: a throttle schedule, no feedback."""

from __future__ import annotations

import bisect
from typing import Iterable, Optional, Tuple

from repro.agents.base import ACTION_NONE, Action, Agent, Observation


class ScriptedAgent(Agent):
    """Replay a piecewise-constant ``(t_s, fraction)`` schedule.

    Useful as a deterministic probe (e.g. replaying a recorded SW-DynT
    trajectory open-loop to separate feedback value from trajectory
    value) and as the simplest non-policy agent for harness tests.

    Purity hints are exact: the fraction only changes at breakpoints,
    so ``fraction_horizon`` is the next breakpoint and warnings are
    no-ops forever — the macro engine keeps full burst speed.
    """

    name = "scripted"

    def __init__(
        self,
        schedule: Iterable[Tuple[float, float]],
        name: Optional[str] = None,
    ) -> None:
        points = sorted((float(t), float(f)) for t, f in schedule)
        if not points or points[0][0] > 0.0:
            points.insert(0, (0.0, 1.0))
        for t, f in points:
            if not 0.0 <= f <= 1.0:
                raise ValueError(f"fraction must be in [0,1], got {f} at t={t}")
        self._times = tuple(t for t, _ in points)
        self._fractions = tuple(f for _, f in points)
        if name is not None:
            self.name = name

    def _fraction_at(self, now_s: float) -> float:
        i = bisect.bisect_right(self._times, now_s) - 1
        return self._fractions[max(i, 0)]

    def observe(self, obs: Observation) -> Action:
        if obs.kind != "step":
            return ACTION_NONE
        return Action(fraction=self._fraction_at(obs.now_s))

    def fraction_horizon(self, now_s: float) -> float:
        i = bisect.bisect_right(self._times, now_s)
        return self._times[i] if i < len(self._times) else float("inf")

    def warning_noop_until(self, now_s: float, temp_c=None) -> float:
        return float("inf")
