"""Search-based agents: no model of the loop, just online search.

:class:`HillClimbAgent` hill-climbs its *control factor* — the per-cut
throttle reduction — instead of using the paper's fixed CF: a cut that
fails to clear the warning doubles the factor, a quiet stretch halves it
and relaxes the fraction back up. The result is a controller that
searches for the largest sustainable offloading intensity under whatever
(possibly degraded — see :mod:`repro.scenarios`) thermal conditions it
finds itself in.
"""

from __future__ import annotations

from typing import Optional

from repro.agents.base import ACTION_NONE, Action, Agent, Observation
from repro.gpu.kernel import KernelLaunch


class HillClimbAgent(Agent):
    """Adaptive-step throttling via hill climbing over the control factor.

    Control law, evaluated per observation:

    - **warning** (rate-limited to one *cut* per ``act_period_s`` —
      measured against the last cut, not the last relax, so a quiet
      stretch never starves the thermal response): if the previous
      action was also a cut, that cut didn't clear the warning — double
      the control factor (up to ``max_factor``); if the loop had been
      relaxing, restart the search from the configured
      ``control_factor`` (the decayed exploration step is too small for
      an emergency). Then cut the fraction by the factor.
    - **quiet step** (no warning latched, and at least
      ``recover_period_s`` since the last action of either kind): halve
      the factor (down to ``min_factor``) and relax the fraction up by
      ``recover_step``.

    Macro purity hints mirror SW-DynT's shape: step observations cannot
    act before the recovery deadline, warning observations are no-ops
    inside the rate-limit window — both engines therefore see identical
    action instants and the equivalence suite holds bit-exactly.
    """

    name = "hill-climb"

    def __init__(
        self,
        initial_fraction: float = 1.0,
        control_factor: float = 0.125,
        min_factor: float = 1.0 / 64.0,
        max_factor: float = 0.5,
        act_period_s: float = 1.2e-3,
        recover_period_s: float = 5e-3,
        recover_step: float = 0.0625,
    ) -> None:
        if not 0.0 <= initial_fraction <= 1.0:
            raise ValueError(f"initial fraction must be in [0,1]: {initial_fraction}")
        if not 0.0 < min_factor <= control_factor <= max_factor <= 1.0:
            raise ValueError(
                "need 0 < min_factor <= control_factor <= max_factor <= 1, got "
                f"{min_factor}/{control_factor}/{max_factor}"
            )
        self.initial_fraction = initial_fraction
        self.control_factor = control_factor
        self.min_factor = min_factor
        self.max_factor = max_factor
        self.act_period_s = act_period_s
        self.recover_period_s = recover_period_s
        self.recover_step = recover_step
        self.begin(None)  # type: ignore[arg-type]

    def begin(self, launch: Optional[KernelLaunch], now_s: float = 0.0) -> None:
        self._fraction = self.initial_fraction
        self._factor = self.control_factor
        self._last_action_s = float("-inf")
        self._last_cut_s = float("-inf")
        self._last_was_cut = False

    def observe(self, obs: Observation) -> Action:
        now_s = obs.now_s
        if obs.kind == "warning":
            if now_s - self._last_cut_s < self.act_period_s:
                return ACTION_NONE
            if self._last_was_cut:
                # The previous cut didn't clear the warning: climb.
                self._factor = min(self._factor * 2.0, self.max_factor)
            else:
                # Coming out of a relax phase the factor has decayed
                # toward min_factor — too timid for a thermal emergency.
                self._factor = max(self._factor, self.control_factor)
            self._fraction = max(0.0, self._fraction - self._factor)
            self._last_action_s = now_s
            self._last_cut_s = now_s
            self._last_was_cut = True
            return Action(fraction=self._fraction)
        # Step observation: relax only on quiet stretches.
        if obs.warning or now_s - self._last_action_s < self.recover_period_s:
            return ACTION_NONE
        self._factor = max(self._factor / 2.0, self.min_factor)
        self._fraction = min(1.0, self._fraction + self.recover_step)
        self._last_action_s = now_s
        self._last_was_cut = False
        return Action(fraction=self._fraction)

    # -- macro purity hints ---------------------------------------------------

    def fraction_horizon(self, now_s: float) -> float:
        """A step observation is a guaranteed no-op before the recovery
        deadline (the warning-latched early return holds the fraction,
        and warnings themselves end macro bursts)."""
        return max(now_s, self._last_action_s + self.recover_period_s)

    def warning_noop_until(self, now_s: float, temp_c=None) -> float:
        """Warnings are pure no-ops inside the cut rate-limit window."""
        return self._last_cut_s + self.act_period_s
