"""SSSP variants: correctness vs networkx, relaxation accounting."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.generators import grid_graph, ldbc_like_graph
from repro.workloads.bfs import pick_sources
from repro.workloads.sssp import SsspDtc, SsspDwc, SsspTwc, sssp_distances


def to_nx_weighted(g):
    G = nx.DiGraph()
    G.add_nodes_from(range(g.num_vertices))
    src = np.repeat(np.arange(g.num_vertices), np.diff(g.indptr))
    for s, d, w in zip(src.tolist(), g.indices.tolist(), g.weights.tolist()):
        G.add_edge(s, d, weight=w)
    return G


@pytest.fixture(scope="module")
def graph():
    return ldbc_like_graph(scale=8, edge_factor=6, seed=5)


class TestCorrectness:
    def test_distances_match_networkx(self, graph):
        dist = sssp_distances(graph, source=3)
        expected = nx.single_source_dijkstra_path_length(
            to_nx_weighted(graph), 3
        )
        for v in range(graph.num_vertices):
            if v in expected:
                assert dist[v] == pytest.approx(expected[v]), f"vertex {v}"
            else:
                assert np.isinf(dist[v])

    def test_weighted_grid(self):
        g = grid_graph(4, 4, weighted=True, seed=2)
        dist = sssp_distances(g, 0)
        expected = nx.single_source_dijkstra_path_length(to_nx_weighted(g), 0)
        for v, d in expected.items():
            assert dist[v] == pytest.approx(d)

    def test_unweighted_rejected(self):
        g = grid_graph(3, 3, weighted=False)
        with pytest.raises(ValueError):
            sssp_distances(g, 0)


class TestVariants:
    @pytest.mark.parametrize("cls", [SsspDtc, SsspDwc])
    def test_data_driven_traces(self, graph, cls):
        w = cls()
        w.num_sources = 2
        trace = w.trace(graph)
        totals = trace.totals()
        assert totals.atomics > 0
        # Every inspected edge attempts an atomicMin.
        counts = list(w.epochs(graph))
        assert all(c.atomics == c.edges_inspected for c in counts)

    def test_twc_sweeps_all_edges(self, graph):
        w = SsspTwc()
        w.num_sources = 1
        counts = list(w.epochs(graph))
        assert all(c.edges_inspected == graph.num_edges for c in counts)
        # Last sweep changes nothing (termination condition).
        assert counts[-1].updated_vertices == 0

    def test_twc_atomics_bounded_by_finite_sources(self, graph):
        w = SsspTwc()
        w.num_sources = 1
        counts = list(w.epochs(graph))
        # First sweep: only the source's edges relax.
        src = int(pick_sources(graph, 1, seed=0)[0])
        assert counts[0].atomics == graph.out_degree(src)

    def test_return_fraction_nonzero(self):
        # atomicMin results feed the frontier test.
        for cls in (SsspDtc, SsspDwc, SsspTwc):
            assert cls.coeffs.return_fraction > 0

    def test_unweighted_graph_rejected_by_workloads(self):
        g = grid_graph(3, 3, weighted=False)
        w = SsspDwc()
        with pytest.raises(ValueError):
            list(w.epochs(g))

    def test_dtc_heaviest_traffic_per_edge(self):
        # sssp-dtc must stay under the thermal threshold: most read lines
        # per atomic of all SSSP variants.
        assert SsspDtc.coeffs.lines_per_edge > SsspDwc.coeffs.lines_per_edge
        assert SsspDtc.coeffs.lines_per_edge > SsspTwc.coeffs.lines_per_edge
