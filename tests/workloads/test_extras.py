"""Extra kernels (cc, tc): correctness vs networkx and trace structure."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.generators import grid_graph, ldbc_like_graph, star_graph
from repro.workloads.extras import (
    ConnectedComponents,
    TriangleCount,
    connected_components,
    triangle_count,
)


def to_nx_undirected(g):
    G = nx.Graph()
    G.add_nodes_from(range(g.num_vertices))
    src = np.repeat(np.arange(g.num_vertices), np.diff(g.indptr))
    G.add_edges_from(zip(src.tolist(), g.indices.tolist()))
    return G


@pytest.fixture(scope="module")
def graph():
    return ldbc_like_graph(scale=7, edge_factor=4, seed=13)


class TestConnectedComponents:
    def test_matches_networkx(self, graph):
        labels = connected_components(graph)
        for comp in nx.connected_components(to_nx_undirected(graph)):
            comp = sorted(comp)
            assert len(set(labels[comp].tolist())) == 1, "split component"
        # distinct components get distinct labels
        n_ours = len(np.unique(labels))
        n_nx = nx.number_connected_components(to_nx_undirected(graph))
        assert n_ours == n_nx

    def test_isolated_vertices_keep_own_label(self):
        g = star_graph(3)
        labels = connected_components(g)
        assert len(np.unique(labels)) == 1  # star is one component

    def test_trace_terminates_with_fixed_point(self, graph):
        w = ConnectedComponents()
        w.repeats = 1
        counts = list(w.epochs(graph))
        assert counts[-1].updated_vertices == 0
        assert all(c.edges_inspected == graph.num_edges for c in counts)


class TestTriangleCount:
    def test_matches_networkx(self, graph):
        ours = triangle_count(graph)
        theirs = sum(nx.triangles(to_nx_undirected(graph)).values()) // 3
        assert ours == theirs

    def test_grid_has_no_triangles(self):
        assert triangle_count(grid_graph(4, 4)) == 0

    def test_trace_covers_all_chunks(self, graph):
        w = TriangleCount()
        w.repeats = 1
        counts = list(w.epochs(graph))
        covered = sum(c.frontier_vertices for c in counts)
        assert covered == graph.num_vertices

    def test_read_dominated_profile(self):
        # tc must be thermally benign: many read lines per atomic.
        c = TriangleCount.coeffs
        assert c.lines_per_edge > 2.0


class TestAsWorkloads:
    def test_cc_runs_in_the_simulator(self, graph):
        from repro.core import CoolPimSystem

        w = ConnectedComponents()
        w.repeats = 2
        res = CoolPimSystem().run(w, graph, "naive-offloading")
        assert res.runtime_s > 0
        assert res.pim_ops > 0

    def test_tc_stays_cool_under_naive_offloading(self, graph):
        from repro.core import CoolPimSystem

        w = TriangleCount()
        w.repeats = 2
        res = CoolPimSystem().run(w, graph, "naive-offloading")
        assert res.avg_pim_rate_ops_ns < 1.5


class TestGraphColoring:
    def test_coloring_is_valid(self, graph):
        from repro.workloads.extras import jones_plassmann_coloring
        import numpy as np

        colors = jones_plassmann_coloring(graph, seed=1)
        assert (colors >= 0).all()
        und = graph.to_undirected()
        src = np.repeat(np.arange(und.num_vertices), np.diff(und.indptr))
        assert not np.any(colors[src] == colors[und.indices])

    def test_deterministic_per_seed(self, graph):
        from repro.workloads.extras import jones_plassmann_coloring
        import numpy as np

        a = jones_plassmann_coloring(graph, seed=2)
        b = jones_plassmann_coloring(graph, seed=2)
        assert np.array_equal(a, b)

    def test_color_count_reasonable(self, graph):
        from repro.workloads.extras import jones_plassmann_coloring

        colors = jones_plassmann_coloring(graph, seed=3)
        _, peak = graph.to_undirected().degree_stats()
        assert colors.max() <= peak  # greedy bound: deg+1 colors

    def test_epochs_color_everyone_exactly_once(self, graph):
        from repro.workloads.extras import GraphColoring

        w = GraphColoring()
        w.repeats = 1
        counts = list(w.epochs(graph))
        assert sum(c.atomics for c in counts) == graph.num_vertices
        assert counts[0].frontier_vertices == graph.num_vertices

    def test_registered_as_extra(self):
        from repro.workloads import get_workload, list_workloads

        assert "gc" in list_workloads(include_extras=True)
        assert "gc" not in list_workloads()
        assert get_workload("gc").name == "gc"
