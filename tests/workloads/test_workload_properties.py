"""Property-based workload invariants across random graphs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import ldbc_like_graph
from repro.workloads import get_workload, list_workloads
from repro.workloads.bfs import BfsDwc, bfs_depths
from repro.workloads.sssp import SsspDwc, sssp_distances

graph_params = st.tuples(
    st.integers(min_value=5, max_value=7),   # scale
    st.integers(min_value=3, max_value=6),   # edge factor
    st.integers(min_value=0, max_value=50),  # seed
)


@settings(max_examples=10, deadline=None)
@given(graph_params)
def test_bfs_depths_are_consistent_with_edges(params):
    """Triangle inequality on levels: an edge can't skip a level."""
    scale, ef, seed = params
    g = ldbc_like_graph(scale=scale, edge_factor=ef, seed=seed)
    depth = bfs_depths(g, 0)
    src = np.repeat(np.arange(g.num_vertices), np.diff(g.indptr))
    for s, d in zip(src, g.indices):
        if depth[s] >= 0:
            assert depth[d] != -1
            assert depth[d] <= depth[s] + 1


@settings(max_examples=10, deadline=None)
@given(graph_params)
def test_sssp_no_relaxable_edge_remains(params):
    scale, ef, seed = params
    g = ldbc_like_graph(scale=scale, edge_factor=ef, seed=seed)
    dist = sssp_distances(g, 0)
    src = np.repeat(np.arange(g.num_vertices), np.diff(g.indptr))
    finite = np.isfinite(dist[src])
    slack = (dist[src[finite]] + g.weights[finite]) - dist[g.indices[finite]]
    assert np.all(slack >= -1e-9)


@settings(max_examples=6, deadline=None)
@given(graph_params)
def test_bfs_trace_accounts_every_reachable_vertex(params):
    scale, ef, seed = params
    g = ldbc_like_graph(scale=scale, edge_factor=ef, seed=seed)
    w = BfsDwc()
    w.num_sources = 1
    counts = list(w.epochs(g))
    from repro.workloads.bfs import pick_sources

    src = int(pick_sources(g, 1, w.seed)[0])
    reachable = int((bfs_depths(g, src) >= 0).sum())
    assert sum(c.updated_vertices for c in counts) == reachable - 1
    # Edges inspected equals the out-degrees of everything that entered
    # the frontier (source + discovered vertices).
    deg = np.asarray(g.out_degree())
    in_frontier = bfs_depths(g, src) >= 0
    assert sum(c.edges_inspected for c in counts) == int(deg[in_frontier].sum())


@settings(max_examples=5, deadline=None)
@given(graph_params)
def test_every_benchmark_emits_valid_batches(params):
    scale, ef, seed = params
    g = ldbc_like_graph(scale=scale, edge_factor=ef, seed=seed)
    for name in list_workloads():
        w = get_workload(name)
        for attr, val in (("num_sources", 1), ("repeats", 1),
                          ("iterations", 2)):
            if hasattr(w, attr):
                setattr(w, attr, val)
        trace = w.trace(g)
        totals = trace.totals()
        # Constructors validate; here we check cross-field sanity.
        assert totals.atomics_with_return <= totals.atomics
        assert 0.0 <= totals.divergent_warp_ratio <= 1.0
        assert totals.threads >= 1
