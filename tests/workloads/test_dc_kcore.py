"""Degree centrality and k-core: correctness and trace structure."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.generators import ldbc_like_graph, star_graph
from repro.workloads.dc import DegreeCentrality, degree_centrality
from repro.workloads.kcore import KCore, kcore_mask


@pytest.fixture(scope="module")
def graph():
    return ldbc_like_graph(scale=8, edge_factor=6, seed=11)


class TestDegreeCentrality:
    def test_matches_manual_count(self, graph):
        dc = degree_centrality(graph)
        src = np.repeat(np.arange(graph.num_vertices), np.diff(graph.indptr))
        manual = np.bincount(src, minlength=graph.num_vertices) + np.bincount(
            graph.indices, minlength=graph.num_vertices
        )
        assert np.array_equal(dc, manual)

    def test_star_graph(self):
        g = star_graph(5)
        dc = degree_centrality(g)
        assert dc[0] == 10  # hub: 5 out + 5 in
        assert dc[1] == 2

    def test_chunked_epochs_cover_all_edges(self, graph):
        w = DegreeCentrality()
        w.repeats = 2
        counts = list(w.epochs(graph))
        total_edges = sum(c.edges_inspected for c in counts)
        assert total_edges == 2 * graph.num_edges

    def test_one_atomic_per_edge(self, graph):
        w = DegreeCentrality()
        w.repeats = 1
        for c in w.epochs(graph):
            assert c.atomics == c.edges_inspected

    def test_chunk_bound(self, graph):
        w = DegreeCentrality()
        w.repeats = 1
        for c in w.epochs(graph):
            assert c.edges_inspected <= w.chunk_edges


class TestKCore:
    def test_matches_networkx_core_number(self, graph):
        k = 8
        mask = kcore_mask(graph.to_undirected(), k)
        G = nx.Graph()
        G.add_nodes_from(range(graph.num_vertices))
        src = np.repeat(np.arange(graph.num_vertices), np.diff(graph.indptr))
        G.add_edges_from(zip(src.tolist(), graph.indices.tolist()))
        core = nx.core_number(G)
        for v in range(graph.num_vertices):
            assert mask[v] == (core[v] >= k), f"vertex {v}"

    def test_k_zero_keeps_everything(self, graph):
        assert kcore_mask(graph, 0).all()

    def test_huge_k_removes_everything(self, graph):
        assert not kcore_mask(graph, 10_000).any()

    def test_rounds_shrink_monotonically_overall(self, graph):
        w = KCore()
        w.repeats = 1
        w.k_values = (16,)
        counts = list(w.epochs(graph))
        assert len(counts) >= 1
        # Total removed across rounds cannot exceed the vertex count.
        assert sum(c.updated_vertices for c in counts) <= graph.num_vertices

    def test_atomics_bound_by_edges(self, graph):
        w = KCore()
        w.repeats = 1
        for c in w.epochs(graph):
            assert c.atomics <= c.edges_inspected

    def test_every_round_scans_all_vertices(self, graph):
        w = KCore()
        w.repeats = 1
        w.k_values = (8,)
        for c in w.epochs(graph):
            assert c.scanned_vertices == graph.num_vertices
