"""PageRank: correctness vs networkx, per-iteration trace."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.generators import ldbc_like_graph
from repro.workloads.pagerank import DAMPING, PageRank, pagerank_scores


def to_nx(g):
    G = nx.DiGraph()
    G.add_nodes_from(range(g.num_vertices))
    src = np.repeat(np.arange(g.num_vertices), np.diff(g.indptr))
    G.add_edges_from(zip(src.tolist(), g.indices.tolist()))
    return G


@pytest.fixture(scope="module")
def graph():
    return ldbc_like_graph(scale=8, edge_factor=6, seed=9)


class TestCorrectness:
    def test_scores_sum_to_one(self, graph):
        rank = pagerank_scores(graph, iterations=30)
        assert rank.sum() == pytest.approx(1.0, abs=1e-6)

    def test_matches_networkx(self, graph):
        ours = pagerank_scores(graph, iterations=100)
        theirs = nx.pagerank(to_nx(graph), alpha=DAMPING, max_iter=200,
                             tol=1e-12)
        for v in range(graph.num_vertices):
            assert ours[v] == pytest.approx(theirs[v], rel=1e-3, abs=1e-9)

    def test_high_degree_vertices_rank_higher(self, graph):
        rank = pagerank_scores(graph, iterations=50)
        # In-degree drives rank: the top-ranked vertex has far more
        # in-edges than the median vertex.
        in_deg = np.zeros(graph.num_vertices)
        np.add.at(in_deg, graph.indices, 1)
        assert in_deg[np.argmax(rank)] > np.median(in_deg)


class TestTrace:
    def test_one_epoch_per_iteration(self, graph):
        w = PageRank()
        w.iterations = 7
        counts = list(w.epochs(graph))
        assert len(counts) == 7

    def test_one_atomic_per_edge_per_iteration(self, graph):
        w = PageRank()
        w.iterations = 3
        counts = list(w.epochs(graph))
        assert all(c.atomics == graph.num_edges for c in counts)

    def test_all_vertices_updated(self, graph):
        w = PageRank()
        w.iterations = 1
        c = next(iter(w.epochs(graph)))
        assert c.updated_vertices == graph.num_vertices

    def test_reference_matches_direct(self, graph):
        w = PageRank()
        w.iterations = 5
        assert np.allclose(w.reference(graph), pagerank_scores(graph, 5))
