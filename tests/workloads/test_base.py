"""Workload base: coefficient validation and count→traffic translation."""

import pytest

from repro.gpu.config import GPU_DEFAULT
from repro.graph import get_dataset
from repro.workloads import get_workload, list_workloads
from repro.workloads.base import EpochCounts, TrafficCoefficients
from repro.workloads.dc import DegreeCentrality


class TestCoefficients:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TrafficCoefficients(lines_per_edge=-0.1)

    def test_fractions_bounded(self):
        with pytest.raises(ValueError):
            TrafficCoefficients(lines_per_edge=1.0, divergence=2.0)
        with pytest.raises(ValueError):
            TrafficCoefficients(lines_per_edge=1.0, atomic_coalescing=1.5)


class TestEpochCounts:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EpochCounts(label="x", edges_inspected=-1)


class TestTranslation:
    def test_batch_uses_coefficients(self):
        w = DegreeCentrality()
        counts = EpochCounts(label="e", frontier_vertices=100,
                             edges_inspected=1000, atomics=1000)
        batch = w.batch_for(counts)
        c = w.coeffs
        expected_reads = round(1000 * c.lines_per_edge
                               + 100 * c.lines_per_scan_vertex)
        assert batch.reads == expected_reads
        assert batch.atomics == 1000
        assert batch.divergent_warp_ratio == c.divergence

    def test_return_fraction_applied(self):
        w = get_workload("sssp-dwc")
        counts = EpochCounts(label="e", edges_inspected=100, atomics=100)
        batch = w.batch_for(counts)
        assert batch.atomics_with_return == round(100 * w.coeffs.return_fraction)

    def test_write_lines_per_edge(self):
        w = get_workload("bfs-dwc")
        counts = EpochCounts(label="e", edges_inspected=1000, atomics=1000,
                             updated_vertices=0)
        batch = w.batch_for(counts)
        assert batch.writes == round(1000 * w.coeffs.write_lines_per_edge)


class TestLaunch:
    def test_launch_carries_trace_and_threads(self):
        g = get_dataset("uniform-tiny")
        w = get_workload("pagerank")
        w.iterations = 2
        launch = w.launch(g)
        assert launch.name == "pagerank"
        assert launch.total_threads >= g.num_vertices
        assert len(launch.trace) == 2

    def test_cache_model_reflects_profile(self):
        w = get_workload("dc")
        cache = w.cache_model(GPU_DEFAULT)
        assert cache.read_hit_rate == w.coeffs.read_hit_rate
        assert cache.host_atomic_coalescing == w.coeffs.atomic_coalescing


class TestRegistry:
    def test_ten_benchmarks(self):
        names = list_workloads()
        assert len(names) == 10
        assert names == [
            "dc", "bfs-ta", "bfs-dwc", "bfs-ttc", "bfs-twc",
            "kcore", "pagerank", "sssp-dtc", "sssp-dwc", "sssp-twc",
        ]

    def test_instances_named_consistently(self):
        for name in list_workloads():
            assert get_workload(name).name == name

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_seed_forwarded(self):
        assert get_workload("dc", seed=5).seed == 5
