"""BFS variants: correctness vs networkx, trace structure, variant mix."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import get_dataset
from repro.graph.generators import grid_graph, ldbc_like_graph
from repro.workloads.bfs import BfsDwc, BfsTa, BfsTtc, BfsTwc, bfs_depths, pick_sources


def to_nx(g):
    G = nx.DiGraph()
    G.add_nodes_from(range(g.num_vertices))
    src = np.repeat(np.arange(g.num_vertices), np.diff(g.indptr))
    G.add_edges_from(zip(src.tolist(), g.indices.tolist()))
    return G


@pytest.fixture(scope="module")
def graph():
    return ldbc_like_graph(scale=8, edge_factor=6, seed=3)


class TestCorrectness:
    def test_depths_match_networkx(self, graph):
        depth = bfs_depths(graph, source=0)
        expected = nx.single_source_shortest_path_length(to_nx(graph), 0)
        for v in range(graph.num_vertices):
            if v in expected:
                assert depth[v] == expected[v], f"vertex {v}"
            else:
                assert depth[v] == -1

    def test_grid_depths_are_manhattan(self):
        g = grid_graph(5, 5)
        depth = bfs_depths(g, source=0)
        for r in range(5):
            for c in range(5):
                assert depth[r * 5 + c] == r + c

    def test_source_depth_zero(self, graph):
        assert bfs_depths(graph, 7)[7] == 0


class TestSources:
    def test_deterministic(self, graph):
        a = pick_sources(graph, 8, seed=1)
        b = pick_sources(graph, 8, seed=1)
        assert np.array_equal(a, b)

    def test_no_isolated_sources(self, graph):
        deg = np.asarray(graph.out_degree())
        for s in pick_sources(graph, 16, seed=2):
            assert deg[s] > 0

    def test_unique(self, graph):
        s = pick_sources(graph, 16, seed=0)
        assert len(set(s.tolist())) == len(s)


class TestTraces:
    @pytest.mark.parametrize("cls", [BfsTa, BfsTtc, BfsTwc, BfsDwc])
    def test_trace_nonempty_and_valid(self, graph, cls):
        w = cls()
        w.num_sources = 2
        trace = w.trace(graph)
        assert len(trace) > 2
        totals = trace.totals()
        assert totals.atomics > 0
        assert totals.reads > 0

    def test_topological_variants_scan_all_vertices(self, graph):
        w = BfsTa()
        w.num_sources = 1
        counts = list(w.epochs(graph))
        assert all(c.scanned_vertices == graph.num_vertices for c in counts)

    def test_data_driven_scans_nothing(self, graph):
        w = BfsDwc()
        w.num_sources = 1
        counts = list(w.epochs(graph))
        assert all(c.scanned_vertices == 0 for c in counts)

    def test_atomic_mode_edge_counts_all_edges(self, graph):
        w = BfsTa()  # atomic per inspected edge
        w.num_sources = 1
        counts = list(w.epochs(graph))
        assert all(c.atomics == c.edges_inspected for c in counts)

    def test_frontier_sizes_sum_to_reachable(self, graph):
        w = BfsDwc()
        w.num_sources = 1
        counts = list(w.epochs(graph))
        src = int(pick_sources(graph, 1, seed=0)[0])
        reachable = (bfs_depths(graph, src) >= 0).sum()
        assert sum(c.updated_vertices for c in counts) == reachable - 1

    def test_warp_centric_low_divergence(self):
        assert BfsDwc.coeffs.divergence < 0.1 < BfsTtc.coeffs.divergence

    def test_reference_returns_depths(self, graph):
        w = BfsTwc()
        ref = w.reference(graph)
        assert ref.shape == (graph.num_vertices,)
        assert (ref >= -1).all()
