"""ASCII chart rendering."""

import pytest

from repro.viz import bar_chart, line_chart, sparkline


class TestSparkline:
    def test_trend_shape(self):
        s = sparkline([0, 1, 2, 3])
        assert len(s) == 4
        assert s[0] == "▁" and s[-1] == "█"

    def test_flat_series(self):
        s = sparkline([5, 5, 5])
        assert len(s) == 3

    def test_empty(self):
        assert sparkline([]) == ""


class TestLineChart:
    def test_renders_all_series_markers(self):
        out = line_chart(
            {"a": [1, 2, 3], "b": [3, 2, 1]}, title="t", width=20, height=5
        )
        assert "*" in out and "o" in out
        assert "t" in out
        assert "a" in out and "b" in out  # legend

    def test_extremes_on_axis_labels(self):
        out = line_chart({"x": [10.0, 50.0]}, xs=[0, 100], width=20, height=4)
        assert "50" in out and "10" in out
        assert "100" in out

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2], "b": [1]})
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2]}, xs=[1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": []})

    def test_constant_series_ok(self):
        out = line_chart({"flat": [2.0, 2.0, 2.0]}, width=10, height=3)
        assert "flat" in out


class TestBarChart:
    def test_bars_scale_with_values(self):
        out = bar_chart({"small": 1.0, "big": 4.0}, width=20)
        lines = out.splitlines()
        small = next(l for l in lines if "small" in l)
        big = next(l for l in lines if "big" in l)
        assert big.count("█") > small.count("█")

    def test_reference_rule_drawn(self):
        out = bar_chart({"a": 0.5, "b": 2.0}, width=20, reference=1.0)
        assert "|" in out
        assert "reference = 1" in out

    def test_unit_suffix(self):
        out = bar_chart({"t": 85.0}, unit="C")
        assert "85C" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})


class TestWithRealExperimentData:
    def test_fig4_style_chart(self):
        from repro.experiments import fig4_bandwidth

        sweep = fig4_bandwidth.run(bandwidths=(0, 160, 320))
        out = line_chart(
            sweep.curves, xs=sweep.bandwidths_gbs,
            title="Fig. 4", y_label="peak C", x_label="GB/s",
        )
        assert "commodity" in out and "passive" in out

    def test_fig10_style_bars(self):
        out = bar_chart(
            {"naive": 0.9, "coolpim-sw": 1.26, "ideal": 1.5},
            reference=1.0, unit="x",
        )
        assert "coolpim-sw" in out
