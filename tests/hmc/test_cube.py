"""Event-level cube: end-to-end transactions, thermal bits, shutdown."""

import pytest

from repro.hmc.config import HMC_2_0
from repro.hmc.cube import HmcCube
from repro.hmc.isa import PimInstruction, PimOpcode, decode_operand, encode_operand
from repro.hmc.packet import PacketType, Request


@pytest.fixture
def cube():
    return HmcCube(HMC_2_0)


class TestTransactions:
    def test_read_after_write(self, cube):
        payload = bytes(range(64))
        cube.submit(Request(PacketType.WRITE64, address=0x400), 0.0, payload=payload)
        rsp = cube.submit(Request(PacketType.READ64, address=0x400), 100.0)
        assert rsp.data == payload

    def test_latency_includes_link_and_dram(self, cube):
        rsp = cube.submit(Request(PacketType.READ64, address=0), 0.0)
        # Bounded below by DRAM closed-row access, above by a sane cap.
        assert HMC_2_0.timing.read_closed_latency() < rsp.latency_ns < 200.0

    def test_write_payload_length_checked(self, cube):
        with pytest.raises(ValueError):
            cube.submit(Request(PacketType.WRITE64, address=0), 0.0, payload=b"abc")

    def test_pim_add_roundtrip(self, cube):
        addr = 0x1000
        cube.mem_write(addr, encode_operand(10, PimOpcode.ADD_IMM, 4))
        inst = PimInstruction(PimOpcode.ADD_IMM, address=addr, immediate=32)
        cube.submit(Request(PacketType.PIM, address=addr, pim=inst), 0.0)
        val = decode_operand(cube.mem_read(addr, 4), PimOpcode.ADD_IMM, 4)
        assert val == 42

    def test_pim_counts(self, cube):
        inst = PimInstruction(PimOpcode.ADD_IMM, address=0, immediate=1)
        for _ in range(5):
            cube.submit(Request(PacketType.PIM, address=0, pim=inst), 0.0)
        assert cube.stats.pim_ops == 5
        assert cube.total_pim_ops() == 5
        assert cube.total_fu_energy_j() > 0

    def test_addresses_spread_across_vaults(self, cube):
        for i in range(64):
            cube.submit(Request(PacketType.READ64, address=i * 32), 0.0)
        touched = sum(1 for v in cube.vaults if v.stats.requests > 0)
        assert touched == 32  # low-order interleaving hits every vault

    def test_tag_allocation_monotonic(self, cube):
        assert cube.allocate_tag() == 0
        assert cube.allocate_tag() == 1


class TestThermal:
    def test_warning_stamped_into_responses(self, cube):
        cube.set_thermal_warning(True)
        rsp = cube.submit(Request(PacketType.READ64, address=0), 0.0)
        assert rsp.thermal_warning
        assert cube.stats.thermal_warnings_sent == 1

    def test_warning_clears(self, cube):
        cube.set_thermal_warning(True)
        cube.set_thermal_warning(False)
        rsp = cube.submit(Request(PacketType.READ64, address=0), 0.0)
        assert not rsp.thermal_warning

    def test_frequency_scale_reaches_banks(self, cube):
        cube.set_frequency_scale(0.64)
        assert cube.vaults[0].banks[0].freq_scale == 0.64


class TestShutdown:
    def test_shutdown_blocks_traffic(self, cube):
        cube.shutdown()
        with pytest.raises(RuntimeError):
            cube.submit(Request(PacketType.READ64, address=0), 0.0)

    def test_shutdown_loses_contents(self, cube):
        cube.mem_write(0, b"\xff" * 8)
        cube.shutdown()
        cube.recover()
        assert cube.mem_read(0, 8) == b"\x00" * 8

    def test_recover_restores_service(self, cube):
        cube.shutdown()
        cube.recover()
        rsp = cube.submit(Request(PacketType.READ64, address=0), 0.0)
        assert rsp is not None


class TestBandwidthAccounting:
    def test_link_data_bytes(self, cube):
        cube.submit(Request(PacketType.READ64, address=0), 0.0)
        cube.submit(Request(PacketType.WRITE64, address=64), 0.0, payload=b"\0" * 64)
        assert cube.link_data_bytes() == 128

    def test_many_requests_saturate_links_in_order(self, cube):
        # Throughput check: N reads over 4 links cannot finish faster than
        # the response-lane serialization bound.
        n = 256
        last = 0.0
        for i in range(n):
            rsp = cube.submit(Request(PacketType.READ64, address=i * 32), 0.0)
            last = max(last, rsp.complete_time_ns)
        per_dir_gbs = HMC_2_0.peak_link_bandwidth_gbs / 2
        min_time = n * 5 * 16 / per_dir_gbs  # 5 response FLITs each
        assert last >= min_time
