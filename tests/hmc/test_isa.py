"""PIM ISA semantics: opcode metadata, functional execution, wrapping."""

import pytest

from repro.hmc.isa import (
    OPCODE_INFO,
    PimInstruction,
    PimOpClass,
    PimOpcode,
    decode_operand,
    encode_operand,
    execute_semantics,
    is_float_op,
)


def run_op(opcode, old, imm, nbytes=4, compare=0.0):
    inst = PimInstruction(opcode, address=0, immediate=imm,
                          operand_bytes=nbytes, compare=compare)
    return execute_semantics(old, inst)


class TestArithmetic:
    def test_add(self):
        assert run_op(PimOpcode.ADD_IMM, 5, 7) == (12, True)

    def test_add_negative(self):
        assert run_op(PimOpcode.ADD_IMM, 5, -9) == (-4, True)

    def test_add_wraps_at_32_bits(self):
        new, flag = run_op(PimOpcode.ADD_IMM, 2**31 - 1, 1)
        assert new == -(2**31) and flag

    def test_add_wraps_at_64_bits(self):
        new, _ = run_op(PimOpcode.ADD_IMM, 2**63 - 1, 1, nbytes=8)
        assert new == -(2**63)

    def test_add_ret_same_semantics(self):
        assert run_op(PimOpcode.ADD_IMM_RET, 1, 2) == (3, True)


class TestBitwiseBoolean:
    def test_swap_replaces(self):
        assert run_op(PimOpcode.SWAP, 99, 7) == (7, True)

    def test_bit_write_sets_bits(self):
        assert run_op(PimOpcode.BIT_WRITE, 0b1000, 0b0011) == (0b1011, True)

    def test_and(self):
        assert run_op(PimOpcode.AND_IMM, 0b1100, 0b0110) == (0b0100, True)

    def test_or(self):
        assert run_op(PimOpcode.OR_IMM, 0b1100, 0b0110) == (0b1110, True)


class TestComparison:
    def test_cas_equal_hit(self):
        assert run_op(PimOpcode.CAS_EQUAL, 5, 42, compare=5) == (42, True)

    def test_cas_equal_miss(self):
        assert run_op(PimOpcode.CAS_EQUAL, 6, 42, compare=5) == (6, False)

    def test_cas_greater(self):
        assert run_op(PimOpcode.CAS_GREATER, 10, 20) == (20, True)
        assert run_op(PimOpcode.CAS_GREATER, 10, 5) == (10, False)

    def test_cas_less(self):
        assert run_op(PimOpcode.CAS_LESS, 10, 5) == (5, True)
        assert run_op(PimOpcode.CAS_LESS, 10, 20) == (10, False)


class TestFloating:
    def test_fp_add(self):
        new, flag = run_op(PimOpcode.FP_ADD_IMM, 1.5, 2.25)
        assert new == pytest.approx(3.75) and flag

    def test_fp_min(self):
        assert run_op(PimOpcode.FP_MIN, 3.0, 1.5) == (1.5, True)
        assert run_op(PimOpcode.FP_MIN, 1.0, 1.5) == (1.0, False)


class TestMetadata:
    def test_every_opcode_has_info(self):
        for opcode in PimOpcode:
            assert opcode in OPCODE_INFO

    def test_return_variants(self):
        assert PimInstruction(PimOpcode.ADD_IMM_RET, 0, 1).has_return
        assert not PimInstruction(PimOpcode.ADD_IMM, 0, 1).has_return
        assert PimInstruction(PimOpcode.CAS_GREATER, 0, 1).has_return

    def test_op_class(self):
        assert PimInstruction(PimOpcode.SWAP, 0, 1).op_class is PimOpClass.BITWISE

    def test_float_detection(self):
        assert is_float_op(PimOpcode.FP_MIN)
        assert not is_float_op(PimOpcode.ADD_IMM)

    def test_operand_width_validation(self):
        with pytest.raises(ValueError):
            PimInstruction(PimOpcode.ADD_IMM, 0, 1, operand_bytes=2)

    def test_negative_address(self):
        with pytest.raises(ValueError):
            PimInstruction(PimOpcode.ADD_IMM, -4, 1)


class TestEncoding:
    @pytest.mark.parametrize("value,nbytes", [(0, 4), (-1, 4), (123456, 4),
                                              (-(2**31), 4), (2**40, 8)])
    def test_int_roundtrip(self, value, nbytes):
        raw = encode_operand(value, PimOpcode.ADD_IMM, nbytes)
        assert len(raw) == nbytes
        # values wrap into range, then survive the roundtrip
        decoded = decode_operand(raw, PimOpcode.ADD_IMM, nbytes)
        raw2 = encode_operand(decoded, PimOpcode.ADD_IMM, nbytes)
        assert raw == raw2

    def test_float_roundtrip(self):
        raw = encode_operand(1.25, PimOpcode.FP_ADD_IMM, 8)
        assert decode_operand(raw, PimOpcode.FP_ADD_IMM, 8) == 1.25

    def test_float32_precision(self):
        raw = encode_operand(0.1, PimOpcode.FP_ADD_IMM, 4)
        assert decode_operand(raw, PimOpcode.FP_ADD_IMM, 4) == pytest.approx(0.1)

    def test_decode_length_check(self):
        with pytest.raises(ValueError):
            decode_operand(b"\x00" * 3, PimOpcode.ADD_IMM, 4)
