"""Packet protocol: Table I FLIT costs, ERRSTAT, ledger accounting."""

import pytest

from repro.hmc.isa import PimInstruction, PimOpcode
from repro.hmc.packet import (
    ERRSTAT_OK,
    ERRSTAT_THERMAL_WARNING,
    FLIT_BYTES,
    FlitLedger,
    PacketType,
    Request,
    Response,
    bandwidth_saving_fraction,
    flit_cost,
    round_trip_flits,
)


class TestTableI:
    """The exact Table I numbers."""

    def test_read64(self):
        assert flit_cost(PacketType.READ64) == (1, 5)

    def test_write64(self):
        assert flit_cost(PacketType.WRITE64) == (5, 1)

    def test_pim_without_return(self):
        assert flit_cost(PacketType.PIM) == (2, 1)

    def test_pim_with_return(self):
        assert flit_cost(PacketType.PIM_RET) == (2, 2)

    def test_flit_is_128_bits(self):
        assert FLIT_BYTES * 8 == 128

    def test_round_trips(self):
        assert round_trip_flits(PacketType.READ64) == 6
        assert round_trip_flits(PacketType.PIM) == 3

    def test_headline_50_percent_saving(self):
        # Sec. II-B: "PIM offloading potentially can save up to 50%".
        assert bandwidth_saving_fraction() == pytest.approx(0.5)


def _pim_inst():
    return PimInstruction(PimOpcode.ADD_IMM, address=0x40, immediate=1)


class TestRequest:
    def test_pim_requires_payload(self):
        with pytest.raises(ValueError):
            Request(PacketType.PIM, address=0)

    def test_read_rejects_pim_payload(self):
        with pytest.raises(ValueError):
            Request(PacketType.READ64, address=0, pim=_pim_inst())

    def test_negative_address(self):
        with pytest.raises(ValueError):
            Request(PacketType.READ64, address=-1)

    def test_flit_properties(self):
        req = Request(PacketType.PIM, address=0, pim=_pim_inst())
        assert req.request_flits == 2
        assert req.response_flits == 1


class TestResponse:
    def test_thermal_warning_bit(self):
        ok = Response(tag=0, ptype=PacketType.READ64, errstat=ERRSTAT_OK)
        hot = Response(tag=0, ptype=PacketType.READ64,
                       errstat=ERRSTAT_THERMAL_WARNING)
        assert not ok.thermal_warning
        assert hot.thermal_warning

    def test_errstat_is_7_bits(self):
        with pytest.raises(ValueError):
            Response(tag=0, ptype=PacketType.READ64, errstat=0x80)
        Response(tag=0, ptype=PacketType.READ64, errstat=0x7F)


class TestLedger:
    def test_accumulates_table1_costs(self):
        led = FlitLedger()
        led.record(PacketType.READ64, 2)
        led.record(PacketType.PIM)
        assert led.request_flits == 2 * 1 + 2
        assert led.response_flits == 2 * 5 + 1
        assert led.total_bytes == led.total_flits * 16

    def test_data_payload(self):
        led = FlitLedger()
        led.record(PacketType.READ64)
        led.record(PacketType.WRITE64)
        led.record(PacketType.PIM)       # no payload
        led.record(PacketType.PIM_RET)   # 16 B returned operand
        assert led.data_payload_bytes() == 64 + 64 + 16

    def test_merge(self):
        a, b = FlitLedger(), FlitLedger()
        a.record(PacketType.READ64)
        b.record(PacketType.WRITE64, 3)
        a.merge(b)
        assert a.transactions[PacketType.WRITE64] == 3
        assert a.transactions[PacketType.READ64] == 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            FlitLedger().record(PacketType.READ64, -1)
