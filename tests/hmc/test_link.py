"""Serial links: serialization timing, duplex independence, round robin."""

import pytest

from repro.hmc.link import LinkGroup, SerialLink
from repro.hmc.packet import PacketType


class TestSerialLink:
    def test_per_direction_bandwidth_is_half(self):
        link = SerialLink(0, bandwidth_gbs=120.0)
        assert link.direction_bandwidth_gbs == 60.0
        assert link.flit_time_ns == pytest.approx(16 / 60.0)

    def test_request_serialization_time(self):
        link = SerialLink(0, 120.0)
        # WRITE64 request = 5 FLITs
        arrival = link.send_request(PacketType.WRITE64, now=0.0)
        assert arrival == pytest.approx(5 * link.flit_time_ns)

    def test_requests_queue_on_lane(self):
        link = SerialLink(0, 120.0)
        a1 = link.send_request(PacketType.READ64, now=0.0)
        a2 = link.send_request(PacketType.READ64, now=0.0)
        assert a2 == pytest.approx(a1 + link.flit_time_ns)

    def test_directions_independent(self):
        link = SerialLink(0, 120.0)
        link.send_request(PacketType.WRITE64, now=0.0)
        rsp = link.send_response(PacketType.READ64, now=0.0)
        # response lane was idle: 5 response FLITs from t=0
        assert rsp == pytest.approx(5 * link.flit_time_ns)

    def test_ledger_counts_transaction_once(self):
        link = SerialLink(0, 120.0)
        link.send_request(PacketType.READ64, now=0.0)
        link.send_response(PacketType.READ64, now=10.0)
        assert link.ledger.transactions[PacketType.READ64] == 1

    def test_utilization(self):
        link = SerialLink(0, 120.0)
        end = link.send_request(PacketType.READ64, now=0.0)
        u = link.utilization(end)
        assert 0.0 < u <= 0.5  # only request lane was busy

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            SerialLink(0, 0.0)


class TestLinkGroup:
    def test_round_robin(self):
        group = LinkGroup(4, 120.0)
        picks = [group.pick().link_id for _ in range(8)]
        assert picks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_total_flits(self):
        group = LinkGroup(2, 120.0)
        group.pick().send_request(PacketType.READ64, 0.0)
        group.pick().send_request(PacketType.PIM, 0.0)
        assert group.total_flits() == 6 + 3

    def test_merged_ledger(self):
        group = LinkGroup(2, 120.0)
        group.pick().send_request(PacketType.READ64, 0.0)
        group.pick().send_request(PacketType.READ64, 0.0)
        assert group.merged_ledger().transactions[PacketType.READ64] == 2

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            LinkGroup(0, 120.0)
