"""PIM functional unit: latency classes, energy accounting, stats."""

import pytest

from repro.hmc.isa import PimInstruction, PimOpcode
from repro.hmc.memory import BackingStore
from repro.hmc.pim_unit import FU_WIDTH_BITS, PimUnit


class TestLatency:
    def test_integer_ops_single_ns(self):
        fu = PimUnit()
        for op in (PimOpcode.ADD_IMM, PimOpcode.SWAP, PimOpcode.AND_IMM,
                   PimOpcode.CAS_GREATER):
            assert fu.latency_ns(PimInstruction(op, 0, 1)) == 1.0

    def test_float_ops_slower(self):
        fu = PimUnit()
        assert fu.latency_ns(PimInstruction(PimOpcode.FP_ADD_IMM, 0, 1.0)) > 1.0


class TestEnergy:
    def test_per_op_energy_is_width_times_bit_energy(self):
        fu = PimUnit(energy_per_bit_j=2e-12)
        assert fu.energy_j_per_op() == pytest.approx(2e-12 * FU_WIDTH_BITS)

    def test_energy_accumulates(self):
        fu = PimUnit(energy_per_bit_j=1e-12)
        store = BackingStore(1 << 12)
        inst = PimInstruction(PimOpcode.ADD_IMM, 0, 1)
        for _ in range(10):
            fu.execute(inst, store)
        assert fu.stats.energy_j == pytest.approx(10 * fu.energy_j_per_op())

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            PimUnit(energy_per_bit_j=-1.0)


class TestExecution:
    def test_failed_atomics_counted(self):
        fu = PimUnit()
        store = BackingStore(1 << 12)
        # CAS-greater with immediate 0 on zeroed memory fails (0 > 0 false).
        inst = PimInstruction(PimOpcode.CAS_GREATER, 0, 0)
        _old, flag = fu.execute(inst, store)
        assert not flag
        assert fu.stats.failed_atomics == 1

    def test_return_ops_counted(self):
        fu = PimUnit()
        store = BackingStore(1 << 12)
        fu.execute(PimInstruction(PimOpcode.ADD_IMM_RET, 0, 1), store)
        fu.execute(PimInstruction(PimOpcode.ADD_IMM, 0, 1), store)
        assert fu.stats.ops == 2
        assert fu.stats.ops_with_return == 1

    def test_fu_width_is_128(self):
        assert FU_WIDTH_BITS == 128
