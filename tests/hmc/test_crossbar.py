"""Crossbar: traversal latency and per-vault port serialization."""

import pytest

from repro.hmc.config import HMC_2_0
from repro.hmc.crossbar import Crossbar
from repro.hmc.cube import HmcCube
from repro.hmc.packet import PacketType, Request


class TestTraversal:
    def test_fixed_latency(self):
        xbar = Crossbar(traversal_ns=2.0)
        assert xbar.forward(10.0) == 12.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Crossbar(traversal_ns=-1.0)
        with pytest.raises(ValueError):
            Crossbar(port_bandwidth_gbs=0.0)


class TestPortSerialization:
    def test_single_packet_pays_latency_plus_serialization(self):
        xbar = Crossbar(traversal_ns=1.0, port_bandwidth_gbs=16.0)
        # traversal 1 ns + 2 FLITs (32 B) at 16 GB/s (2 ns) = 3 ns.
        assert xbar.forward_to_vault(0, flits=2, now=0.0) == pytest.approx(3.0)

    def test_same_vault_packets_queue(self):
        xbar = Crossbar(traversal_ns=1.0, port_bandwidth_gbs=16.0)
        t1 = xbar.forward_to_vault(0, flits=2, now=0.0)
        t2 = xbar.forward_to_vault(0, flits=2, now=0.0)
        assert t2 == pytest.approx(t1 + 2.0)

    def test_different_vaults_independent(self):
        xbar = Crossbar(traversal_ns=1.0, port_bandwidth_gbs=16.0)
        t1 = xbar.forward_to_vault(0, flits=2, now=0.0)
        t2 = xbar.forward_to_vault(5, flits=2, now=0.0)
        assert t1 == pytest.approx(t2)

    def test_utilization(self):
        xbar = Crossbar(port_bandwidth_gbs=16.0)
        end = xbar.forward_to_vault(3, flits=4, now=0.0)
        assert xbar.port_utilization(3, end) > 0.0
        assert xbar.port_utilization(9, end) == 0.0
        assert xbar.port_utilization(3, 0.0) == 0.0

    def test_zero_flits_rejected(self):
        with pytest.raises(ValueError):
            Crossbar().forward_to_vault(0, flits=0, now=0.0)


class TestCubeIntegration:
    def test_single_vault_burst_slower_than_spread(self):
        """All requests to one vault back up at its crossbar port; the
        same count spread across vaults does not."""
        stride_same_vault = (
            HMC_2_0.dram_access_granularity_bytes * HMC_2_0.num_vaults
        )
        n = 128

        hot = HmcCube(HMC_2_0)
        t_hot = 0.0
        for i in range(n):
            # same vault, different banks
            rsp = hot.submit(
                Request(PacketType.WRITE64, address=i * stride_same_vault),
                0.0, payload=b"\0" * 64,
            )
            t_hot = max(t_hot, rsp.complete_time_ns)

        cold = HmcCube(HMC_2_0)
        t_cold = 0.0
        for i in range(n):
            rsp = cold.submit(
                Request(PacketType.WRITE64, address=i * 32), 0.0,
                payload=b"\0" * 64,
            )
            t_cold = max(t_cold, rsp.complete_time_ns)

        assert t_hot > 1.5 * t_cold
