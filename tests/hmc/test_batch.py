"""Batched transaction engine vs the scalar oracle.

The batched engine's contract is *bit-exactness*: timestamping a stream
with :meth:`HmcCube.submit_batch` must leave the device — response
times, stats accumulators (including float folds), ledgers, bank/port
state, backing-store pages, tag counter — exactly where the scalar
:meth:`HmcCube.submit` loop would, for any stream. These tests check
that property on seeded randomized streams engineered to hit the nasty
regimes: same-bank RMW conflicts, row hits/misses, refresh crossings,
mid-stream temperature-phase derating, both functional-apply paths
(uniform-template fold and ordered per-instruction fallback).
"""

import dataclasses

import numpy as np
import pytest

from repro.hmc.config import HMC_2_0
from repro.hmc.cube import HmcCube
from repro.hmc.dram_timing import TemperaturePhase
from repro.hmc.isa import PimInstruction, PimOpcode
from repro.hmc.packet import PTYPE_CODES, PacketType, Request

#: Stride that lands every access in the same (vault, bank) pair.
SAME_BANK_STRIDE = (
    HMC_2_0.dram_access_granularity_bytes
    * HMC_2_0.num_vaults
    * HMC_2_0.banks_per_vault
)

CODE_READ = PTYPE_CODES[PacketType.READ64]
CODE_WRITE = PTYPE_CODES[PacketType.WRITE64]
CODE_PIM = PTYPE_CODES[PacketType.PIM]


def cube_state(cube):
    """Snapshot every piece of device state the engines may touch."""
    return {
        "stats": dataclasses.asdict(cube.stats),
        "next_tag": cube._next_tag,
        "vaults": [dataclasses.asdict(v.stats) for v in cube.vaults],
        "pim_units": [dataclasses.asdict(v.pim_unit.stats) for v in cube.vaults],
        "banks": [
            (b.open_row, b.ready_at, b._next_refresh_ns,
             dataclasses.asdict(b.stats))
            for v in cube.vaults
            for b in v.banks
        ],
        "links": [
            (lk.req_ready_at, lk.rsp_ready_at,
             dataclasses.asdict(lk.stats), dataclasses.asdict(lk.ledger))
            for lk in cube.links.links
        ],
        "xbar": (dict(cube.crossbar._port_ready),
                 dict(cube.crossbar._port_busy_ns)),
        "pages": {page: bytes(buf) for page, buf in cube.store._pages.items()},
    }


def random_stream(rng, n, *, pim_weight=0.35, payload_frac=0.4):
    """Mixed stream with hotspot (same-bank, same-operand) pressure.

    Returns parallel lists: codes, addresses, payloads. Addresses are
    16 B aligned so uniform ADD_IMM streams qualify for the fold path;
    hotspot picks guarantee same-bank serialization and repeated-operand
    RMW folding.
    """
    codes = rng.choice(
        [CODE_READ, CODE_WRITE, CODE_PIM],
        size=n,
        p=[(1 - pim_weight) / 2, (1 - pim_weight) / 2, pim_weight],
    ).astype(np.int64)
    # ~8 hot operands in one bank + a spread region across vaults.
    hot = (rng.integers(0, 8, size=n) * SAME_BANK_STRIDE * 16).astype(np.int64)
    spread = (rng.integers(0, 1 << 16, size=n) * 16).astype(np.int64)
    addrs = np.where(rng.random(n) < 0.3, hot, spread)
    payloads = [
        bytes(rng.integers(0, 256, size=64, dtype=np.uint8))
        if c == CODE_WRITE and rng.random() < payload_frac else None
        for c in codes.tolist()
    ]
    return codes, addrs, payloads


def scalar_replay(cube, codes, addrs, payloads, now, insts_by_pos=None,
                  template=None):
    """Drive the scalar oracle over the same stream; returns responses."""
    responses = []
    pim_rank = 0
    for pos, (code, addr) in enumerate(zip(codes.tolist(), addrs.tolist())):
        if code == CODE_PIM:
            if insts_by_pos is not None:
                inst = insts_by_pos[pim_rank]
            else:
                inst = dataclasses.replace(template, address=addr)
            pim_rank += 1
            req = Request(PacketType.PIM, address=addr, pim=inst)
            rsp = cube.submit(req, now)
        elif code == CODE_WRITE:
            req = Request(PacketType.WRITE64, address=addr)
            rsp = cube.submit(req, now, payload=payloads[pos])
        else:
            req = Request(PacketType.READ64, address=addr)
            rsp = cube.submit(req, now)
        responses.append(rsp)
    return responses


def assert_equivalent(scalar_cube, batched_cube, scalar_rsps, batch_rsps):
    for name, batch in batch_rsps.items():
        rsps = scalar_rsps[name]
        assert [r.tag for r in rsps] == batch.tags.tolist(), name
        assert [r.complete_time_ns for r in rsps] == \
            batch.complete_time_ns.tolist(), name
        assert [r.latency_ns for r in rsps] == batch.latency_ns.tolist(), name
        assert [r.errstat for r in rsps] == batch.errstat.tolist(), name
        assert [r.atomic_flag for r in rsps] == batch.atomic_flag.tolist(), name
    assert cube_state(scalar_cube) == cube_state(batched_cube)


class TestRandomizedEquivalence:
    """Scalar loop and submit_batch must agree bit for bit."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 19])
    def test_template_stream(self, seed):
        """Uniform ADD_IMM template: exercises the vectorized fold path."""
        rng = np.random.default_rng(seed)
        template = PimInstruction(PimOpcode.ADD_IMM, address=0, immediate=3)
        scalar, batched = HmcCube(HMC_2_0), HmcCube(HMC_2_0)
        scalar_rsps, batch_rsps = {}, {}
        now = 0.0
        # Several sequential batches: later batches land on warm row
        # buffers, drained refreshes, and backed-up FIFOs, with a phase
        # change (derated frequency + doubled refresh) mid-stream.
        for batch_no, phase in enumerate(
            [TemperaturePhase.NORMAL, TemperaturePhase.EXTENDED,
             TemperaturePhase.CRITICAL]
        ):
            scalar.apply_temperature_phase(phase)
            batched.apply_temperature_phase(phase)
            codes, addrs, payloads = random_stream(rng, 400)
            scalar_rsps[batch_no] = scalar_replay(
                scalar, codes, addrs, payloads, now, template=template
            )
            batch_rsps[batch_no] = batched.submit_batch_arrays(
                codes, addrs, now, pim_template=template, payloads=payloads
            )
            # Push the next batch past refresh boundaries.
            now = max(r.complete_time_ns for r in scalar_rsps[batch_no]) + 500.0
        assert_equivalent(scalar, batched, scalar_rsps, batch_rsps)
        # The streams must actually have crossed refresh windows for
        # this test to mean anything.
        refreshes = sum(
            b.stats.refreshes for v in batched.vaults for b in v.banks
        )
        assert refreshes > 0

    @pytest.mark.parametrize("seed", [3, 11])
    def test_per_instruction_stream(self, seed):
        """Per-op instruction lists with mixed opcodes: ordered fallback."""
        rng = np.random.default_rng(seed)
        scalar, batched = HmcCube(HMC_2_0), HmcCube(HMC_2_0)
        codes, addrs, payloads = random_stream(rng, 500)
        pim_pos = np.flatnonzero(codes == CODE_PIM)
        insts = []
        for pos in pim_pos.tolist():
            op = [PimOpcode.ADD_IMM, PimOpcode.ADD_IMM_RET,
                  PimOpcode.CAS_GREATER][pos % 3]
            insts.append(
                PimInstruction(op, address=int(addrs[pos]),
                               immediate=int(rng.integers(-50, 50)))
            )
        scalar_rsps = scalar_replay(
            scalar, codes, addrs, payloads, 0.0, insts_by_pos=insts
        )
        batch = batched.submit_batch_arrays(
            codes, addrs, 0.0, pim_insts=insts, payloads=payloads
        )
        assert_equivalent(scalar, batched, {0: scalar_rsps}, {0: batch})
        # CMP_SWAP_GT on zeroed memory fails for non-positive immediates,
        # so the atomic flag lane must carry real information.
        assert not batch.atomic_flag.all()

    def test_request_object_path(self):
        """submit_batch(requests) converts and matches the scalar loop."""
        rng = np.random.default_rng(5)
        scalar, batched = HmcCube(HMC_2_0), HmcCube(HMC_2_0)
        codes, addrs, payloads = random_stream(rng, 200)
        requests = []
        for pos, (code, addr) in enumerate(zip(codes.tolist(), addrs.tolist())):
            if code == CODE_PIM:
                requests.append(Request(
                    PacketType.PIM, address=addr,
                    pim=PimInstruction(PimOpcode.ADD_IMM, address=addr,
                                       immediate=1),
                ))
            elif code == CODE_WRITE:
                requests.append(Request(PacketType.WRITE64, address=addr))
            else:
                requests.append(Request(PacketType.READ64, address=addr))
        insts = [r.pim for r in requests if r.pim is not None]
        scalar_rsps = scalar_replay(
            scalar, codes, addrs, payloads, 10.0, insts_by_pos=insts
        )
        batch = batched.submit_batch(requests, 10.0, payloads=payloads)
        assert_equivalent(scalar, batched, {0: scalar_rsps}, {0: batch})


class TestTags:
    def test_tags_unique_and_shared_counter(self):
        cube = HmcCube(HMC_2_0)
        rsp = cube.submit(Request(PacketType.READ64, address=0), 0.0)
        codes = np.full(64, CODE_READ, dtype=np.int64)
        addrs = np.arange(64, dtype=np.int64) * 32
        batch = cube.submit_batch_arrays(codes, addrs, 0.0)
        rsp2 = cube.submit(Request(PacketType.READ64, address=64), 0.0)
        tags = [rsp.tag, *batch.tags.tolist(), rsp2.tag]
        assert tags == list(range(66))
        assert len(set(tags)) == len(tags)
        assert cube._next_tag == 66

    def test_scalar_response_echoes_allocated_tag(self):
        cube = HmcCube(HMC_2_0)
        req = Request(PacketType.READ64, address=0, tag=12345)
        rsp = cube.submit(req, 0.0)
        assert req.tag == 0
        assert rsp.tag == 0


class TestValidationAndErrors:
    def test_shutdown_raises_same_message(self):
        scalar, batched = HmcCube(HMC_2_0), HmcCube(HMC_2_0)
        scalar.shutdown()
        batched.shutdown()
        with pytest.raises(RuntimeError) as scalar_err:
            scalar.submit(Request(PacketType.READ64, address=0), 0.0)
        with pytest.raises(RuntimeError) as batch_err:
            batched.submit_batch_arrays(
                np.array([CODE_READ]), np.array([0]), 0.0
            )
        assert str(scalar_err.value) == str(batch_err.value)

    def test_validation_is_all_or_nothing(self):
        cube = HmcCube(HMC_2_0)
        codes = np.array([CODE_READ, CODE_READ], dtype=np.int64)
        bad_addrs = np.array([0, cube.config.capacity_bytes], dtype=np.int64)
        before = cube_state(cube)
        with pytest.raises(ValueError):
            cube.submit_batch_arrays(codes, bad_addrs, 0.0)
        assert cube_state(cube) == before

    def test_pim_needs_exactly_one_instruction_source(self):
        cube = HmcCube(HMC_2_0)
        codes = np.array([CODE_PIM], dtype=np.int64)
        addrs = np.array([0], dtype=np.int64)
        template = PimInstruction(PimOpcode.ADD_IMM, address=0, immediate=1)
        with pytest.raises(ValueError, match="exactly one"):
            cube.submit_batch_arrays(codes, addrs, 0.0)
        with pytest.raises(ValueError, match="exactly one"):
            cube.submit_batch_arrays(
                codes, addrs, 0.0,
                pim_template=template, pim_insts=[template],
            )

    def test_payload_must_sit_on_a_write(self):
        cube = HmcCube(HMC_2_0)
        codes = np.array([CODE_READ], dtype=np.int64)
        addrs = np.array([0], dtype=np.int64)
        with pytest.raises(ValueError, match="non-WRITE64"):
            cube.submit_batch_arrays(codes, addrs, 0.0, payloads=[b"\1" * 64])
        with pytest.raises(ValueError, match="64 B"):
            cube.submit_batch_arrays(
                np.array([CODE_WRITE], dtype=np.int64), addrs, 0.0,
                payloads=[b"\1" * 8],
            )


class TestThermalSignalling:
    def test_warning_sets_errstat_and_counts(self):
        scalar, batched = HmcCube(HMC_2_0), HmcCube(HMC_2_0)
        scalar.set_thermal_warning(True)
        batched.set_thermal_warning(True)
        codes = np.full(8, CODE_READ, dtype=np.int64)
        addrs = np.arange(8, dtype=np.int64) * 32
        scalar_rsps = scalar_replay(scalar, codes, addrs, [None] * 8, 0.0)
        batch = batched.submit_batch_arrays(codes, addrs, 0.0)
        assert_equivalent(scalar, batched, {0: scalar_rsps}, {0: batch})
        assert batch.thermal_warnings == 8
        assert batched.stats.thermal_warnings_sent == 8


class TestFunctionalSemantics:
    def test_fold_matches_serial_rmw_with_wraparound(self):
        """Repeated ADD_IMM on one operand near the int32 limit must wrap
        exactly as chained scalar RMWs do."""
        scalar, batched = HmcCube(HMC_2_0), HmcCube(HMC_2_0)
        start = (2**31 - 5).to_bytes(4, "little", signed=False)
        for cube in (scalar, batched):
            cube.mem_write(0, start)
        template = PimInstruction(
            PimOpcode.ADD_IMM, address=0, immediate=3, operand_bytes=4
        )
        codes = np.full(10, CODE_PIM, dtype=np.int64)
        addrs = np.zeros(10, dtype=np.int64)
        scalar_replay(scalar, codes, addrs, [None] * 10, 0.0, template=template)
        batched.submit_batch_arrays(codes, addrs, 0.0, pim_template=template)
        assert scalar.mem_read(0, 4) == batched.mem_read(0, 4)
        # 2**31 - 5 + 30 wrapped into negative territory.
        val = int.from_bytes(batched.mem_read(0, 4), "little", signed=True)
        assert val < 0

    def test_write_payload_overlapping_pim_operand_stays_ordered(self):
        """A WRITE64 payload covering a PIM operand forces the ordered
        fallback; interleaved effects must match the scalar loop."""
        scalar, batched = HmcCube(HMC_2_0), HmcCube(HMC_2_0)
        template = PimInstruction(PimOpcode.ADD_IMM, address=0, immediate=1)
        payload = bytes(range(64))
        codes = np.array([CODE_PIM, CODE_WRITE, CODE_PIM], dtype=np.int64)
        addrs = np.array([0, 0, 0], dtype=np.int64)
        payloads = [None, payload, None]
        scalar_rsps = scalar_replay(
            scalar, codes, addrs, payloads, 0.0, template=template
        )
        batch = batched.submit_batch_arrays(
            codes, addrs, 0.0, pim_template=template, payloads=payloads
        )
        assert_equivalent(scalar, batched, {0: scalar_rsps}, {0: batch})
        assert batched.mem_read(0, 8)[:8] == scalar.mem_read(0, 8)
