"""Temperature-phase policy: phases, derating, refresh, energy penalty."""

import pytest

from repro.hmc.dram_timing import TemperaturePhase, TemperaturePhasePolicy


@pytest.fixture
def policy():
    return TemperaturePhasePolicy()


class TestPhases:
    @pytest.mark.parametrize(
        "temp,phase",
        [
            (0.0, TemperaturePhase.NORMAL),
            (84.99, TemperaturePhase.NORMAL),
            (85.0, TemperaturePhase.EXTENDED),
            (94.99, TemperaturePhase.EXTENDED),
            (95.0, TemperaturePhase.CRITICAL),
            (104.99, TemperaturePhase.CRITICAL),
            (105.0, TemperaturePhase.SHUTDOWN),
            (200.0, TemperaturePhase.SHUTDOWN),
        ],
    )
    def test_phase_boundaries(self, policy, temp, phase):
        assert policy.phase(temp) is phase

    def test_warning_threshold_is_first_boundary(self, policy):
        assert policy.warning_threshold_c() == 85.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            TemperaturePhasePolicy(thresholds_c=(95, 85, 105))
        with pytest.raises(ValueError):
            TemperaturePhasePolicy(thresholds_c=(85, 95))


class TestFrequency:
    def test_20_percent_per_phase(self, policy):
        assert policy.frequency_scale(TemperaturePhase.NORMAL) == 1.0
        assert policy.frequency_scale(TemperaturePhase.EXTENDED) == pytest.approx(0.8)
        assert policy.frequency_scale(TemperaturePhase.CRITICAL) == pytest.approx(0.64)
        assert policy.frequency_scale(TemperaturePhase.SHUTDOWN) == 0.0

    def test_bandwidth_scale_from_temperature(self, policy):
        assert policy.bandwidth_scale(90.0) == pytest.approx(0.8)

    def test_reduction_bounds(self):
        with pytest.raises(ValueError):
            TemperaturePhasePolicy(freq_reduction_per_phase=1.0)


class TestRefresh:
    def test_doubles_per_phase(self, policy):
        assert policy.refresh_interval_ms(TemperaturePhase.NORMAL) == 64.0
        assert policy.refresh_interval_ms(TemperaturePhase.EXTENDED) == 32.0
        assert policy.refresh_interval_ms(TemperaturePhase.CRITICAL) == 16.0

    def test_overhead_grows_with_phase(self, policy):
        o_n = policy.refresh_overhead_fraction(TemperaturePhase.NORMAL)
        o_e = policy.refresh_overhead_fraction(TemperaturePhase.EXTENDED)
        o_c = policy.refresh_overhead_fraction(TemperaturePhase.CRITICAL)
        assert 0 < o_n < o_e < o_c < 1
        assert o_e == pytest.approx(2 * o_n)

    def test_shutdown_overhead_is_total(self, policy):
        assert policy.refresh_overhead_fraction(TemperaturePhase.SHUTDOWN) == 1.0


class TestEnergyPenalty:
    def test_monotone_in_phase(self, policy):
        scales = [policy.dram_energy_scale(p) for p in
                  (TemperaturePhase.NORMAL, TemperaturePhase.EXTENDED,
                   TemperaturePhase.CRITICAL)]
        assert scales[0] == 1.0
        assert scales[0] < scales[1] < scales[2]

    def test_shutdown_zero(self, policy):
        assert policy.dram_energy_scale(TemperaturePhase.SHUTDOWN) == 0.0

    def test_hot_phase_power_exceeds_derated_throughput_loss(self, policy):
        """The key dynamic of Fig. 13: after derating, a hot workload's
        DRAM power (throughput x energy/bit) must not fall below its
        pre-derating value, or naive offloading would self-cool."""
        for phase in (TemperaturePhase.EXTENDED, TemperaturePhase.CRITICAL):
            served = policy.frequency_scale(phase)
            energy = policy.dram_energy_scale(phase)
            assert served * energy >= 1.0
