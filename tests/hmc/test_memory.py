"""Backing store: sparse pages, bounds, PIM RMW effects."""

import pytest

from repro.hmc.isa import PimInstruction, PimOpcode, encode_operand
from repro.hmc.memory import BackingStore


class TestReadWrite:
    def test_unwritten_reads_zero(self):
        store = BackingStore(1 << 20)
        assert store.read(0x1234, 8) == b"\x00" * 8

    def test_roundtrip(self):
        store = BackingStore(1 << 20)
        store.write(100, b"hello")
        assert store.read(100, 5) == b"hello"

    def test_cross_page_write(self):
        store = BackingStore(1 << 20)
        data = bytes(range(200))
        store.write(4096 - 100, data)  # spans a page boundary
        assert store.read(4096 - 100, 200) == data

    def test_bounds_checked(self):
        store = BackingStore(1024)
        with pytest.raises(ValueError):
            store.read(1020, 8)
        with pytest.raises(ValueError):
            store.write(-1, b"x")

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BackingStore(0)

    def test_sparse_allocation(self):
        store = BackingStore(8 << 30)  # 8 GB costs nothing until written
        assert store.resident_bytes == 0
        store.write(4 << 30, b"x")
        assert store.resident_bytes == 4096


class TestPimExecution:
    def test_add_updates_memory(self):
        store = BackingStore(1 << 16)
        store.write(64, encode_operand(10, PimOpcode.ADD_IMM, 4))
        inst = PimInstruction(PimOpcode.ADD_IMM, address=64, immediate=5)
        old, flag = store.execute_pim(inst)
        assert flag
        assert old == encode_operand(10, PimOpcode.ADD_IMM, 4)
        assert store.read(64, 4) == encode_operand(15, PimOpcode.ADD_IMM, 4)

    def test_cas_greater_failure_leaves_memory(self):
        store = BackingStore(1 << 16)
        store.write(0, encode_operand(100, PimOpcode.CAS_GREATER, 4))
        inst = PimInstruction(PimOpcode.CAS_GREATER, address=0, immediate=50)
        _old, flag = store.execute_pim(inst)
        assert not flag
        assert store.read(0, 4) == encode_operand(100, PimOpcode.CAS_GREATER, 4)

    def test_fp_min_updates(self):
        store = BackingStore(1 << 16)
        store.write(8, encode_operand(9.0, PimOpcode.FP_MIN, 8))
        inst = PimInstruction(
            PimOpcode.FP_MIN, address=8, immediate=2.5, operand_bytes=8
        )
        store.execute_pim(inst)
        from repro.hmc.isa import decode_operand

        assert decode_operand(store.read(8, 8), PimOpcode.FP_MIN, 8) == 2.5

    def test_sequence_of_adds_accumulates(self):
        store = BackingStore(1 << 16)
        inst = PimInstruction(PimOpcode.ADD_IMM, address=32, immediate=1)
        for _ in range(100):
            store.execute_pim(inst)
        from repro.hmc.isa import decode_operand

        assert decode_operand(store.read(32, 4), PimOpcode.ADD_IMM, 4) == 100
