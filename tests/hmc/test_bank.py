"""DRAM bank: row-buffer timing, serialization, RMW locking, derating."""

import pytest

from repro.hmc.bank import ROW_BYTES, DramBank
from repro.hmc.config import DramTiming


@pytest.fixture
def bank():
    return DramBank(DramTiming())


T = DramTiming()


class TestRowBuffer:
    def test_closed_row_pays_activate(self, bank):
        done = bank.access_read(0, now=0.0)
        assert done == pytest.approx(T.tRCD + T.tCL)
        assert bank.stats.row_misses == 1

    def test_hit_pays_only_cas(self, bank):
        bank.access_read(0, now=0.0)
        start = bank.ready_at
        done = bank.access_read(64, now=start)  # same 2 KB row
        assert done - start == pytest.approx(T.tCL)
        assert bank.stats.row_hits == 1

    def test_conflict_pays_precharge(self, bank):
        bank.access_read(0, now=0.0)
        start = bank.ready_at
        done = bank.access_read(ROW_BYTES * 3, now=start)
        assert done - start == pytest.approx(T.tRP + T.tRCD + T.tCL)

    def test_row_tracking(self, bank):
        bank.access_read(ROW_BYTES * 5 + 17, now=0.0)
        assert bank.open_row == 5


class TestSerialization:
    def test_back_to_back_requests_queue(self, bank):
        d1 = bank.access_read(0, now=0.0)
        d2 = bank.access_read(0, now=0.0)  # arrives while busy
        assert d2 > d1

    def test_idle_gap_does_not_accumulate(self, bank):
        bank.access_read(0, now=0.0)
        done = bank.access_read(0, now=1000.0)
        assert done == pytest.approx(1000.0 + T.tCL)


class TestPimRmw:
    def test_rmw_locks_for_read_fu_write(self, bank):
        fu = 1.0
        done = bank.access_pim_rmw(0, fu_latency_ns=fu, now=0.0)
        # closed-row read + FU + row-hit write-back
        expected = (T.tRCD + T.tCL) + fu + T.tCL
        assert done == pytest.approx(expected)

    def test_rmw_blocks_subsequent_access(self, bank):
        done_rmw = bank.access_pim_rmw(0, fu_latency_ns=2.0, now=0.0)
        done_read = bank.access_read(0, now=0.0)
        assert done_read >= done_rmw + T.tCL - 1e-9

    def test_negative_fu_latency(self, bank):
        with pytest.raises(ValueError):
            bank.access_pim_rmw(0, fu_latency_ns=-1.0, now=0.0)


class TestDerating:
    def test_derating_stretches_latency(self, bank):
        bank.set_frequency_scale(0.8)
        done = bank.access_read(0, now=0.0)
        assert done == pytest.approx((T.tRCD + T.tCL) / 0.8)

    def test_scale_bounds(self, bank):
        with pytest.raises(ValueError):
            bank.set_frequency_scale(0.0)
        with pytest.raises(ValueError):
            bank.set_frequency_scale(1.2)


class TestStats:
    def test_utilization(self, bank):
        bank.access_read(0, now=0.0)
        busy = bank.stats.busy_ns
        assert bank.utilization(busy * 2) == pytest.approx(0.5)
        assert bank.utilization(0.0) == 0.0

    def test_counters(self, bank):
        bank.access_read(0, 0.0)
        bank.access_write(0, 0.0)
        bank.access_pim_rmw(0, 1.0, 0.0)
        assert bank.stats.reads == 1
        assert bank.stats.writes == 1
        assert bank.stats.pim_ops == 1
