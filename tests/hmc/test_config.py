"""HMC configurations: Table IV values and derived quantities."""

import pytest

from repro.hmc.config import DramTiming, HMC_1_1, HMC_2_0, HmcConfig


class TestHmc20:
    """Table IV row checks."""

    def test_capacity(self):
        assert HMC_2_0.capacity_gb == 8
        assert HMC_2_0.capacity_bytes == 8 << 30

    def test_geometry(self):
        assert HMC_2_0.num_vaults == 32
        assert HMC_2_0.total_banks == 512
        assert HMC_2_0.num_dram_dies == 8

    def test_links(self):
        assert HMC_2_0.num_links == 4
        assert HMC_2_0.link_bandwidth_gbs == 120.0
        assert HMC_2_0.peak_data_bandwidth_gbs == 320.0
        assert HMC_2_0.peak_link_bandwidth_gbs == 480.0

    def test_supports_pim(self):
        assert HMC_2_0.supports_pim
        assert not HMC_1_1.supports_pim

    def test_vault_area(self):
        assert HMC_1_1.vault_area_mm2 == pytest.approx(68.0 / 16)
        assert HMC_2_0.fu_area_mm2 == 0.003


class TestHmc11:
    def test_prototype_parameters(self):
        assert HMC_1_1.capacity_gb == 4
        assert HMC_1_1.num_vaults == 16
        assert HMC_1_1.num_links == 2
        assert HMC_1_1.peak_data_bandwidth_gbs == 60.0


class TestDramTiming:
    def test_table_iv_values(self):
        t = DramTiming()
        assert t.tCL == t.tRCD == t.tRP == 13.75
        assert t.tRAS == 27.5

    def test_derived_latencies(self):
        t = DramTiming()
        assert t.tRC == pytest.approx(41.25)
        assert t.read_hit_latency() == 13.75
        assert t.read_closed_latency() == pytest.approx(27.5)
        assert t.read_miss_latency() == pytest.approx(41.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            DramTiming(tCL=0.0)


class TestValidation:
    def test_data_bw_cannot_exceed_raw(self):
        with pytest.raises(ValueError):
            HmcConfig(
                name="bad", capacity_gb=1, num_vaults=1, num_dram_dies=1,
                banks_per_vault=1, num_links=1,
                link_bandwidth_gbs=10.0, link_data_bandwidth_gbs=20.0,
            )

    def test_positive_geometry(self):
        with pytest.raises(ValueError):
            HmcConfig(
                name="bad", capacity_gb=1, num_vaults=0, num_dram_dies=1,
                banks_per_vault=1, num_links=1,
                link_bandwidth_gbs=10.0, link_data_bandwidth_gbs=5.0,
            )
