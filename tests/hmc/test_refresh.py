"""Distributed refresh in the event-level bank model."""

import pytest

from repro.hmc.bank import BASE_TREFI_NS, ROW_BYTES, TRFC_NS, DramBank
from repro.hmc.config import DramTiming, HMC_2_0
from repro.hmc.cube import HmcCube
from repro.hmc.dram_timing import TemperaturePhase
from repro.hmc.packet import PacketType, Request


@pytest.fixture
def bank():
    return DramBank(DramTiming())


class TestRefreshTiming:
    def test_no_refresh_before_first_trefi(self, bank):
        bank.access_read(0, now=0.0)
        assert bank.stats.refreshes == 0

    def test_refresh_executes_when_due(self, bank):
        bank.access_read(0, now=BASE_TREFI_NS + 1.0)
        assert bank.stats.refreshes == 1
        assert bank.stats.refresh_ns == pytest.approx(TRFC_NS)

    def test_refresh_closes_open_row(self, bank):
        bank.access_read(0, now=0.0)
        assert bank.open_row == 0
        # Next access after a refresh interval: row was closed by refresh,
        # so the same row pays an activate again.
        t = DramTiming()
        done = bank.access_read(0, now=BASE_TREFI_NS + 1000.0)
        start = BASE_TREFI_NS + 1000.0
        assert done - start == pytest.approx(t.read_closed_latency())

    def test_refresh_delays_colliding_access(self, bank):
        # Arrive exactly when a refresh is due: wait out tRFC.
        now = BASE_TREFI_NS
        done = bank.access_read(0, now=now)
        t = DramTiming()
        assert done == pytest.approx(now + TRFC_NS + t.read_closed_latency())

    def test_long_idle_accounts_all_refreshes(self, bank):
        idle_ns = 1e9  # one second
        bank.access_read(0, now=idle_ns)
        expected = int(idle_ns / BASE_TREFI_NS)
        assert abs(bank.stats.refreshes - expected) <= 2

    def test_refresh_overhead_fraction_matches_policy(self, bank):
        # Steady busy bank: refresh time fraction ~ tRFC/tREFI (~4.5%).
        now = 0.0
        while now < 10 * BASE_TREFI_NS:
            now = bank.access_read(int(now) % (1 << 20) * 64, now)
        frac = bank.stats.refresh_ns / now
        assert frac == pytest.approx(TRFC_NS / BASE_TREFI_NS, rel=0.2)


class TestHotPhaseRefresh:
    def test_doubled_rate_doubles_refreshes(self):
        cool = DramBank(DramTiming())
        hot = DramBank(DramTiming())
        hot.set_refresh_multiplier(2)
        horizon = 20 * BASE_TREFI_NS
        cool.access_read(0, now=horizon)
        hot.access_read(0, now=horizon)
        assert hot.stats.refreshes == pytest.approx(2 * cool.stats.refreshes,
                                                    abs=2)

    def test_multiplier_validation(self, bank):
        with pytest.raises(ValueError):
            bank.set_refresh_multiplier(0)


class TestCubePhaseApplication:
    def test_extended_phase_configures_banks(self):
        cube = HmcCube(HMC_2_0)
        cube.apply_temperature_phase(TemperaturePhase.EXTENDED)
        bank = cube.vaults[0].banks[0]
        assert bank.freq_scale == pytest.approx(0.8)
        assert bank.refresh_multiplier == 2

    def test_shutdown_phase_stops_cube(self):
        cube = HmcCube(HMC_2_0)
        cube.apply_temperature_phase(TemperaturePhase.SHUTDOWN)
        assert cube.is_shutdown

    def test_normal_phase_is_nominal(self):
        cube = HmcCube(HMC_2_0)
        cube.apply_temperature_phase(TemperaturePhase.NORMAL)
        bank = cube.vaults[0].banks[0]
        assert bank.freq_scale == 1.0
        assert bank.refresh_multiplier == 1
