"""Vault controller and address map."""

import pytest

from repro.hmc.config import HMC_1_1, HMC_2_0
from repro.hmc.isa import PimInstruction, PimOpcode, encode_operand
from repro.hmc.memory import BackingStore
from repro.hmc.packet import PacketType, Request
from repro.hmc.vault import AddressMap, VaultController


class TestAddressMap:
    def test_decode_within_bounds(self):
        amap = AddressMap(HMC_2_0)
        vault, bank, local = amap.decode(0)
        assert vault == 0 and bank == 0 and local == 0

    def test_low_order_vault_interleaving(self):
        amap = AddressMap(HMC_2_0)
        g = HMC_2_0.dram_access_granularity_bytes
        vaults = [amap.decode(i * g)[0] for i in range(HMC_2_0.num_vaults)]
        assert vaults == list(range(HMC_2_0.num_vaults))

    def test_bank_interleaving_after_vaults(self):
        amap = AddressMap(HMC_2_0)
        g = HMC_2_0.dram_access_granularity_bytes
        stride = g * HMC_2_0.num_vaults
        banks = [amap.decode(i * stride)[1] for i in range(HMC_2_0.banks_per_vault)]
        assert banks == list(range(HMC_2_0.banks_per_vault))

    def test_decode_bijective_sample(self):
        amap = AddressMap(HMC_2_0)
        seen = set()
        for addr in range(0, 1 << 16, 32):
            key = amap.decode(addr)
            assert key not in seen
            seen.add(key)

    def test_out_of_range(self):
        amap = AddressMap(HMC_1_1)
        with pytest.raises(ValueError):
            amap.decode(HMC_1_1.capacity_bytes)


@pytest.fixture
def vault():
    store = BackingStore(HMC_2_0.capacity_bytes)
    return VaultController(0, HMC_2_0, store)


class TestVaultService:
    def test_read_returns_data(self, vault):
        vault.store.write(0x100, b"\xab" * 64)
        req = Request(PacketType.READ64, address=0x100, tag=7)
        rsp = vault.service(req, bank_id=0, local_addr=0, now=0.0)
        assert rsp.tag == 7
        assert rsp.data == b"\xab" * 64
        assert rsp.complete_time_ns > 0

    def test_parallel_banks_overlap(self, vault):
        r1 = vault.service(Request(PacketType.READ64, 0), 0, 0, now=0.0)
        r2 = vault.service(Request(PacketType.READ64, 0), 1, 0, now=0.0)
        # different banks: both finish at the closed-row latency
        assert r1.complete_time_ns == pytest.approx(r2.complete_time_ns)

    def test_same_bank_serializes(self, vault):
        r1 = vault.service(Request(PacketType.READ64, 0), 0, 0, now=0.0)
        r2 = vault.service(Request(PacketType.READ64, 0), 0, 4096, now=0.0)
        assert r2.complete_time_ns > r1.complete_time_ns

    def test_pim_executes_functionally(self, vault):
        addr = 0x40
        vault.store.write(addr, encode_operand(5, PimOpcode.ADD_IMM, 4))
        inst = PimInstruction(PimOpcode.ADD_IMM, address=addr, immediate=3)
        req = Request(PacketType.PIM, address=addr, pim=inst)
        rsp = vault.service(req, bank_id=2, local_addr=addr, now=0.0)
        assert rsp.atomic_flag
        assert vault.store.read(addr, 4) == encode_operand(8, PimOpcode.ADD_IMM, 4)

    def test_pim_ret_returns_old_value(self, vault):
        addr = 0x80
        vault.store.write(addr, encode_operand(41, PimOpcode.ADD_IMM_RET, 4))
        inst = PimInstruction(PimOpcode.ADD_IMM_RET, address=addr, immediate=1)
        req = Request(PacketType.PIM_RET, address=addr, pim=inst)
        rsp = vault.service(req, 0, addr, now=0.0)
        assert rsp.data == encode_operand(41, PimOpcode.ADD_IMM_RET, 4)

    def test_pim_rejected_without_support(self):
        store = BackingStore(HMC_1_1.capacity_bytes)
        vault = VaultController(0, HMC_1_1, store)
        inst = PimInstruction(PimOpcode.ADD_IMM, address=0, immediate=1)
        req = Request(PacketType.PIM, address=0, pim=inst)
        with pytest.raises(ValueError):
            vault.service(req, 0, 0, now=0.0)

    def test_bad_bank_id(self, vault):
        with pytest.raises(ValueError):
            vault.service(Request(PacketType.READ64, 0), 99, 0, 0.0)

    def test_derating_propagates_to_banks(self, vault):
        vault.set_frequency_scale(0.8)
        assert all(b.freq_scale == 0.8 for b in vault.banks)

    def test_stats_accumulate(self, vault):
        vault.service(Request(PacketType.READ64, 0), 0, 0, 0.0)
        vault.service(Request(PacketType.WRITE64, 0), 1, 0, 0.0)
        assert vault.stats.requests == 2
        assert vault.stats.reads == 1 and vault.stats.writes == 1
